#include "explore/lattice.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sdsp
{

std::size_t
LatticeAxes::pointCount() const
{
    std::size_t count = 1;
    for (const LatticeAxis &axis : axes)
        count *= axis.values.size();
    return axes.empty() ? 0 : count;
}

void
LatticeAxes::overrideAxis(LatticeAxis axis)
{
    for (LatticeAxis &existing : axes) {
        if (existing.key == axis.key) {
            existing = std::move(axis);
            return;
        }
    }
    axes.push_back(std::move(axis));
}

LatticeAxes
LatticeAxes::full()
{
    LatticeAxes axes;
    axes.axes = {
        {"issueWidth", {4, 8, 12, 16, 24, 32}},
        {"suEntries", {16, 32, 48, 64, 96, 128}},
        {"fuLat.Load", {1, 2, 4}},
        {"fuLat.FpMul", {1, 3}},
        {"fuLat.IntDiv", {6, 12}},
        {"perfectDCache", {0, 1}},
        {"bypassing", {0, 1}},
        {"infiniteStoreBuffer", {0, 1}},
    };
    return axes;
}

LatticeAxes
LatticeAxes::reduced()
{
    LatticeAxes axes;
    axes.axes = {
        {"issueWidth", {8, 16}},
        {"suEntries", {16, 32, 64}},
        {"perfectDCache", {0, 1}},
        {"infiniteStoreBuffer", {0, 1}},
    };
    return axes;
}

double
latticeCost(const WhatIf &what_if, const MachineConfig &base)
{
    const unsigned width =
        what_if.issueWidth ? what_if.issueWidth : base.issueWidth;
    const unsigned su =
        what_if.suEntries ? what_if.suEntries : base.suEntries;
    const bool bypass = what_if.bypassing < 0
                            ? base.bypassing
                            : what_if.bypassing != 0;

    double cost = 0.0;
    cost += 4.0 * width;
    cost += 1.0 * su;
    if (bypass)
        cost += 1.0 * width;
    cost += what_if.infiniteStoreBuffer
                ? 32.0
                : 0.5 * base.storeBufferEntries;
    cost += what_if.perfectDCache
                ? 64.0
                : 2.0 * (static_cast<double>(base.dcache.sizeBytes) /
                         1024.0);
    for (unsigned c = 0; c < kNumFuClasses; ++c) {
        const double base_lat = std::max(1u, base.fu.latency[c]);
        const double lat =
            what_if.fuLatency[c] >= 0
                ? std::max(1, what_if.fuLatency[c])
                : base_lat;
        cost += 2.0 * base.fu.count[c] * (base_lat / lat);
    }
    return cost;
}

std::vector<LatticePoint>
buildLattice(const LatticeAxes &axes, const MachineConfig &base)
{
    std::vector<LatticePoint> points;
    const std::size_t total = axes.pointCount();
    if (!total)
        return points;
    points.reserve(total);

    // Odometer over the axes: the last axis spins fastest.
    std::vector<std::size_t> digit(axes.axes.size(), 0);
    for (std::size_t n = 0; n < total; ++n) {
        LatticePoint point;
        for (std::size_t a = 0; a < axes.axes.size(); ++a) {
            const LatticeAxis &axis = axes.axes[a];
            std::string error;
            std::string clause =
                format("%s=%ld", axis.key.c_str(),
                       axis.values[digit[a]]);
            if (!point.whatIf.applyKeyValue(clause, &error))
                fatal("bad lattice axis %s: %s", clause.c_str(),
                      error.c_str());
        }
        point.name = point.whatIf.describe(base);
        point.cost = latticeCost(point.whatIf, base);
        point.confidence = classifyWhatIf(point.whatIf, base);
        points.push_back(std::move(point));

        for (std::size_t a = axes.axes.size(); a-- > 0;) {
            if (++digit[a] < axes.axes[a].values.size())
                break;
            digit[a] = 0;
        }
    }
    return points;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<LatticePoint> &points)
{
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < points.size(); ++i)
        if (points[i].confidence != Confidence::PessimisticBound)
            eligible.push_back(i);

    std::sort(eligible.begin(), eligible.end(),
              [&](std::size_t a, std::size_t b) {
                  const LatticePoint &pa = points[a];
                  const LatticePoint &pb = points[b];
                  if (pa.cost != pb.cost)
                      return pa.cost < pb.cost;
                  if (pa.projectedTotal != pb.projectedTotal)
                      return pa.projectedTotal < pb.projectedTotal;
                  return pa.name < pb.name;
              });

    // Staircase sweep: a point joins the frontier iff it is strictly
    // faster than everything at least as cheap. Equal-(cost, cycles)
    // duplicates keep only the first name.
    std::vector<std::size_t> frontier;
    bool any = false;
    Cycle best = 0;
    for (std::size_t idx : eligible) {
        const Cycle cycles = points[idx].projectedTotal;
        if (!any || cycles < best) {
            frontier.push_back(idx);
            best = cycles;
            any = true;
        }
    }
    return frontier;
}

} // namespace sdsp

/**
 * @file
 * What-if lattice enumeration and the hardware cost model.
 *
 * The design-space explorer sweeps a cartesian lattice of WhatIf
 * parameters (issue width x SU depth x FU latencies x cache/bypass/
 * store-buffer behavior). Each axis is a WhatIf key plus the values
 * it takes — including the baseline value explicitly, so every
 * lattice point names its full coordinates and exactly one point is
 * classified Exact. Points carry an additive hardware cost (see
 * latticeCost) so a Pareto frontier of (cost, projected cycles) can
 * be cut from the projected lattice.
 */

#ifndef SDSP_EXPLORE_LATTICE_HH
#define SDSP_EXPLORE_LATTICE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hh"
#include "critpath/ddg.hh"

namespace sdsp
{

/** One lattice axis: a WhatIf key and the values it sweeps. */
struct LatticeAxis
{
    std::string key;          //!< a WhatIf::applyKeyValue key
    std::vector<long> values; //!< swept values, baseline included
};

/** The axes of the cartesian what-if lattice. */
struct LatticeAxes
{
    std::vector<LatticeAxis> axes;

    /** Product of the axis sizes (0 when any axis is empty). */
    std::size_t pointCount() const;

    /** Replace the axis with @p axis.key, or append a new one. */
    void overrideAxis(LatticeAxis axis);

    /**
     * The full design-space lattice: 3456 points spanning issue
     * width {4..32}, SU entries {16..128}, load latency {1,2,4},
     * FP-multiply latency {1,3}, integer-divide latency {6,12},
     * perfect D-cache, bypassing, and infinite store buffer.
     * Width/SU values below the baseline are included deliberately —
     * they exercise the pessimistic-bound tagging and are excluded
     * from frontier candidacy.
     */
    static LatticeAxes full();

    /** A 24-point sub-lattice for smoke tests and the CI gate
     *  (width {8,16} x SU {16,32,64} x perfect D-cache x infinite
     *  store buffer). */
    static LatticeAxes reduced();
};

/** One enumerated design point of the lattice. */
struct LatticePoint
{
    /** WhatIf::describe against the base config — the stable,
     *  unique name used in tables, JSON, and determinism checks. */
    std::string name;
    WhatIf whatIf;
    /** Additive hardware cost (arbitrary units, see latticeCost). */
    double cost = 0.0;
    /** Trust class against the base config (classifyWhatIf). */
    Confidence confidence = Confidence::Exact;
    /** Projected cycles per recording (filled by projectLattice). */
    std::vector<Cycle> projected;
    /** Sum of `projected` — the frontier's cycles coordinate. */
    Cycle projectedTotal = 0;
};

/**
 * Additive hardware-cost model, in arbitrary "area" units. Not a
 * silicon model — a monotone proxy that makes capacity trade-offs
 * comparable so the Pareto frontier is meaningful:
 *
 *   4 x issue width            (select/wakeup logic)
 * + 1 x SU entries             (CAM + payload RAM)
 * + 1 x issue width if bypassing (forwarding network grows with
 *                               the number of result buses)
 * + store buffer: 0.5/entry, or a flat 32 for the infinite one
 * + D-cache: 2 per KB, or a flat 64 for the perfect one
 * + per FU class: 2 x count x (baseline latency / latency) — a unit
 *   twice as fast costs twice as much, a slower one is cheaper
 *   (latencies clamped at >= 1 cycle for the ratio)
 *
 * Deterministic: pure double arithmetic over the config, no state.
 */
double latticeCost(const WhatIf &what_if, const MachineConfig &base);

/**
 * Enumerate the cartesian product of @p axes into named, costed,
 * confidence-classified points (projections not yet filled). Fatals
 * on an axis key/value WhatIf::applyKeyValue rejects. Point order is
 * the odometer order of the axes — deterministic for a given axes
 * value, independent of thread count.
 */
std::vector<LatticePoint> buildLattice(const LatticeAxes &axes,
                                       const MachineConfig &base);

/**
 * The indices of the Pareto-optimal points under (cost ascending,
 * projectedTotal ascending), considering ONLY Exact and
 * OptimisticBound points: a pessimistic bound can sit far below
 * reality and would wrongly dominate honest projections. Ties on
 * (cost, cycles) keep the lexicographically first name. The result
 * is sorted by cost and deterministic for given point values —
 * independent of enumeration threading.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<LatticePoint> &points);

} // namespace sdsp

#endif // SDSP_EXPLORE_LATTICE_HH

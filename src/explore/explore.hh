/**
 * @file
 * Design-space exploration over the critical-path engine.
 *
 * The loop the paper could not afford: one real simulation per
 * workload records a dependence graph, then THOUSANDS of machine
 * variants are projected from each recording in milliseconds via
 * DdgGraph::relax(). The Pareto frontier of (hardware cost,
 * projected cycles) — a handful of points — is then re-simulated for
 * real through the SweepRunner, and the artifact reports every
 * frontier point's projection error plus an optimistic-bound
 * soundness verdict (pure capacity increases must satisfy
 * projected <= measured). See DESIGN.md §11.
 */

#ifndef SDSP_EXPLORE_EXPLORE_HH
#define SDSP_EXPLORE_EXPLORE_HH

#include <memory>
#include <string>
#include <vector>

#include "explore/lattice.hh"
#include "workloads/workload.hh"

namespace sdsp
{

/** One recorded baseline run driving the projections. */
struct ExploreRecording
{
    const Workload *source = nullptr;
    std::string workload;
    unsigned threads = 0;
    Cycle measured = 0;
    std::uint64_t committed = 0;
    std::unique_ptr<DdgGraph> graph;
    /** Non-empty when the run failed or the graph was inexact; the
     *  recording is unusable then (graph may be null). */
    std::string error;
};

/**
 * Run @p workload once on @p config at @p scale with the DDG
 * recorder attached, build the graph, and hard-verify exactness.
 * A failed run or an inexact graph is reported via `error`.
 */
ExploreRecording recordBaseline(const Workload &workload,
                                const MachineConfig &config,
                                unsigned scale);

/**
 * Fill every point's per-recording projections and total via
 * DdgGraph::relax on @p jobs worker threads. Points are independent,
 * so the result is bit-identical for any job count.
 */
void projectLattice(std::vector<LatticePoint> &points,
                    const std::vector<ExploreRecording> &recordings,
                    unsigned jobs);

/** The MachineConfig @p what_if describes for a REAL re-simulation:
 *  direct fields map directly; infiniteStoreBuffer becomes a 4096-
 *  entry buffer; perfectDCache zeroes the miss penalty (refills are
 *  free; port contention deliberately remains). */
MachineConfig applyWhatIf(const WhatIf &what_if,
                          const MachineConfig &base);

/** One frontier point validated against real re-simulations. */
struct FrontierValidation
{
    std::size_t point = 0; //!< index into the lattice points
    /** Re-simulated cycles per recording (0 where the run failed). */
    std::vector<Cycle> resimulated;
    /** Per-recording failure detail; empty = ok. */
    std::vector<std::string> errors;
    Cycle resimTotal = 0;
    bool allOk = false;
    /** Signed (projected - resimulated) / resimulated * 100 over the
     *  totals; only meaningful when allOk. */
    double errorPercent = 0.0;
    /** True when the point is a pure capacity increase, so
     *  projected <= resimulated is a soundness requirement. */
    bool soundnessGated = false;
    /** soundnessGated and the point's projected total came out
     *  ABOVE its re-simulated total — an optimistic-bound
     *  violation. Gated on totals (the frontier's coordinate);
     *  per-recording divergence stays visible in the arrays. */
    bool optimisticViolation = false;
};

/**
 * Re-simulate every frontier point x recording for real through the
 * SweepRunner (budgets/retries from the environment as usual) and
 * compare against the projections. Outcomes are in frontier order.
 */
std::vector<FrontierValidation>
validateFrontier(const std::vector<LatticePoint> &points,
                 const std::vector<std::size_t> &frontier,
                 const std::vector<ExploreRecording> &recordings,
                 const MachineConfig &base, unsigned scale,
                 unsigned jobs);

/**
 * Projection-error tolerance (percent) the explorer is gated at for
 * @p scale: 15% up to the golden scale (25), widening linearly
 * above it, capped at 40%. Wider than the critpath spot-check gate
 * because the frontier mixes capacity, latency, and cache what-ifs
 * whose re-weighted projections are not one-sided (the reduced
 * lattice's worst frontier point sits at ~11% at scale 25).
 */
double exploreTolerancePercent(unsigned scale);

/** Everything exploreJson() serializes (sdsp-explore-v1). */
struct ExploreReport
{
    MachineConfig base;
    unsigned scale = 0;
    double tolerancePercent = 0.0;
    /** Serialize every lattice point, not just the frontier
     *  (artifacts grow to ~1 MB on the full lattice). */
    bool includeAllPoints = false;
    const std::vector<ExploreRecording> *recordings = nullptr;
    const std::vector<LatticePoint> *points = nullptr;
    const std::vector<std::size_t> *frontier = nullptr;
    /** Null when re-simulation was skipped (--no-resim). */
    const std::vector<FrontierValidation> *validations = nullptr;
};

/** Gate-relevant summary, also embedded in the JSON artifact. */
struct ExploreSummary
{
    std::size_t latticePoints = 0;
    std::size_t exact = 0;
    std::size_t optimistic = 0;
    std::size_t pessimistic = 0;
    std::size_t frontierSize = 0;
    std::size_t validated = 0;       //!< frontier points re-simulated
    std::size_t resimFailures = 0;   //!< frontier points not allOk
    std::size_t optimisticViolations = 0;
    /** Max |errorPercent| across allOk validations. */
    double maxAbsErrorPercent = 0.0;
};

/** Compute the summary the JSON embeds and the gates check. */
ExploreSummary summarize(const ExploreReport &report);

/** The sdsp-explore-v1 JSON document. */
std::string exploreJson(const ExploreReport &report);

} // namespace sdsp

#endif // SDSP_EXPLORE_EXPLORE_HH

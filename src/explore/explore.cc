#include "explore/explore.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

namespace sdsp
{

namespace
{

/** Run @p fn(0..n-1) on @p jobs worker threads. */
void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    unsigned count = std::min<std::size_t>(jobs, n);
    workers.reserve(count);
    for (unsigned w = 0; w < count; ++w) {
        workers.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (std::thread &worker : workers)
        worker.join();
}

Confidence
worse(Confidence a, Confidence b)
{
    return static_cast<unsigned>(a) >= static_cast<unsigned>(b) ? a
                                                                : b;
}

} // namespace

ExploreRecording
recordBaseline(const Workload &workload, const MachineConfig &config,
               unsigned scale)
{
    ExploreRecording recording;
    recording.source = &workload;
    recording.workload = workload.name();
    recording.threads = config.numThreads;

    DdgRecorder recorder;
    RunResult run = runWorkload(workload, config, scale, &recorder);
    if (!run.finished) {
        recording.error = "did not finish: " + run.verifyMessage;
        return recording;
    }
    if (!run.verified) {
        recording.error =
            "failed verification: " + run.verifyMessage;
        return recording;
    }
    recording.measured = run.cycles;
    recording.committed = run.committed;
    recording.graph = std::make_unique<DdgGraph>(recorder.trace(),
                                                 config, run.cycles);
    std::string mismatch = recording.graph->verifyExact();
    if (!mismatch.empty())
        recording.error = "inexact critical path: " + mismatch;
    return recording;
}

void
projectLattice(std::vector<LatticePoint> &points,
               const std::vector<ExploreRecording> &recordings,
               unsigned jobs)
{
    parallelFor(points.size(), jobs, [&](std::size_t i) {
        LatticePoint &point = points[i];
        point.projected.clear();
        point.projected.reserve(recordings.size());
        point.projectedTotal = 0;
        for (const ExploreRecording &recording : recordings) {
            RelaxResult result =
                recording.graph->relax(point.whatIf);
            point.projected.push_back(result.cycles);
            point.projectedTotal += result.cycles;
            point.confidence =
                worse(point.confidence, result.confidence);
        }
    });
}

MachineConfig
applyWhatIf(const WhatIf &what_if, const MachineConfig &base)
{
    MachineConfig config = base;
    if (what_if.issueWidth)
        config.issueWidth = what_if.issueWidth;
    if (what_if.suEntries) {
        // Mirror the projection's whole-blocks rounding so the real
        // machine holds exactly the capacity that was projected.
        config.suEntries =
            std::max(base.blockSize, what_if.suEntries /
                                         base.blockSize *
                                         base.blockSize);
    }
    if (what_if.bypassing >= 0)
        config.bypassing = what_if.bypassing != 0;
    for (unsigned c = 0; c < kNumFuClasses; ++c) {
        if (what_if.fuLatency[c] >= 0) {
            config.fu.latency[c] = std::max(
                1u, static_cast<unsigned>(what_if.fuLatency[c]));
        }
    }
    if (what_if.infiniteStoreBuffer)
        config.storeBufferEntries = 4096;
    if (what_if.perfectDCache)
        config.dcache.missPenalty = 0;
    return config;
}

std::vector<FrontierValidation>
validateFrontier(const std::vector<LatticePoint> &points,
                 const std::vector<std::size_t> &frontier,
                 const std::vector<ExploreRecording> &recordings,
                 const MachineConfig &base, unsigned scale,
                 unsigned jobs)
{
    SweepRunner runner(jobs);
    for (std::size_t idx : frontier) {
        const LatticePoint &point = points[idx];
        MachineConfig config = applyWhatIf(point.whatIf, base);
        for (const ExploreRecording &recording : recordings) {
            runner.add(*recording.source, config, scale,
                       point.name + "/" + recording.workload);
        }
    }
    std::vector<JobOutcome> outcomes = runner.runAll();

    std::vector<FrontierValidation> validations;
    validations.reserve(frontier.size());
    const std::size_t R = recordings.size();
    for (std::size_t f = 0; f < frontier.size(); ++f) {
        const LatticePoint &point = points[frontier[f]];
        FrontierValidation validation;
        validation.point = frontier[f];
        validation.allOk = true;
        validation.soundnessGated =
            point.whatIf.isPureCapacityIncrease(base);
        for (std::size_t r = 0; r < R; ++r) {
            const JobOutcome &outcome = outcomes[f * R + r];
            if (outcome.ok()) {
                validation.resimulated.push_back(
                    outcome.result.cycles);
                validation.errors.emplace_back();
                validation.resimTotal += outcome.result.cycles;
            } else {
                validation.resimulated.push_back(0);
                validation.errors.push_back(
                    outcome.error.empty()
                        ? std::string(jobStatusName(outcome.status))
                        : outcome.error);
                validation.allOk = false;
            }
        }
        if (validation.allOk && validation.resimTotal) {
            validation.errorPercent =
                (static_cast<double>(point.projectedTotal) -
                 static_cast<double>(validation.resimTotal)) /
                static_cast<double>(validation.resimTotal) * 100.0;
            // The bound is gated on the point's total — the same
            // coordinate the frontier was cut on. Individual
            // recordings can wobble a few percent either way at
            // small scales (the re-simulated machine reschedules
            // fetch interleaving the recorded dispatch order cannot
            // express); the per-recording arrays in the artifact
            // keep that visible without tripping the gate on noise.
            validation.optimisticViolation =
                validation.soundnessGated &&
                point.projectedTotal > validation.resimTotal;
        }
        validations.push_back(std::move(validation));
    }
    return validations;
}

double
exploreTolerancePercent(unsigned scale)
{
    constexpr unsigned kGoldenScale = 25;
    constexpr double kBasePercent = 15.0;
    if (scale <= kGoldenScale)
        return kBasePercent;
    return std::min(40.0, kBasePercent *
                              (static_cast<double>(scale) /
                               static_cast<double>(kGoldenScale)));
}

ExploreSummary
summarize(const ExploreReport &report)
{
    ExploreSummary summary;
    summary.latticePoints = report.points->size();
    for (const LatticePoint &point : *report.points) {
        switch (point.confidence) {
          case Confidence::Exact:
            ++summary.exact;
            break;
          case Confidence::OptimisticBound:
            ++summary.optimistic;
            break;
          case Confidence::PessimisticBound:
            ++summary.pessimistic;
            break;
        }
    }
    summary.frontierSize = report.frontier->size();
    if (report.validations) {
        summary.validated = report.validations->size();
        for (const FrontierValidation &validation :
             *report.validations) {
            if (!validation.allOk) {
                ++summary.resimFailures;
                continue;
            }
            if (validation.optimisticViolation)
                ++summary.optimisticViolations;
            summary.maxAbsErrorPercent =
                std::max(summary.maxAbsErrorPercent,
                         std::fabs(validation.errorPercent));
        }
    }
    return summary;
}

std::string
exploreJson(const ExploreReport &report)
{
    const ExploreSummary summary = summarize(report);

    JsonWriter w;
    w.beginObject();
    w.field("schema", "sdsp-explore-v1");
    w.field("scale", report.scale);
    w.field("tolerancePercent", report.tolerancePercent);

    w.key("config")
        .beginObject()
        .field("numThreads", report.base.numThreads)
        .field("issueWidth", report.base.issueWidth)
        .field("suEntries", report.base.suEntries)
        .field("bypassing", report.base.bypassing)
        .field("numRegisters", report.base.numRegisters)
        .endObject();

    w.key("summary")
        .beginObject()
        .field("latticePoints",
               static_cast<std::uint64_t>(summary.latticePoints))
        .field("exact", static_cast<std::uint64_t>(summary.exact))
        .field("optimisticBound",
               static_cast<std::uint64_t>(summary.optimistic))
        .field("pessimisticBound",
               static_cast<std::uint64_t>(summary.pessimistic))
        .field("frontierSize",
               static_cast<std::uint64_t>(summary.frontierSize))
        .field("validated",
               static_cast<std::uint64_t>(summary.validated))
        .field("resimFailures",
               static_cast<std::uint64_t>(summary.resimFailures))
        .field("optimisticViolations",
               static_cast<std::uint64_t>(
                   summary.optimisticViolations))
        .field("maxAbsErrorPercent", summary.maxAbsErrorPercent)
        .endObject();

    w.key("recordings").beginArray();
    for (const ExploreRecording &recording : *report.recordings) {
        w.beginObject();
        w.field("workload", recording.workload);
        w.field("threads", recording.threads);
        w.field("measuredCycles", recording.measured);
        w.field("committed", recording.committed);
        if (recording.graph) {
            w.field("nodes", static_cast<std::uint64_t>(
                                 recording.graph->nodeCount()));
            w.field("edges", static_cast<std::uint64_t>(
                                 recording.graph->edgeCount()));
        }
        w.endObject();
    }
    w.endArray();

    // The frontier, each point with its per-recording projections
    // and (when re-simulation ran) per-point projection error.
    std::vector<const FrontierValidation *> byPoint(
        report.points->size(), nullptr);
    if (report.validations) {
        for (const FrontierValidation &validation :
             *report.validations)
            byPoint[validation.point] = &validation;
    }
    w.key("frontier").beginArray();
    for (std::size_t idx : *report.frontier) {
        const LatticePoint &point = (*report.points)[idx];
        w.beginObject();
        w.field("name", point.name);
        w.field("cost", point.cost);
        w.field("confidence", confidenceName(point.confidence));
        w.field("projectedTotal", point.projectedTotal);
        w.key("projected").beginArray();
        for (Cycle cycles : point.projected)
            w.value(cycles);
        w.endArray();
        if (const FrontierValidation *validation = byPoint[idx]) {
            w.key("validation").beginObject();
            w.field("allOk", validation->allOk);
            w.field("resimTotal", validation->resimTotal);
            w.field("errorPercent", validation->errorPercent);
            w.field("soundnessGated", validation->soundnessGated);
            w.field("optimisticViolation",
                    validation->optimisticViolation);
            w.key("resimulated").beginArray();
            for (Cycle cycles : validation->resimulated)
                w.value(cycles);
            w.endArray();
            bool anyError = false;
            for (const std::string &error : validation->errors)
                anyError = anyError || !error.empty();
            if (anyError) {
                w.key("errors").beginArray();
                for (const std::string &error : validation->errors)
                    w.value(error);
                w.endArray();
            }
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();

    if (report.includeAllPoints) {
        w.key("points").beginArray();
        for (const LatticePoint &point : *report.points) {
            w.beginObject();
            w.field("name", point.name);
            w.field("cost", point.cost);
            w.field("confidence", confidenceName(point.confidence));
            w.field("projectedTotal", point.projectedTotal);
            w.endObject();
        }
        w.endArray();
    }

    w.endObject();
    return w.str();
}

} // namespace sdsp

#include "critpath/report.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace sdsp
{

void
critpathReportStats(const DdgGraph &graph,
                    const RelaxResult &baseline,
                    StatsRegistry &registry)
{
    registry.add("critpath.cycles",
                 static_cast<double>(baseline.cycles));
    registry.add("critpath.nodes",
                 static_cast<double>(graph.nodeCount()));
    registry.add("critpath.edges",
                 static_cast<double>(graph.edgeCount()));
    for (unsigned c = 0; c < kNumEdgeClasses; ++c) {
        const char *name =
            edgeClassName(static_cast<EdgeClass>(c));
        registry.add(format("critpath.breakdown.%s", name),
                     static_cast<double>(baseline.breakdown[c]));
        registry.add(format("critpath.edges.%s", name),
                     static_cast<double>(baseline.edgeCounts[c]));
    }
    std::array<Distribution, kNumEdgeClasses> slack;
    graph.slackHistograms(slack);
    for (unsigned c = 0; c < kNumEdgeClasses; ++c) {
        if (slack[c].count() == 0)
            continue;
        registry.addDistribution(
            format("critpath.slack.%s",
                   edgeClassName(static_cast<EdgeClass>(c))),
            slack[c]);
    }
}

namespace
{

void
writeBreakdown(JsonWriter &w, const RelaxResult &result)
{
    w.key("breakdown").beginObject();
    for (unsigned c = 0; c < kNumEdgeClasses; ++c) {
        if (!result.breakdown[c] && !result.edgeCounts[c])
            continue;
        w.key(edgeClassName(static_cast<EdgeClass>(c)))
            .beginObject()
            .field("cycles", result.breakdown[c])
            .field("edges", result.edgeCounts[c])
            .endObject();
    }
    w.endObject();
}

} // namespace

std::string
critpathJson(const std::string &workload, const DdgGraph &graph,
             const RelaxResult &baseline,
             const std::vector<WhatIfProjection> &projections)
{
    const MachineConfig &config = graph.config();
    JsonWriter w;
    w.beginObject();
    w.field("schema", "sdsp-critpath-v1");
    w.field("workload", workload);
    w.key("config")
        .beginObject()
        .field("numThreads", config.numThreads)
        .field("blockSize", config.blockSize)
        .field("suEntries", config.suEntries)
        .field("issueWidth", config.issueWidth)
        .field("bypassing", config.bypassing)
        .endObject();
    w.field("measuredCycles", graph.measuredCycles());
    w.field("nodes",
            static_cast<std::uint64_t>(graph.nodeCount()));
    w.field("edges",
            static_cast<std::uint64_t>(graph.edgeCount()));

    w.key("criticalPath").beginObject();
    w.field("cycles", baseline.cycles);
    w.field("exact", baseline.cycles == graph.measuredCycles());
    writeBreakdown(w, baseline);
    w.endObject();

    std::array<Distribution, kNumEdgeClasses> slack;
    graph.slackHistograms(slack);
    w.key("slack").beginObject();
    for (unsigned c = 0; c < kNumEdgeClasses; ++c) {
        if (slack[c].count() == 0)
            continue;
        w.key(edgeClassName(static_cast<EdgeClass>(c)))
            .beginObject()
            .field("edges", slack[c].count())
            .field("mean", slack[c].mean())
            .field("max", slack[c].max())
            .endObject();
    }
    w.endObject();

    w.key("whatIf").beginArray();
    for (const WhatIfProjection &p : projections) {
        w.beginObject();
        w.field("name", p.name);
        w.field("cycles", p.result.cycles);
        w.field("confidence", confidenceName(p.result.confidence));
        w.field("skippedCapacityEdges",
                p.result.skippedCapacityEdges);
        w.field("speedup",
                p.result.cycles
                    ? static_cast<double>(graph.measuredCycles()) /
                          static_cast<double>(p.result.cycles)
                    : 0.0);
        writeBreakdown(w, p.result);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

} // namespace sdsp

#include "critpath/ddg.hh"

#include <algorithm>
#include <charconv>
#include <numeric>

#include "common/logging.hh"

namespace sdsp
{

const char *
edgeClassName(EdgeClass cls)
{
    switch (cls) {
      case EdgeClass::Source: return "source";
      case EdgeClass::FetchChain: return "fetchChain";
      case EdgeClass::FetchLatch: return "fetchLatch";
      case EdgeClass::BranchRecovery: return "branchRecovery";
      case EdgeClass::FetchStall: return "fetchStall";
      case EdgeClass::DispatchPipe: return "dispatchPipe";
      case EdgeClass::SuCapacity: return "suCapacity";
      case EdgeClass::Scoreboard: return "scoreboard";
      case EdgeClass::DispatchStall: return "dispatchStall";
      case EdgeClass::IssuePipe: return "issuePipe";
      case EdgeClass::Raw: return "raw";
      case EdgeClass::MemOrder: return "memOrder";
      case EdgeClass::IssueBandwidth: return "issueBandwidth";
      case EdgeClass::FuBusy: return "fuBusy";
      case EdgeClass::StoreBufferFull: return "storeBufferFull";
      case EdgeClass::CachePort: return "cachePort";
      case EdgeClass::IssueStall: return "issueStall";
      case EdgeClass::Execute: return "execute";
      case EdgeClass::CacheMiss: return "cacheMiss";
      case EdgeClass::Writeback: return "writeback";
      case EdgeClass::CommitComplete: return "commitComplete";
      case EdgeClass::CommitQueue: return "commitQueue";
      case EdgeClass::CommitBlocked: return "commitBlocked";
      case EdgeClass::DrainTail: return "drainTail";
    }
    return "unknown";
}

const char *
confidenceName(Confidence confidence)
{
    switch (confidence) {
      case Confidence::Exact: return "exact";
      case Confidence::OptimisticBound: return "optimistic-bound";
      case Confidence::PessimisticBound: return "pessimistic-bound";
    }
    return "unknown";
}

// --------------------------------------------------------------------
// WhatIf
// --------------------------------------------------------------------

bool
WhatIf::isBaseline(const MachineConfig &config) const
{
    if (issueWidth && issueWidth != config.issueWidth)
        return false;
    if (suEntries && suEntries != config.suEntries)
        return false;
    if (perfectDCache || infiniteStoreBuffer)
        return false;
    if (bypassing >= 0 && (bypassing != 0) != config.bypassing)
        return false;
    for (unsigned c = 0; c < kNumFuClasses; ++c) {
        if (fuLatency[c] >= 0 &&
            static_cast<unsigned>(fuLatency[c]) !=
                config.fu.latency[c]) {
            return false;
        }
    }
    return true;
}

std::string
WhatIf::describe(const MachineConfig &config) const
{
    std::string out;
    auto append = [&](const std::string &clause) {
        if (!out.empty())
            out += ",";
        out += clause;
    };
    if (issueWidth)
        append(format("issueWidth=%u", issueWidth));
    if (suEntries)
        append(format("suEntries=%u", suEntries));
    if (perfectDCache)
        append("perfectDCache=1");
    if (infiniteStoreBuffer)
        append("infiniteStoreBuffer=1");
    if (bypassing >= 0)
        append(format("bypassing=%d", bypassing ? 1 : 0));
    for (unsigned c = 0; c < kNumFuClasses; ++c) {
        if (fuLatency[c] >= 0) {
            append(format("fuLat.%s=%d",
                          fuClassName(static_cast<FuClass>(c)),
                          fuLatency[c]));
        }
    }
    if (out.empty())
        out = "baseline";
    (void)config;
    return out;
}

bool
WhatIf::applyKeyValue(const std::string &clause, std::string *error)
{
    auto fail = [&](const std::string &message) {
        if (error)
            *error = message;
        return false;
    };

    std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size())
        return fail(format("expected KEY=VAL, got '%s'",
                           clause.c_str()));
    std::string key = clause.substr(0, eq);
    std::string val = clause.substr(eq + 1);

    long number = 0;
    auto parsed = std::from_chars(val.data(), val.data() + val.size(),
                                  number);
    if (parsed.ec != std::errc{} ||
        parsed.ptr != val.data() + val.size()) {
        return fail(format("'%s': value '%s' is not an integer",
                           key.c_str(), val.c_str()));
    }

    if (key == "issueWidth") {
        if (number < 1)
            return fail("issueWidth must be >= 1");
        issueWidth = static_cast<unsigned>(number);
    } else if (key == "suEntries") {
        if (number < 1)
            return fail("suEntries must be >= 1");
        suEntries = static_cast<unsigned>(number);
    } else if (key == "perfectDCache") {
        perfectDCache = number != 0;
    } else if (key == "infiniteStoreBuffer") {
        infiniteStoreBuffer = number != 0;
    } else if (key == "bypassing") {
        bypassing = number != 0 ? 1 : 0;
    } else if (key.rfind("fuLat.", 0) == 0) {
        std::string cls = key.substr(6);
        for (unsigned c = 0; c < kNumFuClasses; ++c) {
            if (cls == fuClassName(static_cast<FuClass>(c))) {
                if (number < 0)
                    return fail("fuLat must be >= 0");
                fuLatency[c] = static_cast<int>(number);
                return true;
            }
        }
        return fail(format("unknown FU class '%s'", cls.c_str()));
    } else {
        return fail(format(
            "unknown what-if key '%s' (expected issueWidth, "
            "suEntries, perfectDCache, infiniteStoreBuffer, "
            "bypassing, or fuLat.<class>)",
            key.c_str()));
    }
    return true;
}

bool
WhatIf::isPureCapacityIncrease(const MachineConfig &config) const
{
    if (perfectDCache)
        return false;
    if (bypassing >= 0 && (bypassing != 0) != config.bypassing)
        return false;
    for (unsigned c = 0; c < kNumFuClasses; ++c) {
        if (fuLatency[c] >= 0 &&
            static_cast<unsigned>(fuLatency[c]) !=
                config.fu.latency[c]) {
            return false;
        }
    }
    if (issueWidth && issueWidth < config.issueWidth)
        return false;
    if (suEntries &&
        std::max(1u, suEntries / config.blockSize) <
            config.suBlocks()) {
        return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Graph construction
// --------------------------------------------------------------------

namespace
{

/** Stage rank within one cycle, matching the processor's stage order
 *  (commit runs first, fetch last): an edge with weight 0 between
 *  same-cycle events always goes from a lower to a higher rank. */
unsigned
stageRank(DdgNodeKind kind)
{
    switch (kind) {
      case DdgNodeKind::Start: return 0;
      case DdgNodeKind::Commit: return 1;
      case DdgNodeKind::Complete: return 2;
      case DdgNodeKind::Issue: return 3;
      case DdgNodeKind::Dispatch: return 4;
      case DdgNodeKind::Fetch: return 5;
      case DdgNodeKind::End: return 6;
    }
    return 7;
}

} // namespace

DdgGraph::DdgGraph(const DdgTrace &trace, const MachineConfig &config,
                   Cycle measured_cycles)
    : cfg_(config), measured_(measured_cycles)
{
    const auto B = static_cast<std::uint32_t>(trace.blocks.size());
    const auto N = static_cast<std::uint32_t>(trace.insts.size());
    sdsp_assert(static_cast<std::uint64_t>(B) * 3 + 2 * N + 2 <
                    (1ull << 31),
                "DDG too large for 32-bit node indices");

    // Provisional slot numbering (pre-topological-sort):
    //   [0,B)      Fetch of block b
    //   [B,2B)     Dispatch of block b
    //   [2B,3B)    Commit of block b
    //   [3B,3B+N)  Issue of instruction i
    //   [3B+N,..)  Complete of instruction i
    // then Start and End.
    const std::uint32_t slotStart = 3 * B + 2 * N;
    const std::uint32_t slotEnd = slotStart + 1;
    const std::uint32_t numSlots = slotEnd + 1;
    auto fetchSlot = [&](std::uint32_t b) { return b; };
    auto dispSlot = [&](std::uint32_t b) { return B + b; };
    auto commitSlot = [&](std::uint32_t b) { return 2 * B + b; };
    auto issueSlot = [&](std::uint32_t i) { return 3 * B + i; };
    auto completeSlot = [&](std::uint32_t i) { return 3 * B + N + i; };

    std::vector<Node> slots(numSlots);
    std::vector<std::uint64_t> age(numSlots, 0);
    for (std::uint32_t b = 0; b < B; ++b) {
        const DdgBlock &block = trace.blocks[b];
        slots[fetchSlot(b)] = {DdgNodeKind::Fetch, b, block.fetchedAt};
        slots[dispSlot(b)] = {DdgNodeKind::Dispatch, b,
                              block.dispatchedAt};
        slots[commitSlot(b)] = {DdgNodeKind::Commit, b,
                                block.committedAt};
        age[fetchSlot(b)] = block.blockSeq;
        age[dispSlot(b)] = block.blockSeq;
        age[commitSlot(b)] = block.blockSeq;
    }
    for (std::uint32_t i = 0; i < N; ++i) {
        const DdgInst &inst = trace.insts[i];
        slots[issueSlot(i)] = {DdgNodeKind::Issue, i, inst.issuedAt};
        slots[completeSlot(i)] = {DdgNodeKind::Complete, i,
                                  inst.completedAt};
        age[issueSlot(i)] = inst.seq;
        age[completeSlot(i)] = inst.seq;
    }
    slots[slotStart] = {DdgNodeKind::Start, 0, 0};
    slots[slotEnd] = {DdgNodeKind::End, 0, measured_};

    // The fixed topological order: observed time, then pipeline
    // stage rank within the cycle, then age. Both the baseline and
    // every what-if relaxation run in this order.
    std::vector<std::uint32_t> order(numSlots);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  const Node &na = slots[a];
                  const Node &nb = slots[b];
                  if (na.observed != nb.observed)
                      return na.observed < nb.observed;
                  unsigned ra = stageRank(na.kind);
                  unsigned rb = stageRank(nb.kind);
                  if (ra != rb)
                      return ra < rb;
                  if (age[a] != age[b])
                      return age[a] < age[b];
                  return a < b;
              });
    std::vector<std::uint32_t> pos(numSlots);
    nodes_.resize(numSlots);
    for (std::uint32_t t = 0; t < numSlots; ++t) {
        pos[order[t]] = t;
        nodes_[t] = slots[order[t]];
    }
    sdsp_assert(nodes_.front().kind == DdgNodeKind::Start &&
                    nodes_.back().kind == DdgNodeKind::End,
                "Start/End not at the ends of the topological order");
    const std::uint32_t startTopo = 0;
    const std::uint32_t endTopo = numSlots - 1;

    // Baseline orderings backing the rewireable capacity edges.
    std::vector<std::uint32_t> byDispatch(B), byCommit(B), byFetch(B);
    std::iota(byDispatch.begin(), byDispatch.end(), 0u);
    byCommit = byDispatch;
    byFetch = byDispatch;
    std::sort(byDispatch.begin(), byDispatch.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return trace.blocks[a].dispatchedAt <
                         trace.blocks[b].dispatchedAt;
              });
    std::sort(byCommit.begin(), byCommit.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return trace.blocks[a].committedAt <
                         trace.blocks[b].committedAt;
              });
    std::sort(byFetch.begin(), byFetch.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return trace.blocks[a].fetchedAt <
                         trace.blocks[b].fetchedAt;
              });
    commitOrder_.resize(B);
    dispatchRankOfBlock_.resize(B);
    for (std::uint32_t r = 0; r < B; ++r) {
        commitOrder_[r] = pos[commitSlot(byCommit[r])];
        dispatchRankOfBlock_[byDispatch[r]] = r;
    }
    std::vector<std::uint32_t> byIssue(N);
    std::iota(byIssue.begin(), byIssue.end(), 0u);
    std::sort(byIssue.begin(), byIssue.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  const DdgInst &ia = trace.insts[a];
                  const DdgInst &ib = trace.insts[b];
                  if (ia.issuedAt != ib.issuedAt)
                      return ia.issuedAt < ib.issuedAt;
                  return ia.seq < ib.seq;
              });
    issueOrder_.resize(N);
    issueRankOfInst_.resize(N);
    for (std::uint32_t r = 0; r < N; ++r) {
        issueOrder_[r] = pos[issueSlot(byIssue[r])];
        issueRankOfInst_[byIssue[r]] = r;
    }

    // seq -> instruction index (RAW producer lookup).
    std::vector<std::uint32_t> bySeq(N);
    std::iota(bySeq.begin(), bySeq.end(), 0u);
    std::sort(bySeq.begin(), bySeq.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return trace.insts[a].seq < trace.insts[b].seq;
              });
    auto findBySeq = [&](Tag seq) -> std::int64_t {
        auto it = std::lower_bound(
            bySeq.begin(), bySeq.end(), seq,
            [&](std::uint32_t idx, Tag s) {
                return trace.insts[idx].seq < s;
            });
        if (it == bySeq.end() || trace.insts[*it].seq != seq)
            return -1;
        return *it;
    };

    // ---- Edge construction. Every edge is validated against the
    // observed times (soundness: t(src) + w <= t(dst)), and the best
    // incoming candidate per node is tracked so the residual pass
    // can make each node tight. ----
    struct Pending
    {
        std::uint32_t dst;
        Edge edge;
    };
    std::vector<Pending> pending;
    pending.reserve(static_cast<std::size_t>(8) * N + 8 * B + 4);

    constexpr Cycle kNoCandidate = ~Cycle{0};
    std::vector<Cycle> bestTime(numSlots, kNoCandidate);
    std::vector<std::uint32_t> bestSrc(numSlots, slotStart);

    auto addEdge = [&](std::uint32_t dst_slot, std::uint32_t src_slot,
                       EdgeClass cls, Cycle baseline_w,
                       std::uint32_t stored_w, FuClass fu_cls,
                       std::uint32_t miss_extra) {
        const Cycle src_t = slots[src_slot].observed;
        const Cycle dst_t = slots[dst_slot].observed;
        sdsp_assert(src_t + baseline_w <= dst_t,
                    "unsound %s edge: src@%llu + %llu > dst@%llu",
                    edgeClassName(cls),
                    static_cast<unsigned long long>(src_t),
                    static_cast<unsigned long long>(baseline_w),
                    static_cast<unsigned long long>(dst_t));
        sdsp_assert(pos[src_slot] < pos[dst_slot],
                    "%s edge not forward in the topological order",
                    edgeClassName(cls));
        Edge edge;
        edge.src = pos[src_slot];
        edge.cls = cls;
        edge.fuClass = fu_cls;
        edge.weight = stored_w;
        edge.missExtra = miss_extra;
        pending.push_back({pos[dst_slot], edge});
        Cycle cand = src_t + baseline_w;
        if (bestTime[dst_slot] == kNoCandidate ||
            cand > bestTime[dst_slot]) {
            bestTime[dst_slot] = cand;
            bestSrc[dst_slot] = src_slot;
        }
    };
    auto addSimple = [&](std::uint32_t dst_slot,
                         std::uint32_t src_slot, EdgeClass cls,
                         Cycle w) {
        addEdge(dst_slot, src_slot, cls, w,
                static_cast<std::uint32_t>(w), FuClass::IntAlu, 0);
    };
    // Dynamic (rewireable) baseline candidate: not stored as an
    // edge, but counted toward tightness so no residual shadows it.
    auto addDynamicCandidate = [&](std::uint32_t dst_slot,
                                   std::uint32_t src_slot, Cycle w) {
        const Cycle src_t = slots[src_slot].observed;
        sdsp_assert(src_t + w <= slots[dst_slot].observed,
                    "unsound capacity candidate");
        Cycle cand = src_t + w;
        if (bestTime[dst_slot] == kNoCandidate ||
            cand > bestTime[dst_slot]) {
            bestTime[dst_slot] = cand;
            bestSrc[dst_slot] = src_slot;
        }
    };

    // Per-thread traversal state (blocks in the trace are in commit
    // order; within one thread that equals program/fetch order).
    std::vector<std::int64_t> prevBlockOfThread(cfg_.numThreads, -1);
    std::vector<std::int64_t> lastMispredict(cfg_.numThreads, -1);
    struct LastStore
    {
        std::int64_t inst = -1;
        Cycle issuedAt = 0;
    };
    std::vector<LastStore> lastStore(cfg_.numThreads);

    const unsigned baseBlocks = cfg_.suBlocks();
    const unsigned baseWidth = cfg_.issueWidth;

    for (std::uint32_t r = 0; r < B; ++r) {
        // Walk blocks in global fetch order so the latch-occupancy
        // chain and the per-thread chains can be built in one pass
        // (per-thread fetch order equals per-thread commit order).
        const std::uint32_t b = byFetch[r];
        const DdgBlock &block = trace.blocks[b];
        const ThreadId tid = block.tid;

        // Fetch: latch freed by the previous block's dispatch, the
        // same thread's previous fetch, and — after a mispredict —
        // the resolving branch's writeback.
        if (r > 0) {
            addSimple(fetchSlot(b), dispSlot(byFetch[r - 1]),
                      EdgeClass::FetchLatch, 0);
        }
        if (prevBlockOfThread[tid] >= 0) {
            // One block fetches per cycle, so consecutive same-thread
            // fetches are at least one cycle apart. (The rotation
            // spacing of round-robin policies is NOT modeled as a
            // hard edge — TrueRR skips finished threads, so the gap
            // can legally shrink to 1; lost rotations surface as
            // fetchStall residuals instead.)
            addSimple(fetchSlot(b),
                      fetchSlot(static_cast<std::uint32_t>(
                          prevBlockOfThread[tid])),
                      EdgeClass::FetchChain, 1);
        }
        if (lastMispredict[tid] >= 0) {
            const auto p =
                static_cast<std::uint32_t>(lastMispredict[tid]);
            if (trace.insts[p].seq < block.blockSeq) {
                addSimple(fetchSlot(b), completeSlot(p),
                          EdgeClass::BranchRecovery, 0);
            }
        }
        prevBlockOfThread[tid] = b;

        // Dispatch: decode takes one cycle past the latch, and the
        // SU must have a free block (capacity candidate).
        addSimple(dispSlot(b), fetchSlot(b), EdgeClass::DispatchPipe,
                  1);
        const std::uint32_t n = dispatchRankOfBlock_[b];
        if (n >= baseBlocks) {
            addDynamicCandidate(
                dispSlot(b), commitSlot(byCommit[n - baseBlocks]), 0);
        }

        for (std::uint32_t k = 0; k < block.instCount; ++k) {
            const std::uint32_t i = block.firstInst + k;
            const DdgInst &inst = trace.insts[i];

            // Issue: one cycle past dispatch, register RAW on the
            // recorded in-flight producers, memory disambiguation
            // behind the latest-issuing older same-thread store, and
            // the issue-bandwidth chain (capacity candidate).
            addSimple(issueSlot(i), dispSlot(b), EdgeClass::IssuePipe,
                      1);
            for (Tag producer_seq : inst.waitSeq) {
                if (!producer_seq)
                    continue;
                std::int64_t p = findBySeq(producer_seq);
                sdsp_assert(p >= 0,
                            "RAW producer %llu of committed %llu "
                            "missing from the trace",
                            static_cast<unsigned long long>(
                                producer_seq),
                            static_cast<unsigned long long>(inst.seq));
                addSimple(issueSlot(i),
                          completeSlot(static_cast<std::uint32_t>(p)),
                          EdgeClass::Raw, cfg_.bypassing ? 0 : 1);
            }
            if (inst.isLoad && lastStore[tid].inst >= 0) {
                addSimple(issueSlot(i),
                          issueSlot(static_cast<std::uint32_t>(
                              lastStore[tid].inst)),
                          EdgeClass::MemOrder, 0);
            }
            if (inst.isStore &&
                inst.issuedAt >= lastStore[tid].issuedAt) {
                lastStore[tid] = {static_cast<std::int64_t>(i),
                                  inst.issuedAt};
            }
            const std::uint32_t rank = issueRankOfInst_[i];
            if (rank >= baseWidth) {
                const std::uint32_t older =
                    byIssue[rank - baseWidth];
                addDynamicCandidate(issueSlot(i), issueSlot(older),
                                    1);
            }

            // Complete: FU latency plus any recorded miss cycles;
            // writeback-port contention beyond that becomes an
            // explicit residual edge that keeps the latency terms
            // parameterized (so perfect-cache / FU what-ifs still
            // bite on contended instructions).
            const Cycle lat =
                cfg_.fu.latencyOf(inst.fuClass) + inst.missExtra;
            const EdgeClass exec_cls = inst.missExtra
                                           ? EdgeClass::CacheMiss
                                           : EdgeClass::Execute;
            addEdge(completeSlot(i), issueSlot(i), exec_cls, lat, 0,
                    inst.fuClass,
                    static_cast<std::uint32_t>(inst.missExtra));
            const Cycle observed_exec =
                inst.completedAt - inst.issuedAt;
            if (observed_exec > lat) {
                addEdge(completeSlot(i), issueSlot(i),
                        EdgeClass::Writeback, observed_exec,
                        static_cast<std::uint32_t>(observed_exec -
                                                   lat),
                        inst.fuClass,
                        static_cast<std::uint32_t>(inst.missExtra));
            }

            // Commit: the block retires the cycle after its last
            // result writes back, at the earliest.
            addSimple(commitSlot(b), completeSlot(i),
                      EdgeClass::CommitComplete, 1);

            if (inst.mispredicted)
                lastMispredict[tid] = static_cast<std::int64_t>(i);
        }
    }

    // Commit serialization: one block retires per cycle, machine
    // wide — a true structural bound, so it is a hard chain.
    for (std::uint32_t r = 1; r < B; ++r) {
        addSimple(commitSlot(byCommit[r]),
                  commitSlot(byCommit[r - 1]), EdgeClass::CommitQueue,
                  1);
    }

    // End: every block's commit precedes the end of the run; the
    // last commit carries the observed drain tail (store-buffer and
    // FU drain after the final retirement).
    for (std::uint32_t b = 0; b < B; ++b)
        addSimple(slotEnd, commitSlot(b), EdgeClass::DrainTail, 0);
    if (B > 0) {
        const std::uint32_t last = byCommit[B - 1];
        addSimple(slotEnd, commitSlot(last), EdgeClass::DrainTail,
                  measured_ -
                      trace.blocks[last].committedAt);
    }

    // ---- Residual pass: give every node a tight incoming edge so
    // the baseline relaxation reproduces every observed time
    // exactly. The class records the evidence the simulator left
    // about WHY the structural edges fall short. ----
    for (std::uint32_t s = 0; s < numSlots; ++s) {
        if (s == slotStart)
            continue;
        const Node &node = slots[s];
        if (bestTime[s] != kNoCandidate &&
            bestTime[s] == node.observed) {
            continue;
        }
        sdsp_assert(bestTime[s] == kNoCandidate ||
                        bestTime[s] < node.observed,
                    "structural edges overshoot node %u", s);
        const std::uint32_t src =
            bestTime[s] == kNoCandidate ? slotStart : bestSrc[s];
        const Cycle w = node.observed - slots[src].observed;
        EdgeClass cls = EdgeClass::Source;
        if (src != slotStart) {
            switch (node.kind) {
              case DdgNodeKind::Fetch:
                cls = EdgeClass::FetchStall;
                break;
              case DdgNodeKind::Dispatch: {
                DispatchWaitCause cause =
                    trace.blocks[node.owner].dispatchWaitCause;
                cls = cause == DispatchWaitCause::SuFull
                          ? EdgeClass::SuCapacity
                          : cause == DispatchWaitCause::Scoreboard
                                ? EdgeClass::Scoreboard
                                : EdgeClass::DispatchStall;
                break;
              }
              case DdgNodeKind::Issue: {
                const DdgInst &inst = trace.insts[node.owner];
                // Trust the recorded cause only if the failed
                // attempt immediately preceded the issue; an
                // earlier, stale failure means the final wait was
                // width contention.
                IssueBlockCause cause =
                    inst.issueBlockCycle + 1 == inst.issuedAt
                        ? inst.issueBlockCause
                        : IssueBlockCause::None;
                switch (cause) {
                  case IssueBlockCause::FuBusy:
                    cls = EdgeClass::FuBusy;
                    break;
                  case IssueBlockCause::MemOrder:
                    cls = EdgeClass::MemOrder;
                    break;
                  case IssueBlockCause::StoreBufferFull:
                    cls = EdgeClass::StoreBufferFull;
                    break;
                  case IssueBlockCause::CachePort:
                    cls = EdgeClass::CachePort;
                    break;
                  case IssueBlockCause::None:
                    cls = EdgeClass::IssueBandwidth;
                    break;
                }
                break;
              }
              case DdgNodeKind::Complete:
                cls = EdgeClass::Writeback;
                break;
              case DdgNodeKind::Commit:
                cls = EdgeClass::CommitBlocked;
                break;
              case DdgNodeKind::End:
                cls = EdgeClass::DrainTail;
                break;
              case DdgNodeKind::Start:
                break;
            }
        }
        addEdge(s, src, cls, w, static_cast<std::uint32_t>(w),
                FuClass::IntAlu, 0);
    }

    // ---- CSR by destination (counting sort keeps build O(E)). ----
    edgeStart_.assign(numSlots + 1, 0);
    for (const Pending &p : pending)
        ++edgeStart_[p.dst + 1];
    for (std::uint32_t t = 0; t < numSlots; ++t)
        edgeStart_[t + 1] += edgeStart_[t];
    edges_.resize(pending.size());
    {
        std::vector<std::uint32_t> cursor(edgeStart_.begin(),
                                          edgeStart_.end() - 1);
        for (const Pending &p : pending)
            edges_[cursor[p.dst]++] = p.edge;
    }
    (void)startTopo;
    (void)endTopo;
}

// --------------------------------------------------------------------
// Relaxation
// --------------------------------------------------------------------

Cycle
DdgGraph::edgeWeight(const Edge &edge, const unsigned *fu_latency,
                     bool perfect_dcache, bool bypassing) const
{
    switch (edge.cls) {
      case EdgeClass::Raw:
        return bypassing ? 0 : 1;
      case EdgeClass::Execute:
      case EdgeClass::CacheMiss:
        return fu_latency[static_cast<unsigned>(edge.fuClass)] +
               (perfect_dcache ? 0 : edge.missExtra);
      case EdgeClass::Writeback:
        return fu_latency[static_cast<unsigned>(edge.fuClass)] +
               (perfect_dcache ? 0 : edge.missExtra) + edge.weight;
      default:
        return edge.weight;
    }
}

void
DdgGraph::relaxInto(const WhatIf &what_if, std::vector<Cycle> &time,
                    std::vector<BestEdge> *best,
                    std::uint64_t *skipped) const
{
    const unsigned baseBlocks = cfg_.suBlocks();
    const unsigned baseWidth = cfg_.issueWidth;
    const unsigned blocksCap =
        what_if.suEntries
            ? std::max(1u, what_if.suEntries / cfg_.blockSize)
            : baseBlocks;
    const unsigned width =
        what_if.issueWidth ? what_if.issueWidth : baseWidth;
    const bool bypass = what_if.bypassing < 0
                            ? cfg_.bypassing
                            : what_if.bypassing != 0;
    unsigned fuLat[kNumFuClasses];
    for (unsigned c = 0; c < kNumFuClasses; ++c) {
        fuLat[c] = what_if.fuLatency[c] >= 0
                       ? static_cast<unsigned>(what_if.fuLatency[c])
                       : cfg_.fu.latency[c];
    }
    // Residual edges voided by a capacity increase: the recorded
    // wait no longer applies on the bigger machine.
    const bool dropSuCapacity = blocksCap > baseBlocks;
    const bool dropBandwidth = width > baseWidth;

    const auto numNodes = static_cast<std::uint32_t>(nodes_.size());
    time.assign(numNodes, 0);
    if (best)
        best->assign(numNodes, BestEdge{});

    for (std::uint32_t p = 0; p < numNodes; ++p) {
        const Node &node = nodes_[p];
        Cycle t = 0;
        BestEdge arg;

        for (std::uint32_t e = edgeStart_[p]; e < edgeStart_[p + 1];
             ++e) {
            const Edge &edge = edges_[e];
            switch (edge.cls) {
              case EdgeClass::SuCapacity:
                if (dropSuCapacity)
                    continue;
                break;
              case EdgeClass::IssueBandwidth:
                if (dropBandwidth)
                    continue;
                break;
              case EdgeClass::StoreBufferFull:
                if (what_if.infiniteStoreBuffer)
                    continue;
                break;
              case EdgeClass::CachePort:
                if (what_if.perfectDCache)
                    continue;
                break;
              default:
                break;
            }
            const Cycle w = edgeWeight(edge, fuLat,
                                       what_if.perfectDCache, bypass);
            const Cycle cand = time[edge.src] + w;
            if (cand > t || (best && arg.fromStart && edge.src == 0 &&
                             cand == t)) {
                t = cand;
                arg = {edge.src, edge.cls, w, false};
            }
        }

        // Rewireable capacity constraints, recomputed from the
        // baseline orderings under the projected capacities. A
        // capacity DECREASE can ask for a source that is not
        // topologically earlier; such edges are skipped and counted,
        // and the caller tags the result pessimistic-bound.
        if (node.kind == DdgNodeKind::Dispatch) {
            const std::uint32_t n = dispatchRankOfBlock_[node.owner];
            if (n >= blocksCap) {
                const std::uint32_t src = commitOrder_[n - blocksCap];
                if (src < p) {
                    const Cycle cand = time[src];
                    if (cand > t) {
                        t = cand;
                        arg = {src, EdgeClass::SuCapacity, 0, false};
                    }
                } else if (skipped) {
                    ++*skipped;
                }
            }
        } else if (node.kind == DdgNodeKind::Issue) {
            const std::uint32_t rank = issueRankOfInst_[node.owner];
            if (rank >= width) {
                const std::uint32_t src = issueOrder_[rank - width];
                if (src < p) {
                    const Cycle cand = time[src] + 1;
                    if (cand > t) {
                        t = cand;
                        arg = {src, EdgeClass::IssueBandwidth, 1,
                               false};
                    }
                } else if (skipped) {
                    ++*skipped;
                }
            }
        }

        time[p] = t;
        if (best)
            (*best)[p] = arg;
    }
}

Confidence
classifyWhatIf(const WhatIf &what_if, const MachineConfig &config)
{
    if (what_if.isBaseline(config))
        return Confidence::Exact;
    const unsigned blocksCap =
        what_if.suEntries
            ? std::max(1u, what_if.suEntries / config.blockSize)
            : config.suBlocks();
    const unsigned width =
        what_if.issueWidth ? what_if.issueWidth : config.issueWidth;
    if (blocksCap < config.suBlocks() || width < config.issueWidth)
        return Confidence::PessimisticBound;
    return Confidence::OptimisticBound;
}

Confidence
DdgGraph::classify(const WhatIf &what_if) const
{
    return classifyWhatIf(what_if, cfg_);
}

RelaxResult
DdgGraph::relax(const WhatIf &what_if) const
{
    std::vector<Cycle> time;
    std::vector<BestEdge> best;
    std::uint64_t skipped = 0;
    relaxInto(what_if, time, &best, &skipped);

    RelaxResult result;
    result.cycles = time.back();
    result.confidence = classify(what_if);
    result.skippedCapacityEdges = skipped;

    // Critical path: walk the argmax chain back from End and charge
    // each edge's weight to its class. The charges sum to the
    // projected cycle count by construction.
    std::uint32_t cur = static_cast<std::uint32_t>(nodes_.size()) - 1;
    while (cur != 0) {
        const BestEdge &edge = best[cur];
        if (edge.fromStart)
            break; // time 0 with no incoming edge
        result.breakdown[static_cast<unsigned>(edge.cls)] +=
            edge.weight;
        ++result.edgeCounts[static_cast<unsigned>(edge.cls)];
        cur = edge.src;
    }
    return result;
}

std::string
DdgGraph::verifyExact() const
{
    std::vector<Cycle> time;
    relaxInto(WhatIf{}, time, nullptr);
    for (std::size_t p = 0; p < nodes_.size(); ++p) {
        if (time[p] != nodes_[p].observed) {
            static const char *const kKindNames[] = {
                "start", "fetch", "dispatch", "issue",
                "complete", "commit", "end"};
            return format(
                "node %zu (%s of %u): computed %llu != observed %llu",
                p,
                kKindNames[static_cast<unsigned>(nodes_[p].kind)],
                nodes_[p].owner,
                static_cast<unsigned long long>(time[p]),
                static_cast<unsigned long long>(nodes_[p].observed));
        }
    }
    return "";
}

void
DdgGraph::slackHistograms(
    std::array<Distribution, kNumEdgeClasses> &out) const
{
    unsigned fuLat[kNumFuClasses];
    for (unsigned c = 0; c < kNumFuClasses; ++c)
        fuLat[c] = cfg_.fu.latency[c];
    for (std::uint32_t p = 0;
         p < static_cast<std::uint32_t>(nodes_.size()); ++p) {
        for (std::uint32_t e = edgeStart_[p]; e < edgeStart_[p + 1];
             ++e) {
            const Edge &edge = edges_[e];
            const Cycle w =
                edgeWeight(edge, fuLat, false, cfg_.bypassing);
            const Cycle slack = nodes_[p].observed -
                                nodes_[edge.src].observed - w;
            out[static_cast<unsigned>(edge.cls)].sample(slack);
        }
    }
}

} // namespace sdsp

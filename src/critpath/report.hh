/**
 * @file
 * Reporting for the critical-path engine: StatsRegistry export and
 * the sdsp-critpath / bench JSON artifact schema
 * ("sdsp-critpath-v1").
 */

#ifndef SDSP_CRITPATH_REPORT_HH
#define SDSP_CRITPATH_REPORT_HH

#include <string>
#include <vector>

#include "critpath/ddg.hh"

namespace sdsp
{

/** One named what-if projection for reporting. */
struct WhatIfProjection
{
    std::string name; //!< e.g. "issueWidth=16,perfectDCache=1"
    WhatIf whatIf;
    RelaxResult result;
};

/**
 * Append "critpath.*" statistics: cycles, node/edge totals, the
 * per-class critical-path breakdown (critpath.breakdown.<class> and
 * critpath.edges.<class>), and non-empty per-class slack histograms
 * (critpath.slack.<class>).
 */
void critpathReportStats(const DdgGraph &graph,
                         const RelaxResult &baseline,
                         StatsRegistry &registry);

/**
 * Serialize one run's analysis as a "sdsp-critpath-v1" JSON
 * document: measured cycles, exactness flag, critical-path breakdown,
 * slack summaries, and the given what-if projections (with speedup
 * vs. measured).
 */
std::string critpathJson(const std::string &workload,
                         const DdgGraph &graph,
                         const RelaxResult &baseline,
                         const std::vector<WhatIfProjection> &
                             projections);

} // namespace sdsp

#endif // SDSP_CRITPATH_REPORT_HH

/**
 * @file
 * Dynamic dependence-graph (DDG) critical-path analysis.
 *
 * The engine answers "why did this run take exactly N cycles, and
 * what would it have taken under a different machine?" from one
 * recorded baseline run, without re-simulating:
 *
 *  1. DdgRecorder is a TraceSink that captures the per-instruction
 *     lifecycle and dependence evidence the processor publishes on
 *     CommitInst/CommitBlock events into a compact DdgTrace.
 *  2. DdgBuilder turns the trace into a DAG: per committed block a
 *     Fetch, Dispatch and Commit node, per committed instruction an
 *     Issue and Complete node, plus virtual Start/End nodes. Edges
 *     are the machine's dependence and resource constraints
 *     (register RAW, fetch rotation and latch occupancy, SU-capacity
 *     back-pressure, issue bandwidth, memory disambiguation, FU and
 *     miss latency, commit serialization, branch-squash recovery,
 *     store-buffer drain), each weighted with its latency.
 *  3. relax() computes every node's earliest time by one pass in a
 *     fixed topological order. Under baseline parameters the result
 *     reproduces every observed timestamp EXACTLY — guaranteed by
 *     construction: every edge satisfies t(src) + w <= t(dst)
 *     (soundness, asserted during the build), and every node keeps
 *     at least one tight edge (a classified residual is added where
 *     the structural edges fall short). The longest path therefore
 *     equals the measured cycle count, the critpath analogue of the
 *     stall-attribution invariant.
 *  4. A WhatIf overrides edge weights and capacities (issue width,
 *     SU depth, FU latencies, perfect D-cache, infinite store
 *     buffer, bypassing) and re-relaxes the same graph in
 *     milliseconds, projecting the run's cycle count on a machine
 *     that was never simulated.
 *
 * See DESIGN.md §10 for the node/edge taxonomy and the soundness
 * argument per edge class.
 */

#ifndef SDSP_CRITPATH_DDG_HH
#define SDSP_CRITPATH_DDG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats_registry.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "isa/opcode.hh"

namespace sdsp
{

// --------------------------------------------------------------------
// Recorded trace
// --------------------------------------------------------------------

/** One committed instruction's lifecycle + dependence evidence. */
struct DdgInst
{
    Tag seq = 0;
    ThreadId tid = 0;
    InstAddr pc = 0;
    Cycle fetchedAt = 0;
    Cycle dispatchedAt = 0;
    Cycle readyAt = 0;
    Cycle issuedAt = 0;
    Cycle completedAt = 0;
    Cycle committedAt = 0;
    /** Producer whose broadcast completed the operands (0 none). */
    Tag wakeupSeq = 0;
    /** Producers in flight at rename time (0 = operand ready). */
    std::array<Tag, 2> waitSeq{};
    Cycle missExtra = 0;
    IssueBlockCause issueBlockCause = IssueBlockCause::None;
    Cycle issueBlockCycle = 0;
    DispatchWaitCause dispatchWaitCause = DispatchWaitCause::None;
    bool mispredicted = false;
    bool isLoad = false;
    bool isStore = false;
    FuClass fuClass = FuClass::IntAlu;
    /** Index of the owning block in DdgTrace::blocks. */
    std::uint32_t block = 0;
};

/** One committed block (the fetch/dispatch/commit granule). */
struct DdgBlock
{
    ThreadId tid = 0;
    Tag blockSeq = 0;
    Cycle fetchedAt = 0;
    Cycle dispatchedAt = 0;
    Cycle committedAt = 0;
    DispatchWaitCause dispatchWaitCause = DispatchWaitCause::None;
    /** Contiguous [firstInst, firstInst + instCount) in
     *  DdgTrace::insts. */
    std::uint32_t firstInst = 0;
    std::uint32_t instCount = 0;
};

/** The per-run recording the graph is built from. Instructions and
 *  blocks appear in commit order. */
struct DdgTrace
{
    std::vector<DdgInst> insts;
    std::vector<DdgBlock> blocks;

    std::uint64_t committed() const { return insts.size(); }
};

/**
 * TraceSink that builds a DdgTrace from the processor's event
 * stream. Attach (alone or in a TeeTraceSink), run, then move the
 * trace out.
 */
class DdgRecorder final : public TraceSink
{
  public:
    void emit(const TraceEvent &event) override;

    /** The recording so far (blocks close on CommitBlock). */
    const DdgTrace &trace() const { return trace_; }
    DdgTrace takeTrace() { return std::move(trace_); }

  private:
    DdgTrace trace_;
    /** insts recorded since the last CommitBlock (the open block). */
    std::uint32_t pendingFirst_ = 0;
};

// --------------------------------------------------------------------
// What-if parameters
// --------------------------------------------------------------------

/**
 * Machine changes to project. Zero / negative fields mean "keep the
 * baseline value". Capacity increases (wider issue, deeper SU,
 * larger store buffer, perfect cache, faster FUs) yield sound
 * projections: the projected cycle count never exceeds the measured
 * one and models every recorded constraint that remains. Capacity
 * DECREASES re-use the baseline event order, drop every dynamic
 * constraint whose rewired source is not topologically earlier, and
 * can come out far below reality — every RelaxResult carries a
 * Confidence tag making the distinction explicit. See DESIGN.md §10.
 */
struct WhatIf
{
    unsigned issueWidth = 0;  //!< 0 = baseline
    unsigned suEntries = 0;   //!< 0 = baseline (rounded to blocks)
    bool perfectDCache = false;
    bool infiniteStoreBuffer = false;
    int bypassing = -1;       //!< -1 baseline, else 0/1
    /** Per-FU-class latency override; -1 = baseline. */
    std::array<int, kNumFuClasses> fuLatency{};

    WhatIf() { fuLatency.fill(-1); }

    bool isBaseline(const MachineConfig &config) const;

    /** "issueWidth=16,perfectDCache=1" (stable key order). */
    std::string describe(const MachineConfig &config) const;

    /**
     * Parse one "KEY=VAL" clause (CLI `--what-if`): issueWidth,
     * suEntries, perfectDCache, infiniteStoreBuffer, bypassing, or
     * fuLat.<class> (e.g. fuLat.load=1). @return false (with
     * *error set) on an unknown key or bad value.
     */
    bool applyKeyValue(const std::string &clause, std::string *error);

    /**
     * True when every change only REMOVES constraints that the
     * relaxation models structurally (wider issue, deeper SU,
     * infinite store buffer) relative to @p config. For such
     * projections `projected <= re-simulated` is sound: dropping
     * edges can only shorten the longest path. Latency, bypassing
     * and cache changes re-weight recorded edges instead — they are
     * near-exact in practice but not one-sided, so they fail this
     * predicate. A baseline WhatIf trivially passes.
     */
    bool isPureCapacityIncrease(const MachineConfig &config) const;
};

/**
 * Trust class of a projection. Ordered from strongest to weakest so
 * the worst class across a set is the numeric maximum.
 */
enum class Confidence : std::uint8_t
{
    /** Baseline parameters: equals the measured cycle count. */
    Exact,
    /** Constraints were only relaxed or re-weighted; for pure
     *  capacity increases projected <= real holds, and spot checks
     *  put latency re-weightings within a few percent. */
    OptimisticBound,
    /** A capacity DECREASE (suEntries / issueWidth below baseline):
     *  dynamic edges whose rewired source is not topologically
     *  earlier are skipped, so the number is only a weak lower
     *  bound and can be far below reality. */
    PessimisticBound,
};

/** Stable kebab-case name ("exact" / "optimistic-bound" /
 *  "pessimistic-bound") for CLI output and JSON. */
const char *confidenceName(Confidence confidence);

/** Trust class @p what_if gets against a recording taken on
 *  @p config — the rule relax() stamps onto every RelaxResult. */
Confidence classifyWhatIf(const WhatIf &what_if,
                          const MachineConfig &config);

// --------------------------------------------------------------------
// Graph
// --------------------------------------------------------------------

/** Node kinds (stage events). */
enum class DdgNodeKind : std::uint8_t
{
    Start,    //!< virtual source, time 0
    Fetch,    //!< block entered the fetch latch
    Dispatch, //!< block entered the scheduling unit
    Issue,    //!< instruction left for its functional unit
    Complete, //!< result wrote back
    Commit,   //!< block retired
    End,      //!< virtual sink, time == measured cycles
};

/** Dependence/resource edge classes (stats + JSON keys). */
enum class EdgeClass : std::uint8_t
{
    Source,          //!< Start -> first event of a chain
    FetchChain,      //!< same-thread fetch-rotation spacing
    FetchLatch,      //!< predecessor's dispatch freed the latch
    BranchRecovery,  //!< refetch after a resolved mispredict
    FetchStall,      //!< residual: lost rotations, parked fetch
    DispatchPipe,    //!< fetch -> dispatch unit latency
    SuCapacity,      //!< commit of the displacing block (SU full)
    Scoreboard,      //!< residual: 1-bit scoreboard WAW wait
    DispatchStall,   //!< residual on dispatch, no recorded cause
    IssuePipe,       //!< dispatch -> earliest issue
    Raw,             //!< register read-after-write
    MemOrder,        //!< load after older same-thread store issue
    IssueBandwidth,  //!< issue-width serialization
    FuBusy,          //!< residual: no free functional unit
    StoreBufferFull, //!< residual: store-buffer back-pressure
    CachePort,       //!< residual: D-cache port rejection
    IssueStall,      //!< residual on issue, no recorded cause
    Execute,         //!< FU latency (hit / non-memory)
    CacheMiss,       //!< FU latency + recorded miss cycles
    Writeback,       //!< residual: writeback-port contention
    CommitComplete,  //!< last writeback -> block commit
    CommitQueue,     //!< one block commits per cycle
    CommitBlocked,   //!< residual: flexible-commit window wait
    DrainTail,       //!< last commit -> machine fully drained
};

/** Number of EdgeClass values (breakdown table width). */
inline constexpr unsigned kNumEdgeClasses = 24;

/** Stable camelCase name of @p cls (stats / JSON key). */
const char *edgeClassName(EdgeClass cls);

/** Result of one relaxation. */
struct RelaxResult
{
    /** Longest-path length == projected run cycles. Equals the
     *  measured cycle count exactly under baseline parameters. */
    Cycle cycles = 0;
    /** Critical-path cycles by edge class; sums to `cycles`. */
    std::array<Cycle, kNumEdgeClasses> breakdown{};
    /** Critical-path edge count by class. */
    std::array<std::uint64_t, kNumEdgeClasses> edgeCounts{};
    /** Trust class of this projection (see Confidence). */
    Confidence confidence = Confidence::Exact;
    /** Dynamic capacity constraints skipped because a capacity
     *  decrease rewired them to a non-earlier source — the evidence
     *  behind a PessimisticBound tag. */
    std::uint64_t skippedCapacityEdges = 0;
};

/**
 * The built graph. Nodes are stored in the fixed topological order
 * (observed time, stage rank, age); edges in a CSR indexed by
 * destination. SU-capacity and issue-bandwidth edges are not stored:
 * they are recomputed from the capacity parameters during every
 * relaxation so a WhatIf can rewire them.
 */
class DdgGraph
{
  public:
    struct Node
    {
        DdgNodeKind kind = DdgNodeKind::Start;
        /** Block index (Fetch/Dispatch/Commit) or instruction index
         *  (Issue/Complete) in the trace. */
        std::uint32_t owner = 0;
        /** Observed event time in the baseline run. */
        Cycle observed = 0;
    };

    struct Edge
    {
        std::uint32_t src = 0; //!< topological index of the source
        EdgeClass cls = EdgeClass::Source;
        FuClass fuClass = FuClass::IntAlu; //!< Execute/CacheMiss/Writeback
        /** Fixed weight, or the residual part for Writeback edges. */
        std::uint32_t weight = 0;
        /** Recorded miss cycles (Execute/CacheMiss/Writeback). */
        std::uint32_t missExtra = 0;
    };

    /**
     * Build the graph from @p trace recorded on @p config.
     * @p measured_cycles is the run's cycle count (Processor::cycle()
     * at the end); the End node sits there. Asserts edge soundness:
     * every edge must satisfy t(src) + w <= t(dst) against the
     * observed times.
     */
    DdgGraph(const DdgTrace &trace, const MachineConfig &config,
             Cycle measured_cycles);

    /** Project the run under @p what_if (pass a default WhatIf for
     *  the baseline, which reproduces the measured cycles). */
    RelaxResult relax(const WhatIf &what_if) const;

    /** Trust class @p what_if would get against this recording's
     *  baseline config (same rule relax() applies). */
    Confidence classify(const WhatIf &what_if) const;

    /**
     * Baseline self-check: relax with baseline parameters and
     * compare EVERY node's computed time against its observed time.
     * @return empty string if exact, else a description of the first
     * mismatching node (test/CI diagnostic).
     */
    std::string verifyExact() const;

    /** Per-class slack histograms of the stored (non-capacity)
     *  edges at baseline: slack = t(dst) - t(src) - w. */
    void slackHistograms(
        std::array<Distribution, kNumEdgeClasses> &out) const;

    Cycle measuredCycles() const { return measured_; }
    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t edgeCount() const { return edges_.size(); }
    const MachineConfig &config() const { return cfg_; }
    const std::vector<Node> &nodes() const { return nodes_; }

  private:
    struct BestEdge
    {
        std::uint32_t src = 0;
        EdgeClass cls = EdgeClass::Source;
        Cycle weight = 0;
        bool fromStart = true;
    };

    /** Weight of @p edge under @p what_if-resolved parameters. */
    Cycle edgeWeight(const Edge &edge, const unsigned *fu_latency,
                     bool perfect_dcache, bool bypassing) const;

    /** Shared body of relax()/verifyExact(): fills @p time (and
     *  optionally @p best) for every node; counts dynamic capacity
     *  constraints skipped by a capacity decrease into @p skipped. */
    void relaxInto(const WhatIf &what_if, std::vector<Cycle> &time,
                   std::vector<BestEdge> *best,
                   std::uint64_t *skipped = nullptr) const;

    MachineConfig cfg_;
    Cycle measured_ = 0;

    std::vector<Node> nodes_;           //!< topological order
    std::vector<std::uint32_t> edgeStart_; //!< CSR offsets by dst
    std::vector<Edge> edges_;

    // Rewireable capacity/bandwidth support: baseline orderings.
    /** commit rank -> topo index of that block's Commit node. */
    std::vector<std::uint32_t> commitOrder_;
    /** dispatch rank of each block (by Dispatch-node owner). */
    std::vector<std::uint32_t> dispatchRankOfBlock_;
    /** issue rank -> topo index of that instruction's Issue node. */
    std::vector<std::uint32_t> issueOrder_;
    /** issue rank of each instruction. */
    std::vector<std::uint32_t> issueRankOfInst_;
};

} // namespace sdsp

#endif // SDSP_CRITPATH_DDG_HH

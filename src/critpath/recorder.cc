#include "critpath/ddg.hh"

#include "isa/instruction.hh"

namespace sdsp
{

void
DdgRecorder::emit(const TraceEvent &event)
{
    switch (event.kind) {
      case TraceEventKind::CommitInst: {
        DdgInst inst;
        inst.seq = event.seq;
        inst.tid = event.tid;
        inst.pc = event.pc;
        inst.fetchedAt = event.args[0];
        inst.dispatchedAt = event.args[1];
        inst.issuedAt = event.args[2];
        inst.completedAt = event.args[3];
        inst.committedAt = event.cycle;
        inst.readyAt = event.readyAt;
        inst.wakeupSeq = event.wakeupSeq;
        inst.waitSeq = event.waitSeq;
        inst.missExtra = event.missExtra;
        inst.issueBlockCause = event.issueBlockCause;
        inst.issueBlockCycle = event.issueBlockCycle;
        inst.dispatchWaitCause = event.dispatchWaitCause;
        inst.mispredicted = event.mispredicted;
        Instruction decoded = Instruction::decode(event.word);
        inst.isLoad = decoded.isLoad();
        inst.isStore = decoded.isStore();
        inst.fuClass = decoded.info().fuClass;
        inst.block =
            static_cast<std::uint32_t>(trace_.blocks.size());
        trace_.insts.push_back(inst);
        break;
      }
      case TraceEventKind::CommitBlock: {
        auto first = pendingFirst_;
        auto end = static_cast<std::uint32_t>(trace_.insts.size());
        pendingFirst_ = end;
        if (end == first)
            break; // fully squashed block: no committed work
        DdgBlock block;
        block.tid = event.tid;
        block.blockSeq = event.seq;
        block.committedAt = event.cycle;
        const DdgInst &head = trace_.insts[first];
        block.fetchedAt = head.fetchedAt;
        block.dispatchedAt = head.dispatchedAt;
        block.dispatchWaitCause = head.dispatchWaitCause;
        block.firstInst = first;
        block.instCount = end - first;
        trace_.blocks.push_back(block);
        break;
      }
      default:
        break;
    }
}

} // namespace sdsp

/**
 * @file
 * Data-cache timing model.
 *
 * Models the cache of the paper (section 5.3): a uniform (shared, not
 * partitioned) cache, either 2-way set-associative with LRU or
 * direct-mapped, 8 KB with 32-byte lines by default. The cache is
 * non-blocking for exactly one outstanding miss: it can service one
 * line refill while continuing to supply data from other lines; a
 * *second* miss while a refill is outstanding renders the cache unable
 * to service any request until both refills complete, exactly as the
 * paper describes.
 *
 * The model is timing-only: data values live in MainMemory and the
 * cache tracks tags, LRU state and refill timing.
 */

#ifndef SDSP_MEMORY_CACHE_HH
#define SDSP_MEMORY_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats_registry.hh"
#include "common/types.hh"

namespace sdsp
{

/** Static cache geometry and timing parameters. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint32_t sizeBytes = 8192;
    /** Line size in bytes. */
    std::uint32_t lineBytes = 32;
    /** Associativity; 1 selects the paper's direct-mapped variant. */
    std::uint32_t ways = 2;
    /** Cycles to refill a line from memory. */
    std::uint32_t missPenalty = 10;
    /** Accesses (loads + store drains) the cache accepts per cycle. */
    std::uint32_t ports = 1;
    /**
     * Number of per-thread partitions; 1 (the paper's choice) shares
     * the whole cache uniformly. With N partitions, the sets are
     * split equally and thread t may only use its own slice — the
     * design alternative the paper rejects in section 5.3 because
     * "the space available to any one thread is small". When the set
     * count does not divide evenly, the few leftover sets are unused
     * (mirroring the register-file partitioning).
     */
    std::uint32_t partitions = 1;
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** First cycle at which the data is available / the write done. */
    Cycle readyCycle = 0;
};

/**
 * Set-associative / direct-mapped LRU cache with single-outstanding-
 * miss non-blocking behaviour.
 */
class DataCache
{
  public:
    explicit DataCache(const CacheConfig &config);

    /**
     * Must be called once at the start of every simulated cycle;
     * resets the per-cycle port budget.
     */
    void beginCycle(Cycle now);

    /**
     * Can the cache accept an access this cycle? False when the port
     * budget is spent or the cache is blocked on a double miss.
     */
    bool canAccept(Cycle now) const;

    /**
     * Perform an access (load probe or store drain). The caller must
     * have checked canAccept().
     *
     * @param addr     Byte address (any alignment within the line).
     * @param now      Current cycle.
     * @param is_write True for a store drain.
     * @param tid      Accessing thread (selects the partition when
     *                 the cache is partitioned; ignored otherwise).
     * @return Hit flag and the cycle the data is ready.
     */
    CacheAccessResult access(Addr addr, Cycle now, bool is_write,
                             ThreadId tid = 0);

    /** Invalidate all lines and clear miss state (not statistics). */
    void reset();

    /** Total accesses so far. */
    std::uint64_t accesses() const { return statAccesses; }
    /** Hits so far. */
    std::uint64_t hits() const { return statHits; }
    /** Misses so far. */
    std::uint64_t misses() const { return statMisses; }
    /** Hit rate in [0,1]; 1.0 when there were no accesses. */
    double hitRate() const;
    /** Accesses rejected because the cache was blocked or port-bound. */
    std::uint64_t rejections() const { return statRejections; }
    /** Note one rejected access (kept by the caller when canAccept
     *  fails). */
    void noteRejection() { ++statRejections; }

    /** Report statistics under @p prefix. */
    void reportStats(StatsRegistry &registry,
                     const std::string &prefix) const;

    /** Geometry in use. */
    const CacheConfig &config() const { return cfg; }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        /** Timestamp of last touch, for LRU. */
        Cycle lastUse = 0;
        /** Cycle at which an in-flight refill of this line lands. */
        Cycle fillDone = 0;
    };

    std::uint64_t lineIndex(Addr addr) const;
    std::uint64_t setIndex(Addr addr, ThreadId tid) const;
    std::uint64_t tagOf(Addr addr) const;

    CacheConfig cfg;
    std::uint32_t numSets;
    /** Sets available to each partition (== numSets when shared). */
    std::uint32_t setsPerPartition;
    std::vector<Line> lines; //!< numSets * ways, set-major

    /** Cycle the single outstanding refill completes (0 = none). */
    Cycle refillBusyUntil = 0;
    /** While > now, a double miss has blocked all service. */
    Cycle blockedUntil = 0;

    Cycle currentCycle = 0;
    std::uint32_t portsUsedThisCycle = 0;

    std::uint64_t statAccesses = 0;
    std::uint64_t statHits = 0;
    std::uint64_t statMisses = 0;
    std::uint64_t statRejections = 0;
    std::uint64_t statDoubleMissBlocks = 0;
};

} // namespace sdsp

#endif // SDSP_MEMORY_CACHE_HH

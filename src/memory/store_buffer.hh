/**
 * @file
 * The store buffer between the scheduling unit and the data cache.
 *
 * The paper places an 8-entry store buffer between the cache and the
 * SU. A store executes by depositing its address and value here; the
 * entry is released to the cache only after the store's SU entry is
 * shifted out at result commit ("an instruction stays in the store
 * buffer until its entry in the SU is shifted out"), which is the
 * restricted load/store policy the paper blames for the occasional
 * slowdown at large SU depths.
 *
 * Forwarding: a later load of the same thread that matches a buffered
 * store's address receives the value directly. Loads never forward
 * across threads — cross-thread communication becomes visible only
 * when the store drains to memory, which is what makes spin-flag
 * synchronization safe against squashed speculative stores.
 */

#ifndef SDSP_MEMORY_STORE_BUFFER_HH
#define SDSP_MEMORY_STORE_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats_registry.hh"
#include "common/types.hh"
#include "memory/cache.hh"
#include "memory/main_memory.hh"

namespace sdsp
{

/** One pending store. */
struct StoreBufferEntry
{
    Tag seq = 0;          //!< SU sequence number of the store
    ThreadId tid = 0;
    Addr addr = 0;
    RegVal value = 0;
    bool committed = false;
};

/** FIFO store buffer with same-thread forwarding. */
class StoreBuffer
{
  public:
    /** @param capacity Maximum simultaneous entries (paper: 8). */
    explicit StoreBuffer(unsigned capacity);

    /** Is there room for another store? */
    bool full() const { return size() >= cap; }

    /** Current occupancy. */
    std::size_t size() const { return entries.size() - head; }

    /** Configured capacity. */
    std::size_t capacity() const { return cap; }

    /**
     * Deposit an executed store. Entries arrive in issue order but the
     * buffer keeps them sorted by sequence number so that drains
     * retire stores in (global) program order.
     */
    void insert(Tag seq, ThreadId tid, Addr addr, RegVal value);

    /**
     * Mark all entries of @p tid with seq <= @p upto as committed
     * (their SU block has been shifted out).
     */
    void commitUpTo(ThreadId tid, Tag upto);

    /**
     * Release committed entries at the head of the buffer to the
     * cache/memory, as many as the cache will accept this cycle.
     *
     * @return Number of stores drained.
     */
    unsigned drain(DataCache &cache, MainMemory &memory, Cycle now);

    /**
     * Look for a forwardable value for a load.
     *
     * @param tid      Loading thread.
     * @param addr     Load address.
     * @param load_seq The load's sequence number; only older stores
     *                 (seq < load_seq) are considered.
     * @return The youngest matching same-thread store value, if any.
     */
    std::optional<RegVal> forward(ThreadId tid, Addr addr,
                                  Tag load_seq) const;

    /**
     * Remove squashed (necessarily uncommitted) stores of @p tid with
     * seq > @p after.
     */
    void squash(ThreadId tid, Tag after);

    /** Any uncommitted or undrained stores left? */
    bool empty() const { return size() == 0; }

    /** Copy of the live entries, oldest first (for tests). */
    std::vector<StoreBufferEntry> contents() const
    {
        return {entries.begin() +
                    static_cast<std::ptrdiff_t>(head),
                entries.end()};
    }

    /** Report statistics under @p prefix. */
    void reportStats(StatsRegistry &registry,
                     const std::string &prefix) const;

    /** Note one cycle in which a store could not issue: buffer full. */
    void noteFullStall() { ++statFullStalls; }

  private:
    /** Drop the drained prefix [0, head) when it gets large. */
    void compact();

    unsigned cap;
    /**
     * Live entries are [head, entries.size()), sorted by seq, oldest
     * first. drain() advances head instead of erasing the front —
     * erase(begin()) made a full drain of n stores O(n^2), which
     * dominated deep-store-buffer sweeps. The drained prefix is
     * reclaimed lazily by compact(), so the vector never holds more
     * than 2*cap entries.
     */
    std::vector<StoreBufferEntry> entries;
    std::size_t head = 0;
    /**
     * Live entries per thread. Lets forward() — called for every load
     * issue — return immediately for threads with nothing buffered,
     * which is the common case.
     */
    std::vector<std::uint32_t> livePerTid;

    std::uint64_t statInserts = 0;
    std::uint64_t statDrains = 0;
    mutable std::uint64_t statForwards = 0;
    std::uint64_t statFullStalls = 0;
    std::uint64_t statSquashed = 0;
};

} // namespace sdsp

#endif // SDSP_MEMORY_STORE_BUFFER_HH

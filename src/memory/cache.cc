#include "memory/cache.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace sdsp
{

DataCache::DataCache(const CacheConfig &config) : cfg(config)
{
    sdsp_assert(isPowerOf2(cfg.sizeBytes), "cache size must be 2^n");
    sdsp_assert(isPowerOf2(cfg.lineBytes), "line size must be 2^n");
    sdsp_assert(cfg.ways >= 1, "cache needs at least one way");
    sdsp_assert(cfg.sizeBytes % (cfg.lineBytes * cfg.ways) == 0,
                "cache size not divisible by way size");
    sdsp_assert(cfg.ports >= 1, "cache needs at least one port");
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.ways);
    sdsp_assert(isPowerOf2(numSets), "set count must be 2^n");
    sdsp_assert(cfg.partitions >= 1, "need at least one partition");
    setsPerPartition = numSets / cfg.partitions;
    sdsp_assert(setsPerPartition >= 1,
                "more partitions than cache sets");
    lines.resize(static_cast<std::size_t>(numSets) * cfg.ways);
}

std::uint64_t
DataCache::lineIndex(Addr addr) const
{
    return addr / cfg.lineBytes;
}

std::uint64_t
DataCache::setIndex(Addr addr, ThreadId tid) const
{
    if (cfg.partitions == 1)
        return lineIndex(addr) & (numSets - 1);
    // Partitioned: thread tid owns sets
    // [tid*setsPerPartition, (tid+1)*setsPerPartition).
    std::uint64_t partition = tid % cfg.partitions;
    return partition * setsPerPartition +
           lineIndex(addr) % setsPerPartition;
}

std::uint64_t
DataCache::tagOf(Addr addr) const
{
    // With partitioning the set index is not a pure address slice, so
    // keep the full line index as the tag; correctness over a few
    // redundant tag bits.
    if (cfg.partitions == 1)
        return lineIndex(addr) >> log2i(numSets);
    return lineIndex(addr);
}

void
DataCache::beginCycle(Cycle now)
{
    currentCycle = now;
    portsUsedThisCycle = 0;
}

bool
DataCache::canAccept(Cycle now) const
{
    if (now < blockedUntil)
        return false;
    return portsUsedThisCycle < cfg.ports;
}

CacheAccessResult
DataCache::access(Addr addr, Cycle now, bool is_write, ThreadId tid)
{
    sdsp_assert(now == currentCycle, "access outside beginCycle window");
    sdsp_assert(canAccept(now), "access without canAccept check");
    (void)is_write; // Timing is identical for reads and write drains.

    ++portsUsedThisCycle;
    ++statAccesses;

    std::uint64_t set = setIndex(addr, tid);
    std::uint64_t tag = tagOf(addr);
    Line *set_base = &lines[set * cfg.ways];

    // Probe all ways.
    for (std::uint32_t way = 0; way < cfg.ways; ++way) {
        Line &line = set_base[way];
        if (line.valid && line.tag == tag) {
            ++statHits;
            line.lastUse = now;
            // A hit on a line still being refilled is serviced when
            // the refill lands.
            Cycle ready = std::max(now, line.fillDone);
            return {true, ready};
        }
    }

    // Miss: choose the LRU victim.
    ++statMisses;
    Line *victim = set_base;
    for (std::uint32_t way = 1; way < cfg.ways; ++way) {
        Line &line = set_base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse && victim->valid)
            victim = &line;
    }

    Cycle ready;
    if (refillBusyUntil <= now) {
        // First outstanding miss: refill proceeds in the background
        // while the cache keeps servicing other lines.
        ready = now + cfg.missPenalty;
        refillBusyUntil = ready;
    } else {
        // Second miss with a refill already outstanding: the cache
        // stops servicing requests until both lines are refilled
        // (paper section 5.3).
        ++statDoubleMissBlocks;
        ready = refillBusyUntil + cfg.missPenalty;
        refillBusyUntil = ready;
        blockedUntil = ready;
    }

    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = now;
    victim->fillDone = ready;
    return {false, ready};
}

void
DataCache::reset()
{
    for (auto &line : lines)
        line = Line{};
    refillBusyUntil = 0;
    blockedUntil = 0;
    portsUsedThisCycle = 0;
}

double
DataCache::hitRate() const
{
    if (statAccesses == 0)
        return 1.0;
    return static_cast<double>(statHits) /
           static_cast<double>(statAccesses);
}

void
DataCache::reportStats(StatsRegistry &registry,
                       const std::string &prefix) const
{
    registry.add(prefix, "accesses", static_cast<double>(statAccesses));
    registry.add(prefix, "hits", static_cast<double>(statHits));
    registry.add(prefix, "misses", static_cast<double>(statMisses));
    registry.add(prefix, "hitRate", hitRate());
    registry.add(prefix, "rejections",
                 static_cast<double>(statRejections));
    registry.add(prefix, "doubleMissBlocks",
                 static_cast<double>(statDoubleMissBlocks));
}

} // namespace sdsp

/**
 * @file
 * Flat byte-addressable data memory.
 *
 * The memory holds architectural data values; the cache (cache.hh) is
 * a pure timing model layered in front of it, which is the standard
 * functional/timing split for this style of simulator.
 */

#ifndef SDSP_MEMORY_MAIN_MEMORY_HH
#define SDSP_MEMORY_MAIN_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace sdsp
{

/** Byte-addressable main memory with 64-bit word accessors. */
class MainMemory
{
  public:
    /** Create a memory of @p size zeroed bytes. */
    explicit MainMemory(std::uint32_t size = 0) : bytes(size, 0) {}

    /** Size in bytes. */
    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(bytes.size());
    }

    /** Load a program's data section at address 0 and size to fit. */
    void
    loadProgram(const Program &program)
    {
        bytes.assign(program.memorySize, 0);
        std::copy(program.data.begin(), program.data.end(),
                  bytes.begin());
    }

    /** Aligned 64-bit read. */
    RegVal read(Addr addr) const { return readWord(bytes, addr); }

    /** Aligned 64-bit write. */
    void write(Addr addr, RegVal value) { writeWord(bytes, addr, value); }

    /** Raw byte image (for verification). */
    const std::vector<std::uint8_t> &image() const { return bytes; }
    std::vector<std::uint8_t> &image() { return bytes; }

  private:
    std::vector<std::uint8_t> bytes;
};

} // namespace sdsp

#endif // SDSP_MEMORY_MAIN_MEMORY_HH

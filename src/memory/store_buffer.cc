#include "memory/store_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sdsp
{

StoreBuffer::StoreBuffer(unsigned capacity) : cap(capacity)
{
    sdsp_assert(capacity >= 1, "store buffer needs capacity");
    entries.reserve(capacity);
}

void
StoreBuffer::insert(Tag seq, ThreadId tid, Addr addr, RegVal value)
{
    sdsp_assert(!full(), "store buffer overflow");
    StoreBufferEntry entry{seq, tid, addr, value, false};
    // Stores can execute out of order; keep the buffer ordered by
    // sequence number so head-drains retire in program order.
    auto pos = std::upper_bound(
        entries.begin(), entries.end(), seq,
        [](Tag s, const StoreBufferEntry &e) { return s < e.seq; });
    entries.insert(pos, entry);
    ++statInserts;
}

void
StoreBuffer::commitUpTo(ThreadId tid, Tag upto)
{
    for (auto &entry : entries) {
        if (entry.tid == tid && entry.seq <= upto)
            entry.committed = true;
    }
}

unsigned
StoreBuffer::drain(DataCache &cache, MainMemory &memory, Cycle now)
{
    unsigned drained = 0;
    while (!entries.empty() && entries.front().committed) {
        if (!cache.canAccept(now)) {
            cache.noteRejection();
            break;
        }
        const StoreBufferEntry &head = entries.front();
        cache.access(head.addr, now, /*is_write=*/true, head.tid);
        memory.write(head.addr, head.value);
        entries.erase(entries.begin());
        ++drained;
        ++statDrains;
    }
    return drained;
}

std::optional<RegVal>
StoreBuffer::forward(ThreadId tid, Addr addr, Tag load_seq) const
{
    // Entries are sorted oldest-first; scan backwards for the
    // youngest older matching store of the same thread.
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        if (it->seq >= load_seq)
            continue;
        if (it->tid == tid && it->addr == addr) {
            ++statForwards;
            return it->value;
        }
    }
    return std::nullopt;
}

void
StoreBuffer::squash(ThreadId tid, Tag after)
{
    auto end = std::remove_if(
        entries.begin(), entries.end(),
        [&](const StoreBufferEntry &e) {
            if (e.tid == tid && e.seq > after) {
                sdsp_assert(!e.committed,
                            "squashing a committed store");
                return true;
            }
            return false;
        });
    statSquashed += static_cast<std::uint64_t>(
        std::distance(end, entries.end()));
    entries.erase(end, entries.end());
}

void
StoreBuffer::reportStats(StatsRegistry &registry,
                         const std::string &prefix) const
{
    registry.add(prefix, "inserts", static_cast<double>(statInserts));
    registry.add(prefix, "drains", static_cast<double>(statDrains));
    registry.add(prefix, "forwards", static_cast<double>(statForwards));
    registry.add(prefix, "fullStalls",
                 static_cast<double>(statFullStalls));
    registry.add(prefix, "squashed", static_cast<double>(statSquashed));
}

} // namespace sdsp

#include "memory/store_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sdsp
{

StoreBuffer::StoreBuffer(unsigned capacity) : cap(capacity)
{
    sdsp_assert(capacity >= 1, "store buffer needs capacity");
    entries.reserve(capacity);
    livePerTid.resize(16, 0);
}

void
StoreBuffer::compact()
{
    if (head >= cap) {
        entries.erase(entries.begin(),
                      entries.begin() +
                          static_cast<std::ptrdiff_t>(head));
        head = 0;
    }
}

void
StoreBuffer::insert(Tag seq, ThreadId tid, Addr addr, RegVal value)
{
    sdsp_assert(!full(), "store buffer overflow");
    compact();
    StoreBufferEntry entry{seq, tid, addr, value, false};
    // Stores can execute out of order; keep the buffer ordered by
    // sequence number so head-drains retire in program order.
    auto pos = std::upper_bound(
        entries.begin() + static_cast<std::ptrdiff_t>(head),
        entries.end(), seq,
        [](Tag s, const StoreBufferEntry &e) { return s < e.seq; });
    entries.insert(pos, entry);
    if (tid >= livePerTid.size())
        livePerTid.resize(tid + 1, 0);
    ++livePerTid[tid];
    ++statInserts;
}

void
StoreBuffer::commitUpTo(ThreadId tid, Tag upto)
{
    for (std::size_t i = head; i < entries.size(); ++i) {
        if (entries[i].tid == tid && entries[i].seq <= upto)
            entries[i].committed = true;
    }
}

unsigned
StoreBuffer::drain(DataCache &cache, MainMemory &memory, Cycle now)
{
    unsigned drained = 0;
    while (head < entries.size() && entries[head].committed) {
        if (!cache.canAccept(now)) {
            cache.noteRejection();
            break;
        }
        const StoreBufferEntry &front = entries[head];
        cache.access(front.addr, now, /*is_write=*/true, front.tid);
        memory.write(front.addr, front.value);
        --livePerTid[front.tid];
        ++head;
        ++drained;
        ++statDrains;
    }
    if (head == entries.size()) {
        entries.clear();
        head = 0;
    }
    return drained;
}

std::optional<RegVal>
StoreBuffer::forward(ThreadId tid, Addr addr, Tag load_seq) const
{
    if (tid >= livePerTid.size() || livePerTid[tid] == 0)
        return std::nullopt;
    // Entries are sorted oldest-first; scan backwards for the
    // youngest older matching store of the same thread.
    for (std::size_t i = entries.size(); i > head; --i) {
        const StoreBufferEntry &entry = entries[i - 1];
        if (entry.seq >= load_seq)
            continue;
        if (entry.tid == tid && entry.addr == addr) {
            ++statForwards;
            return entry.value;
        }
    }
    return std::nullopt;
}

void
StoreBuffer::squash(ThreadId tid, Tag after)
{
    auto end = std::remove_if(
        entries.begin() + static_cast<std::ptrdiff_t>(head),
        entries.end(),
        [&](const StoreBufferEntry &e) {
            if (e.tid == tid && e.seq > after) {
                sdsp_assert(!e.committed,
                            "squashing a committed store");
                --livePerTid[tid];
                return true;
            }
            return false;
        });
    statSquashed += static_cast<std::uint64_t>(
        std::distance(end, entries.end()));
    entries.erase(end, entries.end());
}

void
StoreBuffer::reportStats(StatsRegistry &registry,
                         const std::string &prefix) const
{
    registry.add(prefix, "inserts", static_cast<double>(statInserts));
    registry.add(prefix, "drains", static_cast<double>(statDrains));
    registry.add(prefix, "forwards", static_cast<double>(statForwards));
    registry.add(prefix, "fullStalls",
                 static_cast<double>(statFullStalls));
    registry.add(prefix, "squashed", static_cast<double>(statSquashed));
}

} // namespace sdsp

#include "trace_frontend/trace_format.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/json.hh"
#include "common/json_reader.hh"
#include "common/logging.hh"
#include "isa/opcode.hh"

namespace sdsp
{

namespace
{

/** Words per "code" record line. */
constexpr std::size_t kCodeChunk = 32;
/** Bytes per "data" record line. */
constexpr std::size_t kDataChunk = 64;

} // namespace

const char *
traceErrorKindName(TraceErrorKind kind)
{
    switch (kind) {
      case TraceErrorKind::IoError:
        return "io-error";
      case TraceErrorKind::EmptyTrace:
        return "empty-trace";
      case TraceErrorKind::TornFinalLine:
        return "torn-final-line";
      case TraceErrorKind::BadJson:
        return "bad-json";
      case TraceErrorKind::MissingField:
        return "missing-field";
      case TraceErrorKind::BadValue:
        return "bad-value";
      case TraceErrorKind::MissingHeader:
        return "missing-header";
      case TraceErrorKind::BadVersion:
        return "bad-version";
      case TraceErrorKind::UnknownOpcode:
        return "unknown-opcode";
      case TraceErrorKind::BadThreadId:
        return "bad-thread-id";
      case TraceErrorKind::BadPc:
        return "bad-pc";
      case TraceErrorKind::MissingEnd:
        return "missing-end";
    }
    return "unknown";
}

std::string
TraceError::toString() const
{
    std::string text = traceErrorKindName(kind);
    if (line)
        text += format(" at line %u", line);
    if (!message.empty())
        text += ": " + message;
    return text;
}

Program
RecordedTrace::toProgram() const
{
    Program program;
    program.code = code;
    program.data = data;
    program.memorySize = memorySize;
    program.entry = entry;
    return program;
}

std::uint64_t
RecordedTrace::totalInsts() const
{
    std::uint64_t total = 0;
    for (const auto &stream : perThread)
        total += stream.size();
    return total;
}

// --------------------------------------------------------------------
// Recording
// --------------------------------------------------------------------

TraceRecorder::TraceRecorder(std::ostream &out, const Program &program,
                             const MachineConfig &config,
                             const std::string &source_name)
    : out_(out),
      threads_(config.numThreads),
      perThreadCommitted_(config.numThreads, 0)
{
    {
        JsonWriter w;
        w.beginObject()
            .field("kind", "header")
            .field("version", kTraceFormatVersion)
            .field("threads", config.numThreads)
            .field("entry", std::uint64_t{program.entry})
            .field("memory", std::uint64_t{program.memorySize})
            .field("source", source_name)
            .field("machine", config.toString())
            .endObject();
        out_ << w.str() << "\n";
    }

    for (std::size_t base = 0; base < program.code.size();
         base += kCodeChunk) {
        std::size_t end =
            std::min(base + kCodeChunk, program.code.size());
        JsonWriter w;
        w.beginObject()
            .field("kind", "code")
            .field("base", static_cast<std::uint64_t>(base))
            .key("words")
            .beginArray();
        for (std::size_t i = base; i < end; ++i)
            w.value(std::uint64_t{program.code[i]});
        w.endArray().endObject();
        out_ << w.str() << "\n";
    }

    for (std::size_t base = 0; base < program.data.size();
         base += kDataChunk) {
        std::size_t end =
            std::min(base + kDataChunk, program.data.size());
        bool all_zero = true;
        for (std::size_t i = base; i < end && all_zero; ++i)
            all_zero = program.data[i] == 0;
        if (all_zero)
            continue;
        JsonWriter w;
        w.beginObject()
            .field("kind", "data")
            .field("base", static_cast<std::uint64_t>(base))
            .key("bytes")
            .beginArray();
        for (std::size_t i = base; i < end; ++i)
            w.value(unsigned{program.data[i]});
        w.endArray().endObject();
        out_ << w.str() << "\n";
    }
}

void
TraceRecorder::emit(const TraceEvent &event)
{
    if (event.kind != TraceEventKind::CommitInst)
        return;

    JsonWriter w;
    w.beginObject()
        .field("kind", "inst")
        .field("tid", unsigned{event.tid})
        .field("pc", std::uint64_t{event.pc})
        .field("word", std::uint64_t{event.word});
    if (event.hasMemAddr)
        w.field("addr", event.memAddr);
    // The word came from Instruction::encode, so decode cannot fail.
    if (Instruction::decode(event.word).isCondBranch())
        w.field("taken", event.taken);
    w.endObject();
    out_ << w.str() << "\n";

    if (event.tid < perThreadCommitted_.size())
        ++perThreadCommitted_[event.tid];
    ++committed_;
    lastCycle_ = std::max(lastCycle_, event.cycle);
}

void
TraceRecorder::noteResult(const SimResult &result)
{
    haveResult_ = true;
    result_ = result;
}

void
TraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;

    JsonWriter w;
    w.beginObject()
        .field("kind", "end")
        .field("cycles",
               haveResult_ ? std::uint64_t{result_.cycles} : lastCycle_)
        .field("committed", haveResult_
                                ? result_.committedInstructions
                                : committed_)
        .key("threads")
        .beginArray();
    for (std::uint64_t count : perThreadCommitted_)
        w.value(count);
    w.endArray().endObject();
    out_ << w.str() << "\n";
    out_.flush();
}

// --------------------------------------------------------------------
// Reading
// --------------------------------------------------------------------

namespace
{

/** Parser state threaded through the per-record handlers. */
struct ReadState
{
    TraceReadResult result;
    bool sawHeader = false;
    bool sawEnd = false;

    bool
    fail(TraceErrorKind kind, unsigned line, std::string message)
    {
        result.ok = false;
        result.error = {kind, line, std::move(message)};
        return false;
    }
};

/** Fetch an integer field; records MissingField/BadValue on failure. */
bool
uintField(ReadState &state, const JsonValue &record,
          const std::string &key, unsigned line, std::uint64_t max,
          std::uint64_t &out)
{
    const JsonValue *value = record.find(key);
    if (!value) {
        return state.fail(TraceErrorKind::MissingField, line,
                          "record lacks \"" + key + "\"");
    }
    auto parsed = value->toUint64();
    if (!parsed || *parsed > max) {
        return state.fail(TraceErrorKind::BadValue, line,
                          "bad \"" + key + "\": " + value->raw());
    }
    out = *parsed;
    return true;
}

bool
handleHeader(ReadState &state, const JsonValue &record, unsigned line)
{
    RecordedTrace &trace = state.result.trace;

    std::uint64_t version = 0;
    if (!uintField(state, record, "version", line, ~0ull, version))
        return false;
    if (version != kTraceFormatVersion) {
        return state.fail(
            TraceErrorKind::BadVersion, line,
            format("trace version %llu, reader supports %u",
                   static_cast<unsigned long long>(version),
                   kTraceFormatVersion));
    }
    trace.version = static_cast<unsigned>(version);

    std::uint64_t threads = 0;
    if (!uintField(state, record, "threads", line, 128, threads))
        return false;
    if (threads < 1) {
        return state.fail(TraceErrorKind::BadValue, line,
                          "header names zero threads");
    }
    trace.threads = static_cast<unsigned>(threads);
    trace.perThread.assign(trace.threads, {});

    std::uint64_t entry = 0;
    if (!uintField(state, record, "entry", line, ~InstAddr{0}, entry))
        return false;
    trace.entry = static_cast<InstAddr>(entry);

    std::uint64_t memory = 0;
    if (!uintField(state, record, "memory", line,
                   ~std::uint32_t{0}, memory)) {
        return false;
    }
    trace.memorySize = static_cast<std::uint32_t>(memory);

    if (const JsonValue *source = record.find("source")) {
        if (auto text = source->toString())
            trace.source = *text;
    }
    if (const JsonValue *machine = record.find("machine")) {
        if (auto text = machine->toString())
            trace.machine = *text;
    }
    return true;
}

bool
handleCode(ReadState &state, const JsonValue &record, unsigned line)
{
    RecordedTrace &trace = state.result.trace;

    std::uint64_t base = 0;
    if (!uintField(state, record, "base", line, ~0ull, base))
        return false;
    if (base != trace.code.size()) {
        return state.fail(
            TraceErrorKind::BadValue, line,
            format("code record base %llu, expected %zu",
                   static_cast<unsigned long long>(base),
                   trace.code.size()));
    }

    const JsonValue *words = record.find("words");
    if (!words) {
        return state.fail(TraceErrorKind::MissingField, line,
                          "code record lacks \"words\"");
    }
    if (!words->isArray()) {
        return state.fail(TraceErrorKind::BadValue, line,
                          "\"words\" is not an array");
    }
    for (const JsonValue &item : words->items()) {
        auto word = item.toUint64();
        if (!word || *word > ~InstWord{0}) {
            return state.fail(TraceErrorKind::BadValue, line,
                              "bad code word: " + item.raw());
        }
        auto opcode =
            static_cast<std::uint8_t>(*word >> (32 - 8));
        if (!isValidOpcode(opcode)) {
            return state.fail(
                TraceErrorKind::UnknownOpcode, line,
                format("code word 0x%08llx names opcode %u "
                       "(only %u defined)",
                       static_cast<unsigned long long>(*word),
                       unsigned{opcode}, kNumOpcodes));
        }
        trace.code.push_back(static_cast<InstWord>(*word));
    }
    return true;
}

bool
handleData(ReadState &state, const JsonValue &record, unsigned line)
{
    RecordedTrace &trace = state.result.trace;

    std::uint64_t base = 0;
    if (!uintField(state, record, "base", line, ~0ull, base))
        return false;
    if (base < trace.data.size()) {
        return state.fail(TraceErrorKind::BadValue, line,
                          "data record overlaps earlier data");
    }

    const JsonValue *bytes = record.find("bytes");
    if (!bytes) {
        return state.fail(TraceErrorKind::MissingField, line,
                          "data record lacks \"bytes\"");
    }
    if (!bytes->isArray()) {
        return state.fail(TraceErrorKind::BadValue, line,
                          "\"bytes\" is not an array");
    }
    if (base + bytes->items().size() > trace.memorySize) {
        return state.fail(TraceErrorKind::BadValue, line,
                          "data record runs past the memory size");
    }
    trace.data.resize(base, 0); // zero-fill skipped all-zero chunks
    for (const JsonValue &item : bytes->items()) {
        auto byte = item.toUint64();
        if (!byte || *byte > 255) {
            return state.fail(TraceErrorKind::BadValue, line,
                              "bad data byte: " + item.raw());
        }
        trace.data.push_back(static_cast<std::uint8_t>(*byte));
    }
    return true;
}

bool
handleInst(ReadState &state, const JsonValue &record, unsigned line)
{
    RecordedTrace &trace = state.result.trace;
    TraceInst inst;

    std::uint64_t tid = 0;
    if (!uintField(state, record, "tid", line, 255, tid))
        return false;
    if (tid >= trace.threads) {
        return state.fail(
            TraceErrorKind::BadThreadId, line,
            format("inst record names thread %llu but the header "
                   "declared %u threads",
                   static_cast<unsigned long long>(tid),
                   trace.threads));
    }
    inst.tid = static_cast<ThreadId>(tid);

    std::uint64_t pc = 0;
    if (!uintField(state, record, "pc", line, ~InstAddr{0}, pc))
        return false;
    if (pc >= trace.code.size()) {
        return state.fail(
            TraceErrorKind::BadPc, line,
            format("inst record pc %llu outside the %zu-word "
                   "code image",
                   static_cast<unsigned long long>(pc),
                   trace.code.size()));
    }
    inst.pc = static_cast<InstAddr>(pc);

    std::uint64_t word = 0;
    if (!uintField(state, record, "word", line, ~InstWord{0}, word))
        return false;
    auto opcode = static_cast<std::uint8_t>(word >> (32 - 8));
    if (!isValidOpcode(opcode)) {
        return state.fail(
            TraceErrorKind::UnknownOpcode, line,
            format("inst word 0x%08llx names opcode %u "
                   "(only %u defined)",
                   static_cast<unsigned long long>(word),
                   unsigned{opcode}, kNumOpcodes));
    }
    inst.word = static_cast<InstWord>(word);

    if (record.find("addr")) {
        std::uint64_t addr = 0;
        if (!uintField(state, record, "addr", line, ~Addr{0}, addr))
            return false;
        inst.addr = static_cast<Addr>(addr);
        inst.hasAddr = true;
    }
    if (const JsonValue *taken = record.find("taken")) {
        if (!taken->isBool()) {
            return state.fail(TraceErrorKind::BadValue, line,
                              "\"taken\" is not a boolean");
        }
        inst.taken = taken->asBool();
        inst.hasTaken = true;
    }

    trace.perThread[inst.tid].push_back(inst);
    return true;
}

bool
handleEnd(ReadState &state, const JsonValue &record, unsigned line)
{
    RecordedTrace &trace = state.result.trace;

    std::uint64_t cycles = 0;
    if (!uintField(state, record, "cycles", line, ~0ull, cycles))
        return false;
    trace.cycles = cycles;

    std::uint64_t committed = 0;
    if (!uintField(state, record, "committed", line, ~0ull, committed))
        return false;
    trace.committed = committed;
    if (committed != trace.totalInsts()) {
        return state.fail(
            TraceErrorKind::BadValue, line,
            format("end record claims %llu committed instructions "
                   "but the trace carries %llu",
                   static_cast<unsigned long long>(committed),
                   static_cast<unsigned long long>(
                       trace.totalInsts())));
    }

    if (const JsonValue *counts = record.find("threads")) {
        if (!counts->isArray() ||
            counts->items().size() != trace.threads) {
            return state.fail(TraceErrorKind::BadValue, line,
                              "end record \"threads\" does not match "
                              "the header thread count");
        }
        for (unsigned t = 0; t < trace.threads; ++t) {
            auto count = counts->items()[t].toUint64();
            if (!count || *count != trace.perThread[t].size()) {
                return state.fail(
                    TraceErrorKind::BadValue, line,
                    format("end record thread %u count disagrees "
                           "with its %zu-instruction stream",
                           t, trace.perThread[t].size()));
            }
        }
    }

    state.sawEnd = true;
    return true;
}

} // namespace

TraceReadResult
readTrace(std::istream &in)
{
    ReadState state;

    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);

    // Trailing blank lines are tolerated (but blank lines inside the
    // document are not — the recorder never writes them).
    while (!lines.empty() &&
           lines.back().find_first_not_of(" \t\r") ==
               std::string::npos) {
        lines.pop_back();
    }

    if (lines.empty()) {
        state.fail(TraceErrorKind::EmptyTrace, 0,
                   "trace contains no records");
        return state.result;
    }

    for (std::size_t i = 0; i < lines.size(); ++i) {
        auto line_no = static_cast<unsigned>(i + 1);
        bool is_final = i + 1 == lines.size();

        std::string json_error;
        auto record = parseJson(lines[i], &json_error);
        if (!record) {
            // A torn final line is the signature of an interrupted
            // recording; earlier lines failing to parse is corruption.
            state.fail(is_final ? TraceErrorKind::TornFinalLine
                                : TraceErrorKind::BadJson,
                       line_no, json_error);
            return state.result;
        }
        if (!record->isObject()) {
            state.fail(TraceErrorKind::BadJson, line_no,
                       "record is not a JSON object");
            return state.result;
        }

        const JsonValue *kind = record->find("kind");
        if (!kind || !kind->isString()) {
            state.fail(TraceErrorKind::MissingField, line_no,
                       "record lacks a \"kind\" string");
            return state.result;
        }
        const std::string &name = kind->asString();

        if (!state.sawHeader && name != "header") {
            state.fail(TraceErrorKind::MissingHeader, line_no,
                       "first record is \"" + name +
                           "\", not a header");
            return state.result;
        }
        if (state.sawEnd) {
            state.fail(TraceErrorKind::BadValue, line_no,
                       "record after the end record");
            return state.result;
        }

        bool ok;
        if (name == "header") {
            if (state.sawHeader) {
                state.fail(TraceErrorKind::BadValue, line_no,
                           "duplicate header record");
                return state.result;
            }
            ok = handleHeader(state, *record, line_no);
            state.sawHeader = ok;
        } else if (name == "code") {
            ok = handleCode(state, *record, line_no);
        } else if (name == "data") {
            ok = handleData(state, *record, line_no);
        } else if (name == "inst") {
            ok = handleInst(state, *record, line_no);
        } else if (name == "end") {
            ok = handleEnd(state, *record, line_no);
        } else {
            ok = state.fail(TraceErrorKind::BadValue, line_no,
                            "unknown record kind \"" + name + "\"");
        }
        if (!ok)
            return state.result;
    }

    if (!state.sawEnd) {
        state.fail(TraceErrorKind::MissingEnd,
                   static_cast<unsigned>(lines.size()),
                   "trace does not finish with an end record");
        return state.result;
    }

    state.result.ok = true;
    return state.result;
}

TraceReadResult
readTraceFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file) {
        TraceReadResult result;
        result.error = {TraceErrorKind::IoError, 0,
                        "cannot open " + path};
        return result;
    }
    return readTrace(file);
}

} // namespace sdsp

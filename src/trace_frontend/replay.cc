#include "trace_frontend/replay.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/instruction.hh"

namespace sdsp
{

// --------------------------------------------------------------------
// Exact replay
// --------------------------------------------------------------------

ReplayVerifySink::ReplayVerifySink(const RecordedTrace &trace)
    : trace_(trace), cursor_(trace.perThread.size(), 0)
{
}

void
ReplayVerifySink::mismatch(const TraceEvent &event,
                           const std::string &why)
{
    ++mismatches_;
    if (first_.empty()) {
        first_ = format("thread %u, commit #%zu, pc %u: ",
                        unsigned{event.tid},
                        event.tid < cursor_.size()
                            ? cursor_[event.tid]
                            : std::size_t{0},
                        event.pc) +
                 why;
    }
}

void
ReplayVerifySink::emit(const TraceEvent &event)
{
    if (event.kind != TraceEventKind::CommitInst)
        return;

    if (event.tid >= cursor_.size()) {
        mismatch(event, "thread not present in the recording");
        return;
    }
    std::size_t index = cursor_[event.tid]++;
    const auto &stream = trace_.perThread[event.tid];
    if (index >= stream.size()) {
        mismatch(event,
                 format("committed more instructions than the "
                        "recorded %zu",
                        stream.size()));
        return;
    }

    const TraceInst &expected = stream[index];
    if (event.pc != expected.pc) {
        mismatch(event, format("recorded pc %u", expected.pc));
        return;
    }
    if (event.word != expected.word) {
        mismatch(event, format("recorded word 0x%08x, replayed 0x%08x",
                               expected.word, event.word));
        return;
    }
    if (expected.hasAddr &&
        (!event.hasMemAddr || event.memAddr != expected.addr)) {
        mismatch(event,
                 format("recorded address 0x%x, replayed 0x%llx",
                        expected.addr,
                        static_cast<unsigned long long>(
                            event.hasMemAddr ? event.memAddr : 0)));
        return;
    }
    if (expected.hasTaken && event.taken != expected.taken) {
        mismatch(event, expected.taken ? "recorded taken, replayed "
                                         "not taken"
                                       : "recorded not taken, "
                                         "replayed taken");
        return;
    }
}

bool
ReplayVerifySink::complete() const
{
    for (std::size_t tid = 0; tid < cursor_.size(); ++tid) {
        if (cursor_[tid] != trace_.perThread[tid].size())
            return false;
    }
    return true;
}

ExactReplayResult
replayExact(const RecordedTrace &trace, const MachineConfig &config,
            TraceSink *extra)
{
    sdsp_assert(config.numThreads == trace.threads,
                "exact replay needs the recorded thread count (%u), "
                "got %u",
                trace.threads, config.numThreads);

    Program program = trace.toProgram();
    Processor cpu(config, program);

    ReplayVerifySink verify(trace);
    TeeTraceSink tee;
    tee.add(&verify);
    if (extra)
        tee.add(extra);
    cpu.setTraceSink(&tee);

    ExactReplayResult result;
    result.sim = cpu.run();
    tee.finish();

    result.mismatches = verify.mismatches();
    result.firstMismatch = verify.firstMismatch();
    result.verified = verify.ok() && verify.complete();
    if (result.verified && !result.sim.finished) {
        result.verified = false;
        result.firstMismatch = "replay hit the cycle cap";
    }
    if (!verify.complete() && result.firstMismatch.empty()) {
        result.firstMismatch =
            "replay committed fewer instructions than recorded";
    }
    return result;
}

// --------------------------------------------------------------------
// Stream replay (trace cocktails)
// --------------------------------------------------------------------

namespace
{

/** First-use-order register compaction for one flattened stream. */
class RegRemap
{
  public:
    explicit RegRemap(unsigned budget) : budget_(budget) {}

    /** Remapped index of @p reg; false when the budget is exhausted. */
    bool
    map(RegIndex reg, RegIndex &out)
    {
        for (std::size_t i = 0; i < used_.size(); ++i) {
            if (used_[i] == reg) {
                out = static_cast<RegIndex>(i);
                return true;
            }
        }
        if (used_.size() >= budget_)
            return false;
        used_.push_back(reg);
        out = static_cast<RegIndex>(used_.size() - 1);
        return true;
    }

    std::size_t distinct() const { return used_.size(); }

  private:
    unsigned budget_;
    std::vector<RegIndex> used_;
};

} // namespace

bool
buildStreamReplay(const std::vector<StreamSource> &sources,
                  unsigned regs_per_thread,
                  const StreamReplayOptions &options, StreamReplay &out,
                  std::string *error)
{
    auto fail = [&](std::string why) {
        if (error)
            *error = std::move(why);
        return false;
    };

    if (sources.empty())
        return fail("no streams given");
    if (options.blockSize == 0)
        return fail("block size must be positive");

    out = StreamReplay{};
    out.numThreads = static_cast<unsigned>(sources.size());

    std::uint32_t memory_size = 8;
    for (const StreamSource &source : sources) {
        if (!source.trace)
            return fail("null trace in stream source");
        if (source.sourceThread >= source.trace->perThread.size()) {
            return fail(format(
                "stream source names thread %u but its trace has "
                "only %zu",
                unsigned{source.sourceThread},
                source.trace->perThread.size()));
        }
        memory_size =
            std::max(memory_size, source.trace->memorySize);
    }

    Program &program = out.program;
    program.memorySize = memory_size;

    for (std::size_t s = 0; s < sources.size(); ++s) {
        const StreamSource &source = sources[s];
        const auto &stream =
            source.trace->perThread[source.sourceThread];

        // Align each stream's start to a fetch-block boundary so the
        // first fetch wastes no slots on a foreign stream's tail.
        while (program.code.size() % options.blockSize != 0) {
            program.code.push_back(
                Instruction{Opcode::NOP, 0, 0, 0, 0}.encode());
            out.addresses.hasAddr.push_back(0);
            out.addresses.addr.push_back(0);
        }
        auto entry = static_cast<InstAddr>(program.code.size());
        program.threadEntries.push_back(entry);

        std::size_t limit = stream.size();
        if (options.maxInstsPerStream &&
            options.maxInstsPerStream < limit) {
            limit = static_cast<std::size_t>(
                options.maxInstsPerStream);
        }

        RegRemap remap(regs_per_thread);
        auto map_reg = [&](RegIndex reg, RegIndex &mapped) {
            if (!remap.map(reg, mapped)) {
                *error = format(
                    "stream %zu uses more than %u distinct "
                    "registers; a %u-register partition cannot "
                    "hold it",
                    s, regs_per_thread, regs_per_thread);
                return false;
            }
            return true;
        };
        std::string map_error;
        if (!error)
            error = &map_error;

        bool halted = false;
        for (std::size_t i = 0; i < limit && !halted; ++i) {
            const TraceInst &rec = stream[i];
            // Words were validated by the trace reader.
            Instruction inst = Instruction::decode(rec.word);
            auto pc = static_cast<InstAddr>(program.code.size());
            auto next = static_cast<std::int32_t>(pc) + 1;
            bool has_addr = false;
            Addr addr = 0;

            Instruction flat;
            if (inst.isHalt()) {
                flat = inst;
                halted = true;
            } else if (inst.isCondBranch()) {
                // Rewritten so the recorded outcome is reproduced
                // with a fall-through target: BEQ r,r is always
                // taken, BNE r,r never — either way the next PC is
                // pc+1 and fetch never mispredicts (correct-path
                // replay).
                if (!rec.hasTaken) {
                    return fail(format(
                        "stream %zu, instruction %zu: conditional "
                        "branch lacks a recorded outcome",
                        s, i));
                }
                RegIndex reg = 0;
                if (!map_reg(inst.rs1, reg))
                    return false;
                flat = Instruction::makeB(
                    rec.taken ? Opcode::BEQ : Opcode::BNE, reg, reg,
                    1);
            } else if (inst.isDirectJump()) {
                // Keep the jump (fetch redirect + Ctrl occupancy),
                // retargeted to the next flattened slot.
                RegIndex link = 0;
                if (inst.writesRd() && !map_reg(inst.rd, link))
                    return false;
                flat = Instruction::makeJ(inst.op, link, next);
            } else if (inst.isIndirectJump()) {
                // The register's replayed value is meaningless, so
                // an indirect jump becomes a direct one along the
                // recorded path.
                flat = Instruction::makeJ(Opcode::J, 0, next);
            } else if (inst.isLoad() || inst.isStore()) {
                if (!rec.hasAddr) {
                    return fail(format(
                        "stream %zu, instruction %zu: %s lacks a "
                        "recorded effective address",
                        s, i, opName(inst.op)));
                }
                if (rec.addr % 8 != 0 ||
                    rec.addr + 8 > memory_size) {
                    return fail(format(
                        "stream %zu, instruction %zu: recorded "
                        "address 0x%x is misaligned or outside the "
                        "%u-byte memory",
                        s, i, rec.addr, memory_size));
                }
                RegIndex base = 0;
                if (!map_reg(inst.rs1, base))
                    return false;
                if (inst.isLoad()) {
                    RegIndex rd = 0;
                    if (!map_reg(inst.rd, rd))
                        return false;
                    flat = Instruction::makeI(Opcode::LD, rd, base, 0);
                } else {
                    RegIndex value = 0;
                    if (!map_reg(inst.rs2, value))
                        return false;
                    flat = Instruction::makeB(Opcode::ST, base, value,
                                              0);
                }
                has_addr = true;
                addr = rec.addr;
            } else {
                // Compute/NOP/SPIN: remap the named registers, keep
                // the immediate.
                flat = inst;
                flat.rd = flat.rs1 = flat.rs2 = 0;
                if (inst.writesRd() && !map_reg(inst.rd, flat.rd))
                    return false;
                if (inst.readsRs1() && !map_reg(inst.rs1, flat.rs1))
                    return false;
                if (inst.readsRs2() && !map_reg(inst.rs2, flat.rs2))
                    return false;
            }

            program.code.push_back(flat.encode());
            out.addresses.hasAddr.push_back(has_addr ? 1 : 0);
            out.addresses.addr.push_back(addr);
        }

        if (!halted) {
            // Truncated slice (or an unfinished recording): end the
            // thread cleanly.
            program.code.push_back(
                Instruction{Opcode::HALT, 0, 0, 0, 0}.encode());
            out.addresses.hasAddr.push_back(0);
            out.addresses.addr.push_back(0);
        }
        out.streamLengths.push_back(program.code.size() - entry);
    }

    // J/JAL targets are 17-bit absolute instruction indices, which
    // caps the flattened image size.
    constexpr std::size_t kMaxImage = (1u << 17) - 1;
    if (program.code.size() > kMaxImage) {
        return fail(format(
            "flattened image holds %zu instructions but direct-jump "
            "targets cap it at %zu; truncate with maxInstsPerStream",
            program.code.size(), kMaxImage));
    }

    program.entry = program.threadEntries.empty()
                        ? 0
                        : program.threadEntries.front();
    return true;
}

} // namespace sdsp

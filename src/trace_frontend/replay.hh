/**
 * @file
 * Trace replay: two ways to turn a recorded trace (trace_format.hh)
 * back into pipeline work.
 *
 * Exact replay reconstructs the embedded program image and re-runs it
 * on the execute-at-issue pipeline, verifying the committed stream
 * against the recording instruction by instruction (pc, encoding,
 * effective address, branch outcome). On the recorded machine
 * configuration this is bit-identical — same cycles, same IPC — which
 * is what the CI trace smoke asserts.
 *
 * Stream replay consumes the recorded per-thread commit streams
 * directly: each stream is flattened into a straight-line instruction
 * sequence (control transfers are rewritten to fall through along the
 * recorded path, loads and stores are bound to their recorded
 * effective addresses via ReplayAddressSource), and one stream is
 * assigned to each hardware thread. Streams from *different* traces
 * can be mixed — a "trace cocktail" — which is how heterogeneous
 * multiprogrammed workloads are modelled without hand-writing them.
 * Timing is approximate (correct-path only: wrong-path fetch and
 * mispredict squashes are not replayed), the standard trade-off of
 * trace-driven simulation.
 */

#ifndef SDSP_TRACE_FRONTEND_REPLAY_HH
#define SDSP_TRACE_FRONTEND_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "core/processor.hh"
#include "trace_frontend/trace_format.hh"

namespace sdsp
{

/**
 * Verifies a replayed run's committed-instruction stream against the
 * recording. Attach to the replaying processor (through a tee if
 * other sinks are also wanted); after the run, ok() reports whether
 * every committed instruction matched the recording in order and
 * complete() whether every recorded instruction was committed.
 */
class ReplayVerifySink final : public TraceSink
{
  public:
    explicit ReplayVerifySink(const RecordedTrace &trace);

    void emit(const TraceEvent &event) override;

    /** No mismatching instruction committed so far. */
    bool ok() const { return mismatches_ == 0; }

    /** Every recorded instruction was committed (call after run). */
    bool complete() const;

    std::uint64_t mismatches() const { return mismatches_; }

    /** Description of the first mismatch (empty when ok). */
    const std::string &firstMismatch() const { return first_; }

  private:
    void mismatch(const TraceEvent &event, const std::string &why);

    const RecordedTrace &trace_;
    /** Next unmatched index into trace_.perThread[tid]. */
    std::vector<std::size_t> cursor_;
    std::uint64_t mismatches_ = 0;
    std::string first_;
};

/** Outcome of an exact replay. */
struct ExactReplayResult
{
    SimResult sim;
    /** Committed stream matched the recording, completely. */
    bool verified = false;
    std::uint64_t mismatches = 0;
    std::string firstMismatch;
};

/**
 * Re-run @p trace's embedded program on @p config, verifying the
 * committed stream against the recording. The configuration's thread
 * count must match the trace header. @p extra (optional) receives the
 * replay's pipeline events as well.
 */
ExactReplayResult replayExact(const RecordedTrace &trace,
                              const MachineConfig &config,
                              TraceSink *extra = nullptr);

/** One hardware thread's worth of a cocktail: a recorded stream. */
struct StreamSource
{
    const RecordedTrace *trace = nullptr;
    /** Which recorded thread's stream to replay. */
    ThreadId sourceThread = 0;
};

struct StreamReplayOptions
{
    /** Truncate each stream to this many instructions (0 = all);
     *  truncated streams get a HALT appended. */
    std::uint64_t maxInstsPerStream = 0;
    /** Fetch-block alignment of each stream's start. */
    unsigned blockSize = 4;
};

/** A built cocktail, ready to run. */
struct StreamReplay
{
    /** Flattened image; threadEntries starts thread t on stream t. */
    Program program;
    /** Recorded effective addresses, indexed by flattened PC. Attach
     *  with Processor::setReplayAddresses; must outlive the run. */
    ReplayAddressSource addresses;
    unsigned numThreads = 0;
    /** Instructions in each flattened stream (incl. final HALT) —
     *  the expected per-thread committed count. */
    std::vector<std::uint64_t> streamLengths;
};

/**
 * Flatten one recorded stream per hardware thread into a runnable
 * image. @p regs_per_thread is the target machine's per-thread
 * register budget (MachineConfig::regsPerThread()); streams using
 * more distinct registers than that cannot be remapped and fail.
 *
 * On failure returns false and explains why in @p error.
 */
bool buildStreamReplay(const std::vector<StreamSource> &sources,
                       unsigned regs_per_thread,
                       const StreamReplayOptions &options,
                       StreamReplay &out, std::string *error);

} // namespace sdsp

#endif // SDSP_TRACE_FRONTEND_REPLAY_HH

/**
 * @file
 * The SDSP trace format: recording and reading committed-instruction
 * streams.
 *
 * A trace file is JSON Lines — one self-contained JSON object per
 * line — so it can be produced and consumed streamingly, inspected
 * with jq, and truncated traces are detectable line-by-line:
 *
 *   {"kind":"header","version":1,"threads":4,"entry":0,
 *    "memory":4096,"source":"demo.s","machine":"..."}
 *   {"kind":"code","base":0,"words":[33685504,...]}      (chunked)
 *   {"kind":"data","base":0,"bytes":[7,0,...]}           (chunked,
 *                                        all-zero chunks omitted)
 *   {"kind":"inst","tid":0,"pc":5,"word":...,"addr":8}   (loads/
 *                                        stores carry "addr")
 *   {"kind":"inst","tid":1,"pc":9,"word":...,"taken":true}
 *                                        (cond branches: outcome)
 *   {"kind":"end","cycles":123,"committed":456,
 *    "threads":[114,114,114,114]}
 *
 * The header + code + data records embed the full program image, so a
 * trace is replayable on its own: exact replay reconstructs the
 * Program and re-runs it (verifying the committed stream record by
 * record), and stream replay (replay.hh) consumes the per-thread
 * `inst` streams directly, which is what enables mixed-workload
 * "trace cocktails".
 *
 * The reader never crashes on malformed input: every failure mode is
 * a named TraceErrorKind with the 1-based line it was detected on.
 */

#ifndef SDSP_TRACE_FRONTEND_TRACE_FORMAT_HH
#define SDSP_TRACE_FRONTEND_TRACE_FORMAT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"
#include "core/processor.hh"
#include "isa/program.hh"

namespace sdsp
{

/** Current trace format version (the header's "version" field). */
inline constexpr unsigned kTraceFormatVersion = 1;

/** Why a trace failed to load. Every kind has a stable name. */
enum class TraceErrorKind : std::uint8_t
{
    IoError,       //!< file could not be opened or read
    EmptyTrace,    //!< no records at all
    TornFinalLine, //!< last line is not valid JSON (truncated write)
    BadJson,       //!< a non-final line is not valid JSON
    MissingField,  //!< a record lacks a required field
    BadValue,      //!< a field value is out of range or mistyped
    MissingHeader, //!< first record is not a header
    BadVersion,    //!< header names an unsupported format version
    UnknownOpcode, //!< an instruction word does not decode
    BadThreadId,   //!< an inst record's tid >= header thread count
    BadPc,         //!< an inst record's pc outside the code image
    MissingEnd,    //!< trace does not finish with an end record
};

/** Stable kebab-case name of @p kind (e.g. "torn-final-line"). */
const char *traceErrorKindName(TraceErrorKind kind);

/** A trace-loading failure: what, where, and why. */
struct TraceError
{
    TraceErrorKind kind = TraceErrorKind::IoError;
    /** 1-based line the failure was detected on (0: whole file). */
    unsigned line = 0;
    std::string message;

    /** "torn-final-line at line 7: ..." */
    std::string toString() const;
};

/** One committed instruction of one thread, in commit order. */
struct TraceInst
{
    ThreadId tid = 0;
    InstAddr pc = 0;
    InstWord word = 0;
    /** Effective byte address (valid iff hasAddr; loads/stores). */
    Addr addr = 0;
    bool hasAddr = false;
    /** Resolved branch outcome (valid iff hasTaken). */
    bool taken = false;
    bool hasTaken = false;
};

/** A fully loaded trace. */
struct RecordedTrace
{
    unsigned version = kTraceFormatVersion;
    /** Hardware threads the recorded run was configured with. */
    unsigned threads = 1;
    InstAddr entry = 0;
    std::uint32_t memorySize = 0;
    /** Provenance strings from the header (may be empty). */
    std::string source;
    std::string machine;

    /** Embedded program image. */
    std::vector<InstWord> code;
    std::vector<std::uint8_t> data;

    /** Committed instructions of each thread, in commit order. */
    std::vector<std::vector<TraceInst>> perThread;

    /** Totals from the end record. */
    Cycle cycles = 0;
    std::uint64_t committed = 0;

    /** Reconstruct the program image the trace was recorded from. */
    Program toProgram() const;

    /** Committed instructions across all threads (stream lengths). */
    std::uint64_t totalInsts() const;
};

/** Result of loading a trace: a trace or a named error. */
struct TraceReadResult
{
    bool ok = false;
    RecordedTrace trace;
    TraceError error;
};

/** Parse a complete trace document from @p in. Never crashes. */
TraceReadResult readTrace(std::istream &in);

/** Parse the trace file at @p path. Never crashes. */
TraceReadResult readTraceFile(const std::string &path);

/**
 * A TraceSink that records the committed-instruction stream of a run
 * as a replayable trace file. Attach it (normally through a
 * TeeTraceSink) before running, call noteResult() with the final
 * SimResult, then finish() to write the end record.
 *
 * The program image and machine description are written up front, so
 * even a truncated recording carries a replayable prefix.
 */
class TraceRecorder final : public TraceSink
{
  public:
    TraceRecorder(std::ostream &out, const Program &program,
                  const MachineConfig &config,
                  const std::string &source_name);

    void emit(const TraceEvent &event) override;

    /** Record the run's final cycle/instruction totals (before
     *  finish()); otherwise the end record reports observed
     *  totals. */
    void noteResult(const SimResult &result);

    void finish() override;

  private:
    std::ostream &out_;
    unsigned threads_;
    std::vector<std::uint64_t> perThreadCommitted_;
    Cycle lastCycle_ = 0;
    std::uint64_t committed_ = 0;
    bool haveResult_ = false;
    SimResult result_;
    bool finished_ = false;
};

} // namespace sdsp

#endif // SDSP_TRACE_FRONTEND_TRACE_FORMAT_HH

/**
 * @file
 * Entry point of the sdsp-run command-line simulator (see cli.hh).
 */

#include <iostream>

#include "tools/cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    sdsp::CliOptions options = sdsp::parseCliOptions(args);
    if (!options.ok) {
        std::cerr << "sdsp-run: " << options.error << "\n\n"
                  << sdsp::cliUsage();
        return 1;
    }
    return sdsp::runCli(options, std::cout, std::cerr);
}

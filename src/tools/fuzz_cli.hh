/**
 * @file
 * The sdsp-fuzz differential workload fuzzer.
 *
 * Generates seeded random programs (src/fuzz/generator.hh) and runs
 * each through the differential checker (src/fuzz/differential.hh)
 * on a machine configuration drawn from a fixed grid:
 *
 *     sdsp-fuzz [options]
 *         --seed N        base seed (default 1)
 *         --count N       cases to run (default 100)
 *         --shape NAME    smoke|branchy|loopy|memory|deep|all
 *                         (default all)
 *         --minimize      shrink failing cases and write .s repros
 *         --out DIR       directory for minimized repros (default .)
 *
 * Every case is reproducible on its own: a failure report prints the
 * exact sdsp-fuzz invocation that re-runs just that case, because
 * case i of a run with base seed S derives everything (program,
 * shape, machine) from the single value S + i.
 *
 * Exit code 0 when every case passes, 1 otherwise.
 */

#ifndef SDSP_TOOLS_FUZZ_CLI_HH
#define SDSP_TOOLS_FUZZ_CLI_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sdsp
{

/** Parsed sdsp-fuzz invocation. */
struct FuzzCliOptions
{
    std::uint64_t seed = 1;
    std::uint64_t count = 100;
    std::string shape = "all";
    bool minimize = false;
    std::string outDir = ".";
    /** Set when parsing failed; message explains why. */
    bool ok = true;
    std::string error;
};

/** Parse argv. Never exits; reports problems via error. */
FuzzCliOptions
parseFuzzCliOptions(const std::vector<std::string> &args);

/** Human-readable usage text. */
std::string fuzzCliUsage();

/**
 * Run the fuzz campaign per @p options, reporting to @p out.
 * @return Process exit code: 0 when all cases pass, 1 otherwise.
 */
int runFuzzCli(const FuzzCliOptions &options, std::ostream &out);

} // namespace sdsp

#endif // SDSP_TOOLS_FUZZ_CLI_HH

#include "tools/critpath_cli.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <optional>
#include <ostream>
#include <sstream>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "critpath/report.hh"
#include "harness/runner.hh"
#include "trace_frontend/replay.hh"
#include "trace_frontend/trace_format.hh"
#include "workloads/workload.hh"

namespace sdsp
{

namespace
{

std::optional<std::uint64_t>
parseNumber(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (end != text.c_str() + text.size())
        return std::nullopt;
    return value;
}

std::optional<FetchPolicy>
parsePolicy(const std::string &name)
{
    if (name == "truerr")
        return FetchPolicy::TrueRoundRobin;
    if (name == "maskedrr")
        return FetchPolicy::MaskedRoundRobin;
    if (name == "cswitch")
        return FetchPolicy::ConditionalSwitch;
    if (name == "adaptive")
        return FetchPolicy::Adaptive;
    if (name == "weightedrr")
        return FetchPolicy::WeightedRoundRobin;
    return std::nullopt;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload *workload : allWorkloads())
        if (workload->name() == name)
            return workload;
    for (const Workload *workload : extensionWorkloads())
        if (workload->name() == name)
            return workload;
    return nullptr;
}

/** Locale-safe "12.34%" via integer basis points. */
std::string
percentOf(std::uint64_t part, std::uint64_t whole)
{
    if (!whole)
        return "0.00%";
    std::uint64_t bp = (part * 10000 + whole / 2) / whole;
    return format("%llu.%02llu%%",
                  static_cast<unsigned long long>(bp / 100),
                  static_cast<unsigned long long>(bp % 100));
}

void
printBreakdown(std::ostream &out, const RelaxResult &result)
{
    std::array<unsigned, kNumEdgeClasses> order;
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](unsigned a, unsigned b) {
                  if (result.breakdown[a] != result.breakdown[b])
                      return result.breakdown[a] >
                             result.breakdown[b];
                  return a < b;
              });
    for (unsigned c : order) {
        if (!result.breakdown[c] && !result.edgeCounts[c])
            continue;
        out << format("  %-16s %10llu  %7s  (%llu edges)\n",
                      edgeClassName(static_cast<EdgeClass>(c)),
                      static_cast<unsigned long long>(
                          result.breakdown[c]),
                      percentOf(result.breakdown[c], result.cycles)
                          .c_str(),
                      static_cast<unsigned long long>(
                          result.edgeCounts[c]));
    }
}

} // namespace

std::string
critpathCliUsage()
{
    return "usage: sdsp-critpath [options] "
           "(--workload NAME | --trace FILE | program.s)\n"
           "  --workload NAME      run a built-in benchmark\n"
           "  --list               list built-in benchmarks\n"
           "  --scale N            workload problem scale percent\n"
           "  --trace FILE         exact-replay a recorded trace\n"
           "  -t N                 resident threads (default 1)\n"
           "  -f POLICY            truerr|maskedrr|cswitch|adaptive|"
           "weightedrr\n"
           "  -s N                 scheduling unit entries\n"
           "  --commit MODE        flexible|lowest\n"
           "  --rename MODE        full|scoreboard\n"
           "  --no-bypass          disable result bypassing\n"
           "  --max-cycles N       simulation cap\n"
           "  --what-if LIST       project KEY=VAL[,KEY=VAL...]; may\n"
           "                       repeat (one projection each). Keys:\n"
           "                       issueWidth, suEntries,\n"
           "                       perfectDCache, infiniteStoreBuffer,\n"
           "                       bypassing, fuLat.<class>\n"
           "  --slack              print the per-class slack summary\n"
           "  --json PATH          write the sdsp-critpath-v1 report\n";
}

CritpathCliOptions
parseCritpathCliOptions(const std::vector<std::string> &args)
{
    CritpathCliOptions options;

    auto fail = [&](const std::string &why) {
        options.ok = false;
        options.error = why;
        return options;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next_value = [&]() -> std::optional<std::string> {
            if (i + 1 >= args.size())
                return std::nullopt;
            return args[++i];
        };

        if (arg == "--workload" || arg == "--scale" ||
            arg == "--trace" || arg == "-t" || arg == "-f" ||
            arg == "-s" || arg == "--commit" || arg == "--rename" ||
            arg == "--max-cycles" || arg == "--what-if" ||
            arg == "--json") {
            auto value = next_value();
            if (!value)
                return fail(arg + " needs a value");

            if (arg == "--workload") {
                options.workload = *value;
            } else if (arg == "--scale") {
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad scale: " + *value);
                options.scale = static_cast<unsigned>(*n);
            } else if (arg == "--trace") {
                options.tracePath = *value;
            } else if (arg == "-t") {
                auto n = parseNumber(*value);
                if (!n || *n < 1 || *n > 16)
                    return fail("bad thread count: " + *value);
                options.config.numThreads =
                    static_cast<unsigned>(*n);
            } else if (arg == "-f") {
                auto policy = parsePolicy(*value);
                if (!policy)
                    return fail("unknown fetch policy: " + *value);
                options.config.fetchPolicy = *policy;
            } else if (arg == "-s") {
                auto n = parseNumber(*value);
                if (!n)
                    return fail("bad SU size: " + *value);
                options.config.suEntries = static_cast<unsigned>(*n);
            } else if (arg == "--commit") {
                if (*value == "flexible") {
                    options.config.commitPolicy =
                        CommitPolicy::FlexibleFourBlocks;
                } else if (*value == "lowest") {
                    options.config.commitPolicy =
                        CommitPolicy::LowestBlockOnly;
                } else {
                    return fail("unknown commit mode: " + *value);
                }
            } else if (arg == "--rename") {
                if (*value == "full") {
                    options.config.renameScheme =
                        RenameScheme::FullRenaming;
                } else if (*value == "scoreboard") {
                    options.config.renameScheme =
                        RenameScheme::Scoreboard1Bit;
                } else {
                    return fail("unknown rename mode: " + *value);
                }
            } else if (arg == "--what-if") {
                options.whatIfSpecs.push_back(*value);
            } else if (arg == "--json") {
                options.jsonPath = *value;
            } else { // --max-cycles
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad cycle cap: " + *value);
                options.config.maxCycles = *n;
            }
        } else if (arg == "--no-bypass") {
            options.config.bypassing = false;
        } else if (arg == "--slack") {
            options.slack = true;
        } else if (arg == "--list") {
            options.list = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown option: " + arg);
        } else if (options.programPath.empty()) {
            options.programPath = arg;
        } else {
            return fail("multiple program files given");
        }
    }

    if (options.list)
        return options;
    unsigned modes = (!options.workload.empty() ? 1 : 0) +
                     (!options.tracePath.empty() ? 1 : 0) +
                     (!options.programPath.empty() ? 1 : 0);
    if (modes != 1) {
        return fail("give exactly one of --workload NAME, "
                    "--trace FILE, or a program file");
    }
    return options;
}

int
runCritpathCli(const CritpathCliOptions &options, std::ostream &out)
{
    if (options.list) {
        for (const Workload *workload : allWorkloads())
            out << workload->name() << "\n";
        for (const Workload *workload : extensionWorkloads())
            out << workload->name() << "\n";
        return 0;
    }

    // ---- Run once with the recorder attached. ----
    DdgRecorder recorder;
    MachineConfig config = options.config;
    config.finalize();
    Cycle measured = 0;
    std::string name;

    if (!options.workload.empty()) {
        const Workload *workload = findWorkload(options.workload);
        if (!workload) {
            out << "sdsp-critpath: no benchmark named '"
                << options.workload << "' (see --list)\n";
            return 1;
        }
        RunResult run =
            runWorkload(*workload, config, options.scale, &recorder);
        if (!run.finished) {
            out << "sdsp-critpath: " << run.benchmark
                << " did not finish: " << run.verifyMessage << "\n";
            return 2;
        }
        if (!run.verified) {
            out << "sdsp-critpath: " << run.benchmark
                << " failed verification: " << run.verifyMessage
                << "\n";
            return 1;
        }
        measured = run.cycles;
        name = run.benchmark;
    } else if (!options.tracePath.empty()) {
        TraceReadResult loaded = readTraceFile(options.tracePath);
        if (!loaded.ok) {
            out << "sdsp-critpath: " << options.tracePath << ": "
                << loaded.error.toString() << "\n";
            return 1;
        }
        config.numThreads = loaded.trace.threads;
        config.finalize();
        ExactReplayResult replay =
            replayExact(loaded.trace, config, &recorder);
        if (!replay.sim.finished) {
            out << "sdsp-critpath: replay did not finish\n";
            return 2;
        }
        if (!replay.verified) {
            out << "sdsp-critpath: replay diverged from the "
                   "recording: "
                << replay.firstMismatch << "\n";
            return 1;
        }
        measured = replay.sim.cycles;
        name = options.tracePath;
    } else {
        std::ifstream file(options.programPath);
        if (!file) {
            out << "sdsp-critpath: cannot open "
                << options.programPath << "\n";
            return 1;
        }
        std::ostringstream source;
        source << file.rdbuf();
        AssemblyResult assembly = assemble(source.str());
        unsigned budget = config.regsPerThread();
        if (assembly.maxRegisterUsed >= budget) {
            out << "sdsp-critpath: program uses r"
                << assembly.maxRegisterUsed << " but "
                << config.numThreads
                << " thread(s) allow only r0..r" << budget - 1
                << "\n";
            return 1;
        }
        Processor cpu(config, assembly.program);
        cpu.setTraceSink(&recorder);
        SimResult sim = cpu.run();
        if (!sim.finished) {
            out << "sdsp-critpath: simulation hit the cycle cap\n";
            return 2;
        }
        measured = sim.cycles;
        name = options.programPath;
    }

    // ---- Parse the what-ifs up front (cheap failure first). ----
    std::vector<WhatIfProjection> projections;
    for (const std::string &spec : options.whatIfSpecs) {
        WhatIfProjection projection;
        std::istringstream clauses(spec);
        std::string clause;
        while (std::getline(clauses, clause, ',')) {
            std::string error;
            if (!projection.whatIf.applyKeyValue(clause, &error)) {
                out << "sdsp-critpath: --what-if " << spec << ": "
                    << error << "\n";
                return 1;
            }
        }
        projections.push_back(std::move(projection));
    }

    // ---- Build, verify exactness, relax. ----
    auto build_start = std::chrono::steady_clock::now();
    DdgGraph graph(recorder.trace(), config, measured);
    std::string mismatch = graph.verifyExact();
    RelaxResult baseline = graph.relax(WhatIf{});
    auto build_end = std::chrono::steady_clock::now();

    out << "workload        : " << name << "\n";
    out << "machine         : " << config.toString() << "\n";
    out << "measured cycles : " << measured << "\n";
    out << "committed insts : " << recorder.trace().committed()
        << "\n";
    out << format("graph           : %zu nodes, %zu edges "
                  "(built+relaxed in %.1f ms)\n",
                  graph.nodeCount(), graph.edgeCount(),
                  std::chrono::duration<double, std::milli>(
                      build_end - build_start)
                      .count());
    if (!mismatch.empty()) {
        out << "critical path   : INEXACT — " << mismatch << "\n";
        return 1;
    }
    out << "critical path   : " << baseline.cycles << " (exact)\n";
    out << "breakdown:\n";
    printBreakdown(out, baseline);

    if (options.slack) {
        std::array<Distribution, kNumEdgeClasses> slack;
        graph.slackHistograms(slack);
        out << "slack (cycles above the binding constraint):\n";
        for (unsigned c = 0; c < kNumEdgeClasses; ++c) {
            if (slack[c].count() == 0)
                continue;
            out << format(
                "  %-16s %10llu edges  mean %8.2f  max %llu\n",
                edgeClassName(static_cast<EdgeClass>(c)),
                static_cast<unsigned long long>(slack[c].count()),
                slack[c].mean(),
                static_cast<unsigned long long>(slack[c].max()));
        }
    }

    // ---- Project. ----
    for (WhatIfProjection &projection : projections) {
        auto relax_start = std::chrono::steady_clock::now();
        projection.result = graph.relax(projection.whatIf);
        auto relax_end = std::chrono::steady_clock::now();
        projection.name = projection.whatIf.describe(config);
        double speedup =
            projection.result.cycles
                ? static_cast<double>(measured) /
                      static_cast<double>(projection.result.cycles)
                : 0.0;
        out << format("what-if %-32s : %llu cycles (%.3fx, "
                      "%.1f ms) [%s]\n",
                      projection.name.c_str(),
                      static_cast<unsigned long long>(
                          projection.result.cycles),
                      speedup,
                      std::chrono::duration<double, std::milli>(
                          relax_end - relax_start)
                          .count(),
                      confidenceName(projection.result.confidence));
    }

    if (!options.jsonPath.empty()) {
        std::ofstream json(options.jsonPath);
        if (!json) {
            out << "sdsp-critpath: cannot open " << options.jsonPath
                << "\n";
            return 1;
        }
        json << critpathJson(name, graph, baseline, projections)
             << "\n";
    }
    return 0;
}

} // namespace sdsp

#include "tools/lint_cli.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "analysis/lint.hh"
#include "asm/assembler.hh"
#include "common/json.hh"
#include "core/config.hh"
#include "workloads/workload.hh"

namespace sdsp
{

std::string
lintCliUsage()
{
    return "usage: sdsp-lint [options] [program.s ...]\n"
           "  --workload NAME   analyze a built-in workload "
           "(repeatable)\n"
           "  --all             analyze every built-in and extension "
           "workload\n"
           "  -t N              thread count for workloads and the "
           "IPC bound (default 4)\n"
           "  --scale N         workload problem scale percent "
           "(default 100)\n"
           "  --align           apply the section-6.1 layout to .s "
           "inputs\n"
           "  --extra-memory N  scratch bytes appended after a .s "
           "data section\n"
           "  --json PATH       also write a JSON report ('-' = "
           "stdout)\n";
}

LintCliOptions
parseLintCliOptions(const std::vector<std::string> &args)
{
    LintCliOptions options;
    auto bad = [&options](const std::string &message) {
        options.ok = false;
        options.error = message;
        return options;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string * {
            if (i + 1 >= args.size())
                return nullptr;
            return &args[++i];
        };
        if (arg == "--workload") {
            const std::string *value = next();
            if (!value)
                return bad("--workload needs a name");
            options.workloads.push_back(*value);
        } else if (arg == "--all") {
            options.all = true;
        } else if (arg == "-t" || arg == "--threads") {
            const std::string *value = next();
            if (!value)
                return bad("-t needs a thread count");
            options.threads =
                static_cast<unsigned>(std::stoul(*value));
            if (options.threads == 0)
                return bad("-t must be positive");
        } else if (arg == "--scale") {
            const std::string *value = next();
            if (!value)
                return bad("--scale needs a percentage");
            options.scale = static_cast<unsigned>(std::stoul(*value));
            if (options.scale == 0)
                return bad("--scale must be positive");
        } else if (arg == "--align") {
            options.align = true;
        } else if (arg == "--extra-memory") {
            const std::string *value = next();
            if (!value)
                return bad("--extra-memory needs a byte count");
            options.extraMemory =
                static_cast<std::uint32_t>(std::stoul(*value));
        } else if (arg == "--json") {
            const std::string *value = next();
            if (!value)
                return bad("--json needs a path");
            options.jsonPath = *value;
        } else if (arg == "-h" || arg == "--help") {
            return bad("");
        } else if (!arg.empty() && arg[0] == '-') {
            return bad("unknown option '" + arg + "'");
        } else {
            options.files.push_back(arg);
        }
    }
    if (options.files.empty() && options.workloads.empty() &&
        !options.all)
        return bad("nothing to analyze (give a .s file, --workload, "
                   "or --all)");
    return options;
}

namespace
{

/** One named analysis target. */
struct Target
{
    std::string title;
    LintReport report;
};

LintOptions
baseOptions(const LintCliOptions &cli)
{
    LintOptions options;
    // Both paper FU configurations share one latency table; the
    // default machine shape supplies the fetch/issue ceilings.
    MachineConfig config;
    options.latency =
        LatencyModel::fromLatencies(FuConfig::sdspDefault().latency);
    options.machine.numThreads = cli.threads;
    options.machine.blockSize = config.blockSize;
    options.machine.issueWidth = config.issueWidth;
    return options;
}

} // namespace

int
runLintCli(const LintCliOptions &options, std::ostream &out)
{
    std::vector<Target> targets;

    std::vector<std::string> workload_names = options.workloads;
    if (options.all) {
        for (const Workload *workload : allWorkloads())
            workload_names.push_back(workload->name());
        for (const Workload *workload : extensionWorkloads())
            workload_names.push_back(workload->name());
    }
    for (const std::string &name : workload_names) {
        const Workload &workload = workloadByName(name);
        Target target;
        target.title = format("%s (t=%u, scale=%u)", name.c_str(),
                              options.threads, options.scale);
        target.report = workload.lint(options.threads, options.scale,
                                      baseOptions(options));
        targets.push_back(std::move(target));
    }

    for (const std::string &path : options.files) {
        std::ifstream file(path);
        if (!file) {
            out << "sdsp-lint: cannot open " << path << "\n";
            return 2;
        }
        std::ostringstream source;
        source << file.rdbuf();
        LayoutOptions layout;
        if (options.align) {
            layout.alignTargetsToBlocks = true;
            layout.alignBranchesToBlockEnd = true;
        }
        AssemblyResult assembly =
            assemble(source.str(), options.extraMemory, layout);
        LintOptions lint_options = baseOptions(options);
        lint_options.sourceLines = assembly.sourceLines;
        Target target;
        target.title = path;
        target.report = lintProgram(assembly.program, lint_options);
        targets.push_back(std::move(target));
    }

    unsigned errors = 0;
    unsigned warnings = 0;
    for (const Target &target : targets) {
        out << target.report.toText(target.title);
        errors += target.report.errorCount();
        warnings += target.report.warningCount();
    }
    out << format("sdsp-lint: %zu program(s), %u error(s), "
                  "%u warning(s)\n",
                  targets.size(), errors, warnings);

    if (!options.jsonPath.empty()) {
        JsonWriter writer;
        writer.beginObject();
        writer.key("programs").beginArray();
        for (const Target &target : targets)
            target.report.appendJson(writer, target.title);
        writer.endArray();
        writer.field("errors", errors);
        writer.field("warnings", warnings);
        writer.endObject();
        if (options.jsonPath == "-") {
            out << writer.str() << "\n";
        } else {
            std::ofstream json_file(options.jsonPath);
            if (!json_file) {
                out << "sdsp-lint: cannot write " << options.jsonPath
                    << "\n";
                return 2;
            }
            json_file << writer.str() << "\n";
        }
    }
    return errors + warnings > 0 ? 1 : 0;
}

} // namespace sdsp

/**
 * @file
 * The sdsp-critpath command-line analyzer.
 *
 * Runs a workload (built-in benchmark, assembly file, or recorded
 * trace replay) once with the DDG recorder attached, builds the
 * dynamic dependence graph, verifies the critical path against the
 * measured cycle count, and projects what-if machine changes without
 * re-simulating:
 *
 *     sdsp-critpath --workload ll1 -t 4
 *     sdsp-critpath program.s --what-if issueWidth=16
 *     sdsp-critpath --trace run.strace --json out.json
 *
 * Each --what-if takes a comma list of KEY=VAL clauses (issueWidth,
 * suEntries, perfectDCache, infiniteStoreBuffer, bypassing,
 * fuLat.<class>) and adds one projection; the flag may repeat.
 */

#ifndef SDSP_TOOLS_CRITPATH_CLI_HH
#define SDSP_TOOLS_CRITPATH_CLI_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hh"

namespace sdsp
{

/** Parsed sdsp-critpath invocation. */
struct CritpathCliOptions
{
    MachineConfig config;
    /** Built-in benchmark name (exclusive with the other modes). */
    std::string workload;
    /** Workload problem scale in percent. */
    unsigned scale = 100;
    /** Assembly file to assemble and run. */
    std::string programPath;
    /** Recorded trace to exact-replay instead of running. */
    std::string tracePath;
    /** Raw --what-if values, one comma list per occurrence. */
    std::vector<std::string> whatIfSpecs;
    /** Write the sdsp-critpath-v1 JSON document here (empty = off). */
    std::string jsonPath;
    /** Print the per-class slack summary. */
    bool slack = false;
    /** List the built-in workloads and exit. */
    bool list = false;
    /** Set when parsing failed; message explains why. */
    bool ok = true;
    std::string error;
};

/** Parse argv. Never exits; reports problems via options.error. */
CritpathCliOptions
parseCritpathCliOptions(const std::vector<std::string> &args);

/** Human-readable usage text. */
std::string critpathCliUsage();

/**
 * Analyze per @p options, writing the report to @p out.
 * @return Process exit code: 0 on success, 1 on input or exactness
 *         errors, 2 when the run did not finish.
 */
int runCritpathCli(const CritpathCliOptions &options,
                   std::ostream &out);

} // namespace sdsp

#endif // SDSP_TOOLS_CRITPATH_CLI_HH

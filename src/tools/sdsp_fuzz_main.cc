/**
 * @file
 * Entry point of the sdsp-fuzz differential fuzzer (see fuzz_cli.hh).
 */

#include <iostream>

#include "tools/fuzz_cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    sdsp::FuzzCliOptions options = sdsp::parseFuzzCliOptions(args);
    if (!options.ok) {
        std::cerr << "sdsp-fuzz: " << options.error << "\n\n"
                  << sdsp::fuzzCliUsage();
        return 1;
    }
    return sdsp::runFuzzCli(options, std::cout);
}

#include <iostream>

#include "tools/lint_cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    sdsp::LintCliOptions options = sdsp::parseLintCliOptions(args);
    if (!options.ok) {
        if (!options.error.empty())
            std::cerr << "sdsp-lint: " << options.error << "\n";
        std::cerr << sdsp::lintCliUsage();
        return 2;
    }
    return sdsp::runLintCli(options, std::cout);
}

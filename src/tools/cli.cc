#include "tools/cli.hh"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "asm/assembler.hh"
#include "asm/rewrite.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "core/processor.hh"
#include "critpath/report.hh"
#include "harness/runner.hh"
#include "trace_frontend/replay.hh"
#include "trace_frontend/trace_format.hh"

namespace sdsp
{

namespace
{

std::optional<std::uint64_t>
parseNumber(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (end != text.c_str() + text.size())
        return std::nullopt;
    return value;
}

std::optional<double>
parseSeconds(const std::string &text)
{
    // from_chars, not strtod: '.' regardless of the process locale.
    double value = 0.0;
    const char *begin = text.c_str();
    const char *end = begin + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || value < 0.0)
        return std::nullopt;
    return value;
}

std::optional<FetchPolicy>
parsePolicy(const std::string &name)
{
    if (name == "truerr")
        return FetchPolicy::TrueRoundRobin;
    if (name == "maskedrr")
        return FetchPolicy::MaskedRoundRobin;
    if (name == "cswitch")
        return FetchPolicy::ConditionalSwitch;
    if (name == "adaptive")
        return FetchPolicy::Adaptive;
    if (name == "weightedrr")
        return FetchPolicy::WeightedRoundRobin;
    return std::nullopt;
}

void
printRunSummary(std::ostream &out, const MachineConfig &config,
                const SimResult &sim, bool wall_timed_out,
                const std::vector<std::uint64_t> &per_thread)
{
    out << "machine   : " << config.toString() << "\n";
    out << "finished  : "
        << (sim.finished ? "yes"
                         : wall_timed_out ? "NO (wall-clock timeout)"
                                          : "NO (cycle cap)")
        << "\n";
    out << "cycles    : " << sim.cycles << "\n";
    out << "committed : " << sim.committedInstructions << "\n";
    out << format("ipc       : %.3f\n", sim.ipc());
    for (std::size_t t = 0; t < per_thread.size(); ++t) {
        out << format("thread %zu  : %llu instructions\n", t,
                      static_cast<unsigned long long>(per_thread[t]));
    }
}

bool
writeSummaryJson(const std::string &path, const MachineConfig &config,
                 const SimResult &sim,
                 const std::vector<std::uint64_t> &per_thread,
                 std::ostream &out)
{
    JsonWriter writer;
    writer.beginObject();
    writer.field("machine", config.toString());
    writer.field("finished", sim.finished);
    writer.field("cycles", static_cast<std::uint64_t>(sim.cycles));
    writer.field("committed", sim.committedInstructions);
    writer.field("ipc", sim.ipc());
    writer.key("threads").beginArray();
    for (std::uint64_t count : per_thread)
        writer.value(count);
    writer.endArray();
    writer.endObject();

    std::ofstream file(path);
    if (!file) {
        out << "sdsp-run: cannot open " << path << "\n";
        return false;
    }
    file << writer.str() << "\n";
    return true;
}

std::vector<std::uint64_t>
perThreadCommitted(const Processor &cpu, unsigned threads)
{
    std::vector<std::uint64_t> counts;
    counts.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        counts.push_back(
            cpu.committedInstructions(static_cast<ThreadId>(t)));
    return counts;
}

/** Locale-safe "12.34%" via integer basis points (printf %f would
 *  follow LC_NUMERIC for the decimal point; integers never do). */
std::string
percentOf(std::uint64_t part, std::uint64_t whole)
{
    if (!whole)
        return "0.00%";
    std::uint64_t bp = (part * 10000 + whole / 2) / whole;
    return format("%llu.%02llu%%",
                  static_cast<unsigned long long>(bp / 100),
                  static_cast<unsigned long long>(bp % 100));
}

/** --stats: the per-thread stall attribution, raw cycles and
 *  percent-of-total side by side, plus the all-thread totals. */
void
printStallTable(std::ostream &out, const Processor &cpu,
                const MachineConfig &config, Cycle cycles)
{
    std::array<std::uint64_t, kNumStallReasons> total{};
    out << "stall attribution:\n";
    for (unsigned t = 0; t < config.numThreads; ++t) {
        out << format("  thread %u (of %llu cycles):\n", t,
                      static_cast<unsigned long long>(cycles));
        for (unsigned r = 0; r < kNumStallReasons; ++r) {
            std::uint64_t charged = cpu.stallCycles(
                static_cast<ThreadId>(t),
                static_cast<StallReason>(r));
            total[r] += charged;
            if (!charged)
                continue;
            out << format(
                "    %-18s %12llu  %7s\n",
                stallReasonName(static_cast<StallReason>(r)),
                static_cast<unsigned long long>(charged),
                percentOf(charged, cycles).c_str());
        }
    }
    std::uint64_t thread_cycles =
        static_cast<std::uint64_t>(cycles) * config.numThreads;
    out << format("  all threads (of %llu thread-cycles):\n",
                  static_cast<unsigned long long>(thread_cycles));
    for (unsigned r = 0; r < kNumStallReasons; ++r) {
        if (!total[r])
            continue;
        out << format("    %-18s %12llu  %7s\n",
                      stallReasonName(static_cast<StallReason>(r)),
                      static_cast<unsigned long long>(total[r]),
                      percentOf(total[r], thread_cycles).c_str());
    }
}

/** --critpath: build the DDG, verify exactness, print the critical
 *  path. @return false on an exactness failure (simulator bug). */
bool
printCritpath(std::ostream &out, const DdgRecorder &recorder,
              const MachineConfig &config, const SimResult &sim)
{
    DdgGraph graph(recorder.trace(), config, sim.cycles);
    std::string mismatch = graph.verifyExact();
    if (!mismatch.empty()) {
        out << "critpath  : INEXACT — " << mismatch << "\n";
        return false;
    }
    RelaxResult baseline = graph.relax(WhatIf{});
    out << format("critpath  : %llu cycles (exact), %zu nodes, "
                  "%zu edges\n",
                  static_cast<unsigned long long>(baseline.cycles),
                  graph.nodeCount(), graph.edgeCount());
    for (unsigned c = 0; c < kNumEdgeClasses; ++c) {
        if (!baseline.breakdown[c])
            continue;
        out << format("  %-16s %10llu  %7s\n",
                      edgeClassName(static_cast<EdgeClass>(c)),
                      static_cast<unsigned long long>(
                          baseline.breakdown[c]),
                      percentOf(baseline.breakdown[c],
                                baseline.cycles)
                          .c_str());
    }
    return true;
}

/** --replay: exact replay with stream verification. */
int
runReplayExact(const CliOptions &options, std::ostream &out)
{
    TraceReadResult loaded = readTraceFile(options.replayPath);
    if (!loaded.ok) {
        out << "sdsp-run: " << options.replayPath << ": "
            << loaded.error.toString() << "\n";
        return 1;
    }
    const RecordedTrace &trace = loaded.trace;

    MachineConfig config = options.config;
    config.numThreads = trace.threads;
    config.finalize();

    ExactReplayResult replay = replayExact(trace, config);

    std::vector<std::uint64_t> per_thread;
    for (const auto &stream : trace.perThread)
        per_thread.push_back(stream.size());

    printRunSummary(out, config, replay.sim, false, per_thread);
    out << "recorded  : " << trace.cycles << " cycles, "
        << trace.committed << " instructions\n";
    if (replay.verified) {
        out << "verified  : yes (committed stream matches the "
               "recording)\n";
    } else {
        out << "verified  : NO (" << replay.mismatches
            << " mismatches)\n";
        if (!replay.firstMismatch.empty())
            out << "first     : " << replay.firstMismatch << "\n";
    }

    if (!options.summaryJson.empty() &&
        !writeSummaryJson(options.summaryJson, config, replay.sim,
                          per_thread, out))
        return 1;

    if (!replay.sim.finished)
        return 2;
    return replay.verified ? 0 : 1;
}

/** --replay-stream: a trace cocktail, one stream per hw thread. */
int
runReplayStream(const CliOptions &options, std::ostream &out)
{
    // Parse the comma list of TRACE[:tid] items.
    std::vector<std::string> items;
    std::istringstream list(options.replayStream);
    std::string item;
    while (std::getline(list, item, ','))
        items.push_back(item);
    if (items.empty() || items.size() > 16) {
        out << "sdsp-run: --replay-stream needs 1..16 items\n";
        return 1;
    }

    std::vector<std::unique_ptr<RecordedTrace>> traces;
    std::vector<StreamSource> sources;
    for (const std::string &spec : items) {
        std::string path = spec;
        std::uint64_t tid = 0;
        auto colon = spec.rfind(':');
        if (colon != std::string::npos && colon + 1 < spec.size()) {
            auto suffix = parseNumber(spec.substr(colon + 1));
            if (suffix) {
                tid = *suffix;
                path = spec.substr(0, colon);
            }
        }
        TraceReadResult loaded = readTraceFile(path);
        if (!loaded.ok) {
            out << "sdsp-run: " << path << ": "
                << loaded.error.toString() << "\n";
            return 1;
        }
        if (tid >= loaded.trace.threads) {
            out << "sdsp-run: " << spec << ": trace has only "
                << loaded.trace.threads << " thread(s)\n";
            return 1;
        }
        traces.push_back(
            std::make_unique<RecordedTrace>(std::move(loaded.trace)));
        sources.push_back(
            {traces.back().get(), static_cast<ThreadId>(tid)});
    }

    MachineConfig config = options.config;
    config.numThreads = static_cast<unsigned>(sources.size());
    config.finalize();

    StreamReplayOptions stream_options;
    stream_options.blockSize = config.blockSize;
    StreamReplay replay;
    std::string error;
    if (!buildStreamReplay(sources, config.regsPerThread(),
                           stream_options, replay, &error)) {
        out << "sdsp-run: " << error << "\n";
        return 1;
    }

    Processor cpu(config, replay.program);
    cpu.setReplayAddresses(&replay.addresses);
    SimResult sim = cpu.run();

    std::vector<std::uint64_t> per_thread =
        perThreadCommitted(cpu, config.numThreads);
    printRunSummary(out, config, sim, false, per_thread);
    for (std::size_t t = 0; t < replay.streamLengths.size(); ++t) {
        if (per_thread[t] != replay.streamLengths[t]) {
            out << format("sdsp-run: thread %zu committed %llu but "
                          "its stream holds %llu\n",
                          t,
                          static_cast<unsigned long long>(
                              per_thread[t]),
                          static_cast<unsigned long long>(
                              replay.streamLengths[t]));
            return 1;
        }
    }

    if (!options.summaryJson.empty() &&
        !writeSummaryJson(options.summaryJson, config, sim,
                          per_thread, out))
        return 1;
    return sim.finished ? 0 : 2;
}

} // namespace

std::string
cliUsage()
{
    return "usage: sdsp-run [options] program.s\n"
           "  -t N                 resident threads (default 1)\n"
           "  -f POLICY            truerr|maskedrr|cswitch|adaptive|"
           "weightedrr\n"
           "  -w W0,W1,...         fetch weights for weightedrr\n"
           "  -s N                 scheduling unit entries\n"
           "  --commit MODE        flexible|lowest\n"
           "  --rename MODE        full|scoreboard\n"
           "  --no-bypass          disable result bypassing\n"
           "  --cache-ways N       dcache associativity (1=direct)\n"
           "  --cache-size BYTES   dcache capacity\n"
           "  --cache-partitions N per-thread cache partitions\n"
           "  --btb-banks N        private per-thread BTBs\n"
           "  --finite-icache      model a finite I-cache\n"
           "  --max-cycles N       simulation cap\n"
           "  --timeout SECS       wall-clock budget (exit code 3)\n"
           "  --align              section-6.1 code layout pass\n"
           "  --trace              per-cycle event trace\n"
           "  --trace-file PATH    write the text trace to PATH\n"
           "  --trace-json PATH    write a Perfetto/Chrome trace\n"
           "  --stats              dump statistics (scalars,\n"
           "                       histograms, stall attribution\n"
           "                       with percent-of-total columns)\n"
           "  --critpath           dependence-graph critical-path\n"
           "                       breakdown (verified exact)\n"
           "  --disasm             print disassembly and exit\n"
           "  --record PATH        record the committed stream as a\n"
           "                       replayable trace\n"
           "  --replay PATH        exact-replay a recorded trace\n"
           "                       (verified against the recording)\n"
           "  --replay-stream LIST cocktail: comma list of\n"
           "                       TRACE[:tid], one hw thread each\n"
           "  --summary-json PATH  machine-readable run summary\n";
}

CliOptions
parseCliOptions(const std::vector<std::string> &args)
{
    CliOptions options;

    auto fail = [&](const std::string &why) {
        options.ok = false;
        options.error = why;
        return options;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next_value = [&]() -> std::optional<std::string> {
            if (i + 1 >= args.size())
                return std::nullopt;
            return args[++i];
        };

        if (arg == "-t" || arg == "-f" || arg == "-s" || arg == "-w" ||
            arg == "--commit" || arg == "--rename" ||
            arg == "--cache-ways" || arg == "--cache-size" ||
            arg == "--cache-partitions" || arg == "--btb-banks" ||
            arg == "--max-cycles" || arg == "--timeout" ||
            arg == "--trace-file" || arg == "--trace-json" ||
            arg == "--record" || arg == "--replay" ||
            arg == "--replay-stream" || arg == "--summary-json") {
            auto value = next_value();
            if (!value)
                return fail(arg + " needs a value");

            if (arg == "-t") {
                auto n = parseNumber(*value);
                if (!n || *n < 1 || *n > 16)
                    return fail("bad thread count: " + *value);
                options.config.numThreads =
                    static_cast<unsigned>(*n);
            } else if (arg == "-f") {
                auto policy = parsePolicy(*value);
                if (!policy)
                    return fail("unknown fetch policy: " + *value);
                options.config.fetchPolicy = *policy;
            } else if (arg == "-w") {
                std::istringstream list(*value);
                std::string item;
                options.config.fetchWeights.clear();
                while (std::getline(list, item, ',')) {
                    auto weight = parseNumber(item);
                    if (!weight || *weight < 1)
                        return fail("bad fetch weight: " + item);
                    options.config.fetchWeights.push_back(
                        static_cast<unsigned>(*weight));
                }
            } else if (arg == "-s") {
                auto n = parseNumber(*value);
                if (!n)
                    return fail("bad SU size: " + *value);
                options.config.suEntries = static_cast<unsigned>(*n);
            } else if (arg == "--commit") {
                if (*value == "flexible") {
                    options.config.commitPolicy =
                        CommitPolicy::FlexibleFourBlocks;
                } else if (*value == "lowest") {
                    options.config.commitPolicy =
                        CommitPolicy::LowestBlockOnly;
                } else {
                    return fail("unknown commit mode: " + *value);
                }
            } else if (arg == "--rename") {
                if (*value == "full") {
                    options.config.renameScheme =
                        RenameScheme::FullRenaming;
                } else if (*value == "scoreboard") {
                    options.config.renameScheme =
                        RenameScheme::Scoreboard1Bit;
                } else {
                    return fail("unknown rename mode: " + *value);
                }
            } else if (arg == "--cache-ways") {
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad way count: " + *value);
                options.config.dcache.ways =
                    static_cast<std::uint32_t>(*n);
            } else if (arg == "--cache-size") {
                auto n = parseNumber(*value);
                if (!n)
                    return fail("bad cache size: " + *value);
                options.config.dcache.sizeBytes =
                    static_cast<std::uint32_t>(*n);
            } else if (arg == "--cache-partitions") {
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad partition count: " + *value);
                options.config.dcache.partitions =
                    static_cast<std::uint32_t>(*n);
            } else if (arg == "--btb-banks") {
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad bank count: " + *value);
                options.config.btbBanks = static_cast<unsigned>(*n);
            } else if (arg == "--timeout") {
                auto seconds = parseSeconds(*value);
                if (!seconds)
                    return fail("bad timeout: " + *value);
                options.timeoutSeconds = *seconds;
            } else if (arg == "--trace-file") {
                options.traceFile = *value;
            } else if (arg == "--trace-json") {
                options.traceJson = *value;
            } else if (arg == "--record") {
                options.recordPath = *value;
            } else if (arg == "--replay") {
                options.replayPath = *value;
            } else if (arg == "--replay-stream") {
                options.replayStream = *value;
            } else if (arg == "--summary-json") {
                options.summaryJson = *value;
            } else { // --max-cycles
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad cycle cap: " + *value);
                options.config.maxCycles = *n;
            }
        } else if (arg == "--no-bypass") {
            options.config.bypassing = false;
        } else if (arg == "--finite-icache") {
            options.config.perfectICache = false;
        } else if (arg == "--align") {
            options.align = true;
        } else if (arg == "--trace") {
            options.trace = true;
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--critpath") {
            options.critpath = true;
        } else if (arg == "--disasm") {
            options.disasmOnly = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown option: " + arg);
        } else if (options.programPath.empty()) {
            options.programPath = arg;
        } else {
            return fail("multiple program files given");
        }
    }

    bool replay_mode = !options.replayPath.empty() ||
                       !options.replayStream.empty();
    if (!options.replayPath.empty() && !options.replayStream.empty())
        return fail("--replay and --replay-stream are exclusive");
    if (replay_mode && !options.programPath.empty())
        return fail("replay modes take a trace, not a program file");
    if (replay_mode && !options.recordPath.empty())
        return fail("--record needs a program run, not a replay");
    if (replay_mode && options.critpath)
        return fail("--critpath needs a program run (use "
                    "sdsp-critpath --trace for recordings)");
    if (options.programPath.empty() && !replay_mode)
        return fail("no program file given");
    options.config.finalize();
    return options;
}

int
runCli(const CliOptions &options, std::ostream &out,
       std::ostream &trace_out)
{
    if (!options.replayPath.empty())
        return runReplayExact(options, out);
    if (!options.replayStream.empty())
        return runReplayStream(options, out);

    std::ifstream file(options.programPath);
    if (!file) {
        out << "sdsp-run: cannot open " << options.programPath << "\n";
        return 1;
    }
    std::ostringstream source;
    source << file.rdbuf();

    AssemblyResult assembly = assemble(source.str());
    Program program = assembly.program;

    if (options.align) {
        LayoutOptions layout;
        layout.alignTargetsToBlocks = true;
        layout.alignBranchesToBlockEnd = true;
        program = realignProgram(program, layout);
    }

    if (options.disasmOnly) {
        out << disassemble(program);
        return 0;
    }

    unsigned budget = options.config.regsPerThread();
    if (assembly.maxRegisterUsed >= budget) {
        out << "sdsp-run: program uses r" << assembly.maxRegisterUsed
            << " but " << options.config.numThreads
            << " thread(s) allow only r0..r" << budget - 1 << "\n";
        return 1;
    }

    Processor cpu(options.config, program);

    // Assemble the requested sinks behind one tee. The processor
    // sees a single TraceSink*; nullptr keeps tracing zero-cost.
    TeeTraceSink tee;
    TextTraceSink streamSink(trace_out);
    std::ofstream textFile;
    std::unique_ptr<TextTraceSink> fileSink;
    std::ofstream jsonFile;
    std::unique_ptr<JsonTraceSink> jsonSink;

    if (options.trace)
        tee.add(&streamSink);
    if (!options.traceFile.empty()) {
        textFile.open(options.traceFile);
        if (!textFile) {
            out << "sdsp-run: cannot open " << options.traceFile
                << "\n";
            return 1;
        }
        fileSink = std::make_unique<TextTraceSink>(textFile);
        tee.add(fileSink.get());
    }
    if (!options.traceJson.empty()) {
        jsonFile.open(options.traceJson);
        if (!jsonFile) {
            out << "sdsp-run: cannot open " << options.traceJson
                << "\n";
            return 1;
        }
        jsonSink = std::make_unique<JsonTraceSink>(jsonFile);
        tee.add(jsonSink.get());
    }
    std::ofstream recordFile;
    std::unique_ptr<TraceRecorder> recorder;
    if (!options.recordPath.empty()) {
        recordFile.open(options.recordPath);
        if (!recordFile) {
            out << "sdsp-run: cannot open " << options.recordPath
                << "\n";
            return 1;
        }
        recorder = std::make_unique<TraceRecorder>(
            recordFile, program, options.config,
            options.programPath);
        tee.add(recorder.get());
    }

    std::unique_ptr<DdgRecorder> ddg;
    if (options.critpath) {
        ddg = std::make_unique<DdgRecorder>();
        tee.add(ddg.get());
    }

    bool tracing =
        options.trace || fileSink || jsonSink || recorder || ddg;
    if (tracing)
        cpu.setTraceSink(&tee);

    SimResult sim;
    bool wall_timed_out = false;
    if (options.timeoutSeconds > 0.0) {
        auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options.timeoutSeconds));
        sim = runToDeadline(cpu, options.config.maxCycles, deadline,
                            &wall_timed_out);
    } else {
        sim = cpu.run();
    }
    if (recorder)
        recorder->noteResult(sim);
    if (tracing)
        tee.finish();
    std::vector<std::uint64_t> per_thread =
        perThreadCommitted(cpu, options.config.numThreads);
    printRunSummary(out, options.config, sim, wall_timed_out,
                    per_thread);
    if (!options.summaryJson.empty() &&
        !writeSummaryJson(options.summaryJson, options.config, sim,
                          per_thread, out))
        return 1;

    bool critpath_exact = true;
    if (ddg && sim.finished) {
        critpath_exact =
            printCritpath(out, *ddg, options.config, sim);
    }

    if (options.stats) {
        StatsRegistry registry;
        cpu.reportStats(registry);
        if (ddg && sim.finished && critpath_exact) {
            DdgGraph graph(ddg->trace(), options.config, sim.cycles);
            critpathReportStats(graph, graph.relax(WhatIf{}),
                                registry);
        }
        out << "\n" << registry.toString();
        printStallTable(out, cpu, options.config, sim.cycles);
    }
    if (!critpath_exact)
        return 1;
    if (sim.finished)
        return 0;
    return wall_timed_out ? 3 : 2;
}

} // namespace sdsp

#include "tools/cli.hh"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "asm/assembler.hh"
#include "asm/rewrite.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "core/processor.hh"
#include "harness/runner.hh"

namespace sdsp
{

namespace
{

std::optional<std::uint64_t>
parseNumber(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (end != text.c_str() + text.size())
        return std::nullopt;
    return value;
}

std::optional<double>
parseSeconds(const std::string &text)
{
    // from_chars, not strtod: '.' regardless of the process locale.
    double value = 0.0;
    const char *begin = text.c_str();
    const char *end = begin + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || value < 0.0)
        return std::nullopt;
    return value;
}

std::optional<FetchPolicy>
parsePolicy(const std::string &name)
{
    if (name == "truerr")
        return FetchPolicy::TrueRoundRobin;
    if (name == "maskedrr")
        return FetchPolicy::MaskedRoundRobin;
    if (name == "cswitch")
        return FetchPolicy::ConditionalSwitch;
    if (name == "adaptive")
        return FetchPolicy::Adaptive;
    if (name == "weightedrr")
        return FetchPolicy::WeightedRoundRobin;
    return std::nullopt;
}

} // namespace

std::string
cliUsage()
{
    return "usage: sdsp-run [options] program.s\n"
           "  -t N                 resident threads (default 1)\n"
           "  -f POLICY            truerr|maskedrr|cswitch|adaptive|"
           "weightedrr\n"
           "  -w W0,W1,...         fetch weights for weightedrr\n"
           "  -s N                 scheduling unit entries\n"
           "  --commit MODE        flexible|lowest\n"
           "  --rename MODE        full|scoreboard\n"
           "  --no-bypass          disable result bypassing\n"
           "  --cache-ways N       dcache associativity (1=direct)\n"
           "  --cache-size BYTES   dcache capacity\n"
           "  --cache-partitions N per-thread cache partitions\n"
           "  --btb-banks N        private per-thread BTBs\n"
           "  --finite-icache      model a finite I-cache\n"
           "  --max-cycles N       simulation cap\n"
           "  --timeout SECS       wall-clock budget (exit code 3)\n"
           "  --align              section-6.1 code layout pass\n"
           "  --trace              per-cycle event trace\n"
           "  --trace-file PATH    write the text trace to PATH\n"
           "  --trace-json PATH    write a Perfetto/Chrome trace\n"
           "  --stats              dump statistics (scalars,\n"
           "                       histograms, stall attribution)\n"
           "  --disasm             print disassembly and exit\n";
}

CliOptions
parseCliOptions(const std::vector<std::string> &args)
{
    CliOptions options;

    auto fail = [&](const std::string &why) {
        options.ok = false;
        options.error = why;
        return options;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next_value = [&]() -> std::optional<std::string> {
            if (i + 1 >= args.size())
                return std::nullopt;
            return args[++i];
        };

        if (arg == "-t" || arg == "-f" || arg == "-s" || arg == "-w" ||
            arg == "--commit" || arg == "--rename" ||
            arg == "--cache-ways" || arg == "--cache-size" ||
            arg == "--cache-partitions" || arg == "--btb-banks" ||
            arg == "--max-cycles" || arg == "--timeout" ||
            arg == "--trace-file" || arg == "--trace-json") {
            auto value = next_value();
            if (!value)
                return fail(arg + " needs a value");

            if (arg == "-t") {
                auto n = parseNumber(*value);
                if (!n || *n < 1 || *n > 16)
                    return fail("bad thread count: " + *value);
                options.config.numThreads =
                    static_cast<unsigned>(*n);
            } else if (arg == "-f") {
                auto policy = parsePolicy(*value);
                if (!policy)
                    return fail("unknown fetch policy: " + *value);
                options.config.fetchPolicy = *policy;
            } else if (arg == "-w") {
                std::istringstream list(*value);
                std::string item;
                options.config.fetchWeights.clear();
                while (std::getline(list, item, ',')) {
                    auto weight = parseNumber(item);
                    if (!weight || *weight < 1)
                        return fail("bad fetch weight: " + item);
                    options.config.fetchWeights.push_back(
                        static_cast<unsigned>(*weight));
                }
            } else if (arg == "-s") {
                auto n = parseNumber(*value);
                if (!n)
                    return fail("bad SU size: " + *value);
                options.config.suEntries = static_cast<unsigned>(*n);
            } else if (arg == "--commit") {
                if (*value == "flexible") {
                    options.config.commitPolicy =
                        CommitPolicy::FlexibleFourBlocks;
                } else if (*value == "lowest") {
                    options.config.commitPolicy =
                        CommitPolicy::LowestBlockOnly;
                } else {
                    return fail("unknown commit mode: " + *value);
                }
            } else if (arg == "--rename") {
                if (*value == "full") {
                    options.config.renameScheme =
                        RenameScheme::FullRenaming;
                } else if (*value == "scoreboard") {
                    options.config.renameScheme =
                        RenameScheme::Scoreboard1Bit;
                } else {
                    return fail("unknown rename mode: " + *value);
                }
            } else if (arg == "--cache-ways") {
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad way count: " + *value);
                options.config.dcache.ways =
                    static_cast<std::uint32_t>(*n);
            } else if (arg == "--cache-size") {
                auto n = parseNumber(*value);
                if (!n)
                    return fail("bad cache size: " + *value);
                options.config.dcache.sizeBytes =
                    static_cast<std::uint32_t>(*n);
            } else if (arg == "--cache-partitions") {
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad partition count: " + *value);
                options.config.dcache.partitions =
                    static_cast<std::uint32_t>(*n);
            } else if (arg == "--btb-banks") {
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad bank count: " + *value);
                options.config.btbBanks = static_cast<unsigned>(*n);
            } else if (arg == "--timeout") {
                auto seconds = parseSeconds(*value);
                if (!seconds)
                    return fail("bad timeout: " + *value);
                options.timeoutSeconds = *seconds;
            } else if (arg == "--trace-file") {
                options.traceFile = *value;
            } else if (arg == "--trace-json") {
                options.traceJson = *value;
            } else { // --max-cycles
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad cycle cap: " + *value);
                options.config.maxCycles = *n;
            }
        } else if (arg == "--no-bypass") {
            options.config.bypassing = false;
        } else if (arg == "--finite-icache") {
            options.config.perfectICache = false;
        } else if (arg == "--align") {
            options.align = true;
        } else if (arg == "--trace") {
            options.trace = true;
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--disasm") {
            options.disasmOnly = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return fail("unknown option: " + arg);
        } else if (options.programPath.empty()) {
            options.programPath = arg;
        } else {
            return fail("multiple program files given");
        }
    }

    if (options.programPath.empty())
        return fail("no program file given");
    return options;
}

int
runCli(const CliOptions &options, std::ostream &out,
       std::ostream &trace_out)
{
    std::ifstream file(options.programPath);
    if (!file) {
        out << "sdsp-run: cannot open " << options.programPath << "\n";
        return 1;
    }
    std::ostringstream source;
    source << file.rdbuf();

    AssemblyResult assembly = assemble(source.str());
    Program program = assembly.program;

    if (options.align) {
        LayoutOptions layout;
        layout.alignTargetsToBlocks = true;
        layout.alignBranchesToBlockEnd = true;
        program = realignProgram(program, layout);
    }

    if (options.disasmOnly) {
        out << disassemble(program);
        return 0;
    }

    unsigned budget = options.config.regsPerThread();
    if (assembly.maxRegisterUsed >= budget) {
        out << "sdsp-run: program uses r" << assembly.maxRegisterUsed
            << " but " << options.config.numThreads
            << " thread(s) allow only r0..r" << budget - 1 << "\n";
        return 1;
    }

    Processor cpu(options.config, program);

    // Assemble the requested sinks behind one tee. The processor
    // sees a single TraceSink*; nullptr keeps tracing zero-cost.
    TeeTraceSink tee;
    TextTraceSink streamSink(trace_out);
    std::ofstream textFile;
    std::unique_ptr<TextTraceSink> fileSink;
    std::ofstream jsonFile;
    std::unique_ptr<JsonTraceSink> jsonSink;

    if (options.trace)
        tee.add(&streamSink);
    if (!options.traceFile.empty()) {
        textFile.open(options.traceFile);
        if (!textFile) {
            out << "sdsp-run: cannot open " << options.traceFile
                << "\n";
            return 1;
        }
        fileSink = std::make_unique<TextTraceSink>(textFile);
        tee.add(fileSink.get());
    }
    if (!options.traceJson.empty()) {
        jsonFile.open(options.traceJson);
        if (!jsonFile) {
            out << "sdsp-run: cannot open " << options.traceJson
                << "\n";
            return 1;
        }
        jsonSink = std::make_unique<JsonTraceSink>(jsonFile);
        tee.add(jsonSink.get());
    }

    bool tracing = options.trace || fileSink || jsonSink;
    if (tracing)
        cpu.setTraceSink(&tee);

    SimResult sim;
    bool wall_timed_out = false;
    if (options.timeoutSeconds > 0.0) {
        auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options.timeoutSeconds));
        sim = runToDeadline(cpu, options.config.maxCycles, deadline,
                            &wall_timed_out);
    } else {
        sim = cpu.run();
    }
    if (tracing)
        tee.finish();
    out << "machine   : " << options.config.toString() << "\n";
    out << "finished  : "
        << (sim.finished ? "yes"
                         : wall_timed_out ? "NO (wall-clock timeout)"
                                          : "NO (cycle cap)")
        << "\n";
    out << "cycles    : " << sim.cycles << "\n";
    out << "committed : " << sim.committedInstructions << "\n";
    out << format("ipc       : %.3f\n", sim.ipc());
    for (unsigned t = 0; t < options.config.numThreads; ++t) {
        out << format(
            "thread %u  : %llu instructions\n", t,
            static_cast<unsigned long long>(cpu.committedInstructions(
                static_cast<ThreadId>(t))));
    }

    if (options.stats) {
        StatsRegistry registry;
        cpu.reportStats(registry);
        out << "\n" << registry.toString();
    }
    if (sim.finished)
        return 0;
    return wall_timed_out ? 3 : 2;
}

} // namespace sdsp

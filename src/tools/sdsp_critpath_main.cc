/**
 * @file
 * Entry point of the sdsp-critpath analyzer (see critpath_cli.hh).
 */

#include <iostream>

#include "tools/critpath_cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    sdsp::CritpathCliOptions options =
        sdsp::parseCritpathCliOptions(args);
    if (!options.ok) {
        std::cerr << "sdsp-critpath: " << options.error << "\n\n"
                  << sdsp::critpathCliUsage();
        return 1;
    }
    return sdsp::runCritpathCli(options, std::cout);
}

#include "tools/explore_cli.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "harness/sweep.hh"
#include "workloads/workload.hh"

namespace sdsp
{

namespace
{

std::optional<std::uint64_t>
parseNumber(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (end != text.c_str() + text.size())
        return std::nullopt;
    return value;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload *workload : allWorkloads())
        if (workload->name() == name)
            return workload;
    for (const Workload *workload : extensionWorkloads())
        if (workload->name() == name)
            return workload;
    return nullptr;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> items;
    std::istringstream stream(list);
    std::string item;
    while (std::getline(stream, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/** Parse one --axis spec "KEY=V1,V2,..." and validate every value
 *  against WhatIf::applyKeyValue. */
bool
parseAxisSpec(const std::string &spec, LatticeAxis *axis,
              std::string *error)
{
    std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        *error = "expected KEY=V1,V2,..., got '" + spec + "'";
        return false;
    }
    axis->key = spec.substr(0, eq);
    axis->values.clear();
    for (const std::string &item : splitCommas(spec.substr(eq + 1))) {
        char *end = nullptr;
        long value = std::strtol(item.c_str(), &end, 10);
        if (end != item.c_str() + item.size()) {
            *error = "axis value '" + item + "' is not an integer";
            return false;
        }
        WhatIf probe;
        if (!probe.applyKeyValue(
                format("%s=%ld", axis->key.c_str(), value), error))
            return false;
        axis->values.push_back(value);
    }
    if (axis->values.empty()) {
        *error = "axis '" + axis->key + "' has no values";
        return false;
    }
    return true;
}

} // namespace

std::string
exploreCliUsage()
{
    return "usage: sdsp-explore [options]\n"
           "  --workloads LIST     comma list of recordings "
           "(default LL1,LL5,Sieve; max 12)\n"
           "  --list               list built-in benchmarks\n"
           "  -t N                 resident threads (default 4)\n"
           "  --scale N            workload problem scale percent "
           "(default 25)\n"
           "  --jobs N             worker threads (default: "
           "SDSP_BENCH_JOBS or all cores)\n"
           "  --reduced            24-point smoke lattice instead of "
           "the full 3456\n"
           "  --axis KEY=V1,V2,..  override one lattice axis; may "
           "repeat\n"
           "  --no-resim           skip frontier re-simulation\n"
           "  --include-points     dump every lattice point into the "
           "JSON\n"
           "  --json PATH          write the sdsp-explore-v1 report\n";
}

ExploreCliOptions
parseExploreCliOptions(const std::vector<std::string> &args)
{
    ExploreCliOptions options;

    auto fail = [&](const std::string &why) {
        options.ok = false;
        options.error = why;
        return options;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next_value = [&]() -> std::optional<std::string> {
            if (i + 1 >= args.size())
                return std::nullopt;
            return args[++i];
        };

        if (arg == "--workloads" || arg == "-t" || arg == "--scale" ||
            arg == "--jobs" || arg == "--axis" || arg == "--json") {
            auto value = next_value();
            if (!value)
                return fail(arg + " needs a value");

            if (arg == "--workloads") {
                options.workloads = splitCommas(*value);
                if (options.workloads.empty())
                    return fail("--workloads list is empty");
            } else if (arg == "-t") {
                auto n = parseNumber(*value);
                if (!n || *n < 1 || *n > 16)
                    return fail("bad thread count: " + *value);
                options.threads = static_cast<unsigned>(*n);
            } else if (arg == "--scale") {
                auto n = parseNumber(*value);
                if (!n || *n < 1 || *n > 1000)
                    return fail("bad scale: " + *value);
                options.scale = static_cast<unsigned>(*n);
            } else if (arg == "--jobs") {
                auto n = parseNumber(*value);
                if (!n || *n < 1 || *n > 256)
                    return fail("bad job count: " + *value);
                options.jobs = static_cast<unsigned>(*n);
            } else if (arg == "--axis") {
                options.axisSpecs.push_back(*value);
            } else { // --json
                options.jsonPath = *value;
            }
        } else if (arg == "--reduced") {
            options.reduced = true;
        } else if (arg == "--no-resim") {
            options.noResim = true;
        } else if (arg == "--include-points") {
            options.includePoints = true;
        } else if (arg == "--list") {
            options.list = true;
        } else {
            return fail("unknown option: " + arg);
        }
    }

    if (options.workloads.size() > 12) {
        return fail(format("%zu recordings requested; the explorer "
                           "projects thousands of points from at "
                           "most 12",
                           options.workloads.size()));
    }
    // Validate the axis specs at parse time (cheap failure first).
    for (const std::string &spec : options.axisSpecs) {
        LatticeAxis axis;
        std::string error;
        if (!parseAxisSpec(spec, &axis, &error))
            return fail("--axis " + spec + ": " + error);
    }
    return options;
}

int
runExploreCli(const ExploreCliOptions &options, std::ostream &out)
{
    if (options.list) {
        for (const Workload *workload : allWorkloads())
            out << workload->name() << "\n";
        for (const Workload *workload : extensionWorkloads())
            out << workload->name() << "\n";
        return 0;
    }

    const unsigned jobs =
        options.jobs ? options.jobs : SweepRunner::defaultJobs();

    MachineConfig base;
    base.numThreads = options.threads;
    base.finalize();

    // ---- Record the baselines (one real simulation each). ----
    std::vector<const Workload *> sources;
    for (const std::string &name : options.workloads) {
        const Workload *workload = findWorkload(name);
        if (!workload) {
            out << "sdsp-explore: no benchmark named '" << name
                << "' (see --list)\n";
            return 1;
        }
        sources.push_back(workload);
    }

    auto record_start = std::chrono::steady_clock::now();
    std::vector<ExploreRecording> recordings(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i)
        recordings[i] = recordBaseline(*sources[i], base,
                                       options.scale);
    auto record_end = std::chrono::steady_clock::now();

    Cycle baselineTotal = 0;
    out << "machine    : " << base.toString() << "\n";
    out << format("recordings : %zu workloads, t=%u, scale %u%%\n",
                  recordings.size(), options.threads, options.scale);
    for (const ExploreRecording &recording : recordings) {
        if (!recording.error.empty()) {
            out << "sdsp-explore: " << recording.workload << ": "
                << recording.error << "\n";
            return recording.error.rfind("did not finish", 0) == 0
                       ? 2
                       : 1;
        }
        baselineTotal += recording.measured;
        out << format("  %-10s %10llu cycles  %9llu insts  "
                      "(%zu nodes, %zu edges)\n",
                      recording.workload.c_str(),
                      static_cast<unsigned long long>(
                          recording.measured),
                      static_cast<unsigned long long>(
                          recording.committed),
                      recording.graph->nodeCount(),
                      recording.graph->edgeCount());
    }
    out << format("  recorded in %.1f ms (exact critical paths)\n",
                  std::chrono::duration<double, std::milli>(
                      record_end - record_start)
                      .count());

    // ---- Enumerate and project the lattice. ----
    LatticeAxes axes = options.reduced ? LatticeAxes::reduced()
                                       : LatticeAxes::full();
    for (const std::string &spec : options.axisSpecs) {
        LatticeAxis axis;
        std::string error;
        if (!parseAxisSpec(spec, &axis, &error)) {
            out << "sdsp-explore: --axis " << spec << ": " << error
                << "\n";
            return 1;
        }
        axes.overrideAxis(std::move(axis));
    }

    std::vector<LatticePoint> points = buildLattice(axes, base);
    auto project_start = std::chrono::steady_clock::now();
    projectLattice(points, recordings, jobs);
    auto project_end = std::chrono::steady_clock::now();
    const double projectMs =
        std::chrono::duration<double, std::milli>(project_end -
                                                  project_start)
            .count();

    std::vector<std::size_t> frontier = paretoFrontier(points);

    ExploreReport report;
    report.base = base;
    report.scale = options.scale;
    report.tolerancePercent = exploreTolerancePercent(options.scale);
    report.includeAllPoints = options.includePoints;
    report.recordings = &recordings;
    report.points = &points;
    report.frontier = &frontier;

    std::vector<FrontierValidation> validations;
    if (!options.noResim) {
        validations = validateFrontier(points, frontier, recordings,
                                       base, options.scale, jobs);
        report.validations = &validations;
    }
    const ExploreSummary summary = summarize(report);

    out << format("lattice    : %zu points x %zu recordings "
                  "projected in %.0f ms (%.0f projections/s)\n",
                  points.size(), recordings.size(), projectMs,
                  projectMs > 0.0
                      ? static_cast<double>(points.size() *
                                            recordings.size()) *
                            1000.0 / projectMs
                      : 0.0);
    out << format("confidence : %zu exact, %zu optimistic-bound, "
                  "%zu pessimistic-bound (excluded from frontier)\n",
                  summary.exact, summary.optimistic,
                  summary.pessimistic);

    // ---- The frontier. ----
    out << format("frontier   : %zu Pareto-optimal points "
                  "(cost vs. projected cycles)\n",
                  frontier.size());
    out << format("  %10s %14s %8s %-18s %s\n", "cost", "projected",
                  "speedup", "confidence", "what-if");
    for (std::size_t idx : frontier) {
        const LatticePoint &point = points[idx];
        out << format("  %10.1f %14llu %7.3fx %-18s %s\n", point.cost,
                      static_cast<unsigned long long>(
                          point.projectedTotal),
                      point.projectedTotal
                          ? static_cast<double>(baselineTotal) /
                                static_cast<double>(
                                    point.projectedTotal)
                          : 0.0,
                      confidenceName(point.confidence),
                      point.name.c_str());
    }

    // ---- Validation against real re-simulations. ----
    if (!options.noResim) {
        out << format("validation : %zu frontier points re-simulated "
                      "(tolerance %.1f%% at scale %u)\n",
                      validations.size(), report.tolerancePercent,
                      options.scale);
        for (const FrontierValidation &validation : validations) {
            const LatticePoint &point = points[validation.point];
            if (!validation.allOk) {
                std::string detail;
                for (std::size_t r = 0;
                     r < validation.errors.size(); ++r) {
                    if (validation.errors[r].empty())
                        continue;
                    detail += detail.empty() ? "" : "; ";
                    detail += recordings[r].workload + ": " +
                              validation.errors[r];
                }
                out << format("  %-44s RESIM FAILED (%s)\n",
                              point.name.c_str(), detail.c_str());
                continue;
            }
            out << format(
                "  %-44s projected %12llu  real %12llu  "
                "error %+.2f%%%s%s\n",
                point.name.c_str(),
                static_cast<unsigned long long>(
                    point.projectedTotal),
                static_cast<unsigned long long>(
                    validation.resimTotal),
                validation.errorPercent,
                validation.soundnessGated ? "  [sound bound]" : "",
                validation.optimisticViolation ? "  VIOLATION"
                                               : "");
        }
        out << format("summary    : max |error| %.2f%%, %zu resim "
                      "failures, %zu optimistic-bound violations\n",
                      summary.maxAbsErrorPercent,
                      summary.resimFailures,
                      summary.optimisticViolations);
        if (summary.maxAbsErrorPercent > report.tolerancePercent) {
            out << format("warning    : max projection error exceeds "
                          "the %.1f%% tolerance\n",
                          report.tolerancePercent);
        }
    }

    if (!options.jsonPath.empty()) {
        std::ofstream json(options.jsonPath);
        if (!json) {
            out << "sdsp-explore: cannot open " << options.jsonPath
                << "\n";
            return 1;
        }
        json << exploreJson(report) << "\n";
        out << "(json written to " << options.jsonPath << ")\n";
    }

    if (summary.resimFailures || summary.optimisticViolations)
        return 1;
    return 0;
}

} // namespace sdsp

#include "tools/fuzz_cli.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "fuzz/differential.hh"
#include "fuzz/generator.hh"
#include "fuzz/minimize.hh"

namespace sdsp
{

namespace
{

std::optional<std::uint64_t>
parseNumber(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (end != text.c_str() + text.size())
        return std::nullopt;
    return value;
}

/**
 * The machine grid one case's configuration is drawn from. Thread
 * counts stay within the generator's 8-partition memory layout, and
 * every shape axis the paper sweeps appears at least once: fetch
 * policy, SU depth, commit policy, renaming scheme, and bypassing.
 */
MachineConfig
gridConfig(std::uint64_t pick)
{
    MachineConfig config;
    switch (pick % 8) {
      case 0:
        config.numThreads = 1;
        break;
      case 1:
        config.numThreads = 2;
        config.fetchPolicy = FetchPolicy::MaskedRoundRobin;
        break;
      case 2:
        config.numThreads = 4;
        config.fetchPolicy = FetchPolicy::ConditionalSwitch;
        break;
      case 3:
        config.numThreads = 8;
        config.fetchPolicy = FetchPolicy::Adaptive;
        break;
      case 4:
        config.numThreads = 4;
        config.suEntries = 16;
        config.commitPolicy = CommitPolicy::LowestBlockOnly;
        break;
      case 5:
        config.numThreads = 8;
        config.suEntries = 64;
        break;
      case 6:
        config.numThreads = 2;
        config.renameScheme = RenameScheme::Scoreboard1Bit;
        break;
      default:
        config.numThreads = 4;
        config.bypassing = false;
        break;
    }
    config.finalize();
    return config;
}

/** Everything one case needs, derived from a single seed value. */
struct FuzzCase
{
    std::uint64_t caseSeed;
    FuzzShape shape;
    MachineConfig config;
    Program program;
};

FuzzCase
deriveCase(std::uint64_t case_seed,
           const std::vector<std::string> &shapes)
{
    FuzzCase c;
    c.caseSeed = case_seed;
    Xorshift64 rng(case_seed);
    c.shape = FuzzShape::preset(
        shapes[rng.nextBelow(shapes.size())]);
    c.config = gridConfig(rng.next());
    c.program = generateProgram(c.shape, case_seed);
    return c;
}

std::string
reproCommand(const FuzzCliOptions &options, std::uint64_t index)
{
    return format("sdsp-fuzz --seed %llu --count 1 --shape %s",
                  static_cast<unsigned long long>(options.seed +
                                                  index),
                  options.shape.c_str());
}

/** Minimized repros written per campaign (minimization is slow). */
constexpr unsigned kMaxRepros = 5;

} // namespace

std::string
fuzzCliUsage()
{
    return "usage: sdsp-fuzz [options]\n"
           "  --seed N      base seed (default 1)\n"
           "  --count N     cases to run (default 100)\n"
           "  --shape NAME  smoke|branchy|loopy|memory|deep|all\n"
           "                (default all)\n"
           "  --minimize    shrink failing cases to .s repros\n"
           "  --out DIR     directory for repros (default .)\n";
}

FuzzCliOptions
parseFuzzCliOptions(const std::vector<std::string> &args)
{
    FuzzCliOptions options;

    auto fail = [&](const std::string &why) {
        options.ok = false;
        options.error = why;
        return options;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next_value = [&]() -> std::optional<std::string> {
            if (i + 1 >= args.size())
                return std::nullopt;
            return args[++i];
        };

        if (arg == "--seed" || arg == "--count" ||
            arg == "--shape" || arg == "--out") {
            auto value = next_value();
            if (!value)
                return fail(arg + " needs a value");
            if (arg == "--seed") {
                auto n = parseNumber(*value);
                if (!n)
                    return fail("bad seed: " + *value);
                options.seed = *n;
            } else if (arg == "--count") {
                auto n = parseNumber(*value);
                if (!n || *n < 1)
                    return fail("bad count: " + *value);
                options.count = *n;
            } else if (arg == "--shape") {
                options.shape = *value;
            } else { // --out
                options.outDir = *value;
            }
        } else if (arg == "--minimize") {
            options.minimize = true;
        } else {
            return fail("unknown option: " + arg);
        }
    }

    if (options.shape != "all") {
        bool known = false;
        for (const std::string &name : FuzzShape::presetNames())
            known = known || name == options.shape;
        if (!known)
            return fail("unknown shape: " + options.shape);
    }
    return options;
}

int
runFuzzCli(const FuzzCliOptions &options, std::ostream &out)
{
    std::vector<std::string> shapes;
    if (options.shape == "all")
        shapes = FuzzShape::presetNames();
    else
        shapes.push_back(options.shape);

    out << format("sdsp-fuzz: seed %llu, %llu case(s), shape %s\n",
                  static_cast<unsigned long long>(options.seed),
                  static_cast<unsigned long long>(options.count),
                  options.shape.c_str());

    std::uint64_t failures = 0;
    unsigned repros = 0;
    for (std::uint64_t index = 0; index < options.count; ++index) {
        FuzzCase c = deriveCase(options.seed + index, shapes);
        DiffResult diff = runDifferential(c.program, c.config);
        if (index > 0 && index % 10000 == 0) {
            out << format("sdsp-fuzz: %llu/%llu cases, %llu "
                          "failure(s)\n",
                          static_cast<unsigned long long>(index),
                          static_cast<unsigned long long>(
                              options.count),
                          static_cast<unsigned long long>(failures));
        }
        if (diff.ok)
            continue;

        ++failures;
        out << format("sdsp-fuzz: FAIL case %llu (seed %llu): %s\n",
                      static_cast<unsigned long long>(index),
                      static_cast<unsigned long long>(c.caseSeed),
                      diff.kind.c_str());
        out << "  shape   : " << c.shape.name << "\n";
        out << "  machine : " << c.config.toString() << "\n";
        out << "  detail  : " << diff.detail << "\n";
        out << "  repro   : " << reproCommand(options, index) << "\n";

        if (!options.minimize || repros >= kMaxRepros)
            continue;
        ++repros;

        MachineConfig config = c.config;
        MinimizeResult minimized = minimizeProgram(
            c.program, diff.kind, [&](const Program &candidate) {
                return runDifferential(candidate, config).kind;
            });
        std::string header = format(
            "sdsp-fuzz minimized repro\n"
            "failure : %s\n"
            "detail  : %s\n"
            "seed    : %llu  shape %s\n"
            "machine : %s\n"
            "repro   : %s\n"
            "size    : %zu -> %zu instructions",
            diff.kind.c_str(), diff.detail.c_str(),
            static_cast<unsigned long long>(c.caseSeed),
            c.shape.name.c_str(), c.config.toString().c_str(),
            reproCommand(options, index).c_str(),
            minimized.originalInsts, minimized.minimizedInsts);
        std::string repro_asm =
            programToAssembly(minimized.program, header);

        auto path = std::filesystem::path(options.outDir) /
                    format("repro-%s-seed%llu.s", diff.kind.c_str(),
                           static_cast<unsigned long long>(
                               c.caseSeed));
        std::ofstream repro_file(path);
        if (!repro_file) {
            out << "sdsp-fuzz: cannot write " << path.string()
                << "\n";
        } else {
            repro_file << repro_asm;
            out << format("  repro case written to %s (%zu -> %zu "
                          "instructions)\n",
                          path.string().c_str(),
                          minimized.originalInsts,
                          minimized.minimizedInsts);
        }
    }

    out << format("sdsp-fuzz: ran %llu case(s): %llu failure(s)\n",
                  static_cast<unsigned long long>(options.count),
                  static_cast<unsigned long long>(failures));
    return failures == 0 ? 0 : 1;
}

} // namespace sdsp

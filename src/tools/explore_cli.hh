/**
 * @file
 * The sdsp-explore design-space lattice explorer.
 *
 * From a handful of per-workload recordings (one real simulation
 * each), projects a what-if lattice of thousands of machine
 * variants through the critical-path engine, cuts the Pareto
 * frontier of (hardware cost, projected cycles), re-simulates ONLY
 * the frontier for real, and reports per-point projection error:
 *
 *     sdsp-explore                             # 3456-point lattice
 *     sdsp-explore --workloads LL1,LL5 -t 4 --scale 25
 *     sdsp-explore --reduced --no-resim --json out.json
 *     sdsp-explore --axis suEntries=16,32,64,128
 *
 * Pessimistic-bound points (capacity decreases) are projected and
 * reported but never enter the frontier. The JSON artifact is
 * sdsp-explore-v1 (see DESIGN.md §11).
 */

#ifndef SDSP_TOOLS_EXPLORE_CLI_HH
#define SDSP_TOOLS_EXPLORE_CLI_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "explore/explore.hh"

namespace sdsp
{

/** Parsed sdsp-explore invocation. */
struct ExploreCliOptions
{
    /** Workloads to record, one recording each (<= 12). */
    std::vector<std::string> workloads = {"LL1", "LL5", "Sieve"};
    unsigned threads = 4;
    /** Problem scale in percent. Defaults to the golden scale so an
     *  interactive run stays snappy. */
    unsigned scale = 25;
    /** Worker threads for projection and re-simulation (0 = the
     *  SweepRunner default). */
    unsigned jobs = 0;
    /** Use the reduced (24-point) lattice instead of the full one. */
    bool reduced = false;
    /** Raw --axis overrides, "KEY=V1,V2,..." each. */
    std::vector<std::string> axisSpecs;
    /** Skip frontier re-simulation (projection + frontier only). */
    bool noResim = false;
    /** Serialize every lattice point into the JSON artifact. */
    bool includePoints = false;
    /** Write the sdsp-explore-v1 JSON document here (empty = off). */
    std::string jsonPath;
    /** List the built-in workloads and exit. */
    bool list = false;
    /** Set when parsing failed; message explains why. */
    bool ok = true;
    std::string error;
};

/** Parse argv. Never exits; reports problems via options.error. */
ExploreCliOptions
parseExploreCliOptions(const std::vector<std::string> &args);

/** The --help text. */
std::string exploreCliUsage();

/**
 * Record, project, cut the frontier, validate, report. @return 0 on
 * success, 1 on a setup error or a soundness failure (re-simulation
 * failures / optimistic-bound violations), 2 when a recording run
 * did not finish.
 */
int runExploreCli(const ExploreCliOptions &options,
                  std::ostream &out);

} // namespace sdsp

#endif // SDSP_TOOLS_EXPLORE_CLI_HH

/**
 * @file
 * Entry point of the sdsp-explore lattice explorer (see
 * explore_cli.hh).
 */

#include <iostream>

#include "tools/explore_cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    sdsp::ExploreCliOptions options =
        sdsp::parseExploreCliOptions(args);
    if (!options.ok) {
        std::cerr << "sdsp-explore: " << options.error << "\n\n"
                  << sdsp::exploreCliUsage();
        return 1;
    }
    return sdsp::runExploreCli(options, std::cout);
}

/**
 * @file
 * The sdsp-lint command-line static analyzer.
 *
 * Runs the src/analysis passes (CFG, dataflow diagnostics, the static
 * IPC bound) over assembly files and/or built-in workloads:
 *
 *     sdsp-lint [options] [program.s ...]
 *
 * Options:
 *     --workload NAME   analyze a built-in workload (repeatable)
 *     --all             analyze every built-in and extension workload
 *     -t N              thread count workloads are built for
 *                       (default 4; also the bound's thread count)
 *     --scale N         workload problem scale percent (default 100)
 *     --align           apply the section-6.1 layout to .s inputs
 *     --extra-memory N  scratch bytes appended after a .s data
 *                       section (default 0, matching sdsp-run)
 *     --json PATH       also write a JSON report ("-" = stdout)
 *
 * Exit code 0 when every program is clean, 1 when any finding was
 * reported, 2 on usage or input errors. The CI lint job runs
 * `sdsp-lint --all` and `sdsp-lint examples/trace_demo.s` and fails
 * on any nonzero exit.
 */

#ifndef SDSP_TOOLS_LINT_CLI_HH
#define SDSP_TOOLS_LINT_CLI_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sdsp
{

/** Parsed sdsp-lint invocation. */
struct LintCliOptions
{
    /** Assembly files to analyze. */
    std::vector<std::string> files;
    /** Built-in workloads to analyze. */
    std::vector<std::string> workloads;
    bool all = false;
    unsigned threads = 4;
    unsigned scale = 100;
    bool align = false;
    std::uint32_t extraMemory = 0;
    /** JSON output path; "-" = stdout, empty = none. */
    std::string jsonPath;
    /** Set when parsing failed; message explains why. */
    bool ok = true;
    std::string error;
};

/** Parse argv. Never exits; reports problems via ok/error. */
LintCliOptions parseLintCliOptions(const std::vector<std::string> &args);

/** Human-readable usage text. */
std::string lintCliUsage();

/**
 * Analyze per @p options, writing text reports to @p out.
 *
 * @return Process exit code: 0 all clean, 1 findings, 2 input error.
 */
int runLintCli(const LintCliOptions &options, std::ostream &out);

} // namespace sdsp

#endif // SDSP_TOOLS_LINT_CLI_HH

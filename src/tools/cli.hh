/**
 * @file
 * The sdsp-run command-line simulator.
 *
 * Assembles an SDSP-MT assembly file and runs it on a configurable
 * machine:
 *
 *     sdsp-run [options] program.s
 *
 * Options (see parseCliOptions for the full list):
 *     -t N                 resident threads (default 1)
 *     -f POLICY            truerr | maskedrr | cswitch | adaptive
 *                          | weightedrr
 *     -w W0,W1,...         fetch weights for weightedrr
 *     -s N                 scheduling unit entries (default 32)
 *     --commit MODE        flexible | lowest
 *     --rename MODE        full | scoreboard
 *     --no-bypass          disable result bypassing
 *     --cache-ways N       data cache associativity (1 = direct)
 *     --cache-size BYTES   data cache capacity
 *     --cache-partitions N per-thread cache partitions
 *     --btb-banks N        private per-thread BTBs
 *     --finite-icache      model a finite instruction cache
 *     --max-cycles N       simulation cap
 *     --timeout SECS       wall-clock budget (exit code 3 when hit)
 *     --align              apply the section-6.1 layout optimization
 *     --trace              per-cycle pipeline event trace
 *     --trace-file PATH    write the text trace to PATH
 *     --trace-json PATH    write a Chrome-trace-event (Perfetto)
 *                          trace to PATH
 *     --stats              dump all statistics after the run
 *                          (scalars, latency histograms, and the
 *                          per-thread stall attribution with
 *                          percent-of-total columns)
 *     --critpath           build the dynamic dependence graph and
 *                          print the critical-path breakdown
 *                          (verified exact against the cycle count)
 *     --disasm             print the disassembly and exit
 *     --record PATH        record the committed-instruction stream
 *                          as a replayable trace file
 *     --replay PATH        exact-replay a recorded trace instead of
 *                          running a program, verifying the committed
 *                          stream against the recording
 *     --replay-stream LIST stream-replay a "trace cocktail": a comma
 *                          list of TRACE[:tid] items, one hardware
 *                          thread per item
 *     --summary-json PATH  write a machine-readable run summary
 *
 * Parsing and execution live behind a testable interface; main() is
 * a thin wrapper.
 */

#ifndef SDSP_TOOLS_CLI_HH
#define SDSP_TOOLS_CLI_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hh"

namespace sdsp
{

/** Parsed sdsp-run invocation. */
struct CliOptions
{
    MachineConfig config;
    std::string programPath;
    bool trace = false;
    /** Write the text trace here (empty = off). */
    std::string traceFile;
    /** Write the Chrome-trace-event (Perfetto) trace here. */
    std::string traceJson;
    bool stats = false;
    bool disasmOnly = false;
    bool align = false;
    /** Record the run as a replayable trace (empty = off). */
    std::string recordPath;
    /** Exact-replay this trace instead of running a program. */
    std::string replayPath;
    /** Stream-replay cocktail: comma list of TRACE[:tid] items. */
    std::string replayStream;
    /** Write a machine-readable run summary here (empty = off). */
    std::string summaryJson;
    /** Record the dependence graph and print the critical-path
     *  breakdown after the run. */
    bool critpath = false;
    /** Wall-clock budget in seconds; 0 = unlimited. A run stopped by
     *  this budget exits with code 3 (cycle cap stays code 2). */
    double timeoutSeconds = 0.0;
    /** Set when parsing failed; message explains why. */
    bool ok = true;
    std::string error;
};

/** Parse argv. Never exits; reports problems via CliOptions::error. */
CliOptions parseCliOptions(const std::vector<std::string> &args);

/** Human-readable usage text. */
std::string cliUsage();

/**
 * Assemble and run per @p options, writing output to @p out (and the
 * trace, if enabled, to @p trace_out).
 *
 * @return Process exit code: 0 on success, 1 on input errors, 2 when
 *         the cycle cap stopped the run, 3 when --timeout did.
 */
int runCli(const CliOptions &options, std::ostream &out,
           std::ostream &trace_out);

} // namespace sdsp

#endif // SDSP_TOOLS_CLI_HH

/**
 * @file
 * Control-flow graph construction over a Program image.
 *
 * The analyzer is the admission-control front door for programs that
 * have not been emitted by our own trusted builders (the future trace
 * frontend and random-program fuzzer), so construction is defensive:
 * undecodable words never reach Instruction::decode (which is fatal),
 * and direct control transfers whose static target lies outside the
 * code image produce no edge — both conditions surface later as lint
 * findings instead of crashes.
 *
 * Basic blocks are maximal single-entry straight-line runs. Block
 * leaders are the entry point, every direct branch/jump target, and
 * every instruction following a control transfer. Edges:
 *
 *  - conditional branch: taken target plus fallthrough;
 *  - direct jump (J/JAL): target only;
 *  - indirect jump (JR): conservatively, an edge to EVERY block
 *    leader (the register could hold anything);
 *  - HALT and undecodable words: no successors;
 *  - a block ended by a leader (not by control flow): fallthrough.
 */

#ifndef SDSP_ANALYSIS_CFG_HH
#define SDSP_ANALYSIS_CFG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace sdsp
{

/** One basic block: instructions [first, last], inclusive. */
struct BasicBlock
{
    InstAddr first = 0;
    InstAddr last = 0;
    std::vector<std::uint32_t> succs;
    std::vector<std::uint32_t> preds;
    /** Reachable from the entry block along CFG edges. */
    bool reachable = false;

    unsigned size() const { return last - first + 1; }
};

/** The control-flow graph of one program. */
class Cfg
{
  public:
    /** Sentinel for "instruction belongs to no block". */
    static constexpr std::uint32_t kNoBlock = ~0u;

    /** Decode @p program and build its CFG. Never fatal. */
    static Cfg build(const Program &program);

    /** Decoded instructions; undecodable words appear as NOP. */
    const std::vector<Instruction> &instructions() const { return insts_; }

    /** The instruction at @p pc (NOP when undecodable). */
    const Instruction &inst(InstAddr pc) const { return insts_[pc]; }

    /** True iff the word at @p pc held a defined opcode. */
    bool decoded(InstAddr pc) const { return valid_[pc]; }

    /** Basic blocks in address order. */
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    const BasicBlock &block(std::uint32_t id) const { return blocks_[id]; }

    std::uint32_t numBlocks() const
    {
        return static_cast<std::uint32_t>(blocks_.size());
    }

    /** Block containing @p pc (kNoBlock only for empty programs). */
    std::uint32_t blockOf(InstAddr pc) const { return blockIndex_[pc]; }

    /** Block holding the entry point. */
    std::uint32_t entryBlock() const { return entryBlock_; }

    /** Instruction count of the program. */
    InstAddr numInsts() const
    {
        return static_cast<InstAddr>(insts_.size());
    }

    /** True iff @p pc is in a block reachable from the entry. */
    bool
    reachable(InstAddr pc) const
    {
        std::uint32_t b = blockOf(pc);
        return b != kNoBlock && blocks_[b].reachable;
    }

    /** The program contains at least one indirect jump (JR). */
    bool hasIndirectJumps() const { return indirect_; }

  private:
    std::vector<Instruction> insts_;
    std::vector<bool> valid_;
    std::vector<BasicBlock> blocks_;
    std::vector<std::uint32_t> blockIndex_;
    std::uint32_t entryBlock_ = kNoBlock;
    bool indirect_ = false;
};

} // namespace sdsp

#endif // SDSP_ANALYSIS_CFG_HH

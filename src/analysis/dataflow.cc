#include "analysis/dataflow.hh"

#include "isa/semantics.hh"

namespace sdsp
{

RegSet
instReads(const Instruction &inst)
{
    RegSet reads;
    if (inst.readsRs1())
        reads.set(inst.rs1);
    if (inst.readsRs2())
        reads.set(inst.rs2);
    return reads;
}

void
ConstState::meet(const ConstState &other)
{
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        if (other.kind[r] == ConstKind::Bottom)
            continue;
        if (kind[r] == ConstKind::Bottom) {
            kind[r] = other.kind[r];
            value[r] = other.value[r];
            continue;
        }
        if (kind[r] == ConstKind::Const &&
            other.kind[r] == ConstKind::Const && value[r] == other.value[r])
            continue;
        kind[r] = ConstKind::Varying;
        value[r] = 0;
    }
}

void
ConstState::apply(const Instruction &inst, InstAddr pc)
{
    if (!inst.writesRd())
        return;
    RegIndex rd = inst.rd;
    // Values that depend on the executing thread or on memory are
    // never compile-time constants.
    if (inst.op == Opcode::TID || inst.op == Opcode::NTH ||
        inst.isLoad()) {
        kind[rd] = ConstKind::Varying;
        value[rd] = 0;
        return;
    }
    if (inst.op == Opcode::JAL) {
        kind[rd] = ConstKind::Const;
        value[rd] = evalLinkValue(pc);
        return;
    }
    bool foldable = true;
    if (inst.readsRs1() && kind[inst.rs1] != ConstKind::Const)
        foldable = false;
    if (inst.readsRs2() && kind[inst.rs2] != ConstKind::Const)
        foldable = false;
    if (!foldable) {
        kind[rd] = ConstKind::Varying;
        value[rd] = 0;
        return;
    }
    // tid/nthreads are unused by every foldable opcode.
    kind[rd] = ConstKind::Const;
    value[rd] = evalCompute(inst, value[inst.rs1], value[inst.rs2], 0, 1);
}

ConstState
ConstState::allVarying()
{
    ConstState state;
    state.kind.fill(ConstKind::Varying);
    return state;
}

ConstState
ConstState::bottom()
{
    ConstState state;
    state.kind.fill(ConstKind::Bottom);
    return state;
}

DataflowResult
DataflowResult::run(const Cfg &cfg)
{
    DataflowResult result;
    const std::uint32_t n = cfg.numBlocks();
    result.blocks.resize(n);
    result.constIn.assign(n, ConstState::bottom());
    if (n == 0)
        return result;

    // Per-block use/def summaries.
    for (std::uint32_t b = 0; b < n; ++b) {
        BlockDataflow &flow = result.blocks[b];
        const BasicBlock &block = cfg.block(b);
        for (InstAddr pc = block.first; pc <= block.last; ++pc) {
            if (!cfg.decoded(pc))
                continue;
            const Instruction &inst = cfg.inst(pc);
            flow.use |= instReads(inst) & ~flow.def;
            if (instWrites(inst))
                flow.def.set(inst.rd);
        }
    }

    // Backward liveness to a fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t i = n; i-- > 0;) {
            BlockDataflow &flow = result.blocks[i];
            RegSet out;
            for (std::uint32_t succ : cfg.block(i).succs)
                out |= result.blocks[succ].liveIn;
            RegSet in = flow.use | (out & ~flow.def);
            if (out != flow.liveOut || in != flow.liveIn) {
                flow.liveOut = out;
                flow.liveIn = in;
                changed = true;
            }
        }
    }

    // Forward definite assignment over reachable blocks. The entry
    // block's in-set is empty (nothing is assigned at program start —
    // architectural zero-initialization is deliberately not credited,
    // so reliance on it is reported). Other blocks start at "all
    // assigned" and intersect over reachable predecessors.
    const std::uint32_t entry = cfg.entryBlock();
    for (std::uint32_t b = 0; b < n; ++b) {
        BlockDataflow &flow = result.blocks[b];
        flow.definiteIn = b == entry ? RegSet{} : RegSet{}.flip();
        flow.definiteOut = flow.definiteIn | flow.def;
    }
    changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t b = 0; b < n; ++b) {
            if (!cfg.block(b).reachable)
                continue;
            BlockDataflow &flow = result.blocks[b];
            RegSet in;
            if (b != entry) {
                in.flip();
                for (std::uint32_t pred : cfg.block(b).preds) {
                    if (cfg.block(pred).reachable)
                        in &= result.blocks[pred].definiteOut;
                }
            }
            RegSet out = in | flow.def;
            if (in != flow.definiteIn || out != flow.definiteOut) {
                flow.definiteIn = in;
                flow.definiteOut = out;
                changed = true;
            }
        }
    }

    // Forward constant propagation (worklist from the entry block).
    if (entry != Cfg::kNoBlock) {
        result.constIn[entry] = ConstState::allVarying();
        std::vector<std::uint32_t> worklist = {entry};
        while (!worklist.empty()) {
            std::uint32_t b = worklist.back();
            worklist.pop_back();
            ConstState out = result.constIn[b];
            const BasicBlock &block = cfg.block(b);
            for (InstAddr pc = block.first; pc <= block.last; ++pc) {
                if (cfg.decoded(pc))
                    out.apply(cfg.inst(pc), pc);
            }
            for (std::uint32_t succ : block.succs) {
                ConstState next = result.constIn[succ];
                next.meet(out);
                if (!(next == result.constIn[succ])) {
                    result.constIn[succ] = next;
                    worklist.push_back(succ);
                }
            }
        }
    }
    return result;
}

} // namespace sdsp

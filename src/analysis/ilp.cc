#include "analysis/ilp.hh"

#include <algorithm>
#include <limits>

namespace sdsp
{

LatencyModel
LatencyModel::unit()
{
    LatencyModel model;
    model.latency.fill(1);
    return model;
}

namespace
{

/** Register dependence heights at one program point. */
using Heights = std::array<double, kNumArchRegs>;

/**
 * Reverse postorder over reachable blocks, following forward edges
 * only once per node (DFS). Used as the processing order for every
 * forward pass; with back edges removed the order is topological for
 * reducible graphs, and any residual out-of-order edge only makes the
 * MIN-join passes more conservative (lower), which is the sound
 * direction.
 */
std::vector<std::uint32_t>
reversePostorder(const Cfg &cfg)
{
    const std::uint32_t n = cfg.numBlocks();
    std::vector<std::uint8_t> state(n, 0); // 0 new, 1 open, 2 done
    std::vector<std::uint32_t> order;
    if (n == 0 || cfg.entryBlock() == Cfg::kNoBlock)
        return order;
    // Iterative DFS with an explicit edge cursor.
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    stack.emplace_back(cfg.entryBlock(), 0);
    state[cfg.entryBlock()] = 1;
    while (!stack.empty()) {
        auto &[node, cursor] = stack.back();
        const auto &succs = cfg.block(node).succs;
        if (cursor < succs.size()) {
            std::uint32_t next = succs[cursor++];
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[node] = 2;
            order.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

/** Immediate dominators via the Cooper-Harvey-Kennedy iteration. */
std::vector<std::uint32_t>
immediateDominators(const Cfg &cfg, const std::vector<std::uint32_t> &rpo)
{
    const std::uint32_t n = cfg.numBlocks();
    constexpr std::uint32_t kUndef = ~0u;
    std::vector<std::uint32_t> idom(n, kUndef);
    if (rpo.empty())
        return idom;
    std::vector<std::uint32_t> rpoIndex(n, kUndef);
    for (std::uint32_t i = 0; i < rpo.size(); ++i)
        rpoIndex[rpo[i]] = i;
    const std::uint32_t entry = cfg.entryBlock();
    idom[entry] = entry;

    auto intersect = [&](std::uint32_t a, std::uint32_t b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t node : rpo) {
            if (node == entry)
                continue;
            std::uint32_t newIdom = kUndef;
            for (std::uint32_t pred : cfg.block(node).preds) {
                if (idom[pred] == kUndef)
                    continue; // unreachable or not yet processed
                newIdom = newIdom == kUndef ? pred
                                            : intersect(newIdom, pred);
            }
            if (newIdom != kUndef && idom[node] != newIdom) {
                idom[node] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<std::uint32_t> &idom, std::uint32_t a,
          std::uint32_t b)
{
    constexpr std::uint32_t kUndef = ~0u;
    if (idom[b] == kUndef)
        return false;
    std::uint32_t node = b;
    while (true) {
        if (node == a)
            return true;
        std::uint32_t up = idom[node];
        if (up == node || up == kUndef)
            return a == node;
        node = up;
    }
}

/** Decoded-instruction count of block @p b. */
std::uint64_t
decodedInsts(const Cfg &cfg, std::uint32_t b)
{
    std::uint64_t count = 0;
    const BasicBlock &block = cfg.block(b);
    for (InstAddr pc = block.first; pc <= block.last; ++pc)
        count += cfg.decoded(pc) ? 1 : 0;
    return count;
}

/**
 * Apply one block's instructions to a height map. Each register write
 * settles at (max over read source heights) + producer latency; MIN
 * over merge paths happens at the join, not here.
 */
void
applyBlock(const Cfg &cfg, const LatencyModel &model, std::uint32_t b,
           Heights &heights)
{
    const BasicBlock &block = cfg.block(b);
    for (InstAddr pc = block.first; pc <= block.last; ++pc) {
        if (!cfg.decoded(pc))
            continue;
        const Instruction &inst = cfg.inst(pc);
        if (!inst.writesRd())
            continue;
        double ready = 0.0;
        if (inst.readsRs1())
            ready = std::max(ready, heights[inst.rs1]);
        if (inst.readsRs2())
            ready = std::max(ready, heights[inst.rs2]);
        heights[inst.rd] =
            ready + static_cast<double>(model.of(inst.info().fuClass));
    }
}

void
minJoin(Heights &into, const Heights &other)
{
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        into[r] = std::min(into[r], other[r]);
}

/**
 * Latency-weighted recurrence of one loop: iterate the loop body's
 * transfer function (MIN-join at merges, inner back edges excluded)
 * and measure the stabilized per-iteration growth of the register
 * height vector. Max-plus growth can oscillate with a short period
 * around its asymptotic rate; the MINIMUM single-step growth across
 * the post-warmup window never exceeds that rate (the steps average
 * to it), so taking the minimum keeps the recurrence a sound lower
 * bound. For simple accumulator/induction loops the steps are
 * constant and the minimum is exact.
 */
double
loopRecurrence(const Cfg &cfg, const LatencyModel &model,
               const std::vector<std::uint32_t> &idom,
               const std::vector<std::uint32_t> &rpo,
               const LoopSummary &loop)
{
    constexpr unsigned kWarmup = 32;
    constexpr unsigned kTotal = 64;
    const double kUnset = std::numeric_limits<double>::infinity();

    std::vector<bool> member(cfg.numBlocks(), false);
    for (std::uint32_t b : loop.blocks)
        member[b] = true;

    // Member blocks in reverse postorder, header first.
    std::vector<std::uint32_t> order;
    order.reserve(loop.blocks.size());
    for (std::uint32_t b : rpo) {
        if (member[b])
            order.push_back(b);
    }
    if (order.empty() || order.front() != loop.header)
        return 0.0; // degenerate (irreducible JR mesh); claim nothing

    Heights carried{};
    double prevPeak = 0.0;
    double minStep = std::numeric_limits<double>::infinity();
    std::vector<Heights> outState(cfg.numBlocks());
    for (unsigned iter = 0; iter < kTotal; ++iter) {
        std::vector<bool> haveIn(cfg.numBlocks(), false);
        std::vector<Heights> inState(cfg.numBlocks());
        inState[loop.header] = carried;
        haveIn[loop.header] = true;
        for (std::uint32_t b : order) {
            if (b != loop.header) {
                // MIN-join over in-loop forward predecessors.
                Heights in;
                in.fill(kUnset);
                bool any = false;
                for (std::uint32_t pred : cfg.block(b).preds) {
                    if (!member[pred])
                        continue;
                    if (dominates(idom, b, pred))
                        continue; // back edge (into b)
                    if (!haveIn[pred])
                        continue; // stale order: skip, stays lower
                    if (any) {
                        minJoin(in, outState[pred]);
                    } else {
                        in = outState[pred];
                        any = true;
                    }
                }
                inState[b] = any ? in : carried;
                haveIn[b] = true;
            }
            outState[b] = inState[b];
            applyBlock(cfg, model, b, outState[b]);
        }
        // Next iteration's header state: MIN over latch outputs.
        Heights next;
        bool anyLatch = false;
        for (std::uint32_t pred : cfg.block(loop.header).preds) {
            if (!member[pred] || !dominates(idom, loop.header, pred))
                continue;
            if (anyLatch) {
                minJoin(next, outState[pred]);
            } else {
                next = outState[pred];
                anyLatch = true;
            }
        }
        if (!anyLatch)
            return 0.0;
        carried = next;
        double peak = *std::max_element(carried.begin(), carried.end());
        if (iter >= kWarmup)
            minStep = std::min(minStep, peak - prevPeak);
        prevPeak = peak;
    }
    return minStep > 0.0 && minStep < kUnset ? minStep : 0.0;
}

} // namespace

std::int32_t
DependenceSummary::dominantLoop() const
{
    std::int32_t best = -1;
    std::uint64_t bestInsts = 0;
    for (std::size_t i = 0; i < loops.size(); ++i) {
        if (loops[i].ownInsts > bestInsts) {
            bestInsts = loops[i].ownInsts;
            best = static_cast<std::int32_t>(i);
        }
    }
    return best;
}

DependenceSummary
analyzeDependence(const Cfg &cfg, const LatencyModel &model)
{
    DependenceSummary dep;
    const std::uint32_t n = cfg.numBlocks();
    dep.blockHeight.assign(n, 0.0);
    dep.innermostLoop.assign(n, -1);
    if (n == 0)
        return dep;

    const std::vector<std::uint32_t> rpo = reversePostorder(cfg);
    const std::vector<std::uint32_t> idom = immediateDominators(cfg, rpo);

    // Instruction counts and FU-class pressure over reachable code.
    for (std::uint32_t b = 0; b < n; ++b) {
        if (!cfg.block(b).reachable)
            continue;
        const BasicBlock &block = cfg.block(b);
        for (InstAddr pc = block.first; pc <= block.last; ++pc) {
            if (!cfg.decoded(pc))
                continue;
            ++dep.reachableInsts;
            ++dep.classCounts[static_cast<unsigned>(
                cfg.inst(pc).info().fuClass)];
        }
    }

    // Natural loops from dominator back edges; merge shared headers.
    for (std::uint32_t u : rpo) {
        for (std::uint32_t h : cfg.block(u).succs) {
            if (!dominates(idom, h, u))
                continue;
            // Natural loop of back edge u->h.
            std::vector<std::uint32_t> body = {h};
            std::vector<bool> inBody(n, false);
            inBody[h] = true;
            std::vector<std::uint32_t> worklist;
            if (!inBody[u]) {
                inBody[u] = true;
                body.push_back(u);
                worklist.push_back(u);
            }
            while (!worklist.empty()) {
                std::uint32_t node = worklist.back();
                worklist.pop_back();
                for (std::uint32_t pred : cfg.block(node).preds) {
                    if (!cfg.block(pred).reachable || inBody[pred])
                        continue;
                    inBody[pred] = true;
                    body.push_back(pred);
                    worklist.push_back(pred);
                }
            }
            auto existing = std::find_if(
                dep.loops.begin(), dep.loops.end(),
                [h](const LoopSummary &l) { return l.header == h; });
            if (existing == dep.loops.end()) {
                LoopSummary loop;
                loop.header = h;
                loop.blocks = std::move(body);
                dep.loops.push_back(std::move(loop));
            } else {
                for (std::uint32_t b : body) {
                    if (std::find(existing->blocks.begin(),
                                  existing->blocks.end(),
                                  b) == existing->blocks.end())
                        existing->blocks.push_back(b);
                }
            }
        }
    }
    for (LoopSummary &loop : dep.loops)
        std::sort(loop.blocks.begin(), loop.blocks.end());
    std::sort(dep.loops.begin(), dep.loops.end(),
              [](const LoopSummary &a, const LoopSummary &b) {
                  return a.header < b.header;
              });

    // Nesting depth and innermost-loop attribution. Loop A encloses
    // loop B iff A contains B's header and they differ; ties on
    // member count cannot happen for distinct natural loops that
    // contain each other.
    for (std::size_t i = 0; i < dep.loops.size(); ++i) {
        unsigned depth = 1;
        for (std::size_t j = 0; j < dep.loops.size(); ++j) {
            if (i == j)
                continue;
            const LoopSummary &outer = dep.loops[j];
            if (std::binary_search(outer.blocks.begin(),
                                   outer.blocks.end(),
                                   dep.loops[i].header) &&
                outer.blocks.size() > dep.loops[i].blocks.size())
                ++depth;
        }
        dep.loops[i].depth = depth;
        dep.maxLoopDepth = std::max(dep.maxLoopDepth, depth);
    }
    for (std::size_t i = 0; i < dep.loops.size(); ++i) {
        for (std::uint32_t b : dep.loops[i].blocks) {
            std::int32_t cur = dep.innermostLoop[b];
            if (cur < 0 ||
                dep.loops[i].depth >
                    dep.loops[static_cast<std::size_t>(cur)].depth)
                dep.innermostLoop[b] = static_cast<std::int32_t>(i);
        }
    }

    // Loop instruction counts and per-class pressure.
    for (std::size_t i = 0; i < dep.loops.size(); ++i) {
        LoopSummary &loop = dep.loops[i];
        for (std::uint32_t b : loop.blocks) {
            std::uint64_t count = decodedInsts(cfg, b);
            loop.totalInsts += count;
            if (dep.innermostLoop[b] ==
                static_cast<std::int32_t>(i)) {
                loop.ownInsts += count;
                const BasicBlock &block = cfg.block(b);
                for (InstAddr pc = block.first; pc <= block.last;
                     ++pc) {
                    if (cfg.decoded(pc))
                        ++loop.classCounts[static_cast<unsigned>(
                            cfg.inst(pc).info().fuClass)];
                }
            }
        }
    }
    for (std::uint32_t b = 0; b < n; ++b) {
        if (cfg.block(b).reachable && dep.innermostLoop[b] < 0)
            dep.onceInsts += decodedInsts(cfg, b);
    }

    // Loop recurrences.
    for (LoopSummary &loop : dep.loops)
        loop.recurrence = loopRecurrence(cfg, model, idom, rpo, loop);

    // Per-block internal heights and the acyclic critical path
    // (MAX-join, back edges removed) — informational.
    std::vector<Heights> dagOut(n);
    for (std::uint32_t b : rpo) {
        Heights in{};
        for (std::uint32_t pred : cfg.block(b).preds) {
            if (!cfg.block(pred).reachable || dominates(idom, b, pred))
                continue;
            for (unsigned r = 0; r < kNumArchRegs; ++r)
                in[r] = std::max(in[r], dagOut[pred][r]);
        }
        Heights local{};
        applyBlock(cfg, model, b, local);
        dep.blockHeight[b] =
            *std::max_element(local.begin(), local.end());
        dagOut[b] = in;
        applyBlock(cfg, model, b, dagOut[b]);
        dep.criticalPath =
            std::max(dep.criticalPath,
                     *std::max_element(dagOut[b].begin(),
                                       dagOut[b].end()));
    }
    dep.dagIlp = dep.criticalPath > 0.0
                     ? static_cast<double>(dep.reachableInsts) /
                           dep.criticalPath
                     : static_cast<double>(dep.reachableInsts);
    return dep;
}

StaticIpcBound
staticIpcBound(const DependenceSummary &dep, const IpcBoundInputs &inputs)
{
    StaticIpcBound bound;
    bound.numThreads = inputs.numThreads;
    bound.fetchLimit = inputs.blockSize;
    bound.issueLimit = inputs.issueWidth;
    bound.onceInsts = dep.onceInsts;

    double steady = 0.0;
    bool anyLoop = false;
    for (const LoopSummary &loop : dep.loops) {
        if (loop.ownInsts == 0)
            continue;
        anyLoop = true;
        double term = loop.recurrence > 0.0
                          ? static_cast<double>(loop.ownInsts) /
                                loop.recurrence
                          : static_cast<double>(inputs.blockSize);
        steady += std::min(static_cast<double>(inputs.blockSize), term);
    }
    // A loop-free program is bounded by the transient term alone.
    bound.perThreadSteady =
        anyLoop ? std::min(static_cast<double>(inputs.blockSize), steady)
                : 0.0;
    return bound;
}

} // namespace sdsp

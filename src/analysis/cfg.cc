#include "analysis/cfg.hh"

#include <algorithm>

namespace sdsp
{

namespace
{

/**
 * Static target of a direct control transfer as a signed value, so
 * that branches with negative offsets near address zero do not wrap.
 */
std::int64_t
signedTarget(const Instruction &inst, InstAddr pc)
{
    if (inst.isDirectJump())
        return static_cast<std::int64_t>(inst.imm);
    return static_cast<std::int64_t>(pc) + inst.imm;
}

bool
targetInRange(std::int64_t target, std::size_t size)
{
    return target >= 0 && target < static_cast<std::int64_t>(size);
}

} // namespace

Cfg
Cfg::build(const Program &program)
{
    Cfg cfg;
    const std::size_t size = program.code.size();
    cfg.insts_.reserve(size);
    cfg.valid_.resize(size, false);
    cfg.blockIndex_.assign(size, kNoBlock);

    // Defensive decode: only words whose opcode field names a defined
    // opcode go through Instruction::decode (which is fatal on junk).
    for (std::size_t pc = 0; pc < size; ++pc) {
        InstWord word = program.code[pc];
        auto raw = static_cast<std::uint8_t>(word >> 24);
        if (isValidOpcode(raw)) {
            cfg.insts_.push_back(Instruction::decode(word));
            cfg.valid_[pc] = true;
            if (cfg.insts_.back().isIndirectJump())
                cfg.indirect_ = true;
        } else {
            cfg.insts_.push_back(Instruction{});
        }
    }
    if (size == 0)
        return cfg;

    // Leaders: entry, direct targets, and whatever follows a control
    // transfer or an undecodable word (both end a block).
    std::vector<bool> leader(size, false);
    if (program.entry < size)
        leader[program.entry] = true;
    leader[0] = true;
    for (std::size_t pc = 0; pc < size; ++pc) {
        if (!cfg.valid_[pc]) {
            if (pc + 1 < size)
                leader[pc + 1] = true;
            continue;
        }
        const Instruction &inst = cfg.insts_[pc];
        if (!inst.isControl())
            continue;
        if (inst.isCondBranch() || inst.isDirectJump()) {
            std::int64_t target =
                signedTarget(inst, static_cast<InstAddr>(pc));
            if (targetInRange(target, size))
                leader[static_cast<std::size_t>(target)] = true;
        }
        if (pc + 1 < size)
            leader[pc + 1] = true;
    }

    // Carve blocks.
    for (std::size_t pc = 0; pc < size; ++pc) {
        if (leader[pc]) {
            BasicBlock block;
            block.first = static_cast<InstAddr>(pc);
            block.last = block.first;
            cfg.blocks_.push_back(block);
        } else {
            cfg.blocks_.back().last = static_cast<InstAddr>(pc);
        }
        cfg.blockIndex_[pc] =
            static_cast<std::uint32_t>(cfg.blocks_.size() - 1);
    }

    // Edges.
    auto addEdge = [&cfg](std::uint32_t from, std::uint32_t to) {
        cfg.blocks_[from].succs.push_back(to);
        cfg.blocks_[to].preds.push_back(from);
    };
    for (std::uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        const BasicBlock &block = cfg.blocks_[b];
        InstAddr pc = block.last;
        if (!cfg.valid_[pc])
            continue; // undecodable: treated as an opaque stop
        const Instruction &inst = cfg.insts_[pc];
        if (inst.isHalt())
            continue;
        if (inst.isIndirectJump()) {
            // JR: the register could hold any leader address.
            for (std::uint32_t t = 0; t < cfg.numBlocks(); ++t)
                addEdge(b, t);
            continue;
        }
        if (inst.isCondBranch() || inst.isDirectJump()) {
            std::int64_t target = signedTarget(inst, pc);
            if (targetInRange(target, size))
                addEdge(b, cfg.blockOf(static_cast<InstAddr>(target)));
            if (inst.isDirectJump())
                continue;
        }
        // Fallthrough (conditional not-taken, or block cut by a
        // leader). A block ending at the last instruction without a
        // control transfer falls off the end: no edge, and lint
        // reports it.
        if (pc + 1 < size)
            addEdge(b, cfg.blockOf(pc + 1));
    }

    // Dedup edges (JR can double up with fallthrough).
    for (BasicBlock &block : cfg.blocks_) {
        auto dedup = [](std::vector<std::uint32_t> &edges) {
            std::sort(edges.begin(), edges.end());
            edges.erase(std::unique(edges.begin(), edges.end()),
                        edges.end());
        };
        dedup(block.succs);
        dedup(block.preds);
    }

    // Reachability from the entry block.
    cfg.entryBlock_ = program.entry < size ? cfg.blockOf(program.entry)
                                           : kNoBlock;
    if (cfg.entryBlock_ != kNoBlock) {
        std::vector<std::uint32_t> worklist = {cfg.entryBlock_};
        cfg.blocks_[cfg.entryBlock_].reachable = true;
        while (!worklist.empty()) {
            std::uint32_t b = worklist.back();
            worklist.pop_back();
            for (std::uint32_t succ : cfg.blocks_[b].succs) {
                if (!cfg.blocks_[succ].reachable) {
                    cfg.blocks_[succ].reachable = true;
                    worklist.push_back(succ);
                }
            }
        }
    }
    return cfg;
}

} // namespace sdsp

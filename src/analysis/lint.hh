/**
 * @file
 * The sdsp-lint diagnostic pass: admission control for program images.
 *
 * Combines the CFG (cfg.hh), the register dataflow analyses
 * (dataflow.hh) and the dependence-height analyzer (ilp.hh) into one
 * report: a list of findings (each tied to an instruction address and,
 * when the assembler provided a line table, a source line), summary
 * statistics, the per-FU-class pressure table, and the static IPC
 * upper bound that sdsp_bench_all uses as a simulator oracle.
 *
 * Severity policy: conditions that make an execution architecturally
 * wrong (undecodable words, branches leaving the image, falling off
 * the end of the code, provably out-of-bounds or misaligned memory
 * accesses, a register read before any write on some path) are
 * errors; conditions that are legal but almost certainly unintended
 * (unreachable code, dead register writes, SPIN outside a loop,
 * TID/NTH re-queried inside a loop) are warnings. Both fail the CI
 * lint gate; the distinction is for human readers.
 */

#ifndef SDSP_ANALYSIS_LINT_HH
#define SDSP_ANALYSIS_LINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/ilp.hh"
#include "common/json.hh"

namespace sdsp
{

enum class LintSeverity : std::uint8_t
{
    Warning,
    Error,
};

enum class LintCode : std::uint8_t
{
    BadOpcode,        //!< word does not decode to a defined opcode
    BadBranchTarget,  //!< direct transfer targets a non-instruction
    FallOffEnd,       //!< reachable path runs past the last instruction
    OobAccess,        //!< load/store provably outside memorySize
    MisalignedAccess, //!< load/store provably not 8-byte aligned
    ReadBeforeWrite,  //!< register read before any write on some path
    UnreachableBlock, //!< block no path from the entry reaches
    DeadWrite,        //!< register write never read afterwards
    SpinOutsideLoop,  //!< SPIN hint not inside any loop
    TidNthInLoop,     //!< loop-invariant TID/NTH re-queried in a loop
};

/** Stable machine-readable name of @p code (e.g. "read-before-write"). */
const char *lintCodeName(LintCode code);

const char *lintSeverityName(LintSeverity severity);

/** One diagnostic. */
struct LintFinding
{
    LintCode code = LintCode::BadOpcode;
    LintSeverity severity = LintSeverity::Error;
    /** Instruction address the finding anchors to. */
    InstAddr pc = 0;
    /** 1-based source line from the assembler, 0 when unknown. */
    int line = 0;
    std::string message;
};

/** Whole-program summary counters. */
struct LintStats
{
    std::uint32_t numBlocks = 0;
    std::uint32_t reachableBlocks = 0;
    /** Unreachable all-NOP blocks (layout padding); not findings. */
    std::uint32_t padBlocks = 0;
    std::uint64_t numInsts = 0;
    std::uint64_t reachableInsts = 0;
    std::uint32_t numLoops = 0;
    unsigned maxLoopDepth = 0;
};

/** Inputs that shape the analysis but not the program itself. */
struct LintOptions
{
    /**
     * 1-based source line per instruction address (from the
     * assembler); empty or short vectors mean "unknown".
     */
    std::vector<int> sourceLines;
    /** FU latencies for dependence heights (default: unit). */
    LatencyModel latency = LatencyModel::unit();
    /** Machine shape for the reported IPC bound. */
    IpcBoundInputs machine;
};

/** The full analysis result for one program. */
struct LintReport
{
    std::vector<LintFinding> findings;
    LintStats stats;
    DependenceSummary dependence;
    StaticIpcBound bound;

    bool clean() const { return findings.empty(); }
    unsigned errorCount() const;
    unsigned warningCount() const;

    /** Human-readable report; @p title names the program. */
    std::string toText(const std::string &title) const;

    /** Append the report as one JSON object value. */
    void appendJson(JsonWriter &writer, const std::string &title) const;
};

/** Run every analysis and diagnostic over @p program. */
LintReport lintProgram(const Program &program,
                       const LintOptions &options = {});

} // namespace sdsp

#endif // SDSP_ANALYSIS_LINT_HH

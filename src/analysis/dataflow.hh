/**
 * @file
 * Register dataflow analyses over the CFG.
 *
 * Three classic bit-vector / lattice analyses, each sized for the
 * machine's 128 architectural registers:
 *
 *  - backward liveness (may be read later) — drives dead-write
 *    detection;
 *  - forward definite assignment (must have been written on every
 *    path from the entry) — drives read-before-write detection; its
 *    meet is intersection, so a register initialized on only one arm
 *    of a diamond is correctly reported at a read after the join;
 *  - forward constant propagation (per-register constant / varying
 *    lattice, folded with the shared evalCompute semantics) — drives
 *    provably-out-of-bounds and misaligned memory-access detection.
 *
 * All are path-insensitive and conservative in the usual directions:
 * liveness and definite assignment over-approximate "may read" /
 * under-approximate "must write", and constant propagation only calls
 * a value constant when it is constant along every path, so every
 * diagnostic built on them reports only genuine static facts.
 */

#ifndef SDSP_ANALYSIS_DATAFLOW_HH
#define SDSP_ANALYSIS_DATAFLOW_HH

#include <array>
#include <bitset>
#include <vector>

#include "analysis/cfg.hh"
#include "common/types.hh"

namespace sdsp
{

/** A set of architectural registers. */
using RegSet = std::bitset<kNumArchRegs>;

/** Registers read by @p inst (rs1/rs2 per opcode flags). */
RegSet instReads(const Instruction &inst);

/** True iff @p inst architecturally writes a register. */
inline bool
instWrites(const Instruction &inst)
{
    return inst.writesRd();
}

/** Per-block bit-vector summaries and fixpoint results. */
struct BlockDataflow
{
    /** Upward-exposed reads (read before any in-block write). */
    RegSet use;
    /** Registers written anywhere in the block. */
    RegSet def;
    RegSet liveIn;
    RegSet liveOut;
    /** Must-assigned on entry/exit of the block (reachable only). */
    RegSet definiteIn;
    RegSet definiteOut;
};

/** Constant-propagation lattice per register. */
enum class ConstKind : std::uint8_t
{
    Bottom,  //!< no path reaches here yet (identity for the meet)
    Const,   //!< the same compile-time value on every path
    Varying, //!< anything else
};

/** Constant-propagation state at one program point. */
struct ConstState
{
    std::array<ConstKind, kNumArchRegs> kind{};
    std::array<RegVal, kNumArchRegs> value{};

    bool
    isConst(RegIndex r) const
    {
        return kind[r] == ConstKind::Const;
    }

    /** Meet with @p other (elementwise lattice meet). */
    void meet(const ConstState &other);

    /** Apply one instruction's transfer function in place. */
    void apply(const Instruction &inst, InstAddr pc);

    /** Values of non-Const entries are normalized to zero, so
     *  structural equality is lattice equality. */
    bool operator==(const ConstState &other) const = default;

    /** All registers varying (the analysis entry state). */
    static ConstState allVarying();

    /** All registers bottom (the "unvisited" state). */
    static ConstState bottom();
};

/** Results of all register dataflow analyses for one CFG. */
struct DataflowResult
{
    std::vector<BlockDataflow> blocks;
    /** Constant state at each block entry (reachable blocks only). */
    std::vector<ConstState> constIn;

    static DataflowResult run(const Cfg &cfg);
};

} // namespace sdsp

#endif // SDSP_ANALYSIS_DATAFLOW_HH

/**
 * @file
 * Static dependence-height analysis and the static IPC upper bound.
 *
 * The paper measures, by cycle-accurate simulation, how much
 * instruction- and thread-level parallelism the SDSP workloads expose.
 * This analyzer derives a cheap analytical ceiling for the same
 * quantity from the program text alone, in the spirit of the
 * dependence-structure models of QiMeng-CPU-v2 and the CVA6 analytical
 * performance model: a latency-weighted register-dependence recurrence
 * per natural loop, combined with the machine's fetch and issue
 * ceilings, bounds the IPC any execution can reach.
 *
 * Soundness direction: the bound must never be BELOW what the
 * simulator can measure, so every approximation errs upward:
 *
 *  - loop recurrences are computed with a MIN-join at control-flow
 *    merges (the fastest path bounds value availability from below);
 *  - inner-loop back edges are ignored when analyzing an outer loop
 *    (one inner iteration per outer iteration underestimates time);
 *  - memory dependences (store→load) are ignored entirely;
 *  - dependent-instruction spacing is the producer's FU latency,
 *    which full bypassing can meet but never beat.
 *
 * The per-thread steady-state bound is
 *
 *     min(blockSize, sum over loops L of min(blockSize, own_L/rec_L))
 *
 * where own_L counts instructions whose innermost loop is L. It is a
 * genuine theorem for this machine: a thread's commits decompose into
 * loop-resident instructions (N_L * own_L) plus straight-line code,
 * total time T >= max_L (N_L * rec_L), and sum_L a_L / max_L b_L <=
 * sum_L a_L/b_L; the blockSize clamps hold because a thread fetches at
 * most one blockSize-wide block per cycle. Straight-line
 * ("executed-once") code is accounted at gate time as a transient
 * credit numThreads * onceInsts / cycles on top of the steady term.
 */

#ifndef SDSP_ANALYSIS_ILP_HH
#define SDSP_ANALYSIS_ILP_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"

namespace sdsp
{

/** Per-FU-class issue-to-dependent-issue latencies. */
struct LatencyModel
{
    std::array<unsigned, kNumFuClasses> latency{};

    /** All classes at latency 1 (pure dependence-count model). */
    static LatencyModel unit();

    /** From a per-class latency array (e.g. FuConfig latencies). */
    static LatencyModel
    fromLatencies(const std::array<unsigned, kNumFuClasses> &lat)
    {
        return LatencyModel{lat};
    }

    unsigned
    of(FuClass cls) const
    {
        return latency[static_cast<unsigned>(cls)];
    }
};

/** One natural loop (loops sharing a header are merged). */
struct LoopSummary
{
    /** Header block id. */
    std::uint32_t header = 0;
    /** Member block ids, sorted. */
    std::vector<std::uint32_t> blocks;
    /** Nesting depth; 1 = outermost. */
    unsigned depth = 1;
    /** Decoded instructions across all member blocks. */
    std::uint64_t totalInsts = 0;
    /** Instructions in blocks whose innermost loop is this one. */
    std::uint64_t ownInsts = 0;
    /**
     * Latency-weighted register recurrence: a lower bound on the
     * cycles one header-to-header iteration must take. Zero when the
     * loop carries no register dependence.
     */
    double recurrence = 0.0;
    /** Per-FU-class counts over own blocks (one iteration). */
    std::array<std::uint64_t, kNumFuClasses> classCounts{};
};

/** Whole-program dependence summary. */
struct DependenceSummary
{
    /** Decoded instructions in reachable blocks. */
    std::uint64_t reachableInsts = 0;
    /** Reachable instructions outside every natural loop. */
    std::uint64_t onceInsts = 0;
    /**
     * Latency-weighted dependence height of the acyclic CFG (back
     * edges removed, MAX-join): the classic critical path of one pass
     * over the code. Informational only — it is not a sound bound in
     * the presence of loops.
     */
    double criticalPath = 0.0;
    /** reachableInsts / criticalPath (informational). */
    double dagIlp = 0.0;
    /** Natural loops, outermost-first by header address. */
    std::vector<LoopSummary> loops;
    /** Deepest loop nesting (0 = no loops). */
    unsigned maxLoopDepth = 0;
    /** Per-FU-class counts over all reachable instructions. */
    std::array<std::uint64_t, kNumFuClasses> classCounts{};
    /** Per-block internal dependence height (latency-weighted). */
    std::vector<double> blockHeight;
    /** Innermost loop index per block (-1 = not in any loop). */
    std::vector<std::int32_t> innermostLoop;

    /** The loop with the largest ownInsts (the dominant loop), or
     *  -1 when the program has no loops. */
    std::int32_t dominantLoop() const;
};

/** Analyze @p cfg under @p model. */
DependenceSummary analyzeDependence(const Cfg &cfg,
                                    const LatencyModel &model);

/** Machine parameters the bound depends on. */
struct IpcBoundInputs
{
    unsigned numThreads = 1;
    unsigned blockSize = 4;
    unsigned issueWidth = 8;
};

/** A static upper bound on machine IPC for one program + machine. */
struct StaticIpcBound
{
    /** One thread fetches one block per cycle: IPC <= blockSize. */
    double fetchLimit = 0.0;
    /** IPC <= issueWidth. */
    double issueLimit = 0.0;
    /** Steady-state per-thread dependence term (<= blockSize). */
    double perThreadSteady = 0.0;
    /** Straight-line instructions credited as a transient. */
    std::uint64_t onceInsts = 0;
    unsigned numThreads = 1;

    /** Bound as cycles -> infinity (no transient credit). */
    double
    asymptotic() const
    {
        double dep = static_cast<double>(numThreads) * perThreadSteady;
        return std::min({fetchLimit, issueLimit, dep});
    }

    /**
     * Bound for a finite run of @p cycles: the steady term plus the
     * executed-once transient, re-clamped by the hard per-cycle
     * machine ceilings.
     */
    double
    boundAtCycles(std::uint64_t cycles) const
    {
        if (cycles == 0)
            return fetchLimit;
        double transient = static_cast<double>(numThreads) *
                           static_cast<double>(onceInsts) /
                           static_cast<double>(cycles);
        double dep =
            static_cast<double>(numThreads) * perThreadSteady + transient;
        return std::min({fetchLimit, issueLimit, dep});
    }
};

/** Combine a dependence summary with machine parameters. */
StaticIpcBound staticIpcBound(const DependenceSummary &dep,
                              const IpcBoundInputs &inputs);

} // namespace sdsp

#endif // SDSP_ANALYSIS_ILP_HH

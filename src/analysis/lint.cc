#include "analysis/lint.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/semantics.hh"

namespace sdsp
{

const char *
lintCodeName(LintCode code)
{
    switch (code) {
      case LintCode::BadOpcode: return "bad-opcode";
      case LintCode::BadBranchTarget: return "bad-branch-target";
      case LintCode::FallOffEnd: return "fall-off-end";
      case LintCode::OobAccess: return "out-of-bounds-access";
      case LintCode::MisalignedAccess: return "misaligned-access";
      case LintCode::ReadBeforeWrite: return "read-before-write";
      case LintCode::UnreachableBlock: return "unreachable-block";
      case LintCode::DeadWrite: return "dead-write";
      case LintCode::SpinOutsideLoop: return "spin-outside-loop";
      case LintCode::TidNthInLoop: return "tid-nth-in-loop";
    }
    return "unknown";
}

const char *
lintSeverityName(LintSeverity severity)
{
    return severity == LintSeverity::Error ? "error" : "warning";
}

namespace
{

class Linter
{
  public:
    Linter(const Program &program, const LintOptions &options)
        : program_(program), options_(options),
          cfg_(Cfg::build(program))
    {
    }

    LintReport
    run()
    {
        flow_ = DataflowResult::run(cfg_);
        report_.dependence = analyzeDependence(cfg_, options_.latency);
        report_.bound =
            staticIpcBound(report_.dependence, options_.machine);
        fillStats();
        checkDecodeAndTargets();
        checkReachability();
        checkFallOffEnd();
        checkReadBeforeWrite();
        checkDeadWrites();
        checkMemoryAccesses();
        checkThreadOps();
        sortFindings();
        return std::move(report_);
    }

  private:
    void
    add(LintCode code, LintSeverity severity, InstAddr pc,
        std::string message)
    {
        LintFinding finding;
        finding.code = code;
        finding.severity = severity;
        finding.pc = pc;
        if (pc < options_.sourceLines.size())
            finding.line = options_.sourceLines[pc];
        finding.message = std::move(message);
        report_.findings.push_back(std::move(finding));
    }

    void
    fillStats()
    {
        LintStats &stats = report_.stats;
        stats.numBlocks = cfg_.numBlocks();
        stats.numInsts = cfg_.numInsts();
        stats.reachableInsts = report_.dependence.reachableInsts;
        stats.numLoops =
            static_cast<std::uint32_t>(report_.dependence.loops.size());
        stats.maxLoopDepth = report_.dependence.maxLoopDepth;
        for (std::uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
            if (cfg_.block(b).reachable)
                ++stats.reachableBlocks;
        }
    }

    void
    checkDecodeAndTargets()
    {
        for (InstAddr pc = 0; pc < cfg_.numInsts(); ++pc) {
            if (!cfg_.decoded(pc)) {
                add(LintCode::BadOpcode, LintSeverity::Error, pc,
                    format("word 0x%08x does not decode to any opcode",
                           program_.code[pc]));
                continue;
            }
            const Instruction &inst = cfg_.inst(pc);
            if (!inst.isCondBranch() && !inst.isDirectJump())
                continue;
            auto target = static_cast<std::int64_t>(
                inst.isDirectJump()
                    ? static_cast<std::int64_t>(inst.imm)
                    : static_cast<std::int64_t>(pc) + inst.imm);
            if (target < 0 ||
                target >= static_cast<std::int64_t>(cfg_.numInsts())) {
                add(LintCode::BadBranchTarget, LintSeverity::Error, pc,
                    format("%s targets instruction %lld, outside the "
                           "%u-instruction image",
                           opName(inst.op),
                           static_cast<long long>(target),
                           cfg_.numInsts()));
            }
        }
    }

    void
    checkReachability()
    {
        for (std::uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
            const BasicBlock &block = cfg_.block(b);
            if (block.reachable)
                continue;
            bool allNop = true;
            for (InstAddr pc = block.first; pc <= block.last; ++pc) {
                if (!cfg_.decoded(pc) ||
                    cfg_.inst(pc).op != Opcode::NOP) {
                    allNop = false;
                    break;
                }
            }
            if (allNop) {
                // Alignment padding the layout pass inserts behind
                // unconditional jumps; deliberate, not a finding.
                ++report_.stats.padBlocks;
                continue;
            }
            add(LintCode::UnreachableBlock, LintSeverity::Warning,
                block.first,
                format("block [%u, %u] is unreachable from the entry",
                       block.first, block.last));
        }
    }

    void
    checkFallOffEnd()
    {
        for (std::uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
            const BasicBlock &block = cfg_.block(b);
            if (!block.reachable ||
                block.last + 1 != cfg_.numInsts())
                continue;
            if (!cfg_.decoded(block.last))
                continue; // already a bad-opcode error
            const Instruction &last = cfg_.inst(block.last);
            bool canFallThrough = !last.isControl() ||
                                  last.isCondBranch();
            if (canFallThrough) {
                add(LintCode::FallOffEnd, LintSeverity::Error,
                    block.last,
                    "execution can run past the last instruction "
                    "(no terminating HALT or jump)");
            }
        }
    }

    void
    checkReadBeforeWrite()
    {
        for (std::uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
            const BasicBlock &block = cfg_.block(b);
            if (!block.reachable)
                continue;
            RegSet assigned = flow_.blocks[b].definiteIn;
            for (InstAddr pc = block.first; pc <= block.last; ++pc) {
                if (!cfg_.decoded(pc))
                    continue;
                const Instruction &inst = cfg_.inst(pc);
                RegSet reads = instReads(inst);
                for (unsigned r = 0; r < kNumArchRegs; ++r) {
                    if (reads.test(r) && !assigned.test(r)) {
                        add(LintCode::ReadBeforeWrite,
                            LintSeverity::Error, pc,
                            format("%s reads r%u, which is not written "
                                   "on every path from the entry",
                                   opName(inst.op), r));
                    }
                }
                if (instWrites(inst))
                    assigned.set(inst.rd);
            }
        }
    }

    void
    checkDeadWrites()
    {
        for (std::uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
            const BasicBlock &block = cfg_.block(b);
            if (!block.reachable)
                continue;
            RegSet live = flow_.blocks[b].liveOut;
            for (InstAddr pc = block.last + 1; pc-- > block.first;) {
                if (!cfg_.decoded(pc))
                    continue;
                const Instruction &inst = cfg_.inst(pc);
                if (instWrites(inst)) {
                    if (!live.test(inst.rd)) {
                        add(LintCode::DeadWrite, LintSeverity::Warning,
                            pc,
                            format("%s writes r%u, but the value is "
                                   "never read",
                                   opName(inst.op), inst.rd));
                    }
                    live.reset(inst.rd);
                }
                live |= instReads(inst);
                if (pc == block.first)
                    break;
            }
        }
    }

    void
    checkMemoryAccesses()
    {
        for (std::uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
            const BasicBlock &block = cfg_.block(b);
            if (!block.reachable)
                continue;
            ConstState state = flow_.constIn[b];
            for (InstAddr pc = block.first; pc <= block.last; ++pc) {
                if (!cfg_.decoded(pc))
                    continue;
                const Instruction &inst = cfg_.inst(pc);
                if ((inst.isLoad() || inst.isStore()) &&
                    state.isConst(inst.rs1)) {
                    auto addr = static_cast<std::int64_t>(
                                    state.value[inst.rs1]) +
                                inst.imm;
                    if (addr < 0 ||
                        addr + 8 > static_cast<std::int64_t>(
                                       program_.memorySize)) {
                        add(LintCode::OobAccess, LintSeverity::Error,
                            pc,
                            format("%s accesses byte %lld, outside "
                                   "the %u-byte data memory",
                                   opName(inst.op),
                                   static_cast<long long>(addr),
                                   program_.memorySize));
                    } else if (addr % 8 != 0) {
                        add(LintCode::MisalignedAccess,
                            LintSeverity::Error, pc,
                            format("%s accesses byte %lld, which is "
                                   "not 8-byte aligned",
                                   opName(inst.op),
                                   static_cast<long long>(addr)));
                    }
                }
                state.apply(inst, pc);
            }
        }
    }

    void
    checkThreadOps()
    {
        for (std::uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
            const BasicBlock &block = cfg_.block(b);
            if (!block.reachable)
                continue;
            bool inLoop = report_.dependence.innermostLoop[b] >= 0;
            for (InstAddr pc = block.first; pc <= block.last; ++pc) {
                if (!cfg_.decoded(pc))
                    continue;
                Opcode op = cfg_.inst(pc).op;
                if (op == Opcode::SPIN && !inLoop) {
                    add(LintCode::SpinOutsideLoop, LintSeverity::Warning,
                        pc,
                        "SPIN marks a busy-wait, but this instruction "
                        "is not inside any loop");
                } else if ((op == Opcode::TID || op == Opcode::NTH) &&
                           inLoop) {
                    add(LintCode::TidNthInLoop, LintSeverity::Warning,
                        pc,
                        format("%s is loop-invariant; query it once "
                               "before the loop",
                               opName(op)));
                }
            }
        }
    }

    void
    sortFindings()
    {
        std::stable_sort(
            report_.findings.begin(), report_.findings.end(),
            [](const LintFinding &a, const LintFinding &b) {
                if (a.pc != b.pc)
                    return a.pc < b.pc;
                return static_cast<unsigned>(a.code) <
                       static_cast<unsigned>(b.code);
            });
    }

    const Program &program_;
    const LintOptions &options_;
    Cfg cfg_;
    DataflowResult flow_;
    LintReport report_;
};

} // namespace

unsigned
LintReport::errorCount() const
{
    unsigned count = 0;
    for (const LintFinding &finding : findings)
        count += finding.severity == LintSeverity::Error ? 1 : 0;
    return count;
}

unsigned
LintReport::warningCount() const
{
    return static_cast<unsigned>(findings.size()) - errorCount();
}

std::string
LintReport::toText(const std::string &title) const
{
    std::string out;
    out += format("%s: %llu instructions, %u blocks (%u reachable, "
                  "%u pad), %u loops (max depth %u)\n",
                  title.c_str(),
                  static_cast<unsigned long long>(stats.numInsts),
                  stats.numBlocks, stats.reachableBlocks,
                  stats.padBlocks, stats.numLoops, stats.maxLoopDepth);
    out += format("  static IPC bound: %.3f asymptotic "
                  "(fetch %.0f, issue %.0f, per-thread steady %.3f x "
                  "%u threads, %llu once-insts)\n",
                  bound.asymptotic(), bound.fetchLimit,
                  bound.issueLimit, bound.perThreadSteady,
                  bound.numThreads,
                  static_cast<unsigned long long>(bound.onceInsts));
    out += format("  dag critical path %.1f, dag ilp %.2f\n",
                  dependence.criticalPath, dependence.dagIlp);
    out += "  fu pressure:";
    for (unsigned cls = 0; cls < kNumFuClasses; ++cls) {
        if (dependence.classCounts[cls] == 0)
            continue;
        out += format(" %s %llu", fuClassName(static_cast<FuClass>(cls)),
                      static_cast<unsigned long long>(
                          dependence.classCounts[cls]));
    }
    out += "\n";
    for (const LoopSummary &loop : dependence.loops) {
        out += format("  loop@%u depth %u: %llu own insts "
                      "(%llu total), recurrence %.2f cycles/iter\n",
                      loop.header, loop.depth,
                      static_cast<unsigned long long>(loop.ownInsts),
                      static_cast<unsigned long long>(loop.totalInsts),
                      loop.recurrence);
    }
    for (const LintFinding &finding : findings) {
        if (finding.line > 0) {
            out += format("  %s [%s] pc %u (line %d): %s\n",
                          lintSeverityName(finding.severity),
                          lintCodeName(finding.code), finding.pc,
                          finding.line, finding.message.c_str());
        } else {
            out += format("  %s [%s] pc %u: %s\n",
                          lintSeverityName(finding.severity),
                          lintCodeName(finding.code), finding.pc,
                          finding.message.c_str());
        }
    }
    if (clean()) {
        out += "  clean\n";
    } else {
        out += format("  %u error(s), %u warning(s)\n", errorCount(),
                      warningCount());
    }
    return out;
}

void
LintReport::appendJson(JsonWriter &writer, const std::string &title) const
{
    writer.beginObject();
    writer.field("program", title);
    writer.key("stats")
        .beginObject()
        .field("instructions", stats.numInsts)
        .field("blocks", stats.numBlocks)
        .field("reachable_blocks", stats.reachableBlocks)
        .field("pad_blocks", stats.padBlocks)
        .field("reachable_instructions", stats.reachableInsts)
        .field("loops", stats.numLoops)
        .field("max_loop_depth", stats.maxLoopDepth)
        .endObject();
    writer.key("ilp").beginObject();
    writer.field("critical_path", dependence.criticalPath);
    writer.field("dag_ilp", dependence.dagIlp);
    writer.field("once_instructions", dependence.onceInsts);
    writer.key("fu_pressure").beginObject();
    for (unsigned cls = 0; cls < kNumFuClasses; ++cls) {
        writer.field(fuClassName(static_cast<FuClass>(cls)),
                     dependence.classCounts[cls]);
    }
    writer.endObject();
    writer.key("loops").beginArray();
    for (const LoopSummary &loop : dependence.loops) {
        writer.beginObject()
            .field("header_pc", loop.header)
            .field("depth", loop.depth)
            .field("own_instructions", loop.ownInsts)
            .field("total_instructions", loop.totalInsts)
            .field("recurrence", loop.recurrence)
            .endObject();
    }
    writer.endArray();
    writer.endObject();
    writer.key("ipc_bound")
        .beginObject()
        .field("fetch_limit", bound.fetchLimit)
        .field("issue_limit", bound.issueLimit)
        .field("per_thread_steady", bound.perThreadSteady)
        .field("once_instructions", bound.onceInsts)
        .field("num_threads", bound.numThreads)
        .field("asymptotic", bound.asymptotic())
        .endObject();
    writer.key("findings").beginArray();
    for (const LintFinding &finding : findings) {
        writer.beginObject()
            .field("code", lintCodeName(finding.code))
            .field("severity", lintSeverityName(finding.severity))
            .field("pc", finding.pc)
            .field("line", finding.line)
            .field("message", finding.message)
            .endObject();
    }
    writer.endArray();
    writer.field("errors", errorCount());
    writer.field("warnings", warningCount());
    writer.endObject();
}

LintReport
lintProgram(const Program &program, const LintOptions &options)
{
    return Linter(program, options).run();
}

} // namespace sdsp

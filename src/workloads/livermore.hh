/**
 * @file
 * Group I benchmark declarations: the six simulated Livermore loops.
 * See livermore.cc for what each kernel computes and how it is
 * parallelized.
 */

#ifndef SDSP_WORKLOADS_LIVERMORE_HH
#define SDSP_WORKLOADS_LIVERMORE_HH

#include "workloads/workload.hh"

namespace sdsp
{

/** Base for Group I benchmarks. */
class LivermoreWorkload : public Workload
{
  public:
    BenchmarkGroup
    group() const override
    {
        return BenchmarkGroup::LivermoreLoops;
    }
};

/** LL1: hydro fragment (embarrassingly parallel FP). */
class LL1Workload : public LivermoreWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** LL2: ICCG reduction tree with per-level barriers. */
class LL2Workload : public LivermoreWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** LL3: inner product with per-thread partial sums. */
class LL3Workload : public LivermoreWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** LL5: tri-diagonal elimination; serial recurrence with explicit
 *  producer-consumer synchronization (negative-speedup case). */
class LL5Workload : public LivermoreWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/**
 * LL5sched: the software-scheduling alternative of paper section 6.1
 * item 4 applied to LL5 — the same tri-diagonal recurrence, but with
 * the synchronization restructured from per-block producer-consumer
 * flags to one coarse chunk-done flag per thread per repetition,
 * which pipelines successive repetitions across threads. Registered
 * as an extension benchmark (not one of the paper's eleven).
 */
class LL5SchedWorkload : public LivermoreWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** LL7: equation of state fragment (FP-dense, parallel). */
class LL7Workload : public LivermoreWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** LL11: first sum as a two-phase parallel prefix scan. */
class LL11Workload : public LivermoreWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

} // namespace sdsp

#endif // SDSP_WORKLOADS_LIVERMORE_HH

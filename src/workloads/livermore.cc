/**
 * @file
 * Group I benchmarks: six Livermore loops (LL1, LL2, LL3, LL5, LL7,
 * LL11), chosen as in the paper for their varying amounts and
 * granularities of data parallelism:
 *
 *  - LL1 (hydro fragment) and LL7 (equation of state) are
 *    embarrassingly parallel, FP-multiply/add heavy;
 *  - LL2 (ICCG) is a reduction tree with a barrier per level;
 *  - LL3 (inner product) is a reduction with per-thread partials;
 *  - LL5 (tri-diagonal elimination) carries a strict cross-iteration
 *    dependency and needs explicit producer-consumer synchronization —
 *    this is the loop the paper singles out for consistently *negative*
 *    multithreading speedup;
 *  - LL11 (first sum) is a recurrence parallelized as a two-phase scan.
 */

#include "workloads/livermore.hh"

#include <cmath>
#include <vector>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/emit_util.hh"

namespace sdsp
{

namespace
{

/** Scale a base size by a percentage, with a floor. */
std::int64_t
scaled(std::int64_t base, unsigned scale, std::int64_t floor = 8)
{
    std::int64_t value = base * static_cast<std::int64_t>(scale) / 100;
    return std::max(value, floor);
}

/** Chunk bounds used by emitPartition (last thread takes the rest). */
std::pair<std::int64_t, std::int64_t>
chunkOf(std::int64_t n, unsigned nth, unsigned t)
{
    std::int64_t chunk = n / nth;
    std::int64_t start = chunk * t;
    std::int64_t end = (t + 1 == nth) ? n : start + chunk;
    return {start, end};
}

/** Random doubles in a modest positive range. */
std::vector<double>
randomVector(Xorshift64 &rng, std::size_t n, double lo = 0.1,
             double hi = 1.0)
{
    std::vector<double> values(n);
    for (auto &value : values)
        value = rng.nextDouble(lo, hi);
    return values;
}

VerifyResult
checkArray(const MainMemory &mem, Addr base,
           const std::vector<double> &expected, const char *label)
{
    for (std::size_t i = 0; i < expected.size(); ++i) {
        double got = readDouble(mem.image(),
                                base + static_cast<Addr>(i * 8));
        if (!nearlyEqual(got, expected[i])) {
            return VerifyResult::fail(
                format("%s[%zu]: got %.17g expected %.17g", label, i,
                       got, expected[i]));
        }
    }
    return VerifyResult::pass();
}

} // namespace

// --------------------------------------------------------------------
// LL1: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
// --------------------------------------------------------------------

std::string
LL1Workload::name() const
{
    return "LL1";
}

WorkloadImage
LL1Workload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t n = scaled(600, scale);
    const int reps = 8;
    const double q = 0.5, r = 0.2, t = 0.1;

    Xorshift64 rng(0x11A0 + n);
    std::vector<double> y = randomVector(rng, n);
    std::vector<double> z = randomVector(rng, n + 11);

    ProgramBuilder b;
    Addr x_addr = b.array("x", static_cast<std::uint32_t>(n));
    // y[k] fully aliases x[k] (power-of-two-style placement): the
    // 2-way cache absorbs the pair, a direct-mapped one ping-pongs.
    padToCacheAlias(b, "pad_xy", x_addr);
    Addr y_addr = b.arrayOf("y", y);
    Addr z_addr = b.arrayOf("z", z);
    b.arrayOf("consts", {q, r, t});

    emitPrologue(b);
    emitPartition(b, "part", n, 6, 7);
    b.la(6, "x").la(7, "y").la(8, "z");
    b.la(13, "consts");
    b.ld(9, 0, 13).ld(10, 8, 13).ld(11, 16, 13); // q, r, t
    b.ldi(17, reps);

    b.label("rep");
    b.mov(12, reg::start);
    b.label("loop");
    b.bge(12, reg::end, "loop_end");
    b.slli(13, 12, 3);
    b.add(18, 8, 13);       // &z[k]
    b.ld(14, 80, 18);       // z[k+10]
    b.ld(15, 88, 18);       // z[k+11]
    b.fmul(14, 10, 14);     // r*z[k+10]
    b.fmul(15, 11, 15);     // t*z[k+11]
    b.fadd(14, 14, 15);
    b.add(18, 7, 13);
    b.ld(15, 0, 18);        // y[k]
    b.fmul(14, 15, 14);
    b.fadd(14, 9, 14);      // q + ...
    b.add(18, 6, 13);
    b.st(14, 0, 18);
    b.addi(12, 12, 1);
    b.j("loop");
    b.label("loop_end");
    b.addi(17, 17, -1);
    b.bne(17, reg::zero, "rep");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    (void)y_addr;
    (void)z_addr;
    image.verify = [=](const MainMemory &mem) {
        std::vector<double> expected(n);
        for (std::int64_t k = 0; k < n; ++k) {
            expected[k] =
                q + y[k] * (r * z[k + 10] + t * z[k + 11]);
        }
        return checkArray(mem, x_addr, expected, "x");
    };
    return image;
}

// --------------------------------------------------------------------
// LL2: ICCG (incomplete Cholesky conjugate gradient) reduction tree
// --------------------------------------------------------------------

std::string
LL2Workload::name() const
{
    return "LL2";
}

WorkloadImage
LL2Workload::build(unsigned num_threads, unsigned scale) const
{
    // n must be a power of two for the halving tree.
    std::int64_t n = 16;
    while (n * 2 <= scaled(512, scale, 16))
        n *= 2;
    const int reps = 4;
    const unsigned levels = log2i(static_cast<std::uint64_t>(n));
    const unsigned barrier_rows = levels * reps;

    Xorshift64 rng(0x11A2 + n);
    std::vector<double> x0 = randomVector(rng, 2 * n);
    std::vector<double> v = randomVector(rng, 2 * n, 0.01, 0.2);

    ProgramBuilder b;
    Addr x_addr = b.arrayOf("x", x0);
    // De-alias the cache sets of x[k] and v[k]: without padding the
    // power-of-two arrays put every pair in the same set.
    b.array("pad_xv", 5);
    b.arrayOf("v", v);
    b.array("flags", barrier_rows * 8);

    emitPrologue(b);
    b.la(6, "x").la(7, "v").la(8, "flags");
    b.ldi(17, 0);      // barrier row index
    b.li(19, reps);

    // Emit the loop body for iteration j (in r12) of the current
    // level: k = ipnt+1+2j, i = ipntp+j,
    // x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1].
    auto emit_body = [&]() {
        b.slli(13, 12, 1);
        b.add(13, 13, 10);
        b.addi(13, 13, 1);   // k
        b.slli(13, 13, 3);
        b.add(13, 6, 13);    // &x[k]
        b.ld(14, 0, 13);     // x[k]
        b.ld(15, -8, 13);    // x[k-1]
        b.ld(16, 8, 13);     // x[k+1]
        b.sub(18, 13, 6);
        b.add(18, 7, 18);    // &v[k]
        b.ld(20, 0, 18);
        b.fmul(15, 20, 15);  // v[k]*x[k-1]
        b.ld(20, 8, 18);
        b.fmul(16, 20, 16);  // v[k+1]*x[k+1]
        b.fsub(14, 14, 15);
        b.fsub(14, 14, 16);
        b.add(18, 11, 12);   // i = ipntp + j
        b.slli(18, 18, 3);
        b.add(18, 6, 18);
        b.st(14, 0, 18);
    };

    b.label("rep");
    b.li(9, n);        // ii = n
    b.ldi(11, 0);      // ipntp = 0
    b.label("level");
    b.mov(10, 11);     // ipnt = ipntp
    b.add(11, 11, 9);  // ipntp += ii
    b.srai(9, 9, 1);   // ii /= 2
    // The level's last iteration (j = ii-1) reads x[ipntp], which the
    // level's FIRST iteration writes, so it cannot be distributed
    // freely: iterations j in [0, ii-1) are partitioned across
    // threads with a CEILING chunk (so thread 0 always owns j = 0),
    // and thread 0 runs j = ii-1 after its chunk, making the
    // dependence thread-local and the result deterministic and
    // serial-equivalent.
    b.addi(16, 9, -1); // m = ii - 1 parallel iterations
    b.add(18, 16, reg::nth);
    b.addi(18, 18, -1);
    b.div(18, 18, reg::nth); // chunk = ceil(m / nth)
    b.mul(reg::start, reg::tid, 18);
    b.add(reg::end, reg::start, 18);
    b.bge(16, reg::start, "clamp1");
    b.mov(reg::start, 16);
    b.label("clamp1");
    b.bge(16, reg::end, "clamp2");
    b.mov(reg::end, 16);
    b.label("clamp2");
    b.mov(12, reg::start);
    b.label("jloop");
    b.bge(12, reg::end, "jend");
    emit_body();
    b.addi(12, 12, 1);
    b.j("jloop");
    b.label("jend");
    // Thread 0: the dependent last iteration.
    b.bne(reg::tid, reg::zero, "skiplast");
    b.addi(12, 9, -1); // j = ii - 1
    emit_body();
    b.label("skiplast");
    // Barrier between tree levels.
    b.slli(18, 17, 6);
    b.add(18, 8, 18);
    emitBarrier(b, "bar", 18, 13, 14, 20);
    b.addi(17, 17, 1);
    b.ldi(18, 1);
    b.blt(18, 9, "level");
    b.addi(19, 19, -1);
    b.bne(19, reg::zero, "rep");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        std::vector<double> x = x0;
        for (int rep = 0; rep < reps; ++rep) {
            std::int64_t ii = n, ipntp = 0;
            do {
                std::int64_t ipnt = ipntp;
                ipntp += ii;
                ii /= 2;
                std::int64_t i = ipntp - 1;
                for (std::int64_t k = ipnt + 1; k < ipntp; k += 2) {
                    ++i;
                    x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
                }
            } while (ii > 1);
        }
        return checkArray(mem, x_addr, x, "x");
    };
    return image;
}

// --------------------------------------------------------------------
// LL3: inner product q = sum x[k]*z[k]
// --------------------------------------------------------------------

std::string
LL3Workload::name() const
{
    return "LL3";
}

WorkloadImage
LL3Workload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t n = scaled(1080, scale);
    const int reps = 8;

    Xorshift64 rng(0x11A3 + n);
    std::vector<double> x = randomVector(rng, n);
    std::vector<double> z = randomVector(rng, n);

    ProgramBuilder b;
    Addr ll3_x_addr = b.arrayOf("x", x);
    // z[k] fully aliases x[k] (see padToCacheAlias): associativity
    // absorbs the pair; a direct-mapped cache conflicts on it.
    padToCacheAlias(b, "pad_xz", ll3_x_addr);
    b.arrayOf("z", z);
    b.array("partial", 8);
    Addr result_addr = b.dword("result", 0);
    b.array("flags", static_cast<std::uint32_t>(reps) * 8);

    emitPrologue(b);
    emitPartition(b, "part", n, 6, 7);
    b.la(6, "x").la(7, "z").la(8, "partial").la(9, "flags");
    b.la(18, "result");
    b.li(14, reps);

    b.label("rep");
    b.ldi(11, 0); // sum = 0.0 (bit pattern of +0.0)
    b.mov(10, reg::start);
    b.label("loop");
    b.bge(10, reg::end, "loop_end");
    b.slli(12, 10, 3);
    b.add(13, 6, 12);
    b.ld(15, 0, 13);
    b.add(13, 7, 12);
    b.ld(16, 0, 13);
    b.fmul(15, 15, 16);
    b.fadd(11, 11, 15);
    b.addi(10, 10, 1);
    b.j("loop");
    b.label("loop_end");
    // partial[tid] = sum
    b.slli(12, reg::tid, 3);
    b.add(12, 8, 12);
    b.st(11, 0, 12);
    // Barrier row for this rep: flags + (reps - remaining)*64.
    b.li(13, reps);
    b.sub(13, 13, 14);
    b.slli(13, 13, 6);
    b.add(13, 9, 13);
    emitBarrier(b, "bar", 13, 12, 15, 16);
    // Thread 0 reduces the partials in thread order.
    b.bne(reg::tid, reg::zero, "skip_reduce");
    b.ldi(11, 0);
    b.ldi(10, 0);
    b.label("red");
    b.bge(10, reg::nth, "red_end");
    b.slli(12, 10, 3);
    b.add(12, 8, 12);
    b.ld(15, 0, 12);
    b.fadd(11, 11, 15);
    b.addi(10, 10, 1);
    b.j("red");
    b.label("red_end");
    b.st(11, 0, 18);
    b.label("skip_reduce");
    b.addi(14, 14, -1);
    b.bne(14, reg::zero, "rep");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        double total = 0.0;
        for (unsigned t = 0; t < num_threads; ++t) {
            auto [lo, hi] = chunkOf(n, num_threads, t);
            double partial = 0.0;
            for (std::int64_t k = lo; k < hi; ++k)
                partial += x[k] * z[k];
            total += partial;
        }
        double got = readDouble(mem.image(), result_addr);
        if (!nearlyEqual(got, total)) {
            return VerifyResult::fail(format(
                "result: got %.17g expected %.17g", got, total));
        }
        return VerifyResult::pass();
    };
    return image;
}

// --------------------------------------------------------------------
// LL5: tri-diagonal elimination x[i] = z[i]*(y[i] - x[i-1])
// --------------------------------------------------------------------

std::string
LL5Workload::name() const
{
    return "LL5";
}

WorkloadImage
LL5Workload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t n = scaled(1024, scale);
    const int reps = 4;
    // The recurrence x[i] = z[i]*(y[i] - x[i-1]) is distributed
    // block-cyclically: thread t owns blocks k with k mod nth == t,
    // and a block may start only after its predecessor block (owned
    // by another thread when nth > 1) has published its results. The
    // per-block producer-consumer flags are the "explicit
    // synchronization primitives" the paper inserts into this loop,
    // and their cost — a cross-thread store-visibility latency per
    // block — is why LL5 is the suite's negative-speedup benchmark.
    const std::int64_t block = 8;
    const std::int64_t nblocks = (n - 1 + block - 1) / block;

    Xorshift64 rng(0x11A5 + n);
    std::vector<double> x0 = randomVector(rng, n);
    std::vector<double> y = randomVector(rng, n);
    std::vector<double> z = randomVector(rng, n, 0.1, 0.9);

    ProgramBuilder b;
    Addr x_addr = b.arrayOf("x", x0);
    // De-alias the cache sets of the three streamed arrays.
    b.array("pad_xy", 5);
    b.arrayOf("y", y);
    b.array("pad_yz", 9);
    b.arrayOf("z", z);
    // flags[k] = completed-rep count of block k-1; flags[0] is the
    // virtual predecessor of block 0 and starts satisfied forever.
    std::vector<std::uint64_t> flag_init(nblocks + 1, 0);
    flag_init[0] = static_cast<std::uint64_t>(reps);
    b.arrayOfWords("flags", flag_init);

    emitPrologue(b);
    b.la(6, "x").la(7, "y").la(8, "z").la(9, "flags");
    b.li(15, nblocks);
    b.ldi(14, 1); // target = rep + 1

    b.label("rep");
    b.add(11, reg::tid, reg::zero); // k = tid
    b.label("bloop");
    b.bge(11, 15, "bend");
    // Wait for the predecessor block: flags[k] >= target.
    b.slli(12, 11, 3);
    b.add(12, 9, 12);
    b.label("bwait");
    b.spin();
    b.ld(13, 0, 12);
    b.blt(13, 14, "bwait");
    // Element range of block k: [1 + k*B, min(1 + (k+1)*B, n)).
    b.li(13, block);
    b.mul(10, 11, 13);
    b.addi(10, 10, 1);
    b.add(16, 10, 13);
    b.li(13, n);
    b.bge(13, 16, "hiok");
    b.mov(16, 13);
    b.label("hiok");
    b.label("eloop");
    b.bge(10, 16, "eend");
    b.slli(12, 10, 3);
    b.add(17, 6, 12);
    b.ld(18, -8, 17);   // x[i-1]
    b.add(19, 7, 12);
    b.ld(19, 0, 19);    // y[i]
    b.fsub(19, 19, 18);
    b.add(18, 8, 12);
    b.ld(18, 0, 18);    // z[i]
    b.fmul(19, 18, 19);
    b.st(19, 0, 17);    // x[i]
    b.addi(10, 10, 1);
    b.j("eloop");
    b.label("eend");
    // Publish: flags[k+1] = target.
    b.addi(12, 11, 1);
    b.slli(12, 12, 3);
    b.add(12, 9, 12);
    b.st(14, 0, 12);
    b.add(11, 11, reg::nth); // next owned block
    b.j("bloop");
    b.label("bend");
    b.addi(14, 14, 1);
    b.li(12, reps);
    b.bge(12, 14, "rep");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        std::vector<double> x = x0;
        for (std::int64_t i = 1; i < n; ++i)
            x[i] = z[i] * (y[i] - x[i - 1]);
        return checkArray(mem, x_addr, x, "x");
    };
    return image;
}


// --------------------------------------------------------------------
// LL5sched: LL5 with software-scheduled (coarse-grained) sync
// --------------------------------------------------------------------

std::string
LL5SchedWorkload::name() const
{
    return "LL5sched";
}

WorkloadImage
LL5SchedWorkload::build(unsigned num_threads, unsigned scale) const
{
    // Identical recurrence and data to LL5, but each thread owns ONE
    // contiguous chunk and synchronizes once per repetition: thread t
    // waits for thread t-1's chunk-done flag of the same rep, then
    // signals its own. Repetition r+1 of thread t-1 overlaps with
    // repetition r of thread t, so the chain pipelines across reps --
    // the "dividing tasks judiciously" rearrangement of section 6.1.
    const std::int64_t n = scaled(1024, scale);
    const int reps = 4;

    Xorshift64 rng(0x11A5 + n); // same data as LL5
    std::vector<double> x0 = randomVector(rng, n);
    std::vector<double> y = randomVector(rng, n);
    std::vector<double> z = randomVector(rng, n, 0.1, 0.9);

    ProgramBuilder b;
    Addr x_addr = b.arrayOf("x", x0);
    b.array("pad_xy", 5);
    b.arrayOf("y", y);
    b.array("pad_yz", 9);
    b.arrayOf("z", z);
    b.array("flags", static_cast<std::uint32_t>(reps) * 8);

    emitPrologue(b);
    emitPartition(b, "part", n - 1, 6, 7);
    b.addi(reg::start, reg::start, 1);
    b.addi(reg::end, reg::end, 1);
    b.la(6, "x").la(7, "y").la(8, "z").la(9, "flags");
    b.li(14, reps);
    b.ldi(15, 0); // rep index

    b.label("rep");
    // Wait once for the previous thread's chunk of this rep.
    b.slli(13, 15, 6);
    b.add(13, 9, 13); // this rep's flag row
    b.beq(reg::tid, reg::zero, "nowait");
    b.slli(12, reg::tid, 3);
    b.add(12, 13, 12);
    b.addi(12, 12, -8); // &row[tid-1]
    emitSpinWaitNonzero(b, "wait", 12, 16);
    b.label("nowait");
    b.mov(10, reg::start);
    b.label("loop");
    b.bge(10, reg::end, "loop_end");
    b.slli(12, 10, 3);
    b.add(16, 6, 12);
    b.ld(17, -8, 16);   // x[i-1]
    b.add(18, 7, 12);
    b.ld(18, 0, 18);    // y[i]
    b.fsub(18, 18, 17);
    b.add(19, 8, 12);
    b.ld(19, 0, 19);    // z[i]
    b.fmul(18, 19, 18);
    b.st(18, 0, 16);    // x[i]
    b.addi(10, 10, 1);
    b.j("loop");
    b.label("loop_end");
    // Signal the next thread.
    b.slli(12, reg::tid, 3);
    b.add(12, 13, 12);
    b.ldi(16, 1);
    b.st(16, 0, 12);
    b.addi(15, 15, 1);
    b.addi(14, 14, -1);
    b.bne(14, reg::zero, "rep");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        std::vector<double> x = x0;
        for (std::int64_t i = 1; i < n; ++i)
            x[i] = z[i] * (y[i] - x[i - 1]);
        return checkArray(mem, x_addr, x, "x");
    };
    return image;
}

// --------------------------------------------------------------------
// LL7: equation of state fragment
// --------------------------------------------------------------------

std::string
LL7Workload::name() const
{
    return "LL7";
}

WorkloadImage
LL7Workload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t n = scaled(390, scale);
    const int reps = 8;
    const double q = 0.5, r = 0.3, t = 0.2;

    Xorshift64 rng(0x11A7 + n);
    std::vector<double> y = randomVector(rng, n);
    std::vector<double> z = randomVector(rng, n);
    std::vector<double> u = randomVector(rng, n + 6);

    ProgramBuilder b;
    Addr x_addr = b.array("x", static_cast<std::uint32_t>(n));
    b.arrayOf("y", y);
    b.arrayOf("z", z);
    b.arrayOf("u", u);
    b.arrayOf("consts", {q, r, t});

    emitPrologue(b);
    emitPartition(b, "part", n, 6, 7);
    b.la(6, "x").la(7, "y").la(8, "z").la(9, "u");
    b.la(13, "consts");
    b.ld(10, 0, 13).ld(11, 8, 13).ld(12, 16, 13); // q, r, t
    b.ldi(20, reps);

    b.label("rep");
    b.mov(13, reg::start);
    b.label("loop");
    b.bge(13, reg::end, "loop_end");
    b.slli(14, 13, 3);
    b.add(19, 9, 14);   // &u[k]
    b.ld(15, 32, 19);   // u[k+4]
    b.fmul(15, 10, 15);
    b.ld(16, 40, 19);   // u[k+5]
    b.fadd(15, 16, 15);
    b.fmul(15, 10, 15);
    b.ld(16, 48, 19);   // u[k+6]
    b.fadd(15, 16, 15); // inner3
    b.ld(16, 8, 19);    // u[k+1]
    b.fmul(16, 11, 16);
    b.ld(17, 16, 19);   // u[k+2]
    b.fadd(16, 17, 16);
    b.fmul(16, 11, 16);
    b.ld(17, 24, 19);   // u[k+3]
    b.fadd(16, 17, 16); // inner2
    b.fmul(15, 12, 15); // t*inner3
    b.fadd(16, 16, 15); // inner2 + t*inner3
    b.fmul(16, 12, 16); // t*(...)
    b.add(19, 7, 14);
    b.ld(15, 0, 19);    // y[k]
    b.fmul(15, 11, 15);
    b.add(19, 8, 14);
    b.ld(17, 0, 19);    // z[k]
    b.fadd(15, 17, 15);
    b.fmul(15, 11, 15); // r*(z + r*y)
    b.add(19, 9, 14);
    b.ld(17, 0, 19);    // u[k]
    b.fadd(15, 17, 15);
    b.fadd(15, 15, 16);
    b.add(19, 6, 14);
    b.st(15, 0, 19);
    b.addi(13, 13, 1);
    b.j("loop");
    b.label("loop_end");
    b.addi(20, 20, -1);
    b.bne(20, reg::zero, "rep");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        std::vector<double> expected(n);
        for (std::int64_t k = 0; k < n; ++k) {
            double in3 = u[k + 6] + q * (u[k + 5] + q * u[k + 4]);
            double in2 = u[k + 3] + r * (u[k + 2] + r * u[k + 1]);
            double v = u[k] + r * (z[k] + r * y[k]);
            v = v + t * (in2 + t * in3);
            expected[k] = v;
        }
        return checkArray(mem, x_addr, expected, "x");
    };
    return image;
}

// --------------------------------------------------------------------
// LL11: first sum x[k] = x[k-1] + y[k], as a two-phase parallel scan
// --------------------------------------------------------------------

std::string
LL11Workload::name() const
{
    return "LL11";
}

WorkloadImage
LL11Workload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t n = scaled(1080, scale);
    const int reps = 4;

    Xorshift64 rng(0x11AB + n);
    std::vector<double> y = randomVector(rng, n);

    ProgramBuilder b;
    Addr x_addr = b.array("x", static_cast<std::uint32_t>(n));
    // y[k] fully aliases x[k]: the phase-1 read/write pair conflicts
    // in a direct-mapped cache and coexists in the 2-way one.
    padToCacheAlias(b, "pad_xy", x_addr);
    b.arrayOf("y", y);
    b.array("totals", 8);
    b.array("flags", static_cast<std::uint32_t>(reps) * 2 * 8);

    emitPrologue(b);
    emitPartition(b, "part", n, 6, 7);
    b.la(6, "x").la(7, "y").la(8, "totals").la(9, "flags");
    b.li(14, reps);
    b.ldi(15, 0); // barrier row index

    b.label("rep");
    // Phase 1: local prefix sum of the chunk.
    b.mov(10, reg::start);
    b.ldi(11, 0); // acc = 0.0
    b.label("p1");
    b.bge(10, reg::end, "p1_end");
    b.slli(12, 10, 3);
    b.add(13, 7, 12);
    b.ld(16, 0, 13);
    b.fadd(11, 11, 16);
    b.add(13, 6, 12);
    b.st(11, 0, 13);
    b.addi(10, 10, 1);
    b.j("p1");
    b.label("p1_end");
    b.slli(12, reg::tid, 3);
    b.add(12, 8, 12);
    b.st(11, 0, 12); // totals[tid]
    b.slli(12, 15, 6);
    b.add(12, 9, 12);
    emitBarrier(b, "b1", 12, 13, 16, 17);
    b.addi(15, 15, 1);
    // Offset = sum of totals of earlier threads.
    b.ldi(11, 0);
    b.ldi(10, 0);
    b.label("off");
    b.bge(10, reg::tid, "off_end");
    b.slli(12, 10, 3);
    b.add(12, 8, 12);
    b.ld(16, 0, 12);
    b.fadd(11, 11, 16);
    b.addi(10, 10, 1);
    b.j("off");
    b.label("off_end");
    // Phase 2: add the offset across the chunk.
    b.mov(10, reg::start);
    b.label("p2");
    b.bge(10, reg::end, "p2_end");
    b.slli(12, 10, 3);
    b.add(13, 6, 12);
    b.ld(16, 0, 13);
    b.fadd(16, 16, 11);
    b.st(16, 0, 13);
    b.addi(10, 10, 1);
    b.j("p2");
    b.label("p2_end");
    b.slli(12, 15, 6);
    b.add(12, 9, 12);
    emitBarrier(b, "b2", 12, 13, 16, 17);
    b.addi(15, 15, 1);
    b.addi(14, 14, -1);
    b.bne(14, reg::zero, "rep");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        // Replicate the scan's summation grouping exactly.
        std::vector<double> totals(num_threads, 0.0);
        std::vector<double> expected(n, 0.0);
        for (unsigned t = 0; t < num_threads; ++t) {
            auto [lo, hi] = chunkOf(n, num_threads, t);
            double acc = 0.0;
            for (std::int64_t k = lo; k < hi; ++k) {
                acc += y[k];
                expected[k] = acc;
            }
            totals[t] = acc;
        }
        for (unsigned t = 0; t < num_threads; ++t) {
            auto [lo, hi] = chunkOf(n, num_threads, t);
            double offset = 0.0;
            for (unsigned u = 0; u < t; ++u)
                offset += totals[u];
            for (std::int64_t k = lo; k < hi; ++k)
                expected[k] += offset;
        }
        return checkArray(mem, x_addr, expected, "x");
    };
    return image;
}

} // namespace sdsp

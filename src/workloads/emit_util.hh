/**
 * @file
 * Shared code-generation helpers for the benchmark suite.
 *
 * Register conventions used by every workload in this suite:
 *   r1 = constant zero (set once in the prologue)
 *   r2 = TID, r3 = NTH
 *   r4 = chunk start, r5 = chunk end (when partitioned)
 * leaving r6.. for kernel temporaries. Workloads stay below r21 so
 * they fit the 6-thread static partition (128/6 = 21 registers).
 */

#ifndef SDSP_WORKLOADS_EMIT_UTIL_HH
#define SDSP_WORKLOADS_EMIT_UTIL_HH

#include <cstdint>
#include <string>

#include "asm/builder.hh"

namespace sdsp
{

/** Fixed register conventions for the suite. */
namespace reg
{
inline constexpr RegIndex zero = 1;
inline constexpr RegIndex tid = 2;
inline constexpr RegIndex nth = 3;
inline constexpr RegIndex start = 4;
inline constexpr RegIndex end = 5;
} // namespace reg

/**
 * Highest register index any suite workload may use: 128 registers
 * across up to 6 threads leaves 21 per thread (r0..r20).
 */
inline constexpr unsigned kSuiteRegisterBudget = 21;

/** Emit the common prologue: r1=0, r2=TID, r3=NTH. */
void emitPrologue(ProgramBuilder &builder);

/**
 * Emit the static partitioning of [0, n) into NTH chunks:
 * start = tid * (n / nth); end = start + chunk, except the last
 * thread which takes the remainder. Uses the DIV unit (and is thus a
 * Conditional Switch trigger, like real partitioning code).
 *
 * @param prefix Unique label prefix.
 * @param n      Iteration count.
 * @param s1,s2  Scratch registers.
 */
void emitPartition(ProgramBuilder &builder, const std::string &prefix,
                   std::int64_t n, RegIndex s1, RegIndex s2);

/**
 * Emit a busy-wait until mem64[r_addr] != 0. The loop contains a SPIN
 * hint, the "synchronization primitive" trigger class for the
 * Conditional Switch fetch policy.
 *
 * @param prefix   Unique label prefix.
 * @param r_addr   Register holding the flag's byte address.
 * @param scratch  Scratch register.
 */
void emitSpinWaitNonzero(ProgramBuilder &builder,
                         const std::string &prefix, RegIndex r_addr,
                         RegIndex scratch);

/**
 * Emit a flag-array barrier across all NTH threads.
 *
 * The barrier row is NTH consecutive words at the byte address held
 * in @p r_base; each row must be used at most once (zero-initialized)
 * — callers allocate one row per barrier episode, which avoids any
 * need for atomic read-modify-write operations.
 *
 * @param prefix  Unique label prefix.
 * @param r_base  Register holding the row's base byte address.
 * @param s1..s3  Scratch registers.
 */
void emitBarrier(ProgramBuilder &builder, const std::string &prefix,
                 RegIndex r_base, RegIndex s1, RegIndex s2,
                 RegIndex s3);

/** Compare doubles with relative tolerance (absolute near zero). */
bool nearlyEqual(double a, double b, double tolerance = 1e-9);

/**
 * Pad the data section so the NEXT symbol fully aliases
 * @p target_base in the suite's default cache geometry (8 KB): both
 * map to the same set in the direct-mapped AND the 2-way
 * organization. This mimics the common compiler/linker placement of
 * large arrays at power-of-two-aligned offsets — the situation where
 * associativity pays and a direct-mapped cache ping-pongs (paper
 * section 5.3).
 *
 * @param pad_name Unique data-symbol name for the padding.
 */
void padToCacheAlias(ProgramBuilder &builder,
                     const std::string &pad_name, Addr target_base);

} // namespace sdsp

#endif // SDSP_WORKLOADS_EMIT_UTIL_HH

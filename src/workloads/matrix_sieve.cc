/**
 * @file
 * Group II integer-flavoured benchmarks: Matrix (dense multiply,
 * FP arithmetic + heavy integer index multiplies) and Sieve (pure
 * integer, divide-heavy, irregular store pattern).
 */

#include "workloads/group2.hh"

#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/emit_util.hh"

namespace sdsp
{

namespace
{

std::int64_t
scaled(std::int64_t base, unsigned scale, std::int64_t floor = 4)
{
    std::int64_t value = base * static_cast<std::int64_t>(scale) / 100;
    return std::max(value, floor);
}

} // namespace

// --------------------------------------------------------------------
// Matrix: C = A x B, rows of C partitioned across threads
// --------------------------------------------------------------------

std::string
MatrixWorkload::name() const
{
    return "Matrix";
}

WorkloadImage
MatrixWorkload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t m = scaled(20, scale);

    Xorshift64 rng(0x3A7 + m);
    std::vector<double> a(m * m), bmat(m * m);
    for (auto &value : a)
        value = rng.nextDouble(-1.0, 1.0);
    for (auto &value : bmat)
        value = rng.nextDouble(-1.0, 1.0);

    ProgramBuilder b;
    Addr a_addr = b.arrayOf("A", a);
    b.arrayOf("B", bmat);
    Addr c_addr = b.array("C", static_cast<std::uint32_t>(m * m));
    (void)a_addr;

    emitPrologue(b);
    emitPartition(b, "part", m, 6, 7); // rows
    b.la(6, "A").la(7, "B").la(8, "C");
    b.li(9, m);

    b.mov(10, reg::start);
    b.label("iloop");
    b.bge(10, reg::end, "iend");
    b.mul(19, 10, 9);
    b.slli(19, 19, 3);
    b.add(19, 6, 19);  // &A[i][0]
    b.mov(11, reg::zero); // j = 0
    b.label("jloop");
    b.bge(11, 9, "jend");
    b.ldi(13, 0);      // acc = 0.0
    b.ldi(12, 0);
    b.label("kloop");
    b.bge(12, 9, "kend");
    b.slli(14, 12, 3);
    b.add(14, 19, 14);
    b.ld(15, 0, 14);   // A[i][k]
    b.mul(14, 12, 9);
    b.add(14, 14, 11);
    b.slli(14, 14, 3);
    b.add(14, 7, 14);
    b.ld(16, 0, 14);   // B[k][j]
    b.fmul(15, 15, 16);
    b.fadd(13, 13, 15);
    b.addi(12, 12, 1);
    b.j("kloop");
    b.label("kend");
    b.mul(14, 10, 9);
    b.add(14, 14, 11);
    b.slli(14, 14, 3);
    b.add(14, 8, 14);
    b.st(13, 0, 14);   // C[i][j]
    b.addi(11, 11, 1);
    b.j("jloop");
    b.label("jend");
    b.addi(10, 10, 1);
    b.j("iloop");
    b.label("iend");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < m; ++j) {
                double acc = 0.0;
                for (std::int64_t k = 0; k < m; ++k)
                    acc += a[i * m + k] * bmat[k * m + j];
                double got = readDouble(
                    mem.image(),
                    c_addr + static_cast<Addr>((i * m + j) * 8));
                if (!nearlyEqual(got, acc)) {
                    return VerifyResult::fail(
                        format("C[%lld][%lld]: got %.17g expected "
                               "%.17g",
                               static_cast<long long>(i),
                               static_cast<long long>(j), got, acc));
                }
            }
        }
        return VerifyResult::pass();
    };
    return image;
}

// --------------------------------------------------------------------
// Sieve: mark composites in [2, limit], segments across threads
// --------------------------------------------------------------------

std::string
SieveWorkload::name() const
{
    return "Sieve";
}

WorkloadImage
SieveWorkload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t limit = scaled(6000, scale, 32);

    // Base primes up to sqrt(limit), computed at build time: the
    // equivalent of the serial startup phase every thread would
    // otherwise replicate.
    std::vector<std::uint64_t> base_primes;
    for (std::int64_t p = 2; p * p <= limit; ++p) {
        bool prime = true;
        for (std::uint64_t q : base_primes) {
            if (p % static_cast<std::int64_t>(q) == 0) {
                prime = false;
                break;
            }
        }
        if (prime)
            base_primes.push_back(static_cast<std::uint64_t>(p));
    }

    ProgramBuilder b;
    Addr flags_addr =
        b.array("flags", static_cast<std::uint32_t>(limit + 1));
    b.arrayOfWords("primes", base_primes);

    emitPrologue(b);
    emitPartition(b, "part", limit - 1, 6, 7);
    b.addi(reg::start, reg::start, 2);
    b.addi(reg::end, reg::end, 2);
    b.la(6, "flags").la(7, "primes");
    b.li(8, static_cast<std::int64_t>(base_primes.size()));

    b.mov(9, reg::zero); // prime index
    b.label("ploop");
    b.bge(9, 8, "pend");
    b.slli(12, 9, 3);
    b.add(12, 7, 12);
    b.ld(10, 0, 12); // p
    // lo = first multiple of p that is >= start ...
    b.div(12, reg::start, 10);
    b.mul(12, 12, 10);
    b.bge(12, reg::start, "lo_ok");
    b.add(12, 12, 10);
    b.label("lo_ok");
    // ... and >= p*p (smaller multiples have a smaller factor).
    b.mul(14, 10, 10);
    b.bge(12, 14, "qstart");
    b.mov(12, 14);
    b.label("qstart");
    b.mov(11, 12);
    b.label("qloop");
    b.bge(11, reg::end, "qend");
    b.slli(13, 11, 3);
    b.add(13, 6, 13);
    b.ldi(15, 1);
    b.st(15, 0, 13);
    b.add(11, 11, 10);
    b.j("qloop");
    b.label("qend");
    b.addi(9, 9, 1);
    b.j("ploop");
    b.label("pend");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        std::vector<bool> composite(limit + 1, false);
        for (std::uint64_t p : base_primes) {
            for (std::uint64_t q = p * p;
                 q <= static_cast<std::uint64_t>(limit); q += p) {
                composite[q] = true;
            }
        }
        for (std::int64_t i = 2; i <= limit; ++i) {
            std::uint64_t got = readWord(
                mem.image(), flags_addr + static_cast<Addr>(i * 8));
            if ((got != 0) != composite[i]) {
                return VerifyResult::fail(
                    format("flags[%lld]: got %llu expected %d",
                           static_cast<long long>(i),
                           static_cast<unsigned long long>(got),
                           composite[i] ? 1 : 0));
            }
        }
        return VerifyResult::pass();
    };
    return image;
}

} // namespace sdsp

/**
 * @file
 * The two molecular-dynamics Group II benchmarks.
 *
 * Water: 3-D N-body kernel whose force phase computes
 * s = 1/(r^2 * sqrt(r^2)) per pair — the FP divide and square root
 * make it the suite's heavy user of the non-pipelined FP divide unit
 * (and of Conditional Switch trigger instructions).
 *
 * MPD: 2-D cutoff particle kernel; the per-pair cutoff test makes it
 * branch-heavy FP code with a data-dependent, poorly predictable
 * branch, a deliberately different profile from Water.
 *
 * Both alternate an O(N^2) force phase and an integration phase with
 * flag-array barriers in between, each thread owning a particle
 * range, exactly the homogeneous-multitasking structure the paper's
 * benchmarks use.
 */

#include "workloads/group2.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/emit_util.hh"

namespace sdsp
{

namespace
{

/** Distinct particle positions on a jittered grid. */
std::vector<double>
jitteredPositions(Xorshift64 &rng, std::int64_t n, unsigned dims)
{
    std::vector<double> pos(dims * n);
    std::int64_t side = 1;
    while (side * side * (dims == 3 ? side : 1) < n)
        ++side;
    for (std::int64_t k = 0; k < n; ++k) {
        std::int64_t cx = k % side;
        std::int64_t cy = (k / side) % side;
        std::int64_t cz = k / (side * side);
        double jitter = 0.2;
        pos[0 * n + k] =
            static_cast<double>(cx) + rng.nextDouble(-jitter, jitter);
        pos[1 * n + k] =
            static_cast<double>(cy) + rng.nextDouble(-jitter, jitter);
        if (dims == 3) {
            pos[2 * n + k] = static_cast<double>(cz) +
                             rng.nextDouble(-jitter, jitter);
        }
    }
    return pos;
}

} // namespace

// --------------------------------------------------------------------
// Water
// --------------------------------------------------------------------

std::string
WaterWorkload::name() const
{
    return "Water";
}

WorkloadImage
WaterWorkload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t n = std::max<std::int64_t>(
        40 * static_cast<std::int64_t>(scale) / 100, 8);
    const int steps = 2;
    const double dt = 0.0005;
    const auto n8 = static_cast<std::int64_t>(n * 8);

    Xorshift64 rng(0x3A7E4 + n);
    std::vector<double> pos0 = jitteredPositions(rng, n, 3);
    std::vector<double> vel0(3 * n);
    for (auto &value : vel0)
        value = rng.nextDouble(-0.05, 0.05);

    ProgramBuilder b;
    Addr pos_addr = b.arrayOf("pos", pos0);
    Addr vel_addr = b.arrayOf("vel", vel0);
    b.array("force", static_cast<std::uint32_t>(3 * n));
    b.dvalue("one", 1.0);
    b.dvalue("dt", dt);
    b.array("flags", static_cast<std::uint32_t>(steps) * 2 * 8);
    b.array("stepcnt", 8);

    emitPrologue(b);
    emitPartition(b, "part", n, 6, 7);
    b.la(6, "pos").la(7, "vel").la(8, "force").la(9, "flags");

    b.label("step_loop");

    // ---- Force phase over own particles ----
    b.mov(10, reg::start);
    b.label("fi");
    b.bge(10, reg::end, "fi_end");
    b.ldi(14, 0); // accX = 0.0
    b.ldi(15, 0); // accY
    b.ldi(16, 0); // accZ
    b.ldi(11, 0);
    b.label("fj");
    b.li(12, n);
    b.bge(11, 12, "fj_end");
    b.beq(11, 10, "fj_next");
    // dx/dy/dz
    b.slli(12, 11, 3); // j*8
    b.slli(13, 10, 3); // i*8
    b.add(17, 6, 13);
    b.ld(17, 0, 17);   // px[i]
    b.add(18, 6, 12);
    b.ld(18, 0, 18);   // px[j]
    b.fsub(17, 17, 18); // dx
    b.li(20, n8);
    b.add(20, 6, 20);  // &py[0]
    b.add(18, 20, 13);
    b.ld(18, 0, 18);
    b.add(19, 20, 12);
    b.ld(19, 0, 19);
    b.fsub(18, 18, 19); // dy
    b.li(19, n8);
    b.add(20, 20, 19); // &pz[0]
    b.add(19, 20, 13);
    b.ld(19, 0, 19);
    b.add(20, 20, 12);
    b.ld(20, 0, 20);
    b.fsub(19, 19, 20); // dz
    // r2 = dx^2 + dy^2 + dz^2
    b.fmul(20, 17, 17);
    b.fmul(12, 18, 18);
    b.fadd(20, 20, 12);
    b.fmul(12, 19, 19);
    b.fadd(20, 20, 12);
    // s = 1 / (r2 * sqrt(r2))
    b.fsqrt(12, 20);
    b.fmul(20, 20, 12);
    b.la(13, "one");
    b.ld(13, 0, 13);
    b.fdiv(20, 13, 20);
    // acc += s * d
    b.fmul(17, 20, 17);
    b.fadd(14, 14, 17);
    b.fmul(18, 20, 18);
    b.fadd(15, 15, 18);
    b.fmul(19, 20, 19);
    b.fadd(16, 16, 19);
    b.label("fj_next");
    b.addi(11, 11, 1);
    b.j("fj");
    b.label("fj_end");
    // force[i] = acc (three axes)
    b.slli(12, 10, 3);
    b.add(13, 8, 12);
    b.st(14, 0, 13);
    b.li(20, n8);
    b.add(13, 13, 20);
    b.st(15, 0, 13);
    b.add(13, 13, 20);
    b.st(16, 0, 13);
    b.addi(10, 10, 1);
    b.j("fi");
    b.label("fi_end");

    // ---- Barrier (forces complete) ----
    b.la(12, "stepcnt");
    b.slli(13, reg::tid, 3);
    b.add(12, 12, 13);
    b.ld(13, 0, 12);   // step
    b.slli(13, 13, 7); // step * 2 rows * 64 bytes
    b.add(13, 9, 13);
    emitBarrier(b, "wb1", 13, 14, 15, 16);

    // ---- Integration phase over own particles ----
    b.mov(10, reg::start);
    b.label("ui");
    b.bge(10, reg::end, "ui_end");
    b.la(13, "dt");
    b.ld(20, 0, 13);
    b.slli(12, 10, 3);
    for (int axis = 0; axis < 3; ++axis) {
        if (axis > 0) {
            b.li(14, n8);
            b.add(12, 12, 14);
        }
        b.add(13, 8, 12);
        b.ld(17, 0, 13);   // f
        b.add(13, 7, 12);
        b.ld(18, 0, 13);   // v
        b.fmul(17, 20, 17);
        b.fadd(18, 18, 17);
        b.st(18, 0, 13);   // v'
        b.add(13, 6, 12);
        b.ld(19, 0, 13);   // p
        b.fmul(17, 20, 18);
        b.fadd(19, 19, 17);
        b.st(19, 0, 13);   // p'
    }
    b.addi(10, 10, 1);
    b.j("ui");
    b.label("ui_end");

    // ---- Barrier (positions stable), advance step ----
    b.la(12, "stepcnt");
    b.slli(13, reg::tid, 3);
    b.add(12, 12, 13);
    b.ld(13, 0, 12);
    b.slli(14, 13, 7);
    b.addi(14, 14, 64); // second row of this step
    b.add(14, 9, 14);
    emitBarrier(b, "wb2", 14, 15, 16, 17);
    b.addi(13, 13, 1);
    b.st(13, 0, 12);
    b.ldi(14, steps);
    b.blt(13, 14, "step_loop");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        std::vector<double> pos = pos0, vel = vel0, force(3 * n, 0.0);
        for (int step = 0; step < steps; ++step) {
            for (std::int64_t i = 0; i < n; ++i) {
                double ax = 0, ay = 0, az = 0;
                for (std::int64_t j = 0; j < n; ++j) {
                    if (j == i)
                        continue;
                    double dx = pos[i] - pos[j];
                    double dy = pos[n + i] - pos[n + j];
                    double dz = pos[2 * n + i] - pos[2 * n + j];
                    double r2 = dx * dx;
                    r2 = r2 + dy * dy;
                    r2 = r2 + dz * dz;
                    double s = 1.0 / (r2 * std::sqrt(r2));
                    ax += s * dx;
                    ay += s * dy;
                    az += s * dz;
                }
                force[i] = ax;
                force[n + i] = ay;
                force[2 * n + i] = az;
            }
            for (std::int64_t i = 0; i < n; ++i) {
                for (int axis = 0; axis < 3; ++axis) {
                    std::int64_t k = axis * n + i;
                    vel[k] = vel[k] + dt * force[k];
                    pos[k] = pos[k] + dt * vel[k];
                }
            }
        }
        for (std::int64_t k = 0; k < 3 * n; ++k) {
            double got_pos = readDouble(
                mem.image(), pos_addr + static_cast<Addr>(k * 8));
            double got_vel = readDouble(
                mem.image(), vel_addr + static_cast<Addr>(k * 8));
            if (!nearlyEqual(got_pos, pos[k], 1e-7) ||
                !nearlyEqual(got_vel, vel[k], 1e-7)) {
                return VerifyResult::fail(
                    format("particle state %lld mismatch "
                           "(pos %.17g/%.17g vel %.17g/%.17g)",
                           static_cast<long long>(k), got_pos, pos[k],
                           got_vel, vel[k]));
            }
        }
        return VerifyResult::pass();
    };
    return image;
}

// --------------------------------------------------------------------
// MPD
// --------------------------------------------------------------------

std::string
MpdWorkload::name() const
{
    return "MPD";
}

WorkloadImage
MpdWorkload::build(unsigned num_threads, unsigned scale) const
{
    const std::int64_t n = std::max<std::int64_t>(
        48 * static_cast<std::int64_t>(scale) / 100, 8);
    const int steps = 2;
    const double dt = 0.001;
    const double cut2 = 2.25; // cutoff radius^2
    const auto n8 = static_cast<std::int64_t>(n * 8);

    Xorshift64 rng(0x3D7B + n);
    std::vector<double> pos0 = jitteredPositions(rng, n, 2);
    std::vector<double> vel0(2 * n);
    for (auto &value : vel0)
        value = rng.nextDouble(-0.05, 0.05);

    ProgramBuilder b;
    Addr pos_addr = b.arrayOf("pos", pos0);
    Addr vel_addr = b.arrayOf("vel", vel0);
    b.array("force", static_cast<std::uint32_t>(2 * n));
    b.dvalue("cut2", cut2);
    b.dvalue("dt", dt);
    b.array("flags", static_cast<std::uint32_t>(steps) * 2 * 8);
    b.array("stepcnt", 8);

    emitPrologue(b);
    emitPartition(b, "part", n, 6, 7);
    b.la(6, "pos").la(7, "vel").la(8, "force").la(9, "flags");

    b.label("step_loop");

    // ---- Force phase ----
    b.mov(10, reg::start);
    b.label("fi");
    b.bge(10, reg::end, "fi_end");
    b.ldi(14, 0); // accX
    b.ldi(15, 0); // accY
    b.ldi(11, 0);
    b.label("fj");
    b.li(12, n);
    b.bge(11, 12, "fj_end");
    b.beq(11, 10, "fj_next");
    b.slli(12, 11, 3);
    b.slli(13, 10, 3);
    b.add(17, 6, 13);
    b.ld(17, 0, 17);
    b.add(18, 6, 12);
    b.ld(18, 0, 18);
    b.fsub(17, 17, 18); // dx
    b.li(20, n8);
    b.add(20, 6, 20);
    b.add(18, 20, 13);
    b.ld(18, 0, 18);
    b.add(19, 20, 12);
    b.ld(19, 0, 19);
    b.fsub(18, 18, 19); // dy
    b.fmul(19, 17, 17);
    b.fmul(20, 18, 18);
    b.fadd(19, 19, 20); // s = dx^2 + dy^2
    b.la(20, "cut2");
    b.ld(20, 0, 20);
    // The cutoff test: a data-dependent branch per pair.
    b.fcmplt(12, 19, 20);
    b.beq(12, reg::zero, "fj_next");
    b.fsub(20, 20, 19); // w = cut2 - s
    b.fmul(17, 20, 17);
    b.fadd(14, 14, 17); // accX += w*dx
    b.fmul(18, 20, 18);
    b.fadd(15, 15, 18); // accY += w*dy
    b.label("fj_next");
    b.addi(11, 11, 1);
    b.j("fj");
    b.label("fj_end");
    b.slli(12, 10, 3);
    b.add(13, 8, 12);
    b.st(14, 0, 13);
    b.li(20, n8);
    b.add(13, 13, 20);
    b.st(15, 0, 13);
    b.addi(10, 10, 1);
    b.j("fi");
    b.label("fi_end");

    // ---- Barrier ----
    b.la(12, "stepcnt");
    b.slli(13, reg::tid, 3);
    b.add(12, 12, 13);
    b.ld(13, 0, 12);
    b.slli(13, 13, 7);
    b.add(13, 9, 13);
    emitBarrier(b, "mb1", 13, 14, 15, 16);

    // ---- Integration ----
    b.mov(10, reg::start);
    b.label("ui");
    b.bge(10, reg::end, "ui_end");
    b.la(13, "dt");
    b.ld(20, 0, 13);
    b.slli(12, 10, 3);
    for (int axis = 0; axis < 2; ++axis) {
        if (axis > 0) {
            b.li(14, n8);
            b.add(12, 12, 14);
        }
        b.add(13, 8, 12);
        b.ld(17, 0, 13);
        b.add(13, 7, 12);
        b.ld(18, 0, 13);
        b.fmul(17, 20, 17);
        b.fadd(18, 18, 17);
        b.st(18, 0, 13);
        b.add(13, 6, 12);
        b.ld(19, 0, 13);
        b.fmul(17, 20, 18);
        b.fadd(19, 19, 17);
        b.st(19, 0, 13);
    }
    b.addi(10, 10, 1);
    b.j("ui");
    b.label("ui_end");

    // ---- Barrier + step advance ----
    b.la(12, "stepcnt");
    b.slli(13, reg::tid, 3);
    b.add(12, 12, 13);
    b.ld(13, 0, 12);
    b.slli(14, 13, 7);
    b.addi(14, 14, 64);
    b.add(14, 9, 14);
    emitBarrier(b, "mb2", 14, 15, 16, 17);
    b.addi(13, 13, 1);
    b.st(13, 0, 12);
    b.ldi(14, steps);
    b.blt(13, 14, "step_loop");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        std::vector<double> pos = pos0, vel = vel0, force(2 * n, 0.0);
        for (int step = 0; step < steps; ++step) {
            for (std::int64_t i = 0; i < n; ++i) {
                double ax = 0, ay = 0;
                for (std::int64_t j = 0; j < n; ++j) {
                    if (j == i)
                        continue;
                    double dx = pos[i] - pos[j];
                    double dy = pos[n + i] - pos[n + j];
                    double s = dx * dx;
                    s = s + dy * dy;
                    if (s < cut2) {
                        double w = cut2 - s;
                        ax += w * dx;
                        ay += w * dy;
                    }
                }
                force[i] = ax;
                force[n + i] = ay;
            }
            for (std::int64_t i = 0; i < n; ++i) {
                for (int axis = 0; axis < 2; ++axis) {
                    std::int64_t k = axis * n + i;
                    vel[k] = vel[k] + dt * force[k];
                    pos[k] = pos[k] + dt * vel[k];
                }
            }
        }
        for (std::int64_t k = 0; k < 2 * n; ++k) {
            double got_pos = readDouble(
                mem.image(), pos_addr + static_cast<Addr>(k * 8));
            double got_vel = readDouble(
                mem.image(), vel_addr + static_cast<Addr>(k * 8));
            if (!nearlyEqual(got_pos, pos[k], 1e-7) ||
                !nearlyEqual(got_vel, vel[k], 1e-7)) {
                return VerifyResult::fail(
                    format("particle state %lld mismatch",
                           static_cast<long long>(k)));
            }
        }
        return VerifyResult::pass();
    };
    return image;
}

} // namespace sdsp

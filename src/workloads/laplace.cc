/**
 * @file
 * Laplace: 5-point Jacobi relaxation on a square grid with fixed
 * boundary, ping-pong buffers, row bands partitioned across threads
 * and a flag-array barrier after every iteration.
 */

#include "workloads/group2.hh"

#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/emit_util.hh"

namespace sdsp
{

std::string
LaplaceWorkload::name() const
{
    return "Laplace";
}

WorkloadImage
LaplaceWorkload::build(unsigned num_threads, unsigned scale) const
{
    std::int64_t g = std::max<std::int64_t>(
        26 * static_cast<std::int64_t>(scale) / 100, 6);
    g = std::min<std::int64_t>(g, 63); // row stride must fit imm10
    const int iters = 12;

    Xorshift64 rng(0x1AB + g);
    std::vector<double> grid(g * g);
    for (std::int64_t i = 0; i < g; ++i) {
        for (std::int64_t j = 0; j < g; ++j) {
            bool boundary = i == 0 || j == 0 || i == g - 1 || j == g - 1;
            grid[i * g + j] =
                boundary ? rng.nextDouble(0.5, 1.5) : rng.nextDouble();
        }
    }

    ProgramBuilder b;
    Addr a_addr = b.arrayOf("gridA", grid);
    // The destination grid fully aliases the source grid, so the
    // per-cell read/write pair conflicts in a direct-mapped cache
    // and coexists in the 2-way one (paper section 5.3).
    padToCacheAlias(b, "pad_ab", a_addr);
    Addr b_addr = b.arrayOf("gridB", grid);
    b.dvalue("quarter", 0.25);
    b.array("flags", static_cast<std::uint32_t>(iters) * 8);

    emitPrologue(b);
    emitPartition(b, "part", g - 2, 6, 7); // interior rows
    b.addi(reg::start, reg::start, 1);
    b.addi(reg::end, reg::end, 1);
    b.la(6, "gridA").la(7, "gridB").la(8, "flags");
    b.la(12, "quarter");
    b.ld(19, 0, 12);
    b.ldi(9, 0); // iteration

    auto row_bytes = static_cast<std::int32_t>(g * 8);

    b.label("iter");
    b.mov(10, reg::start);
    b.label("iloop");
    b.bge(10, reg::end, "iend");
    b.ldi(11, 1);
    b.label("jloop");
    b.ldi(12, static_cast<std::int32_t>(g - 1));
    b.bge(11, 12, "jend");
    b.ldi(12, static_cast<std::int32_t>(g));
    b.mul(13, 10, 12);
    b.add(13, 13, 11);
    b.slli(13, 13, 3);
    b.add(13, 6, 13); // &src[i][j]
    b.ld(14, -8, 13);
    b.ld(15, 8, 13);
    b.fadd(14, 14, 15);
    b.ld(15, -row_bytes, 13);
    b.fadd(14, 14, 15);
    b.ld(15, row_bytes, 13);
    b.fadd(14, 14, 15);
    b.fmul(14, 19, 14);
    b.sub(15, 13, 6);
    b.add(15, 7, 15); // same cell in dst
    b.st(14, 0, 15);
    b.addi(11, 11, 1);
    b.j("jloop");
    b.label("jend");
    b.addi(10, 10, 1);
    b.j("iloop");
    b.label("iend");
    // Barrier, then swap the ping-pong roles.
    b.slli(12, 9, 6);
    b.add(12, 8, 12);
    emitBarrier(b, "bar", 12, 13, 15, 20);
    b.mov(12, 6);
    b.mov(6, 7);
    b.mov(7, 12);
    b.addi(9, 9, 1);
    b.ldi(12, iters);
    b.blt(9, 12, "iter");
    b.halt();

    WorkloadImage image;
    image.name = name();
    image.numThreads = num_threads;
    image.program = b.finish();
    image.verify = [=](const MainMemory &mem) {
        std::vector<double> src = grid, dst = grid;
        for (int it = 0; it < iters; ++it) {
            for (std::int64_t i = 1; i < g - 1; ++i) {
                for (std::int64_t j = 1; j < g - 1; ++j) {
                    double sum = src[i * g + j - 1] + src[i * g + j + 1];
                    sum = sum + src[(i - 1) * g + j];
                    sum = sum + src[(i + 1) * g + j];
                    dst[i * g + j] = 0.25 * sum;
                }
            }
            std::swap(src, dst);
        }
        // After the loop the final state is in `src`; in simulated
        // memory it is gridB after an odd number of iterations,
        // gridA after an even number.
        Addr final_addr = (iters % 2 == 1) ? b_addr : a_addr;
        for (std::int64_t i = 0; i < g * g; ++i) {
            double got = readDouble(mem.image(),
                                    final_addr +
                                        static_cast<Addr>(i * 8));
            if (!nearlyEqual(got, src[i])) {
                return VerifyResult::fail(
                    format("grid[%lld]: got %.17g expected %.17g",
                           static_cast<long long>(i), got, src[i]));
            }
        }
        return VerifyResult::pass();
    };
    return image;
}

} // namespace sdsp

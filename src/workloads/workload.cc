#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/group2.hh"
#include "workloads/livermore.hh"

namespace sdsp
{

LintReport
Workload::lint(unsigned num_threads, unsigned scale,
               LintOptions options) const
{
    WorkloadImage image = build(num_threads, scale);
    options.machine.numThreads = num_threads;
    return lintProgram(image.program, options);
}

const std::vector<const Workload *> &
allWorkloads()
{
    static const LL1Workload ll1;
    static const LL2Workload ll2;
    static const LL3Workload ll3;
    static const LL5Workload ll5;
    static const LL7Workload ll7;
    static const LL11Workload ll11;
    static const LaplaceWorkload laplace;
    static const MpdWorkload mpd;
    static const MatrixWorkload matrix;
    static const SieveWorkload sieve;
    static const WaterWorkload water;

    static const std::vector<const Workload *> all = {
        &ll1, &ll2, &ll3, &ll5, &ll7, &ll11,
        &laplace, &mpd, &matrix, &sieve, &water,
    };
    return all;
}

const std::vector<const Workload *> &
extensionWorkloads()
{
    static const LL5SchedWorkload ll5sched;
    static const std::vector<const Workload *> extensions = {
        &ll5sched,
    };
    return extensions;
}

std::vector<const Workload *>
workloadsInGroup(BenchmarkGroup group)
{
    std::vector<const Workload *> result;
    for (const Workload *workload : allWorkloads()) {
        if (workload->group() == group)
            result.push_back(workload);
    }
    return result;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const Workload *workload : allWorkloads()) {
        if (workload->name() == name)
            return *workload;
    }
    for (const Workload *workload : extensionWorkloads()) {
        if (workload->name() == name)
            return *workload;
    }
    fatal("no benchmark named '%s'", name.c_str());
}

} // namespace sdsp

#include "workloads/emit_util.hh"

#include <cmath>

namespace sdsp
{

void
emitPrologue(ProgramBuilder &builder)
{
    builder.ldi(reg::zero, 0);
    builder.tid(reg::tid);
    builder.nth(reg::nth);
}

void
emitPartition(ProgramBuilder &builder, const std::string &prefix,
              std::int64_t n, RegIndex s1, RegIndex s2)
{
    builder.li(s1, n);
    builder.div(s2, s1, reg::nth);          // chunk = n / nth
    builder.mul(reg::start, reg::tid, s2);  // start = tid * chunk
    builder.add(reg::end, reg::start, s2);  // end = start + chunk
    builder.addi(s2, reg::nth, -1);
    builder.bne(reg::tid, s2, prefix + "_notlast");
    builder.mov(reg::end, s1);              // last thread: end = n
    builder.label(prefix + "_notlast");
}

void
emitSpinWaitNonzero(ProgramBuilder &builder, const std::string &prefix,
                    RegIndex r_addr, RegIndex scratch)
{
    builder.label(prefix + "_spin");
    builder.spin();
    builder.ld(scratch, 0, r_addr);
    builder.beq(scratch, reg::zero, prefix + "_spin");
}

void
emitBarrier(ProgramBuilder &builder, const std::string &prefix,
            RegIndex r_base, RegIndex s1, RegIndex s2, RegIndex s3)
{
    // Announce arrival: flags[tid] = 1.
    builder.slli(s1, reg::tid, 3);
    builder.add(s1, r_base, s1);
    builder.ldi(s2, 1);
    builder.st(s2, 0, s1);

    // Wait for every thread's flag.
    builder.ldi(s1, 0); // u = 0
    builder.label(prefix + "_wait");
    builder.bge(s1, reg::nth, prefix + "_done");
    builder.slli(s2, s1, 3);
    builder.add(s2, r_base, s2);
    builder.label(prefix + "_waitspin");
    builder.spin();
    builder.ld(s3, 0, s2);
    builder.beq(s3, reg::zero, prefix + "_waitspin");
    builder.addi(s1, s1, 1);
    builder.j(prefix + "_wait");
    builder.label(prefix + "_done");
}

void
padToCacheAlias(ProgramBuilder &builder, const std::string &pad_name,
                Addr target_base)
{
    constexpr Addr cache_bytes = 8192;
    Addr cursor = builder.dataCursor();
    Addr pad = (target_base % cache_bytes + cache_bytes -
                cursor % cache_bytes) %
               cache_bytes;
    if (pad != 0)
        builder.array(pad_name, pad / 8);
}

bool
nearlyEqual(double a, double b, double tolerance)
{
    double diff = std::fabs(a - b);
    double magnitude = std::fmax(std::fabs(a), std::fabs(b));
    return diff <= tolerance * std::fmax(magnitude, 1.0);
}

} // namespace sdsp

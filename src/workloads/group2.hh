/**
 * @file
 * Group II benchmark declarations: Laplace, MPD, Matrix, Sieve and
 * Water. The paper's Water and MPD come from SPLASH / Boothe's suite;
 * here they are scaled-down molecular-dynamics kernels with the same
 * structure (O(N^2) force phase, barrier, integration phase), per the
 * substitution policy documented in DESIGN.md.
 */

#ifndef SDSP_WORKLOADS_GROUP2_HH
#define SDSP_WORKLOADS_GROUP2_HH

#include "workloads/workload.hh"

namespace sdsp
{

/** Base for Group II benchmarks. */
class GroupIIWorkload : public Workload
{
  public:
    BenchmarkGroup group() const override { return BenchmarkGroup::GroupII; }
};

/** Dense matrix multiply, rows partitioned across threads. */
class MatrixWorkload : public GroupIIWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** Sieve of Eratosthenes, flag segments partitioned across threads. */
class SieveWorkload : public GroupIIWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** 5-point Jacobi/Laplace relaxation, row bands per thread, barrier
 *  per iteration. */
class LaplaceWorkload : public GroupIIWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** 3-D molecular dynamics kernel with FP divide/sqrt in the force
 *  phase (the Water stand-in). */
class WaterWorkload : public GroupIIWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

/** 2-D cutoff particle dynamics kernel, branch-heavy FP (the MPD
 *  stand-in). */
class MpdWorkload : public GroupIIWorkload
{
  public:
    std::string name() const override;
    WorkloadImage build(unsigned num_threads,
                        unsigned scale) const override;
};

} // namespace sdsp

#endif // SDSP_WORKLOADS_GROUP2_HH

/**
 * @file
 * The benchmark suite framework.
 *
 * The paper simulates eleven C benchmarks compiled with the SDSP tool
 * chain, programmed in the homogeneous-multitasking style: all threads
 * execute the same code on different items of data. Group I is six
 * Livermore loops (LL1, LL2, LL3, LL5, LL7, LL11); Group II is
 * Laplace, MPD, Matrix, Sieve and Water.
 *
 * Each workload here is a generator: given a thread count and a size
 * scale it emits the benchmark as SDSP-MT assembly (via
 * ProgramBuilder), produces the initial data image, and returns a
 * verifier that checks the final memory image against values computed
 * independently in C++.
 */

#ifndef SDSP_WORKLOADS_WORKLOAD_HH
#define SDSP_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "isa/program.hh"
#include "memory/main_memory.hh"

namespace sdsp
{

/** The paper's two reporting groups. */
enum class BenchmarkGroup
{
    LivermoreLoops, //!< Group I
    GroupII,        //!< Group II (Laplace, MPD, Matrix, Sieve, Water)
};

/** Result of output verification. */
struct VerifyResult
{
    bool ok = true;
    std::string message;

    static VerifyResult pass() { return {true, ""}; }
    static VerifyResult
    fail(std::string why)
    {
        return {false, std::move(why)};
    }
};

/** A built, runnable benchmark instance. */
struct WorkloadImage
{
    std::string name;
    unsigned numThreads = 1;
    Program program;
    /** Checks the final data memory against expected outputs. */
    std::function<VerifyResult(const MainMemory &)> verify;
};

/** A benchmark generator. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as the paper labels it (e.g. "LL7", "Water"). */
    virtual std::string name() const = 0;

    /** Reporting group. */
    virtual BenchmarkGroup group() const = 0;

    /**
     * Build an instance.
     *
     * @param num_threads Parallel threads the code is compiled for.
     * @param scale       Problem-size scale in percent (100 = the
     *                    default used by the paper-reproduction
     *                    benches; tests use smaller values).
     */
    virtual WorkloadImage build(unsigned num_threads,
                                unsigned scale = 100) const = 0;

    /**
     * Build an instance and run sdsp-lint over it. The machine's
     * thread count in @p options is overridden with @p num_threads;
     * other options (latencies, machine shape) pass through. Tests
     * and the lint CI gate require a clean() report for every
     * built-in workload.
     */
    LintReport lint(unsigned num_threads, unsigned scale = 100,
                    LintOptions options = {}) const;
};

/** All eleven benchmarks, Group I first, stable order. */
const std::vector<const Workload *> &allWorkloads();

/**
 * Extension benchmarks outside the paper's eleven (e.g. LL5sched,
 * the software-scheduled LL5 variant of paper section 6.1).
 */
const std::vector<const Workload *> &extensionWorkloads();

/** Benchmarks of one group, in suite order (extensions excluded). */
std::vector<const Workload *> workloadsInGroup(BenchmarkGroup group);

/** Find a benchmark (or extension) by name. Fatal if unknown. */
const Workload &workloadByName(const std::string &name);

} // namespace sdsp

#endif // SDSP_WORKLOADS_WORKLOAD_HH

#include "branch/predictor_bank.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace sdsp
{

PredictorBank::PredictorBank(std::uint32_t total_entries,
                             unsigned banks)
{
    sdsp_assert(banks >= 1, "need at least one predictor bank");
    sdsp_assert(isPowerOf2(total_entries),
                "BTB budget must be a power of two");

    // Split the budget; round each bank down to a power of two.
    bankEntries = total_entries / banks;
    while (!isPowerOf2(bankEntries) && bankEntries > 1)
        bankEntries &= bankEntries - 1; // clear lowest set bit
    if (bankEntries < 1)
        bankEntries = 1;

    for (unsigned i = 0; i < banks; ++i)
        btbs.push_back(std::make_unique<BranchPredictor>(bankEntries));
}

BranchPredictor &
PredictorBank::bankOf(ThreadId tid)
{
    return *btbs[tid % btbs.size()];
}

const BranchPredictor &
PredictorBank::bankOf(ThreadId tid) const
{
    return *btbs[tid % btbs.size()];
}

void
PredictorBank::noteOutcome(bool mispredicted)
{
    ++statOutcomes;
    if (mispredicted)
        ++statMispredicts;
}

double
PredictorBank::accuracy() const
{
    if (statOutcomes == 0)
        return 1.0;
    return 1.0 - static_cast<double>(statMispredicts) /
                     static_cast<double>(statOutcomes);
}

void
PredictorBank::reportStats(StatsRegistry &registry,
                           const std::string &prefix) const
{
    registry.add(prefix, "banks", static_cast<double>(btbs.size()));
    registry.add(prefix, "entriesPerBank",
                 static_cast<double>(bankEntries));
    registry.add(prefix, "resolved",
                 static_cast<double>(statOutcomes));
    registry.add(prefix, "mispredicts",
                 static_cast<double>(statMispredicts));
    registry.add(prefix, "accuracy", accuracy());
}

} // namespace sdsp

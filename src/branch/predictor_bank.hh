/**
 * @file
 * Branch predictor banking: one shared BTB vs private per-thread
 * BTBs.
 *
 * The paper keeps a single BTB shared by all threads ("only one BTB
 * is maintained, regardless of the number of threads") and notes that
 * while this "may seem too simplistic, it yielded prediction
 * accuracies upwards of 8x% for all applications" — plausible because
 * the homogeneous-multitasking benchmarks run the same code in every
 * thread. This class makes that a testable design axis: with more
 * than one bank, each thread predicts and trains against its own
 * equally sized slice of the same total BTB budget.
 */

#ifndef SDSP_BRANCH_PREDICTOR_BANK_HH
#define SDSP_BRANCH_PREDICTOR_BANK_HH

#include <memory>
#include <vector>

#include "branch/predictor.hh"

namespace sdsp
{

/** A shared BTB or a set of private per-thread BTBs. */
class PredictorBank
{
  public:
    /**
     * @param total_entries Total BTB budget across all banks.
     * @param banks         1 = the paper's shared BTB; N = private
     *                      per-thread BTBs of total_entries/N entries
     *                      each (rounded down to a power of two).
     */
    PredictorBank(std::uint32_t total_entries, unsigned banks);

    /** Fetch-stage lookup by @p tid for the branch at @p pc. */
    BranchPrediction
    predict(ThreadId tid, InstAddr pc) const
    {
        return bankOf(tid).predict(pc);
    }

    /** Commit-stage update. */
    void
    update(ThreadId tid, InstAddr pc, bool taken, InstAddr target)
    {
        bankOf(tid).update(pc, taken, target);
    }

    /** Record a resolved prediction outcome. */
    void noteOutcome(bool mispredicted);

    /** Resolved predictions so far (all banks). */
    std::uint64_t lookups() const { return statOutcomes; }

    /** Mispredictions so far (all banks). */
    std::uint64_t mispredictions() const { return statMispredicts; }

    /** Aggregate prediction accuracy in [0,1]. */
    double accuracy() const;

    /** Number of banks. */
    unsigned banks() const { return static_cast<unsigned>(btbs.size()); }

    /** Entries in each bank. */
    std::uint32_t entriesPerBank() const { return bankEntries; }

    /** Report statistics under @p prefix. */
    void reportStats(StatsRegistry &registry,
                     const std::string &prefix) const;

  private:
    BranchPredictor &bankOf(ThreadId tid);
    const BranchPredictor &bankOf(ThreadId tid) const;

    std::vector<std::unique_ptr<BranchPredictor>> btbs;
    std::uint32_t bankEntries;

    std::uint64_t statOutcomes = 0;
    std::uint64_t statMispredicts = 0;
};

} // namespace sdsp

#endif // SDSP_BRANCH_PREDICTOR_BANK_HH

#include "branch/predictor.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace sdsp
{

BranchPredictor::BranchPredictor(std::uint32_t entries)
    : table(entries), mask(entries - 1)
{
    sdsp_assert(isPowerOf2(entries), "BTB size must be a power of two");
}

std::uint32_t
BranchPredictor::indexOf(InstAddr pc) const
{
    return pc & mask;
}

BranchPrediction
BranchPredictor::predict(InstAddr pc) const
{
    const Entry &entry = table[indexOf(pc)];
    if (!entry.valid || entry.pc != pc)
        return {false, false, 0};
    return {true, entry.counter >= 2, entry.target};
}

void
BranchPredictor::update(InstAddr pc, bool taken, InstAddr target)
{
    Entry &entry = table[indexOf(pc)];
    if (!entry.valid || entry.pc != pc) {
        // Allocate (or displace the alias) with weak hysteresis.
        entry.valid = true;
        entry.pc = pc;
        entry.target = target;
        entry.counter = taken ? 2 : 1;
        return;
    }
    if (taken) {
        if (entry.counter < 3)
            ++entry.counter;
        entry.target = target;
    } else if (entry.counter > 0) {
        --entry.counter;
    }
}

void
BranchPredictor::noteOutcome(bool mispredicted)
{
    ++statOutcomes;
    if (mispredicted)
        ++statMispredicts;
}

double
BranchPredictor::accuracy() const
{
    if (statOutcomes == 0)
        return 1.0;
    return 1.0 - static_cast<double>(statMispredicts) /
                     static_cast<double>(statOutcomes);
}

void
BranchPredictor::reportStats(StatsRegistry &registry,
                             const std::string &prefix) const
{
    registry.add(prefix, "resolved", static_cast<double>(statOutcomes));
    registry.add(prefix, "mispredicts",
                 static_cast<double>(statMispredicts));
    registry.add(prefix, "accuracy", accuracy());
}

} // namespace sdsp

/**
 * @file
 * Hardware branch predictor: a branch target buffer with 2-bit
 * saturating counters.
 *
 * The paper uses "a 2-bit prediction algorithm" with a *single* BTB
 * shared by all threads ("only one BTB is maintained, regardless of
 * the number of threads. Branch instructions of all threads update the
 * same history after execution"), which works because all threads run
 * the same code. Prediction state is updated only when the branch is
 * shifted out of the SU at result commit — the paper explicitly notes
 * the delayed update as a cause of extra mispredictions at large SU
 * depths.
 */

#ifndef SDSP_BRANCH_PREDICTOR_HH
#define SDSP_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats_registry.hh"
#include "common/types.hh"

namespace sdsp
{

/** Prediction returned for a fetch-stage lookup. */
struct BranchPrediction
{
    bool hit = false;     //!< BTB entry exists for this PC
    bool taken = false;   //!< counter in a taken state
    InstAddr target = 0;  //!< predicted target when taken
};

/** Direct-mapped BTB of 2-bit saturating counters. */
class BranchPredictor
{
  public:
    /** @param entries BTB entries; must be a power of two. */
    explicit BranchPredictor(std::uint32_t entries = 512);

    /** Fetch-stage lookup for the branch at @p pc. */
    BranchPrediction predict(InstAddr pc) const;

    /**
     * Commit-stage update with the architecturally resolved outcome.
     *
     * @param pc     Branch instruction address.
     * @param taken  Resolved direction.
     * @param target Resolved target (meaningful when taken).
     */
    void update(InstAddr pc, bool taken, InstAddr target);

    /** Record a resolved prediction outcome (for accuracy stats). */
    void noteOutcome(bool mispredicted);

    /** Resolved conditional-branch predictions so far. */
    std::uint64_t lookups() const { return statOutcomes; }
    /** Mispredictions so far. */
    std::uint64_t mispredictions() const { return statMispredicts; }
    /** Prediction accuracy in [0,1]; 1.0 with no branches. */
    double accuracy() const;

    /** Report statistics under @p prefix. */
    void reportStats(StatsRegistry &registry,
                     const std::string &prefix) const;

  private:
    struct Entry
    {
        bool valid = false;
        InstAddr pc = 0;
        InstAddr target = 0;
        /** 2-bit saturating counter; >= 2 predicts taken. */
        std::uint8_t counter = 1;
    };

    std::uint32_t indexOf(InstAddr pc) const;

    std::vector<Entry> table;
    std::uint32_t mask;

    std::uint64_t statOutcomes = 0;
    std::uint64_t statMispredicts = 0;
};

} // namespace sdsp

#endif // SDSP_BRANCH_PREDICTOR_HH

#include "core/config.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sdsp
{

namespace
{

unsigned
idx(FuClass cls)
{
    return static_cast<unsigned>(cls);
}

FuConfig
baseLatencies(FuConfig cfg)
{
    cfg.latency[idx(FuClass::IntAlu)] = 1;
    cfg.latency[idx(FuClass::IntMul)] = 3;
    cfg.latency[idx(FuClass::IntDiv)] = 12;
    cfg.latency[idx(FuClass::Load)] = 2;
    cfg.latency[idx(FuClass::Store)] = 1;
    cfg.latency[idx(FuClass::Ctrl)] = 1;
    cfg.latency[idx(FuClass::FpAdd)] = 3;
    cfg.latency[idx(FuClass::FpMul)] = 3;
    cfg.latency[idx(FuClass::FpDiv)] = 12;
    for (unsigned i = 0; i < kNumFuClasses; ++i)
        cfg.pipelined[i] = true;
    // Divide units are iterative, not pipelined.
    cfg.pipelined[idx(FuClass::IntDiv)] = false;
    cfg.pipelined[idx(FuClass::FpDiv)] = false;
    return cfg;
}

} // namespace

FuConfig
FuConfig::sdspDefault()
{
    FuConfig cfg = baseLatencies({});
    cfg.count[idx(FuClass::IntAlu)] = 4;
    cfg.count[idx(FuClass::IntMul)] = 1;
    cfg.count[idx(FuClass::IntDiv)] = 1;
    cfg.count[idx(FuClass::Load)] = 1;
    cfg.count[idx(FuClass::Store)] = 1;
    cfg.count[idx(FuClass::Ctrl)] = 1;
    cfg.count[idx(FuClass::FpAdd)] = 1;
    cfg.count[idx(FuClass::FpMul)] = 1;
    cfg.count[idx(FuClass::FpDiv)] = 1;
    return cfg;
}

FuConfig
FuConfig::sdspEnhanced()
{
    FuConfig cfg = baseLatencies({});
    cfg.count[idx(FuClass::IntAlu)] = 6;
    cfg.count[idx(FuClass::IntMul)] = 2;
    cfg.count[idx(FuClass::IntDiv)] = 2;
    cfg.count[idx(FuClass::Load)] = 2;
    cfg.count[idx(FuClass::Store)] = 2;
    cfg.count[idx(FuClass::Ctrl)] = 1;
    cfg.count[idx(FuClass::FpAdd)] = 2;
    cfg.count[idx(FuClass::FpMul)] = 2;
    cfg.count[idx(FuClass::FpDiv)] = 2;
    return cfg;
}

const char *
fetchPolicyName(FetchPolicy policy)
{
    switch (policy) {
      case FetchPolicy::TrueRoundRobin: return "TrueRR";
      case FetchPolicy::MaskedRoundRobin: return "MaskedRR";
      case FetchPolicy::ConditionalSwitch: return "CSwitch";
      case FetchPolicy::Adaptive: return "Adaptive";
      case FetchPolicy::WeightedRoundRobin: return "WeightedRR";
    }
    return "?";
}

const char *
renameSchemeName(RenameScheme scheme)
{
    switch (scheme) {
      case RenameScheme::FullRenaming: return "FullRenaming";
      case RenameScheme::Scoreboard1Bit: return "Scoreboard1Bit";
    }
    return "?";
}

const char *
commitPolicyName(CommitPolicy policy)
{
    switch (policy) {
      case CommitPolicy::FlexibleFourBlocks: return "Flexible";
      case CommitPolicy::LowestBlockOnly: return "LowestOnly";
    }
    return "?";
}

MachineConfig &
MachineConfig::finalize()
{
    // 32 architectural registers per resident thread (paper Table 2);
    // an explicit larger total is kept as-is.
    numRegisters = std::max(numRegisters, 32 * numThreads);
    return *this;
}

void
MachineConfig::validate() const
{
    if (numThreads < 1 || numThreads > 16)
        fatal("numThreads %u out of range [1,16]", numThreads);
    if (blockSize != 4)
        fatal("the SDSP fetch/commit block is 4 instructions");
    if (suEntries % blockSize != 0 || suEntries < blockSize)
        fatal("suEntries %u must be a positive multiple of %u",
              suEntries, blockSize);
    if (regsPerThread() < 4)
        fatal("fewer than 4 registers per thread");
    if (issueWidth < 1 || writebackWidth < 1)
        fatal("issue/writeback width must be positive");
    if (btbBanks < 1)
        fatal("btbBanks must be at least 1");
    if (fetchPolicy == FetchPolicy::WeightedRoundRobin &&
        !fetchWeights.empty()) {
        if (fetchWeights.size() != numThreads)
            fatal("fetchWeights has %zu entries for %u threads",
                  fetchWeights.size(), numThreads);
        for (unsigned weight : fetchWeights) {
            if (weight < 1)
                fatal("fetchWeights entries must be >= 1");
        }
    }
    if (storeBufferEntries < blockSize) {
        // Stores stay buffered until their SU entry is shifted out at
        // commit, so a block whose four slots are all stores needs
        // four simultaneous buffer entries; anything smaller can
        // deadlock.
        fatal("store buffer (%u entries) must hold at least one "
              "commit block of stores (%u)",
              storeBufferEntries, blockSize);
    }
    for (unsigned i = 0; i < kNumFuClasses; ++i) {
        if (fu.count[i] < 1)
            fatal("functional unit class %s has zero instances",
                  fuClassName(static_cast<FuClass>(i)));
        if (fu.latency[i] < 1)
            fatal("functional unit class %s has zero latency",
                  fuClassName(static_cast<FuClass>(i)));
    }
}

std::string
MachineConfig::toString() const
{
    return format(
        "threads=%u fetch=%s su=%u commit=%s rename=%s bypass=%d "
        "dcache=%uB/%u-way sb=%u",
        numThreads, fetchPolicyName(fetchPolicy), suEntries,
        commitPolicyName(commitPolicy), renameSchemeName(renameScheme),
        bypassing ? 1 : 0, dcache.sizeBytes, dcache.ways,
        storeBufferEntries);
}

} // namespace sdsp

/**
 * @file
 * The multithreaded superscalar processor: the paper's contribution,
 * assembled from the fetch unit, decoder/renamer, scheduling unit,
 * functional unit pool, flexible result commit, shared register file,
 * store buffer, branch predictor and data cache.
 *
 * Cycle model (Processor::step()):
 *   1. commit     - flexible result commit retires at most one block;
 *   2. drain      - committed stores leave the store buffer;
 *   3. writeback  - up to 8 results return to the SU; mispredicted
 *                   control transfers selectively squash their thread;
 *   4. issue      - oldest-first out-of-order issue, up to 8;
 *   5. dispatch   - the decoded block enters the SU (renaming);
 *   6. fetch      - the fetch policy picks a thread and fills the
 *                   fetch latch with one 4-instruction block.
 *
 * Values written in one stage are visible to later stages of the same
 * cycle exactly where the real pipeline would bypass them (e.g. a
 * result written back in stage 3 can wake an instruction that issues
 * in stage 4 iff result bypassing is enabled).
 */

#ifndef SDSP_CORE_PROCESSOR_HH
#define SDSP_CORE_PROCESSOR_HH

#include <array>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "branch/predictor_bank.hh"
#include "common/stats_registry.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/exec.hh"
#include "core/fetch.hh"
#include "core/regfile.hh"
#include "core/su.hh"
#include "isa/decoded_program.hh"
#include "isa/program.hh"
#include "memory/cache.hh"
#include "memory/main_memory.hh"
#include "memory/store_buffer.hh"

namespace sdsp
{

/**
 * Top-down-style stall attribution: every simulated cycle, every
 * thread is charged exactly one reason, so each thread's attributed
 * cycles always sum to the total cycle count (the accounting
 * invariant the tests enforce). A thread that fetched, dispatched,
 * issued, or committed anything in a cycle is Active; otherwise the
 * charge describes why it could not make progress, most specific
 * cause first (see Processor::attributeCycle for the priority order).
 */
enum class StallReason : std::uint8_t
{
    Active,             //!< fetched/dispatched/issued/committed work
    SuFull,             //!< dispatch blocked: scheduling unit full
    StoreBufferFull,    //!< a store could not enter the store buffer
    CacheMiss,          //!< waiting on an outstanding data-cache miss
                        //!< (or a cache port rejection this cycle)
    FuBusy,             //!< a ready instruction found no free FU
    OperandWait,        //!< resident work waiting on operands (incl.
                        //!< conservative load/store disambiguation)
    CommitBlocked,      //!< all resident work complete but not yet
                        //!< allowed to commit (flexible-commit order)
    MispredictRecovery, //!< squash resolved this cycle, or fetch is
                        //!< parked on a speculative dead end
    FetchStarved,       //!< no resident work and no fetch slot (lost
                        //!< the rotation, masked, or latch busy)
    Done,               //!< the thread has committed HALT
};

/** Number of StallReason values (matrix row width). */
inline constexpr unsigned kNumStallReasons = 10;

/** Stable kebab-free name of @p reason (stats / JSON key). */
const char *stallReasonName(StallReason reason);

/**
 * The per-instruction lifecycle intervals sampled into latency
 * histograms at commit. The enumerator value is the histogram index
 * and latencyStageName() is the "latency.<name>" stats-key suffix, so
 * sampling sites and reporting can never disagree on what an index
 * means.
 */
enum class LatencyStage : std::uint8_t
{
    FetchToDispatch,  //!< fetch latch -> scheduling unit
    DispatchToIssue,  //!< rename -> functional unit
    IssueToComplete,  //!< functional unit -> writeback
    CompleteToCommit, //!< writeback -> retirement
    FetchToCommit,    //!< whole lifetime
};

/** Number of LatencyStage values (histogram table width). */
inline constexpr unsigned kNumLatencyStages = 5;

/** Stable camelCase name of @p stage (stats-key suffix). */
const char *latencyStageName(LatencyStage stage);

/**
 * Per-PC effective-address overrides for trace-stream replay.
 *
 * A flattened replay stream gives every dynamic load/store its own
 * unique instruction address, so binding recorded effective addresses
 * by PC is exact and — unlike a consume-in-order cursor — immune to
 * wrong-path issues and squashes: however often a PC is re-dispatched
 * speculatively, it always resolves to the same recorded address.
 */
struct ReplayAddressSource
{
    /** hasAddr[pc] != 0 iff addr[pc] overrides the computed address. */
    std::vector<std::uint8_t> hasAddr;
    std::vector<Addr> addr;
};

/** Aggregate outcome of a simulation run. */
struct SimResult
{
    /** All threads ran to HALT within the cycle budget. */
    bool finished = false;
    Cycle cycles = 0;
    std::uint64_t committedInstructions = 0;
    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInstructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The simulated processor. */
class Processor
{
  public:
    /**
     * Build a processor and load @p program. Fatal if the program
     * names registers outside the per-thread partition implied by
     * the configuration's thread count.
     */
    Processor(const MachineConfig &config, const Program &program);

    /**
     * Build a processor over an already-decoded program, sharing the
     * immutable text and decoded-instruction table with any number of
     * other processors (the batched execution engine decodes each
     * program once and runs every machine variant against it). Same
     * register-partition check as the Program overload.
     */
    Processor(const MachineConfig &config,
              std::shared_ptr<const DecodedProgram> program);

    ~Processor();

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    /** Advance one cycle. */
    void step();

    /** Run to completion (all threads halted, pipeline drained).
     *  @return The aggregate result; finished=false on cycle-cap. */
    SimResult run();

    /**
     * Close out any stall spans still open on the trace sink. run()
     * calls this itself; callers that drive the simulation through
     * step() (e.g. the harness's deadline watchdog) must call it once
     * when they stop stepping, before reading the trace.
     */
    void finishTrace();

    /** All threads halted and the machine fully drained? */
    bool done() const;

    /** Current cycle. */
    Cycle cycle() const { return now; }

    /** Committed instructions (all threads). */
    std::uint64_t committedInstructions() const { return statCommitted; }

    /** Committed instructions of one thread. */
    std::uint64_t
    committedInstructions(ThreadId tid) const
    {
        return statCommittedPerThread[tid];
    }

    /** Architectural (committed) value of a thread register. */
    RegVal
    readReg(ThreadId tid, RegIndex reg) const
    {
        return regs.read(tid, reg);
    }

    /** Data memory (architectural state once the run finishes). */
    const MainMemory &memory() const { return mem; }
    MainMemory &memory() { return mem; }

    /** Component access for statistics and tests. */
    const DataCache &dcache() const { return cache; }
    /** Finite I-cache, or nullptr under the perfect-I-cache model. */
    const DataCache *instructionCache() const { return icache.get(); }
    const PredictorBank &predictor() const { return btb; }
    const FuPool &fuPool() const { return fus; }
    const SchedulingUnit &schedulingUnit() const { return su; }
    const FetchUnit &fetchUnit() const { return fetch; }
    const StoreBuffer &storeBuffer() const { return sb; }
    const MachineConfig &config() const { return cfg; }

    /** Scheduling-unit full (dispatch) stalls — the paper's
     *  "scheduling unit stall" count. */
    std::uint64_t suStalls() const { return statSuFullStalls; }

    /** Mean scheduling-unit occupancy (valid entries per cycle). */
    double
    averageSuOccupancy() const
    {
        return now ? static_cast<double>(statOccupancySum) /
                         static_cast<double>(now)
                   : 0.0;
    }

    /** Cycles in which exactly @p width instructions issued. */
    std::uint64_t
    issueWidthCycles(unsigned width) const
    {
        return width < statIssueHistogram.size()
                   ? statIssueHistogram[width]
                   : 0;
    }

    /** Commits taken from a non-bottom block (flexible commit). */
    std::uint64_t flexibleCommits() const { return statFlexCommits; }

    /** Dump all statistics into @p registry. */
    void reportStats(StatsRegistry &registry) const;

    /** Attach a structured event sink (nullptr disables tracing).
     *  The sink must outlive the processor or be detached first. */
    void setTraceSink(TraceSink *s) { sink = s; }

    /** Override load/store effective addresses per PC (trace-stream
     *  replay); nullptr restores computed addressing. The source must
     *  outlive the processor or be detached first. */
    void
    setReplayAddresses(const ReplayAddressSource *source)
    {
        replayAddrs = source;
    }

    /** Attach the classic text trace (nullptr disables): wraps
     *  @p out in an owned TextTraceSink, preserving the historical
     *  `--trace` line format byte-for-byte. */
    void setTrace(std::ostream *out);

    /** Cycles of @p tid charged to @p reason. For every thread the
     *  kNumStallReasons charges sum to cycle() — each cycle is
     *  attributed to exactly one reason. */
    std::uint64_t
    stallCycles(ThreadId tid, StallReason reason) const
    {
        return statStallCycles[tid][static_cast<unsigned>(reason)];
    }

    /** Per-stage latency histogram of committed instructions. */
    const Distribution &
    latencyDistribution(LatencyStage stage) const
    {
        return latencyDists[static_cast<unsigned>(stage)];
    }

  private:
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    /** Try to issue one entry; true on success. */
    bool tryIssue(SuEntry &entry);

    /** Effective address of a load/store entry: the recorded replay
     *  address for this PC when one is attached, else computed from
     *  the base operand. */
    Addr effectiveAddress(const SuEntry &entry) const;

    /** Execute the architectural work of @p entry at issue time. */
    void executeEntry(SuEntry &entry);

    /** Handle a resolved mispredicted control transfer. */
    void handleMispredict(SuEntry &entry);

    /** Rename one source operand during dispatch. */
    Operand renameOperand(ThreadId tid, RegIndex reg,
                          const std::vector<SuEntry> &partial_block);

    /** End of step(): charge every thread's cycle to exactly one
     *  StallReason and maintain the trace span/counter state. */
    void attributeCycle();

    /** Emit the open stall span of @p tid ending (exclusive) at
     *  @p end_excl, if it is non-Active and non-empty. Requires a
     *  sink. */
    void flushStallSpan(ThreadId tid, Cycle end_excl);

    MachineConfig cfg;
    /** The program and its decoded text, possibly shared with other
     *  processors (batched execution). Immutable for the run. */
    std::shared_ptr<const DecodedProgram> prog;

    MainMemory mem;
    DataCache cache;
    /** Finite instruction cache (only when !cfg.perfectICache). */
    std::unique_ptr<DataCache> icache;
    StoreBuffer sb;
    PredictorBank btb;
    RegisterFile regs;
    SchedulingUnit su;
    FuPool fus;
    FetchUnit fetch;

    /** The fetch latch: storage is reused cycle to cycle so the
     *  steady-state loop allocates nothing. */
    FetchedBlock fetchLatch;
    bool fetchLatchFull = false;
    /** Why the latched block has failed to dispatch so far; stamped
     *  onto its entries at dispatch (critical-path evidence). */
    DispatchWaitCause latchWaitCause = DispatchWaitCause::None;
    Tag nextSeq = 1;
    Cycle now = 0;

    /** Event consumer; nullptr = tracing off (the zero-cost case). */
    TraceSink *sink = nullptr;
    /** Per-PC address overrides; nullptr = computed addressing. */
    const ReplayAddressSource *replayAddrs = nullptr;
    /** Owned wrapper backing setTrace(std::ostream *). */
    std::unique_ptr<TextTraceSink> ownedTextSink;

    // ---- Statistics ----
    std::uint64_t statCommitted = 0;
    std::vector<std::uint64_t> statCommittedPerThread;
    std::uint64_t statDispatched = 0;
    std::uint64_t statIssued = 0;
    std::uint64_t statSquashed = 0;
    std::uint64_t statSuFullStalls = 0;
    std::uint64_t statScoreboardStalls = 0;
    std::uint64_t statCommitBlockedCycles = 0;
    std::uint64_t statFlexCommits = 0;
    std::uint64_t statLoadDisambStalls = 0;
    std::uint64_t statCacheBlockedLoads = 0;
    std::uint64_t statLatchFullCycles = 0;
    std::uint64_t statMispredicts = 0;

    std::uint64_t statOccupancySum = 0;
    /** statIssueHistogram[k] = cycles in which k instructions
     *  issued. */
    std::vector<std::uint64_t> statIssueHistogram;

    // ---- Observability: stall attribution + latency histograms ----
    /** statStallCycles[tid][reason]: cycles charged. Every row sums
     *  to `now` — the attribution invariant. */
    std::vector<std::array<std::uint64_t, kNumStallReasons>>
        statStallCycles;
    /** Per-thread evidence bits gathered during the current cycle
     *  (kFlag* constants in processor.cc); reset every step(). */
    std::vector<std::uint8_t> cycleFlags;
    /** Outstanding load-miss window: cycles before this are charged
     *  to CacheMiss absent stronger evidence. */
    std::vector<Cycle> missPendingUntil;
    /** Open stall-span state (used only while a sink is attached). */
    std::vector<StallReason> spanReason;
    std::vector<Cycle> spanStart;
    /** Last su_occupancy counter value emitted to the sink. */
    unsigned lastTracedOccupancy = ~0u;

    /** Committed-instruction per-stage latencies, indexed by
     *  LatencyStage. */
    std::array<Distribution, kNumLatencyStages> latencyDists;

    /** Scratch buffer reused by the writeback stage. */
    std::vector<FuCompletion> completions;
    /** Scratch buffer reused by handleMispredict. */
    std::vector<Tag> squashScratch;
};

} // namespace sdsp

#endif // SDSP_CORE_PROCESSOR_HH

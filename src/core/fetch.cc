#include "core/fetch.hh"

#include "common/logging.hh"

namespace sdsp
{

FetchUnit::FetchUnit(const MachineConfig &config,
                     const std::vector<Instruction> &code_in,
                     PredictorBank &predictor, DataCache *icache_in)
    : cfg(config), code(code_in), btb(predictor), icache(icache_in),
      threads(config.numThreads),
      statBlocksPerThread(config.numThreads, 0)
{
}

bool
FetchUnit::fetchable(const ThreadState &thread) const
{
    return !thread.finished && !thread.stopped &&
           thread.pc < code.size();
}

void
FetchUnit::tick(Cycle now)
{
    if (icache)
        icache->beginCycle(now);
    for (auto &thread : threads) {
        if (thread.stallScore > 0)
            --thread.stallScore;
    }
}

int
FetchUnit::selectThread()
{
    unsigned n = cfg.numThreads;

    switch (cfg.fetchPolicy) {
      case FetchPolicy::TrueRoundRobin: {
        // The modulo-N counter advances every cycle irrespective of
        // thread state; a turn given to a thread that cannot fetch is
        // simply wasted. Threads that have committed HALT are dead
        // forever and are skipped (they are no longer resident).
        unsigned tried = 0;
        unsigned pick;
        do {
            pick = rotation;
            rotation = (rotation + 1) % n;
            ++tried;
        } while (threads[pick].finished && tried < n);
        if (threads[pick].finished)
            return -1;
        return fetchable(threads[pick]) ? static_cast<int>(pick) : -1;
      }

      case FetchPolicy::MaskedRoundRobin: {
        // Masked threads are skipped so other threads can take their
        // place in the SU; when every fetchable thread is masked the
        // selector falls back to one of them rather than idle (with
        // one resident thread, masking would otherwise only starve
        // the machine).
        int fallback = -1;
        for (unsigned tried = 0; tried < n; ++tried) {
            unsigned pick = rotation;
            rotation = (rotation + 1) % n;
            if (!fetchable(threads[pick]))
                continue;
            if (!threads[pick].maskedOut)
                return static_cast<int>(pick);
            if (fallback < 0)
                fallback = static_cast<int>(pick);
        }
        return fallback;
      }

      case FetchPolicy::ConditionalSwitch: {
        if (switchPending || !fetchable(threads[rotation % n])) {
            switchPending = false;
            ++statSwitches;
            for (unsigned tried = 1; tried <= n; ++tried) {
                unsigned pick = (rotation + tried) % n;
                if (fetchable(threads[pick])) {
                    rotation = pick;
                    return static_cast<int>(pick);
                }
            }
            return -1;
        }
        return static_cast<int>(rotation % n);
      }

      case FetchPolicy::WeightedRoundRobin: {
        // Per-thread credits implement priorities: a thread with
        // weight w fetches w times per rotation round. When every
        // fetchable thread is out of credits, the round restarts.
        auto weight_of = [&](unsigned t) {
            return cfg.fetchWeights.empty() ? 1u
                                            : cfg.fetchWeights[t];
        };
        for (int attempt = 0; attempt < 2; ++attempt) {
            for (unsigned tried = 0; tried < n; ++tried) {
                unsigned pick = rotation;
                if (threads[pick].credits > 0 &&
                    fetchable(threads[pick])) {
                    --threads[pick].credits;
                    if (threads[pick].credits == 0)
                        rotation = (rotation + 1) % n;
                    return static_cast<int>(pick);
                }
                rotation = (rotation + 1) % n;
            }
            // Round exhausted: refill credits and retry once.
            bool any = false;
            for (unsigned t = 0; t < n; ++t) {
                threads[t].credits = weight_of(t);
                any |= fetchable(threads[t]);
            }
            if (!any)
                break;
        }
        return -1;
      }

      case FetchPolicy::Adaptive: {
        // Round robin, skipping threads whose recent failure to
        // commit suggests a low execution rate; if every candidate is
        // above threshold, fall back to plain round robin so fetch
        // never starves.
        int fallback = -1;
        for (unsigned tried = 0; tried < n; ++tried) {
            unsigned pick = rotation;
            rotation = (rotation + 1) % n;
            if (!fetchable(threads[pick]))
                continue;
            if (fallback < 0)
                fallback = static_cast<int>(pick);
            if (threads[pick].stallScore <= cfg.adaptiveThreshold)
                return static_cast<int>(pick);
        }
        return fallback;
      }
    }
    return -1;
}

void
FetchUnit::fetchBlock(ThreadId tid, FetchedBlock &block)
{
    ThreadState &thread = threads[tid];
    InstAddr pc = thread.pc;
    InstAddr aligned = pc & ~(cfg.blockSize - 1);
    auto end = static_cast<InstAddr>(
        std::min<std::size_t>(aligned + cfg.blockSize, code.size()));

    block.tid = tid;
    block.insts.clear();
    statWastedSlots += pc - aligned; // slots before the entry PC

    bool redirected = false;
    InstAddr next_pc = end;

    for (InstAddr i = pc; i < end; ++i) {
        const Instruction &inst = code[i];
        FetchedInst slot;
        slot.pc = i;
        slot.inst = inst;
        slot.predictedNextPc = i + 1;

        if (inst.isHalt()) {
            // Stop fetching this thread; resume only if this HALT
            // turns out to be on a squashed wrong path.
            block.insts.push_back(slot);
            thread.stopped = true;
            statWastedSlots += end - i - 1;
            ++statBlocks;
            ++statBlocksPerThread[tid];
            statInsts += block.insts.size();
            return;
        }

        if (inst.isDirectJump()) {
            slot.predictedTaken = true;
            slot.predictedNextPc = inst.staticTarget(i);
            block.insts.push_back(slot);
            next_pc = slot.predictedNextPc;
            redirected = true;
            statWastedSlots += end - i - 1;
            break;
        }

        if (inst.isCondBranch() || inst.isIndirectJump()) {
            BranchPrediction prediction = btb.predict(tid, i);
            if (prediction.hit && prediction.taken) {
                slot.predictedTaken = true;
                slot.predictedNextPc = prediction.target;
                block.insts.push_back(slot);
                next_pc = prediction.target;
                redirected = true;
                statWastedSlots += end - i - 1;
                break;
            }
            // Predicted not taken (or BTB miss): fall through and
            // keep filling the block.
            block.insts.push_back(slot);
            continue;
        }

        block.insts.push_back(slot);
    }

    if (!redirected)
        next_pc = end;

    thread.pc = next_pc;
    if (next_pc >= code.size())
        thread.stopped = true;

    ++statBlocks;
    ++statBlocksPerThread[tid];
    statInsts += block.insts.size();
}

bool
FetchUnit::fetchCycle(Cycle now, FetchedBlock &out)
{
    int pick = selectThread();
    if (pick < 0) {
        ++statIdleCycles;
        return false;
    }
    auto tid = static_cast<ThreadId>(pick);

    if (icache) {
        ThreadState &thread = threads[tid];
        if (now < thread.ifetchReadyAt) {
            // Waiting on an instruction line refill; the slot is
            // wasted (only this thread slows down).
            ++statIcacheStallCycles;
            return false;
        }
        // One I-cache line holds one aligned fetch block.
        Addr line_addr = (thread.pc & ~(cfg.blockSize - 1)) * 4;
        if (!icache->canAccept(now)) {
            icache->noteRejection();
            ++statIcacheStallCycles;
            return false;
        }
        CacheAccessResult probe =
            icache->access(line_addr, now, false, tid);
        if (!probe.hit) {
            thread.ifetchReadyAt = probe.readyCycle;
            ++statIcacheStallCycles;
            return false;
        }
    }
    fetchBlock(tid, out);
    return true;
}

void
FetchUnit::onCommitBlockedBottom(ThreadId tid)
{
    ThreadState &thread = threads[tid];
    if (cfg.fetchPolicy == FetchPolicy::MaskedRoundRobin &&
        !thread.maskedOut) {
        thread.maskedOut = true;
        ++statMaskEvents;
    }
    if (cfg.fetchPolicy == FetchPolicy::Adaptive)
        thread.stallScore += 4;
}

void
FetchUnit::onCommitBlock(ThreadId tid)
{
    threads[tid].maskedOut = false;
}

void
FetchUnit::onSwitchTrigger()
{
    if (cfg.fetchPolicy == FetchPolicy::ConditionalSwitch)
        switchPending = true;
}

void
FetchUnit::onSquash(ThreadId tid, InstAddr next_pc)
{
    ThreadState &thread = threads[tid];
    thread.pc = next_pc;
    thread.stopped = next_pc >= code.size();
    // A pending instruction-line refill is for the wrong path.
    thread.ifetchReadyAt = 0;
}

void
FetchUnit::onHaltCommitted(ThreadId tid)
{
    threads[tid].finished = true;
    threads[tid].stopped = true;
    threads[tid].maskedOut = false;
}

bool
FetchUnit::allFinished() const
{
    for (const auto &thread : threads) {
        if (!thread.finished)
            return false;
    }
    return true;
}

void
FetchUnit::reportStats(StatsRegistry &registry,
                       const std::string &prefix) const
{
    registry.add(prefix, "blocks", static_cast<double>(statBlocks));
    registry.add(prefix, "instructions",
                 static_cast<double>(statInsts));
    registry.add(prefix, "wastedSlots",
                 static_cast<double>(statWastedSlots));
    registry.add(prefix, "idleCycles",
                 static_cast<double>(statIdleCycles));
    registry.add(prefix, "switches",
                 static_cast<double>(statSwitches));
    registry.add(prefix, "maskEvents",
                 static_cast<double>(statMaskEvents));
    registry.add(prefix, "icacheStallCycles",
                 static_cast<double>(statIcacheStallCycles));
    for (unsigned t = 0; t < statBlocksPerThread.size(); ++t) {
        registry.add(prefix, format("thread%u.blocks", t),
                     static_cast<double>(statBlocksPerThread[t]));
    }
    if (icache)
        icache->reportStats(registry, prefix + ".icache");
}

} // namespace sdsp

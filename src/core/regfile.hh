/**
 * @file
 * The shared, statically partitioned register file.
 *
 * The machine has a single physical register file (128 registers by
 * default) shared by all resident threads. Partitioning is static and
 * equal: with N threads, thread t owns physical registers
 * [t*128/N, (t+1)*128/N), and a program may only name architectural
 * registers 0 .. 128/N - 1 (paper section 3: "Register allocation is
 * thus static ... all threads are allotted equal numbers of
 * registers").
 */

#ifndef SDSP_CORE_REGFILE_HH
#define SDSP_CORE_REGFILE_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace sdsp
{

/** Partitioned physical register file holding in-order state. */
class RegisterFile
{
  public:
    /**
     * @param num_regs    Total physical registers.
     * @param num_threads Threads sharing the file (equal partitions).
     */
    /**
     * Partitions are equal at floor(num_regs / num_threads); when the
     * division is inexact the few leftover registers are simply
     * unused (e.g. 6 threads x 21 registers leaves 2 idle).
     */
    RegisterFile(unsigned num_regs, unsigned num_threads)
        : values(num_regs, 0),
          perThread(num_regs / num_threads)
    {
        sdsp_assert(num_threads >= 1 && perThread >= 1,
                    "register file too small for thread count");
    }

    /** Registers in each thread's partition. */
    unsigned registersPerThread() const { return perThread; }

    /** Map an architectural register of a thread to its physical
     *  index. Fatal if the program names a register outside its
     *  static partition. */
    PhysRegIndex
    physIndex(ThreadId tid, RegIndex reg) const
    {
        sdsp_assert(reg < perThread,
                    "thread %u names r%u outside its %u-register "
                    "partition",
                    unsigned{tid}, unsigned{reg}, perThread);
        return static_cast<PhysRegIndex>(tid * perThread + reg);
    }

    /** Read the committed value of (tid, reg). */
    RegVal
    read(ThreadId tid, RegIndex reg) const
    {
        return values[physIndex(tid, reg)];
    }

    /** Write the committed value of (tid, reg). */
    void
    write(ThreadId tid, RegIndex reg, RegVal value)
    {
        values[physIndex(tid, reg)] = value;
    }

    /** Zero all registers. */
    void
    reset()
    {
        std::fill(values.begin(), values.end(), 0);
    }

  private:
    std::vector<RegVal> values;
    unsigned perThread;
};

} // namespace sdsp

#endif // SDSP_CORE_REGFILE_HH

/**
 * @file
 * The execution unit: a pool of functional unit instances.
 *
 * Each FU class (paper Table 1) has a configurable number of
 * instances and a latency. ALUs, memory units, the control unit and
 * the FP add/multiply units are pipelined (initiation interval 1);
 * the iterative integer and FP dividers are not (they are busy for
 * their full latency).
 *
 * Instance-level busy statistics feed the paper's Table 4 ("average
 * usage of extra functional units as a percentage of total cycles"):
 * issue always picks the lowest-numbered free instance, so instances
 * beyond the default configuration's count are exactly the "extra"
 * units.
 */

#ifndef SDSP_CORE_EXEC_HH
#define SDSP_CORE_EXEC_HH

#include <cstdint>
#include <vector>

#include "common/stats_registry.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "isa/opcode.hh"

namespace sdsp
{

/** A result (or completion event) leaving a functional unit. */
struct FuCompletion
{
    Tag seq = 0;           //!< producing SU entry
    Cycle completeCycle = 0;
    FuClass fuClass = FuClass::IntAlu;
    /**
     * Store completions produce no register result and do not consume
     * one of the 8 result-write ports into the SU.
     */
    bool countsAgainstWidth = true;
};

/** Pool of all functional unit instances. */
class FuPool
{
  public:
    explicit FuPool(const FuConfig &config);

    /**
     * Is an instance of @p cls free to accept an operation at
     * @p now?
     */
    bool canIssue(FuClass cls, Cycle now) const;

    /**
     * Begin executing the producer @p seq on a free instance of
     * @p cls. Caller must have checked canIssue().
     *
     * @param extra_latency Added on top of the class latency (cache
     *                      miss time for loads).
     * @return The completion cycle.
     */
    Cycle issue(FuClass cls, Tag seq, Cycle now,
                Cycle extra_latency = 0);

    /**
     * Collect completions with completeCycle <= @p now, in
     * completion-time then age order. The caller pops at most its
     * writeback width per cycle; the rest stay queued.
     *
     * @param max_results Maximum completions to drain.
     * @param out         Receives the drained completions.
     */
    void drainCompletions(Cycle now, unsigned max_results,
                          std::vector<FuCompletion> &out);

    /**
     * Cancel the in-flight operation of a squashed producer. The unit
     * stays busy (the hardware pipeline still drains) but no result
     * will be delivered.
     */
    void cancel(Tag seq);

    /** Pending (not yet drained) completions? */
    bool busy() const { return !inflight.empty(); }

    /** Total instances across all classes. */
    unsigned totalInstances() const;

    /**
     * Busy cycles of instance @p index of class @p cls (initiation
     * cycles for pipelined units, full occupancy for iterative ones).
     */
    std::uint64_t busyCycles(FuClass cls, unsigned index) const;

    /** Report per-instance utilization under @p prefix. */
    void reportStats(StatsRegistry &registry, const std::string &prefix,
                     Cycle total_cycles) const;

    /** Configuration in use. */
    const FuConfig &config() const { return cfg; }

  private:
    struct Instance
    {
        /** First cycle this instance can initiate a new operation. */
        Cycle nextFree = 0;
        std::uint64_t busy = 0;
    };

    struct Inflight
    {
        FuCompletion completion;
        bool cancelled = false;
    };

    std::vector<Instance> &instancesOf(FuClass cls);
    const std::vector<Instance> &instancesOf(FuClass cls) const;

    /** Min-heap order: a sorts after b by (completeCycle, seq). */
    static bool
    inflightAfter(const Inflight &a, const Inflight &b)
    {
        if (a.completion.completeCycle != b.completion.completeCycle)
            return a.completion.completeCycle >
                   b.completion.completeCycle;
        return a.completion.seq > b.completion.seq;
    }

    FuConfig cfg;
    std::vector<std::vector<Instance>> instances; //!< per class
    /** In-flight operations: min-heap on (completeCycle, seq). */
    std::vector<Inflight> inflight;
    /** Scratch for port-limited completions during a drain. */
    std::vector<Inflight> deferred;
};

} // namespace sdsp

#endif // SDSP_CORE_EXEC_HH

/**
 * @file
 * Machine configuration (the paper's Tables 1 and 2).
 *
 * Every design axis the paper sweeps is a field here: fetch policy,
 * thread count, scheduling-unit depth, result-commit policy, renaming
 * scheme, bypassing, cache organization, and the functional unit
 * complement (default vs "enhanced"/"++").
 */

#ifndef SDSP_CORE_CONFIG_HH
#define SDSP_CORE_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"
#include "memory/cache.hh"

namespace sdsp
{

/**
 * Instruction fetch policies (paper section 5.1), plus the adaptive
 * policy sketched in section 6.1 item 3.
 */
enum class FetchPolicy : std::uint8_t
{
    /**
     * True Round Robin: a modulo-N counter advances every cycle
     * irrespective of thread state; the selected thread fetches one
     * block. The paper's default.
     */
    TrueRoundRobin,
    /**
     * Masked Round Robin: like TrueRR, but a thread that failed to
     * commit from the lower-most reorder-buffer block is masked out
     * of the rotation until the commit takes place.
     */
    MaskedRoundRobin,
    /**
     * Conditional Switch: keep fetching the same thread until the
     * decoder sees a long-latency trigger (integer divide, FP
     * multiply/divide, a synchronization primitive), then switch.
     */
    ConditionalSwitch,
    /**
     * Extension (paper section 6.1): a "judicious" policy that slows
     * down fetching for threads in a region of low execution rate, by
     * skipping threads whose recent commit-block rate is poor.
     */
    Adaptive,
    /**
     * Extension (paper section 3.3): round robin with per-thread
     * weights, the mechanism the paper suggests for allotting
     * different priorities ("the fetch policy ... can be adapted to
     * favor or discriminate against the particular thread(s)").
     * Thread t receives MachineConfig::fetchWeights[t] fetch slots
     * per rotation round.
     */
    WeightedRoundRobin,
};

/** Register dependence tracking schemes (paper Table 2). */
enum class RenameScheme : std::uint8_t
{
    /** Unique-tag renaming shared across threads (the default). */
    FullRenaming,
    /**
     * 1-bit scoreboarding: no renaming; dispatch stalls while an
     * older in-flight instruction of the same thread targets the same
     * register (WAW/WAR serialization).
     */
    Scoreboard1Bit,
};

/** Result commit policies (paper section 3.5 / Figure 2). */
enum class CommitPolicy : std::uint8_t
{
    /**
     * Flexible Result Commit: any of the bottom four blocks may
     * commit, provided every incomplete block below it belongs to a
     * different thread.
     */
    FlexibleFourBlocks,
    /** Only the lower-most block may commit (the classic ROB rule). */
    LowestBlockOnly,
};

const char *fetchPolicyName(FetchPolicy policy);
const char *renameSchemeName(RenameScheme scheme);
const char *commitPolicyName(CommitPolicy policy);

/** Functional unit complement: counts, latencies, pipelining. */
struct FuConfig
{
    std::array<unsigned, kNumFuClasses> count{};
    std::array<unsigned, kNumFuClasses> latency{};
    std::array<bool, kNumFuClasses> pipelined{};

    unsigned
    countOf(FuClass cls) const
    {
        return count[static_cast<unsigned>(cls)];
    }

    unsigned
    latencyOf(FuClass cls) const
    {
        return latency[static_cast<unsigned>(cls)];
    }

    bool
    pipelinedOf(FuClass cls) const
    {
        return pipelined[static_cast<unsigned>(cls)];
    }

    /** Paper Table 1, "Default no." column (see DESIGN.md). */
    static FuConfig sdspDefault();

    /** Paper Table 1, "Other no." column — the "++" configuration. */
    static FuConfig sdspEnhanced();
};

/** Complete machine configuration. */
struct MachineConfig
{
    /** Simultaneously resident threads (paper default: 4). */
    unsigned numThreads = 4;

    FetchPolicy fetchPolicy = FetchPolicy::TrueRoundRobin;

    /** Instructions per fetch/commit block (SDSP: 4). */
    unsigned blockSize = 4;

    /** Scheduling unit entries; must be a multiple of blockSize. */
    unsigned suEntries = 32;

    /** Instructions issued to functional units per cycle. */
    unsigned issueWidth = 8;

    /** Results written back to the SU per cycle. */
    unsigned writebackWidth = 8;

    CommitPolicy commitPolicy = CommitPolicy::FlexibleFourBlocks;

    RenameScheme renameScheme = RenameScheme::FullRenaming;

    /** Result bypassing: a woken instruction may issue the same
     *  cycle its operand is written back. */
    bool bypassing = true;

    FuConfig fu = FuConfig::sdspDefault();

    /** Data cache organization (2-way 8 KB default; ways=1 selects
     *  the paper's direct-mapped alternative). */
    CacheConfig dcache{};

    /**
     * The paper assumes a perfect instruction cache (Table 2:
     * "Instruction cache: Perfect cache (100% hits)"). Setting this
     * false models a finite I-cache described by `icache` so the
     * assumption can be quantified; an I-cache miss stalls that
     * thread's fetch for the refill time.
     */
    bool perfectICache = true;

    /** Finite I-cache geometry (used when perfectICache is false).
     *  The 16-byte line holds exactly one 4-instruction fetch
     *  block. */
    CacheConfig icache{4096, 16, 2, 8, 1, 1};

    /** Store buffer entries (paper: 8). */
    unsigned storeBufferEntries = 8;

    /** Total architectural registers, statically partitioned. */
    unsigned numRegisters = 128;

    /** Branch target buffer entries (total budget). */
    unsigned btbEntries = 512;

    /**
     * BTB banks: 1 shares one BTB among all threads (the paper's
     * design, sufficient because all threads run the same code);
     * numThreads gives each thread a private slice of the same total
     * budget.
     */
    unsigned btbBanks = 1;

    /** Adaptive policy: skip a thread whose stall score exceeds
     *  this (see FetchPolicy::Adaptive). */
    unsigned adaptiveThreshold = 8;

    /**
     * WeightedRoundRobin: fetch slots each thread receives per
     * rotation round. Empty means equal weights of 1; otherwise must
     * have numThreads entries, each >= 1.
     */
    std::vector<unsigned> fetchWeights;

    /** Simulation safety cap. */
    std::uint64_t maxCycles = 200'000'000;

    /** Registers in each thread's static partition. */
    unsigned
    regsPerThread() const
    {
        return numRegisters / numThreads;
    }

    /** Blocks the scheduling unit can hold. */
    unsigned suBlocks() const { return suEntries / blockSize; }

    /** Blocks examined by flexible result commit. */
    unsigned
    commitWindowBlocks() const
    {
        return commitPolicy == CommitPolicy::FlexibleFourBlocks ? 4 : 1;
    }

    /**
     * Derive dependent defaults after the primary knobs are set.
     * The paper gives every resident thread the SDSP's 32
     * architectural registers, but the default total of 128 only
     * covers 4 threads — an 8-thread config built from defaults
     * would silently partition 128 into 16 regs/thread and reject
     * programs that use r16+. Grows numRegisters to 32 per thread
     * (never shrinks an explicit larger value). Every CLI and bench
     * driver calls this once the thread count is known.
     * @return *this for chaining.
     */
    MachineConfig &finalize();

    /** Fatal on an inconsistent configuration. */
    void validate() const;

    /** One-line human-readable summary. */
    std::string toString() const;
};

} // namespace sdsp

#endif // SDSP_CORE_CONFIG_HH

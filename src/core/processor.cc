#include "core/processor.hh"

#include "common/logging.hh"
#include "isa/semantics.hh"

namespace sdsp
{

namespace
{

/** Validate before any member (which divides by config fields) is
 *  constructed. */
const MachineConfig &
validated(const MachineConfig &config)
{
    config.validate();
    return config;
}

// Per-thread per-cycle evidence bits feeding attributeCycle(). A
// stage sets a bit when it observes the condition; the resolver turns
// the bits into exactly one StallReason charge per thread.
constexpr std::uint8_t kFlagProgress = 1 << 0;
constexpr std::uint8_t kFlagSuFull = 1 << 1;
constexpr std::uint8_t kFlagSbFull = 1 << 2;
constexpr std::uint8_t kFlagFuBusy = 1 << 3;
constexpr std::uint8_t kFlagMemOrder = 1 << 4;
constexpr std::uint8_t kFlagCacheReject = 1 << 5;
constexpr std::uint8_t kFlagSquashed = 1 << 6;

} // namespace

const char *
stallReasonName(StallReason reason)
{
    switch (reason) {
      case StallReason::Active:
        return "active";
      case StallReason::SuFull:
        return "suFull";
      case StallReason::StoreBufferFull:
        return "storeBufferFull";
      case StallReason::CacheMiss:
        return "cacheMiss";
      case StallReason::FuBusy:
        return "fuBusy";
      case StallReason::OperandWait:
        return "operandWait";
      case StallReason::CommitBlocked:
        return "commitBlocked";
      case StallReason::MispredictRecovery:
        return "mispredictRecovery";
      case StallReason::FetchStarved:
        return "fetchStarved";
      case StallReason::Done:
        return "done";
    }
    return "unknown";
}

const char *
latencyStageName(LatencyStage stage)
{
    switch (stage) {
      case LatencyStage::FetchToDispatch:
        return "fetchToDispatch";
      case LatencyStage::DispatchToIssue:
        return "dispatchToIssue";
      case LatencyStage::IssueToComplete:
        return "issueToComplete";
      case LatencyStage::CompleteToCommit:
        return "completeToCommit";
      case LatencyStage::FetchToCommit:
        return "fetchToCommit";
    }
    return "unknown";
}

Processor::Processor(const MachineConfig &config, const Program &program)
    : Processor(config, DecodedProgram::decode(program))
{
}

Processor::Processor(const MachineConfig &config,
                     std::shared_ptr<const DecodedProgram> program)
    : cfg(validated(config)),
      prog(std::move(program)),
      mem(),
      cache(config.dcache),
      icache(config.perfectICache
                 ? nullptr
                 : std::make_unique<DataCache>(config.icache)),
      sb(config.storeBufferEntries),
      btb(config.btbEntries, config.btbBanks),
      regs(config.numRegisters, config.numThreads),
      su(config.suBlocks(), config.blockSize, config.numThreads,
         config.regsPerThread()),
      fus(config.fu),
      fetch(cfg, prog->code, btb, icache.get()),
      statCommittedPerThread(config.numThreads, 0),
      statIssueHistogram(config.issueWidth + 1, 0),
      statStallCycles(config.numThreads),
      cycleFlags(config.numThreads, 0),
      missPendingUntil(config.numThreads, 0),
      spanReason(config.numThreads, StallReason::Active),
      spanStart(config.numThreads, 0)
{
    // Reject programs that name registers outside the per-thread
    // static partition for this thread count.
    prog->checkRegisterPartition(cfg.numThreads, cfg.regsPerThread());

    // Trace-stream cocktails start each hardware thread at its own
    // entry PC; plain programs leave threadEntries empty and every
    // thread starts at prog.entry as before.
    if (!prog->program.threadEntries.empty()) {
        sdsp_assert(prog->program.threadEntries.size() >=
                        cfg.numThreads,
                    "program provides %zu thread entries but the "
                    "machine has %u threads",
                    prog->program.threadEntries.size(), cfg.numThreads);
        for (unsigned t = 0; t < cfg.numThreads; ++t)
            fetch.setThreadPc(static_cast<ThreadId>(t),
                              prog->program.threadEntries[t]);
    }

    mem.loadProgram(prog->program);
}

Processor::~Processor() = default;

void
Processor::setTrace(std::ostream *out)
{
    if (!out) {
        if (sink == ownedTextSink.get())
            sink = nullptr;
        ownedTextSink.reset();
        return;
    }
    ownedTextSink = std::make_unique<TextTraceSink>(*out);
    sink = ownedTextSink.get();
}

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

void
Processor::commitStage()
{
    if (su.empty())
        return;

    CommitSelection selection =
        su.selectCommit(cfg.commitWindowBlocks());

    // The paper's Masked Round Robin (and the adaptive extension)
    // react to the *lower-most* block failing to commit. A complete
    // bottom block always wins the bottom-up selection at index 0, so
    // whenever it is not the one committing it is incomplete.
    bool bottom_commits = selection.found && selection.blockIndex == 0;
    if (!bottom_commits) {
        fetch.onCommitBlockedBottom(su.contents().front().tid);
        ++statCommitBlockedCycles;
    }

    if (!selection.found)
        return;

    if (selection.blockIndex > 0)
        ++statFlexCommits;

    SuBlock block = su.removeBlock(selection.blockIndex);
    Tag max_seq = 0;
    for (const SuEntry &entry : block.entries) {
        if (!entry.valid)
            continue;
        sdsp_assert(entry.state == EntryState::Done,
                    "committing an incomplete entry");
        max_seq = std::max(max_seq, entry.seq);

        if (entry.inst.writesRd())
            regs.write(entry.tid, entry.inst.rd, entry.result);

        // Branch prediction statistics are updated only at result
        // commit (paper section 5.4).
        if (entry.inst.isCondBranch()) {
            InstAddr taken_target = entry.inst.staticTarget(entry.pc);
            btb.update(entry.tid, entry.pc, entry.resolvedTaken,
                       taken_target);
            btb.noteOutcome(entry.mispredicted);
        } else if (entry.inst.isIndirectJump()) {
            btb.update(entry.tid, entry.pc, true,
                       entry.resolvedNextPc);
            btb.noteOutcome(entry.mispredicted);
        }

        if (entry.inst.isHalt()) {
            fetch.onHaltCommitted(entry.tid);
            if (sink) {
                TraceEvent ev;
                ev.kind = TraceEventKind::CommitHalt;
                ev.cycle = now;
                ev.tid = entry.tid;
                ev.seq = entry.seq;
                ev.pc = entry.pc;
                sink->emit(ev);
            }
        }

        ++statCommitted;
        ++statCommittedPerThread[entry.tid];

        // Per-stage latency histograms, sampled once per retired
        // instruction from its lifecycle stamps.
        auto sample = [&](LatencyStage stage, Cycle value) {
            latencyDists[static_cast<unsigned>(stage)].sample(value);
        };
        sample(LatencyStage::FetchToDispatch,
               entry.dispatchedAt - entry.fetchedAt);
        sample(LatencyStage::DispatchToIssue,
               entry.issuedAt - entry.dispatchedAt);
        sample(LatencyStage::IssueToComplete,
               entry.completedAt - entry.issuedAt);
        sample(LatencyStage::CompleteToCommit, now - entry.completedAt);
        sample(LatencyStage::FetchToCommit, now - entry.fetchedAt);

        if (sink) {
            TraceEvent ev;
            ev.kind = TraceEventKind::CommitInst;
            ev.cycle = now;
            ev.tid = entry.tid;
            ev.seq = entry.seq;
            ev.pc = entry.pc;
            ev.args = {entry.fetchedAt, entry.dispatchedAt,
                       entry.issuedAt, entry.completedAt};
            ev.label = opName(entry.inst.op);
            ev.word = entry.inst.encode();
            if (entry.inst.isLoad() || entry.inst.isStore()) {
                // src1 still holds the base operand at commit, so
                // this recomputes the address issue used (or reads
                // the same replay override).
                ev.memAddr = effectiveAddress(entry);
                ev.hasMemAddr = true;
            }
            ev.taken = entry.resolvedTaken;
            // Dependence evidence for the critical-path builder.
            ev.readyAt = entry.readyAt;
            ev.wakeupSeq = entry.wakeupTag;
            ev.waitSeq = {entry.waitTag1, entry.waitTag2};
            ev.missExtra = entry.missExtra;
            ev.issueBlockCause = entry.issueBlockCause;
            ev.issueBlockCycle = entry.issueBlockCycle;
            ev.dispatchWaitCause = entry.dispatchWaitCause;
            ev.mispredicted = entry.mispredicted;
            sink->emit(ev);
        }
    }

    cycleFlags[block.tid] |= kFlagProgress;

    // Stores of this block may now drain to the cache.
    sb.commitUpTo(block.tid, max_seq);
    fetch.onCommitBlock(block.tid);

    if (sink) {
        TraceEvent ev;
        ev.kind = TraceEventKind::CommitBlock;
        ev.cycle = now;
        ev.tid = block.tid;
        ev.seq = block.blockSeq;
        ev.args[0] = selection.blockIndex;
        sink->emit(ev);
    }

    su.recycleBlock(std::move(block));
}

// --------------------------------------------------------------------
// Writeback
// --------------------------------------------------------------------

void
Processor::handleMispredict(SuEntry &entry)
{
    ++statMispredicts;

    // Copy before squashing: removing blocks from the SU deque
    // invalidates references into it.
    ThreadId tid = entry.tid;
    Tag seq = entry.seq;
    InstAddr pc = entry.pc;
    InstAddr next_pc = entry.resolvedNextPc;

    squashScratch.clear();
    unsigned count = su.squashThread(tid, seq, &squashScratch);
    statSquashed += count;
    for (Tag squashed_seq : squashScratch)
        fus.cancel(squashed_seq);
    sb.squash(tid, seq);

    // The fetch latch holds the youngest fetched block; if it belongs
    // to this thread it is wrong-path.
    if (fetchLatchFull && fetchLatch.tid == tid)
        fetchLatchFull = false;

    fetch.onSquash(tid, next_pc);

    cycleFlags[tid] |= kFlagSquashed;

    if (sink) {
        TraceEvent ev;
        ev.kind = TraceEventKind::Squash;
        ev.cycle = now;
        ev.tid = tid;
        ev.seq = seq;
        ev.pc = pc;
        ev.args = {next_pc, count, 0, 0};
        sink->emit(ev);
    }
}

void
Processor::writebackStage()
{
    completions.clear();
    fus.drainCompletions(now, cfg.writebackWidth, completions);

    for (const FuCompletion &completion : completions) {
        SuEntry *entry = su.findBySeq(completion.seq);
        if (!entry)
            continue; // Squashed between completion and writeback.

        su.markDone(*entry);
        entry->completedAt = now;

        if (sink) {
            TraceEvent ev;
            ev.kind = TraceEventKind::Writeback;
            ev.cycle = now;
            ev.tid = entry->tid;
            ev.seq = entry->seq;
            ev.pc = entry->pc;
            ev.label = opName(entry->inst.op);
            sink->emit(ev);
        }

        if (entry->inst.writesRd())
            su.broadcast(completion.seq, entry->result, now,
                         cfg.bypassing);

        if (entry->mispredicted)
            handleMispredict(*entry);
    }
}

// --------------------------------------------------------------------
// Issue / execute
// --------------------------------------------------------------------

void
Processor::executeEntry(SuEntry &entry)
{
    const Instruction &inst = entry.inst;
    RegVal s1 = entry.src1.value;
    RegVal s2 = entry.src2.value;

    if (inst.isCondBranch()) {
        entry.resolvedTaken = evalBranchTaken(inst, s1, s2);
        entry.resolvedNextPc = entry.resolvedTaken
                                   ? inst.staticTarget(entry.pc)
                                   : entry.pc + 1;
        entry.mispredicted =
            entry.resolvedNextPc != entry.predictedNextPc;
    } else if (inst.isDirectJump()) {
        entry.resolvedTaken = true;
        entry.resolvedNextPc = inst.staticTarget(entry.pc);
        // Fetch redirected immediately; never mispredicted.
        entry.mispredicted = false;
        if (inst.writesRd())
            entry.result = evalLinkValue(entry.pc);
    } else if (inst.isIndirectJump()) {
        entry.resolvedTaken = true;
        entry.resolvedNextPc = static_cast<InstAddr>(s1);
        entry.mispredicted =
            entry.resolvedNextPc != entry.predictedNextPc;
    } else if (inst.isHalt() || inst.op == Opcode::NOP ||
               inst.op == Opcode::SPIN) {
        // No architectural result.
    } else if (!inst.isLoad() && !inst.isStore()) {
        entry.result = evalCompute(inst, s1, s2, entry.tid,
                                   cfg.numThreads);
    }
}

Addr
Processor::effectiveAddress(const SuEntry &entry) const
{
    if (replayAddrs && entry.pc < replayAddrs->hasAddr.size() &&
        replayAddrs->hasAddr[entry.pc]) {
        return replayAddrs->addr[entry.pc];
    }
    return evalEffectiveAddress(entry.inst, entry.src1.value);
}

bool
Processor::tryIssue(SuEntry &entry)
{
    const Instruction &inst = entry.inst;
    FuClass cls = inst.info().fuClass;

    if (!fus.canIssue(cls, now)) {
        cycleFlags[entry.tid] |= kFlagFuBusy;
        entry.issueBlockCause = IssueBlockCause::FuBusy;
        entry.issueBlockCycle = now;
        return false;
    }

    Cycle extra_latency = 0;

    if (inst.isLoad()) {
        // Conservative disambiguation: an older same-thread store
        // with an unresolved (not yet executed) address blocks the
        // load (the paper's restricted load/store policy). Charged
        // to operand-wait: the load waits on the store's address.
        if (su.hasOlderUnresolvedStore(entry.tid, entry.seq)) {
            ++statLoadDisambStalls;
            cycleFlags[entry.tid] |= kFlagMemOrder;
            entry.issueBlockCause = IssueBlockCause::MemOrder;
            entry.issueBlockCycle = now;
            return false;
        }
        Addr addr = effectiveAddress(entry);
        std::optional<RegVal> forwarded =
            sb.forward(entry.tid, addr, entry.seq);
        if (forwarded) {
            entry.result = *forwarded;
        } else {
            if (!cache.canAccept(now)) {
                ++statCacheBlockedLoads;
                cache.noteRejection();
                cycleFlags[entry.tid] |= kFlagCacheReject;
                entry.issueBlockCause = IssueBlockCause::CachePort;
                entry.issueBlockCycle = now;
                return false;
            }
            CacheAccessResult access =
                cache.access(addr, now, false, entry.tid);
            extra_latency = access.readyCycle - now;
            entry.missExtra = extra_latency;
            if (extra_latency > 0) {
                // Open this thread's miss window: until the data is
                // back, progress-free cycles read as cache-miss
                // stalls.
                missPendingUntil[entry.tid] = std::max(
                    missPendingUntil[entry.tid], access.readyCycle);
                if (sink) {
                    TraceEvent ev;
                    ev.kind = TraceEventKind::CacheMiss;
                    ev.cycle = now;
                    ev.tid = entry.tid;
                    ev.seq = entry.seq;
                    ev.pc = entry.pc;
                    ev.args = {addr, access.readyCycle, 0, 0};
                    sink->emit(ev);
                }
            }
            // Loads on a speculative wrong path can carry garbage
            // addresses; they read a dummy value and are squashed
            // before commit.
            bool in_bounds = addr % 8 == 0 && addr + 8 <= mem.size();
            entry.result = in_bounds ? mem.read(addr) : 0;
        }
    } else if (inst.isStore()) {
        // A slot stays reserved for every unbuffered store at or
        // below this entry's block: the buffer drains in global tag
        // order, so its head cannot retire until the head's whole
        // block commits — which needs every store of that block (and
        // of the blocks below it) to reach the buffer first (see
        // SU::countUnbufferedStoresThrough).
        if (sb.capacity() - sb.size() <=
            su.countUnbufferedStoresThrough(entry)) {
            sb.noteFullStall();
            cycleFlags[entry.tid] |= kFlagSbFull;
            entry.issueBlockCause = IssueBlockCause::StoreBufferFull;
            entry.issueBlockCycle = now;
            return false;
        }
        Addr addr = effectiveAddress(entry);
        sb.insert(entry.seq, entry.tid, addr, entry.src2.value);
        su.markStoreBuffered(entry);
    }

    executeEntry(entry);
    fus.issue(cls, entry.seq, now, extra_latency);
    su.markIssued(entry);
    entry.issuedAt = now;
    ++statIssued;
    cycleFlags[entry.tid] |= kFlagProgress;

    if (sink) {
        TraceEvent ev;
        ev.kind = TraceEventKind::Issue;
        ev.cycle = now;
        ev.tid = entry.tid;
        ev.seq = entry.seq;
        ev.pc = entry.pc;
        ev.label = opName(inst.op);
        sink->emit(ev);
    }
    return true;
}

void
Processor::issueStage()
{
    unsigned issued = 0;
    // The SU tracks how many entries are Ready; stop the oldest-first
    // scan once all of them have been seen (and skip it entirely on
    // the frequent cycles where nothing is ready).
    unsigned remaining = su.readyEntries();
    if (remaining > 0) {
        su.forEachOldestFirst([&](SuEntry &entry) {
            if (issued >= cfg.issueWidth)
                return false;
            if (entry.state != EntryState::Ready)
                return true;
            --remaining;
            if (entry.earliestIssue <= now && tryIssue(entry))
                ++issued;
            return remaining > 0;
        });
    }
    ++statIssueHistogram[issued];
}

// --------------------------------------------------------------------
// Dispatch (decode + rename)
// --------------------------------------------------------------------

Operand
Processor::renameOperand(ThreadId tid, RegIndex reg,
                         const std::vector<SuEntry> &partial_block)
{
    // Most recent matching writer wins: first the earlier
    // instructions of the block being decoded (newest last), then the
    // SU (newest first), then the committed register file.
    const SuEntry *producer = nullptr;
    for (auto it = partial_block.rbegin(); it != partial_block.rend();
         ++it) {
        if (it->valid && it->inst.writesRd() && it->inst.rd == reg) {
            producer = &*it;
            break;
        }
    }
    if (!producer)
        producer = su.findNewestWriter(tid, reg);

    Operand operand;
    if (!producer) {
        operand.ready = true;
        operand.value = regs.read(tid, reg);
    } else if (producer->state == EntryState::Done) {
        operand.ready = true;
        operand.value = producer->result;
    } else {
        operand.ready = false;
        operand.tag = producer->seq;
    }
    return operand;
}

void
Processor::dispatchStage()
{
    if (!fetchLatchFull)
        return;

    if (!su.hasSpace()) {
        // The paper's "scheduling unit stall": the bottom block
        // cannot shift out, so no new entries can be made.
        ++statSuFullStalls;
        cycleFlags[fetchLatch.tid] |= kFlagSuFull;
        latchWaitCause = DispatchWaitCause::SuFull;
        return;
    }

    const FetchedBlock &fetched = fetchLatch;
    ThreadId tid = fetched.tid;

    // 1-bit scoreboarding: no renaming, so dispatch must stall while
    // any in-flight older instruction of this thread writes a
    // destination register this block also writes (WAW) — full
    // renaming never stalls here.
    if (cfg.renameScheme == RenameScheme::Scoreboard1Bit) {
        for (const FetchedInst &slot : fetched.insts) {
            if (slot.inst.writesRd() &&
                su.hasInflightWriter(tid, slot.inst.rd)) {
                ++statScoreboardStalls;
                // WAW wait on an in-flight writer: operand-style.
                cycleFlags[tid] |= kFlagMemOrder;
                latchWaitCause = DispatchWaitCause::Scoreboard;
                return;
            }
        }
    }

    SuBlock &block = su.beginDispatch(tid, nextSeq);

    for (const FetchedInst &slot : fetched.insts) {
        // Build the entry in place. It stays valid=false while its
        // operands rename so the partial-block scan in renameOperand
        // cannot see the instruction as a producer of its own source.
        SuEntry &entry = block.entries.emplace_back();
        entry.seq = nextSeq++;
        entry.tid = tid;
        entry.pc = slot.pc;
        entry.inst = slot.inst;
        entry.predictedTaken = slot.predictedTaken;
        entry.predictedNextPc = slot.predictedNextPc;
        entry.fetchedAt = fetched.fetchedAt;
        entry.dispatchedAt = now;

        if (slot.inst.readsRs1())
            entry.src1 = renameOperand(tid, slot.inst.rs1,
                                       block.entries);
        if (slot.inst.readsRs2())
            entry.src2 = renameOperand(tid, slot.inst.rs2,
                                       block.entries);

        entry.state = entry.operandsReady() ? EntryState::Ready
                                            : EntryState::Waiting;
        entry.earliestIssue = now + 1;

        // Dependence evidence: which producers this entry renamed
        // against, whether it was born ready, and why its block
        // waited in the latch.
        entry.waitTag1 = entry.src1.ready ? 0 : entry.src1.tag;
        entry.waitTag2 = entry.src2.ready ? 0 : entry.src2.tag;
        if (entry.state == EntryState::Ready)
            entry.readyAt = now;
        entry.dispatchWaitCause = latchWaitCause;

        // Conditional Switch: the decoder signals the fetch unit on
        // long-latency trigger instructions (paper section 5.1).
        if (slot.inst.isSwitchTrigger())
            fetch.onSwitchTrigger();

        entry.valid = true;
        ++statDispatched;
    }

    su.finishDispatch();
    fetchLatchFull = false;
    latchWaitCause = DispatchWaitCause::None;
    cycleFlags[tid] |= kFlagProgress;

    if (sink) {
        TraceEvent ev;
        ev.kind = TraceEventKind::Dispatch;
        ev.cycle = now;
        ev.tid = tid;
        ev.seq = nextSeq - fetched.insts.size();
        ev.pc = fetched.insts.front().pc;
        ev.args[0] = fetched.insts.size();
        sink->emit(ev);
    }
}

// --------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------

void
Processor::fetchStage()
{
    fetch.tick(now);
    if (fetchLatchFull) {
        ++statLatchFullCycles;
        return;
    }
    if (fetch.fetchCycle(now, fetchLatch) &&
        !fetchLatch.insts.empty()) {
        fetchLatch.fetchedAt = now;
        fetchLatchFull = true;
        latchWaitCause = DispatchWaitCause::None;
        cycleFlags[fetchLatch.tid] |= kFlagProgress;

        if (sink) {
            TraceEvent ev;
            ev.kind = TraceEventKind::Fetch;
            ev.cycle = now;
            ev.tid = fetchLatch.tid;
            ev.pc = fetchLatch.insts.front().pc;
            ev.args[0] = fetchLatch.insts.size();
            sink->emit(ev);
        }
    }
}

// --------------------------------------------------------------------
// Top level
// --------------------------------------------------------------------

void
Processor::step()
{
    ++now;
    cache.beginCycle(now);
    for (unsigned t = 0; t < cfg.numThreads; ++t)
        cycleFlags[t] = 0;

    statOccupancySum += su.occupancy();
    commitStage();
    sb.drain(cache, mem, now);
    writebackStage();
    issueStage();
    dispatchStage();
    fetchStage();

    attributeCycle();
}

void
Processor::flushStallSpan(ThreadId tid, Cycle end_excl)
{
    if (spanReason[tid] == StallReason::Active ||
        end_excl <= spanStart[tid]) {
        return;
    }
    TraceEvent ev;
    ev.kind = TraceEventKind::Stall;
    ev.cycle = spanStart[tid];
    ev.tid = tid;
    ev.args[0] = static_cast<std::uint64_t>(spanReason[tid]);
    ev.args[1] = end_excl - spanStart[tid];
    ev.label = stallReasonName(spanReason[tid]);
    sink->emit(ev);
}

void
Processor::attributeCycle()
{
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        ThreadId tid = static_cast<ThreadId>(t);
        std::uint8_t flags = cycleFlags[t];

        // Priority resolver: progress beats everything, then the
        // most specific observed obstacle, then resident-work state,
        // then fetch-side state. Exactly one charge per cycle.
        StallReason reason;
        if (flags & kFlagProgress)
            reason = StallReason::Active;
        else if (flags & kFlagSquashed)
            reason = StallReason::MispredictRecovery;
        else if (flags & kFlagSuFull)
            reason = StallReason::SuFull;
        else if (flags & kFlagSbFull)
            reason = StallReason::StoreBufferFull;
        else if ((flags & kFlagCacheReject) ||
                 now < missPendingUntil[t])
            reason = StallReason::CacheMiss;
        else if (flags & kFlagFuBusy)
            reason = StallReason::FuBusy;
        else if (flags & kFlagMemOrder)
            reason = StallReason::OperandWait;
        else if (su.occupancy(tid) > 0)
            reason = su.pendingOf(tid) > 0 ? StallReason::OperandWait
                                           : StallReason::CommitBlocked;
        else if (fetch.finished(tid))
            reason = StallReason::Done;
        else if (fetch.stoppedFetch(tid))
            reason = StallReason::MispredictRecovery;
        else
            reason = StallReason::FetchStarved;

        ++statStallCycles[t][static_cast<unsigned>(reason)];

        if (sink && reason != spanReason[t]) {
            flushStallSpan(tid, now);
            spanReason[t] = reason;
            spanStart[t] = now;
        }
    }

    if (!sink)
        return;

    unsigned occ = su.occupancy();
    if (occ != lastTracedOccupancy) {
        lastTracedOccupancy = occ;
        TraceEvent ev;
        ev.kind = TraceEventKind::Counter;
        ev.cycle = now;
        ev.label = "su_occupancy";
        ev.args[0] = occ;
        sink->emit(ev);
    }
    if ((now & 255) == 0) {
        TraceEvent ev;
        ev.kind = TraceEventKind::Counter;
        ev.cycle = now;
        ev.label = "ipc";
        ev.fval = static_cast<double>(statCommitted) /
                  static_cast<double>(now);
        ev.hasFval = true;
        sink->emit(ev);
    }
}

bool
Processor::done() const
{
    return fetch.allFinished() && su.empty() && sb.empty() &&
           !fus.busy() && !fetchLatchFull;
}

SimResult
Processor::run()
{
    while (!done() && now < cfg.maxCycles)
        step();

    finishTrace();

    SimResult result;
    result.finished = done();
    result.cycles = now;
    result.committedInstructions = statCommitted;
    return result;
}

void
Processor::finishTrace()
{
    if (!sink)
        return;
    // Close out any stall span still open at end of run.
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        flushStallSpan(static_cast<ThreadId>(t), now + 1);
        spanStart[t] = now + 1;
    }
}

void
Processor::reportStats(StatsRegistry &registry) const
{
    registry.add("sim.cycles", static_cast<double>(now));
    registry.add("sim.committed", static_cast<double>(statCommitted));
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        registry.add(format("sim.committed.thread%u", t),
                     static_cast<double>(statCommittedPerThread[t]));
    }
    registry.add("sim.ipc",
                 now ? static_cast<double>(statCommitted) /
                           static_cast<double>(now)
                     : 0.0);
    registry.add("sim.dispatched", static_cast<double>(statDispatched));
    registry.add("sim.issued", static_cast<double>(statIssued));
    registry.add("sim.squashed", static_cast<double>(statSquashed));
    registry.add("sim.mispredicts",
                 static_cast<double>(statMispredicts));
    registry.add("sim.suFullStalls",
                 static_cast<double>(statSuFullStalls));
    registry.add("sim.scoreboardStalls",
                 static_cast<double>(statScoreboardStalls));
    registry.add("sim.commitBlockedCycles",
                 static_cast<double>(statCommitBlockedCycles));
    registry.add("sim.flexCommits",
                 static_cast<double>(statFlexCommits));
    registry.add("sim.loadDisambStalls",
                 static_cast<double>(statLoadDisambStalls));
    registry.add("sim.cacheBlockedLoads",
                 static_cast<double>(statCacheBlockedLoads));
    registry.add("sim.latchFullCycles",
                 static_cast<double>(statLatchFullCycles));
    registry.add("sim.avgSuOccupancy", averageSuOccupancy());
    for (unsigned w = 0; w < statIssueHistogram.size(); ++w) {
        registry.add(format("sim.issueWidth%u.cycles", w),
                     static_cast<double>(statIssueHistogram[w]));
    }

    // Stall attribution: per-thread charges (each thread's row sums
    // to sim.cycles) and the cross-thread totals.
    for (unsigned r = 0; r < kNumStallReasons; ++r) {
        const char *rn = stallReasonName(static_cast<StallReason>(r));
        std::uint64_t total = 0;
        for (unsigned t = 0; t < cfg.numThreads; ++t)
            total += statStallCycles[t][r];
        registry.add(format("stall.total.%s", rn),
                     static_cast<double>(total));
    }
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        for (unsigned r = 0; r < kNumStallReasons; ++r) {
            registry.add(
                format("stall.thread%u.%s", t,
                       stallReasonName(static_cast<StallReason>(r))),
                static_cast<double>(statStallCycles[t][r]));
        }
    }

    for (unsigned i = 0; i < kNumLatencyStages; ++i) {
        registry.addDistribution(
            format("latency.%s",
                   latencyStageName(static_cast<LatencyStage>(i))),
            latencyDists[i]);
    }

    fetch.reportStats(registry, "fetch");
    btb.reportStats(registry, "btb");
    cache.reportStats(registry, "dcache");
    sb.reportStats(registry, "sb");
    fus.reportStats(registry, "fu", now);
}

} // namespace sdsp

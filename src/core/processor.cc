#include "core/processor.hh"

#include <cstdarg>

#include "common/logging.hh"
#include "isa/semantics.hh"

namespace sdsp
{

namespace
{

/** Validate before any member (which divides by config fields) is
 *  constructed. */
const MachineConfig &
validated(const MachineConfig &config)
{
    config.validate();
    return config;
}

} // namespace

Processor::Processor(const MachineConfig &config, const Program &program)
    : cfg(validated(config)),
      prog(program),
      mem(),
      cache(config.dcache),
      icache(config.perfectICache
                 ? nullptr
                 : std::make_unique<DataCache>(config.icache)),
      sb(config.storeBufferEntries),
      btb(config.btbEntries, config.btbBanks),
      regs(config.numRegisters, config.numThreads),
      su(config.suBlocks(), config.blockSize, config.numThreads,
         config.regsPerThread()),
      fus(config.fu),
      fetch(cfg, decodedCode, btb, icache.get()),
      statCommittedPerThread(config.numThreads, 0),
      statIssueHistogram(config.issueWidth + 1, 0)
{
    // Pre-decode the text once; fetch reads the decoded form.
    decodedCode.reserve(prog.code.size());
    for (InstWord word : prog.code)
        decodedCode.push_back(Instruction::decode(word));

    // Reject programs that name registers outside the per-thread
    // static partition for this thread count.
    unsigned budget = cfg.regsPerThread();
    for (std::size_t i = 0; i < decodedCode.size(); ++i) {
        const Instruction &inst = decodedCode[i];
        const OpInfo &oi = inst.info();
        unsigned top = 0;
        if (oi.flags & kWritesRd)
            top = std::max<unsigned>(top, inst.rd);
        if (oi.flags & kReadsRs1)
            top = std::max<unsigned>(top, inst.rs1);
        if (oi.flags & kReadsRs2)
            top = std::max<unsigned>(top, inst.rs2);
        if (top >= budget) {
            fatal("instruction %zu (%s) names r%u but the %u-thread "
                  "partition allows only r0..r%u",
                  i, inst.toString().c_str(), top, cfg.numThreads,
                  budget - 1);
        }
    }

    mem.loadProgram(prog);
}

Processor::~Processor() = default;

void
Processor::tracef(const char *fmt, ...)
{
    if (!trace)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    *trace << format("[%8llu] ", static_cast<unsigned long long>(now))
           << msg << "\n";
}

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

void
Processor::commitStage()
{
    if (su.empty())
        return;

    CommitSelection selection =
        su.selectCommit(cfg.commitWindowBlocks());

    // The paper's Masked Round Robin (and the adaptive extension)
    // react to the *lower-most* block failing to commit.
    const SuBlock &bottom = su.contents().front();
    bool bottom_commits = selection.found && selection.blockIndex == 0;
    if (!bottom_commits && !bottom.complete()) {
        fetch.onCommitBlockedBottom(bottom.tid);
        ++statCommitBlockedCycles;
    }

    if (!selection.found)
        return;

    if (selection.blockIndex > 0)
        ++statFlexCommits;

    SuBlock block = su.removeBlock(selection.blockIndex);
    Tag max_seq = 0;
    for (const SuEntry &entry : block.entries) {
        if (!entry.valid)
            continue;
        sdsp_assert(entry.state == EntryState::Done,
                    "committing an incomplete entry");
        max_seq = std::max(max_seq, entry.seq);

        if (entry.inst.writesRd())
            regs.write(entry.tid, entry.inst.rd, entry.result);

        // Branch prediction statistics are updated only at result
        // commit (paper section 5.4).
        if (entry.inst.isCondBranch()) {
            InstAddr taken_target = entry.inst.staticTarget(entry.pc);
            btb.update(entry.tid, entry.pc, entry.resolvedTaken,
                       taken_target);
            btb.noteOutcome(entry.mispredicted);
        } else if (entry.inst.isIndirectJump()) {
            btb.update(entry.tid, entry.pc, true,
                       entry.resolvedNextPc);
            btb.noteOutcome(entry.mispredicted);
        }

        if (entry.inst.isHalt()) {
            fetch.onHaltCommitted(entry.tid);
            tracef("commit: thread %u HALT", unsigned{entry.tid});
        }

        ++statCommitted;
        ++statCommittedPerThread[entry.tid];
    }

    // Stores of this block may now drain to the cache.
    sb.commitUpTo(block.tid, max_seq);
    fetch.onCommitBlock(block.tid);

    tracef("commit: block seq=%llu tid=%u from slot %zu",
           static_cast<unsigned long long>(block.blockSeq),
           unsigned{block.tid}, selection.blockIndex);

    su.recycleBlock(std::move(block));
}

// --------------------------------------------------------------------
// Writeback
// --------------------------------------------------------------------

void
Processor::handleMispredict(SuEntry &entry)
{
    ++statMispredicts;

    // Copy before squashing: removing blocks from the SU deque
    // invalidates references into it.
    ThreadId tid = entry.tid;
    Tag seq = entry.seq;
    InstAddr pc = entry.pc;
    InstAddr next_pc = entry.resolvedNextPc;

    squashScratch.clear();
    unsigned count = su.squashThread(tid, seq, &squashScratch);
    statSquashed += count;
    for (Tag squashed_seq : squashScratch)
        fus.cancel(squashed_seq);
    sb.squash(tid, seq);

    // The fetch latch holds the youngest fetched block; if it belongs
    // to this thread it is wrong-path.
    if (fetchLatchFull && fetchLatch.tid == tid)
        fetchLatchFull = false;

    fetch.onSquash(tid, next_pc);

    tracef("squash: tid=%u pc=%u -> %u (%u entries)", unsigned{tid},
           pc, next_pc, count);
}

void
Processor::writebackStage()
{
    completions.clear();
    fus.drainCompletions(now, cfg.writebackWidth, completions);

    for (const FuCompletion &completion : completions) {
        SuEntry *entry = su.findBySeq(completion.seq);
        if (!entry)
            continue; // Squashed between completion and writeback.

        entry->state = EntryState::Done;

        if (entry->inst.writesRd())
            su.broadcast(completion.seq, entry->result, now,
                         cfg.bypassing);

        if (entry->mispredicted)
            handleMispredict(*entry);
    }
}

// --------------------------------------------------------------------
// Issue / execute
// --------------------------------------------------------------------

void
Processor::executeEntry(SuEntry &entry)
{
    const Instruction &inst = entry.inst;
    RegVal s1 = entry.src1.value;
    RegVal s2 = entry.src2.value;

    if (inst.isCondBranch()) {
        entry.resolvedTaken = evalBranchTaken(inst, s1, s2);
        entry.resolvedNextPc = entry.resolvedTaken
                                   ? inst.staticTarget(entry.pc)
                                   : entry.pc + 1;
        entry.mispredicted =
            entry.resolvedNextPc != entry.predictedNextPc;
    } else if (inst.isDirectJump()) {
        entry.resolvedTaken = true;
        entry.resolvedNextPc = inst.staticTarget(entry.pc);
        // Fetch redirected immediately; never mispredicted.
        entry.mispredicted = false;
        if (inst.writesRd())
            entry.result = evalLinkValue(entry.pc);
    } else if (inst.isIndirectJump()) {
        entry.resolvedTaken = true;
        entry.resolvedNextPc = static_cast<InstAddr>(s1);
        entry.mispredicted =
            entry.resolvedNextPc != entry.predictedNextPc;
    } else if (inst.isHalt() || inst.op == Opcode::NOP ||
               inst.op == Opcode::SPIN) {
        // No architectural result.
    } else if (!inst.isLoad() && !inst.isStore()) {
        entry.result = evalCompute(inst, s1, s2, entry.tid,
                                   cfg.numThreads);
    }
}

bool
Processor::tryIssue(SuEntry &entry)
{
    const Instruction &inst = entry.inst;
    FuClass cls = inst.info().fuClass;

    if (!fus.canIssue(cls, now))
        return false;

    Cycle extra_latency = 0;

    if (inst.isLoad()) {
        // Conservative disambiguation: an older same-thread store
        // with an unresolved (not yet executed) address blocks the
        // load (the paper's restricted load/store policy).
        if (su.hasOlderUnresolvedStore(entry.tid, entry.seq)) {
            ++statLoadDisambStalls;
            return false;
        }
        Addr addr = evalEffectiveAddress(inst, entry.src1.value);
        std::optional<RegVal> forwarded =
            sb.forward(entry.tid, addr, entry.seq);
        if (forwarded) {
            entry.result = *forwarded;
        } else {
            if (!cache.canAccept(now)) {
                ++statCacheBlockedLoads;
                cache.noteRejection();
                return false;
            }
            CacheAccessResult access =
                cache.access(addr, now, false, entry.tid);
            extra_latency = access.readyCycle - now;
            // Loads on a speculative wrong path can carry garbage
            // addresses; they read a dummy value and are squashed
            // before commit.
            bool in_bounds = addr % 8 == 0 && addr + 8 <= mem.size();
            entry.result = in_bounds ? mem.read(addr) : 0;
        }
    } else if (inst.isStore()) {
        if (sb.full()) {
            sb.noteFullStall();
            return false;
        }
        // The last buffer slot is reserved for the globally oldest
        // unbuffered store; this keeps the FIFO drain deadlock-free
        // even with tiny buffers (see SU::hasOlderUnbufferedStore).
        if (sb.size() + 1 >= sb.capacity() &&
            su.hasOlderUnbufferedStore(entry.seq)) {
            sb.noteFullStall();
            return false;
        }
        Addr addr = evalEffectiveAddress(inst, entry.src1.value);
        sb.insert(entry.seq, entry.tid, addr, entry.src2.value);
        su.markStoreBuffered(entry);
    }

    executeEntry(entry);
    fus.issue(cls, entry.seq, now, extra_latency);
    entry.state = EntryState::Issued;
    ++statIssued;
    return true;
}

void
Processor::issueStage()
{
    unsigned issued = 0;
    su.forEachOldestFirst([&](SuEntry &entry) {
        if (issued >= cfg.issueWidth)
            return false;
        if (entry.state != EntryState::Ready ||
            entry.earliestIssue > now) {
            return true;
        }
        if (tryIssue(entry))
            ++issued;
        return true;
    });
    ++statIssueHistogram[issued];
}

// --------------------------------------------------------------------
// Dispatch (decode + rename)
// --------------------------------------------------------------------

Operand
Processor::renameOperand(ThreadId tid, RegIndex reg,
                         const std::vector<SuEntry> &partial_block)
{
    // Most recent matching writer wins: first the earlier
    // instructions of the block being decoded (newest last), then the
    // SU (newest first), then the committed register file.
    const SuEntry *producer = nullptr;
    for (auto it = partial_block.rbegin(); it != partial_block.rend();
         ++it) {
        if (it->valid && it->inst.writesRd() && it->inst.rd == reg) {
            producer = &*it;
            break;
        }
    }
    if (!producer)
        producer = su.findNewestWriter(tid, reg);

    Operand operand;
    if (!producer) {
        operand.ready = true;
        operand.value = regs.read(tid, reg);
    } else if (producer->state == EntryState::Done) {
        operand.ready = true;
        operand.value = producer->result;
    } else {
        operand.ready = false;
        operand.tag = producer->seq;
    }
    return operand;
}

void
Processor::dispatchStage()
{
    if (!fetchLatchFull)
        return;

    if (!su.hasSpace()) {
        // The paper's "scheduling unit stall": the bottom block
        // cannot shift out, so no new entries can be made.
        ++statSuFullStalls;
        return;
    }

    const FetchedBlock &fetched = fetchLatch;
    ThreadId tid = fetched.tid;

    // 1-bit scoreboarding: no renaming, so dispatch must stall while
    // any in-flight older instruction of this thread writes a
    // destination register this block also writes (WAW) — full
    // renaming never stalls here.
    if (cfg.renameScheme == RenameScheme::Scoreboard1Bit) {
        for (const FetchedInst &slot : fetched.insts) {
            if (slot.inst.writesRd() &&
                su.hasInflightWriter(tid, slot.inst.rd)) {
                ++statScoreboardStalls;
                return;
            }
        }
    }

    SuBlock block = su.acquireBlock();
    block.tid = tid;
    block.blockSeq = nextSeq;

    for (const FetchedInst &slot : fetched.insts) {
        SuEntry entry;
        entry.valid = true;
        entry.seq = nextSeq++;
        entry.tid = tid;
        entry.pc = slot.pc;
        entry.inst = slot.inst;
        entry.predictedTaken = slot.predictedTaken;
        entry.predictedNextPc = slot.predictedNextPc;

        if (slot.inst.readsRs1())
            entry.src1 = renameOperand(tid, slot.inst.rs1,
                                       block.entries);
        if (slot.inst.readsRs2())
            entry.src2 = renameOperand(tid, slot.inst.rs2,
                                       block.entries);

        entry.state = entry.operandsReady() ? EntryState::Ready
                                            : EntryState::Waiting;
        entry.earliestIssue = now + 1;

        // Conditional Switch: the decoder signals the fetch unit on
        // long-latency trigger instructions (paper section 5.1).
        if (slot.inst.isSwitchTrigger())
            fetch.onSwitchTrigger();

        block.entries.push_back(entry);
        ++statDispatched;
    }

    su.dispatch(std::move(block));
    fetchLatchFull = false;
}

// --------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------

void
Processor::fetchStage()
{
    fetch.tick(now);
    if (fetchLatchFull) {
        ++statLatchFullCycles;
        return;
    }
    if (fetch.fetchCycle(now, fetchLatch) &&
        !fetchLatch.insts.empty()) {
        tracef("fetch: tid=%u pc=%u n=%zu", unsigned{fetchLatch.tid},
               fetchLatch.insts.front().pc, fetchLatch.insts.size());
        fetchLatchFull = true;
    }
}

// --------------------------------------------------------------------
// Top level
// --------------------------------------------------------------------

void
Processor::step()
{
    ++now;
    cache.beginCycle(now);

    statOccupancySum += su.occupancy();
    commitStage();
    sb.drain(cache, mem, now);
    writebackStage();
    issueStage();
    dispatchStage();
    fetchStage();
}

bool
Processor::done() const
{
    return fetch.allFinished() && su.empty() && sb.empty() &&
           !fus.busy() && !fetchLatchFull;
}

SimResult
Processor::run()
{
    while (!done() && now < cfg.maxCycles)
        step();

    SimResult result;
    result.finished = done();
    result.cycles = now;
    result.committedInstructions = statCommitted;
    return result;
}

void
Processor::reportStats(StatsRegistry &registry) const
{
    registry.add("sim.cycles", static_cast<double>(now));
    registry.add("sim.committed", static_cast<double>(statCommitted));
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        registry.add(format("sim.committed.thread%u", t),
                     static_cast<double>(statCommittedPerThread[t]));
    }
    registry.add("sim.ipc",
                 now ? static_cast<double>(statCommitted) /
                           static_cast<double>(now)
                     : 0.0);
    registry.add("sim.dispatched", static_cast<double>(statDispatched));
    registry.add("sim.issued", static_cast<double>(statIssued));
    registry.add("sim.squashed", static_cast<double>(statSquashed));
    registry.add("sim.mispredicts",
                 static_cast<double>(statMispredicts));
    registry.add("sim.suFullStalls",
                 static_cast<double>(statSuFullStalls));
    registry.add("sim.scoreboardStalls",
                 static_cast<double>(statScoreboardStalls));
    registry.add("sim.commitBlockedCycles",
                 static_cast<double>(statCommitBlockedCycles));
    registry.add("sim.flexCommits",
                 static_cast<double>(statFlexCommits));
    registry.add("sim.loadDisambStalls",
                 static_cast<double>(statLoadDisambStalls));
    registry.add("sim.cacheBlockedLoads",
                 static_cast<double>(statCacheBlockedLoads));
    registry.add("sim.latchFullCycles",
                 static_cast<double>(statLatchFullCycles));
    registry.add("sim.avgSuOccupancy", averageSuOccupancy());
    for (unsigned w = 0; w < statIssueHistogram.size(); ++w) {
        registry.add(format("sim.issueWidth%u.cycles", w),
                     static_cast<double>(statIssueHistogram[w]));
    }

    fetch.reportStats(registry, "fetch");
    btb.reportStats(registry, "btb");
    cache.reportStats(registry, "dcache");
    sb.reportStats(registry, "sb");
    fus.reportStats(registry, "fu", now);
}

} // namespace sdsp

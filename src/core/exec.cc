#include "core/exec.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sdsp
{

FuPool::FuPool(const FuConfig &config) : cfg(config)
{
    instances.resize(kNumFuClasses);
    for (unsigned cls = 0; cls < kNumFuClasses; ++cls)
        instances[cls].resize(cfg.count[cls]);
    // Bounded by in-flight instructions (the SU window); reserve a
    // generous fixed amount so issue never reallocates in steady
    // state.
    inflight.reserve(256);
}

std::vector<FuPool::Instance> &
FuPool::instancesOf(FuClass cls)
{
    return instances[static_cast<unsigned>(cls)];
}

const std::vector<FuPool::Instance> &
FuPool::instancesOf(FuClass cls) const
{
    return instances[static_cast<unsigned>(cls)];
}

bool
FuPool::canIssue(FuClass cls, Cycle now) const
{
    for (const Instance &instance : instancesOf(cls)) {
        if (instance.nextFree <= now)
            return true;
    }
    return false;
}

Cycle
FuPool::issue(FuClass cls, Tag seq, Cycle now, Cycle extra_latency)
{
    auto cls_idx = static_cast<unsigned>(cls);
    unsigned latency = cfg.latency[cls_idx];
    bool pipelined = cfg.pipelined[cls_idx];

    // Lowest-numbered free instance first, so that "extra" units are
    // only used under pressure (feeds the paper's Table 4).
    for (Instance &instance : instancesOf(cls)) {
        if (instance.nextFree > now)
            continue;
        Cycle occupancy = pipelined ? 1 : latency;
        instance.nextFree = now + occupancy;
        instance.busy += occupancy;
        Cycle complete = now + latency + extra_latency;
        bool counts = cls != FuClass::Store;
        inflight.push_back({{seq, complete, cls, counts}, false});
        return complete;
    }
    panic("issue to %s without a free instance", fuClassName(cls));
}

void
FuPool::drainCompletions(Cycle now, unsigned max_results,
                         std::vector<FuCompletion> &out)
{
    // Stable order: completion time, then tag (age). The inflight
    // list is small (bounded by SU size), so sorting per cycle is
    // cheap and keeps behaviour deterministic.
    std::sort(inflight.begin(), inflight.end(),
              [](const Inflight &a, const Inflight &b) {
                  if (a.completion.completeCycle !=
                      b.completion.completeCycle) {
                      return a.completion.completeCycle <
                             b.completion.completeCycle;
                  }
                  return a.completion.seq < b.completion.seq;
              });

    unsigned drained = 0;
    auto it = inflight.begin();
    while (it != inflight.end()) {
        if (it->completion.completeCycle > now)
            break;
        if (it->cancelled) {
            it = inflight.erase(it);
            continue;
        }
        if (it->completion.countsAgainstWidth &&
            drained >= max_results) {
            // Result-port limit reached; this completion (and any
            // behind it) waits for a later cycle.
            ++it;
            continue;
        }
        out.push_back(it->completion);
        if (it->completion.countsAgainstWidth)
            ++drained;
        it = inflight.erase(it);
    }
}

void
FuPool::cancel(Tag seq)
{
    for (Inflight &op : inflight) {
        if (op.completion.seq == seq)
            op.cancelled = true;
    }
}

unsigned
FuPool::totalInstances() const
{
    unsigned total = 0;
    for (const auto &cls : instances)
        total += static_cast<unsigned>(cls.size());
    return total;
}

std::uint64_t
FuPool::busyCycles(FuClass cls, unsigned index) const
{
    const auto &list = instancesOf(cls);
    sdsp_assert(index < list.size(), "FU instance index out of range");
    return list[index].busy;
}

void
FuPool::reportStats(StatsRegistry &registry, const std::string &prefix,
                    Cycle total_cycles) const
{
    double denom = total_cycles ? static_cast<double>(total_cycles) : 1.0;
    for (unsigned cls = 0; cls < kNumFuClasses; ++cls) {
        const auto &list = instances[cls];
        for (unsigned i = 0; i < list.size(); ++i) {
            std::string name =
                format("%s[%u].busyFraction",
                       fuClassName(static_cast<FuClass>(cls)), i);
            registry.add(prefix, name,
                         static_cast<double>(list[i].busy) / denom);
        }
    }
}

} // namespace sdsp

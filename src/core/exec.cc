#include "core/exec.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sdsp
{

FuPool::FuPool(const FuConfig &config) : cfg(config)
{
    instances.resize(kNumFuClasses);
    for (unsigned cls = 0; cls < kNumFuClasses; ++cls)
        instances[cls].resize(cfg.count[cls]);
    // Bounded by in-flight instructions (the SU window); reserve a
    // generous fixed amount so issue never reallocates in steady
    // state.
    inflight.reserve(256);
    deferred.reserve(64);
}

std::vector<FuPool::Instance> &
FuPool::instancesOf(FuClass cls)
{
    return instances[static_cast<unsigned>(cls)];
}

const std::vector<FuPool::Instance> &
FuPool::instancesOf(FuClass cls) const
{
    return instances[static_cast<unsigned>(cls)];
}

bool
FuPool::canIssue(FuClass cls, Cycle now) const
{
    for (const Instance &instance : instancesOf(cls)) {
        if (instance.nextFree <= now)
            return true;
    }
    return false;
}

Cycle
FuPool::issue(FuClass cls, Tag seq, Cycle now, Cycle extra_latency)
{
    auto cls_idx = static_cast<unsigned>(cls);
    unsigned latency = cfg.latency[cls_idx];
    bool pipelined = cfg.pipelined[cls_idx];

    // Lowest-numbered free instance first, so that "extra" units are
    // only used under pressure (feeds the paper's Table 4).
    for (Instance &instance : instancesOf(cls)) {
        if (instance.nextFree > now)
            continue;
        Cycle occupancy = pipelined ? 1 : latency;
        instance.nextFree = now + occupancy;
        instance.busy += occupancy;
        Cycle complete = now + latency + extra_latency;
        bool counts = cls != FuClass::Store;
        // The inflight list is a binary min-heap on (completion time,
        // tag): O(log n) swaps here instead of a per-cycle sort (or a
        // sorted-vector insert's memmove) keeps both ends of the
        // queue cheap.
        inflight.push_back({{seq, complete, cls, counts}, false});
        std::push_heap(inflight.begin(), inflight.end(),
                       inflightAfter);
        return complete;
    }
    panic("issue to %s without a free instance", fuClassName(cls));
}

void
FuPool::drainCompletions(Cycle now, unsigned max_results,
                         std::vector<FuCompletion> &out)
{
    // Pop due completions off the min-heap in (completion time, tag)
    // order. A completion held back by the result-port limit is set
    // aside and re-pushed afterwards, so store completions behind it
    // (which consume no port) still drain this cycle — exactly the
    // historical sorted-walk semantics.
    unsigned drained = 0;
    deferred.clear();
    while (!inflight.empty()) {
        if (inflight.front().completion.completeCycle > now)
            break;
        std::pop_heap(inflight.begin(), inflight.end(),
                      inflightAfter);
        Inflight op = inflight.back();
        inflight.pop_back();
        if (op.cancelled)
            continue;
        if (op.completion.countsAgainstWidth &&
            drained >= max_results) {
            // Result-port limit reached; waits for a later cycle.
            deferred.push_back(op);
            continue;
        }
        out.push_back(op.completion);
        if (op.completion.countsAgainstWidth)
            ++drained;
    }
    for (const Inflight &op : deferred) {
        inflight.push_back(op);
        std::push_heap(inflight.begin(), inflight.end(),
                       inflightAfter);
    }
}

void
FuPool::cancel(Tag seq)
{
    for (Inflight &op : inflight) {
        if (op.completion.seq == seq)
            op.cancelled = true;
    }
}

unsigned
FuPool::totalInstances() const
{
    unsigned total = 0;
    for (const auto &cls : instances)
        total += static_cast<unsigned>(cls.size());
    return total;
}

std::uint64_t
FuPool::busyCycles(FuClass cls, unsigned index) const
{
    const auto &list = instancesOf(cls);
    sdsp_assert(index < list.size(), "FU instance index out of range");
    return list[index].busy;
}

void
FuPool::reportStats(StatsRegistry &registry, const std::string &prefix,
                    Cycle total_cycles) const
{
    double denom = total_cycles ? static_cast<double>(total_cycles) : 1.0;
    for (unsigned cls = 0; cls < kNumFuClasses; ++cls) {
        const auto &list = instances[cls];
        for (unsigned i = 0; i < list.size(); ++i) {
            std::string name =
                format("%s[%u].busyFraction",
                       fuClassName(static_cast<FuClass>(cls)), i);
            registry.add(prefix, name,
                         static_cast<double>(list[i].busy) / denom);
        }
    }
}

} // namespace sdsp

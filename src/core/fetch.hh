/**
 * @file
 * The multithreaded instruction unit (fetch stage).
 *
 * The instruction unit keeps one program counter per resident thread
 * and fetches one aligned block of four contiguous instructions per
 * cycle, all from the same thread; which thread fetches is decided by
 * the fetch policy (paper section 5.1):
 *
 *  - True Round Robin: a modulo-N counter advanced every clock tick,
 *    irrespective of thread state;
 *  - Masked Round Robin: round robin, but threads that failed to
 *    commit from the lower-most reorder-buffer block are masked until
 *    that commit happens;
 *  - Conditional Switch: keep fetching one thread until the decoder
 *    reports a long-latency trigger instruction;
 *  - Adaptive (section 6.1 extension): round robin that skips threads
 *    whose recent commit behaviour indicates a low execution rate.
 *
 * Speculation: conditional branches and indirect jumps are predicted
 * with the shared BTB; direct jumps redirect immediately. Instructions
 * in the fetched block after a (predicted-)taken control transfer, or
 * before the entry PC of the aligned block, are invalid — this is the
 * fetch-bandwidth loss the paper's section 6.1 alignment optimization
 * attacks.
 */

#ifndef SDSP_CORE_FETCH_HH
#define SDSP_CORE_FETCH_HH

#include <optional>
#include <vector>

#include "branch/predictor_bank.hh"
#include "common/stats_registry.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "memory/cache.hh"
#include "isa/instruction.hh"

namespace sdsp
{

/** One fetched instruction slot. */
struct FetchedInst
{
    InstAddr pc = 0;
    Instruction inst;
    /** Fetch predicted this control transfer taken. */
    bool predictedTaken = false;
    /** The PC fetch continued from after this instruction. */
    InstAddr predictedNextPc = 0;
};

/** One fetched block (valid instructions only, program order). */
struct FetchedBlock
{
    ThreadId tid = 0;
    std::vector<FetchedInst> insts;
    /** Cycle the block entered the fetch latch (lifecycle stamp set
     *  by the processor's fetch stage; observability only). */
    Cycle fetchedAt = 0;
};

/** The instruction unit. */
class FetchUnit
{
  public:
    /**
     * @param config    Machine configuration.
     * @param code      Pre-decoded program text (shared, immutable).
     * @param predictor The shared branch predictor.
     */
    /**
     * @param icache Finite instruction cache, or nullptr for the
     *               paper's perfect I-cache.
     */
    FetchUnit(const MachineConfig &config,
              const std::vector<Instruction> &code,
              PredictorBank &predictor, DataCache *icache = nullptr);

    /**
     * Fetch one block this cycle (the fetch latch must be free).
     *
     * Fills @p out (reusing its storage, so a caller-owned latch
     * block makes the fetch path allocation-free in steady state).
     *
     * @return true iff a block was fetched.
     */
    bool fetchCycle(Cycle now, FetchedBlock &out);

    /** Convenience overload returning a fresh block (tests). */
    std::optional<FetchedBlock>
    fetchCycle(Cycle now)
    {
        FetchedBlock block;
        if (!fetchCycle(now, block))
            return std::nullopt;
        return block;
    }

    // ---- Notifications from the rest of the pipeline ----

    /** The bottom SU block of @p tid failed to commit this cycle. */
    void onCommitBlockedBottom(ThreadId tid);

    /** A block of @p tid committed this cycle. */
    void onCommitBlock(ThreadId tid);

    /** The decoder saw a Conditional Switch trigger instruction. */
    void onSwitchTrigger();

    /** A mispredicted control transfer of @p tid resolved; resume
     *  fetching at @p next_pc. */
    void onSquash(ThreadId tid, InstAddr next_pc);

    /** Thread @p tid committed HALT: it will never fetch again. */
    void onHaltCommitted(ThreadId tid);

    /** Called once per cycle for policy state decay and to open the
     *  I-cache's per-cycle port window. */
    void tick(Cycle now);

    /** Place @p tid's initial fetch PC (per-thread program entries;
     *  see Program::threadEntries). Only valid before the first
     *  cycle. */
    void
    setThreadPc(ThreadId tid, InstAddr pc)
    {
        threads[tid].pc = pc;
    }

    // ---- Queries ----

    /** Has @p tid committed HALT? */
    bool finished(ThreadId tid) const { return threads[tid].finished; }

    /** Have all threads committed HALT? */
    bool allFinished() const;

    /** Current fetch PC of @p tid (tests). */
    InstAddr pcOf(ThreadId tid) const { return threads[tid].pc; }

    /** Is @p tid masked out (MaskedRR)? */
    bool masked(ThreadId tid) const { return threads[tid].maskedOut; }

    /** Is @p tid's fetch stopped on a speculative dead end (HALT
     *  fetched, ran past the code, or a bad predicted target) until a
     *  squash restores its PC? Used by stall attribution to charge
     *  such cycles to mispredict recovery. */
    bool
    stoppedFetch(ThreadId tid) const
    {
        return threads[tid].stopped && !threads[tid].finished;
    }

    /** Report statistics under @p prefix. */
    void reportStats(StatsRegistry &registry,
                     const std::string &prefix) const;

  private:
    struct ThreadState
    {
        InstAddr pc = 0;
        /** Stop fetching (HALT fetched / ran past code / bad
         *  predicted target) until a squash restores the PC. */
        bool stopped = false;
        /** HALT committed; the thread is architecturally done. */
        bool finished = false;
        /** MaskedRR: excluded from the rotation. */
        bool maskedOut = false;
        /** Adaptive: decaying commit-stall score. */
        unsigned stallScore = 0;
        /** WeightedRR: fetch credits left in this rotation round. */
        unsigned credits = 0;
        /** Finite I-cache: cycle the pending line refill lands. */
        Cycle ifetchReadyAt = 0;
    };

    /** Can this thread fetch right now? */
    bool fetchable(const ThreadState &thread) const;

    /** Pick the fetching thread per policy; -1 if none. */
    int selectThread();

    /** Fetch the aligned block for @p tid into @p out. */
    void fetchBlock(ThreadId tid, FetchedBlock &out);

    const MachineConfig &cfg;
    const std::vector<Instruction> &code;
    PredictorBank &btb;
    DataCache *icache;

    std::vector<ThreadState> threads;
    /** TrueRR/MaskedRR rotation counter; CSwitch current thread. */
    unsigned rotation = 0;
    /** CSwitch: switch away from the current thread at next fetch. */
    bool switchPending = false;

    std::uint64_t statBlocks = 0;
    std::vector<std::uint64_t> statBlocksPerThread;
    std::uint64_t statInsts = 0;
    std::uint64_t statWastedSlots = 0;
    std::uint64_t statIdleCycles = 0;
    std::uint64_t statSwitches = 0;
    std::uint64_t statMaskEvents = 0;
    std::uint64_t statIcacheStallCycles = 0;
};

} // namespace sdsp

#endif // SDSP_CORE_FETCH_HH

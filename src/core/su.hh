/**
 * @file
 * The Scheduling Unit (SU): the SDSP's combined reorder buffer and
 * instruction window.
 *
 * The SU is a FIFO of fetch blocks (4 instructions each). Newly
 * decoded blocks enter at the top; blocks leave from the bottom region
 * at result commit. Each entry carries the decoded instruction, its
 * renaming tag (a globally unique sequence number), its thread ID (the
 * single field multithreading adds — paper section 3.2), operand
 * values/tags, and execution state.
 *
 * Multithreading specifics implemented here:
 *  - operand lookup matches on (thread, register), newest first;
 *  - selective squash removes only same-thread entries younger than a
 *    mispredicted control transfer;
 *  - Flexible Result Commit may retire any of the bottom four blocks
 *    whose thread differs from every incomplete block below it.
 */

#ifndef SDSP_CORE_SU_HH
#define SDSP_CORE_SU_HH

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/stats_registry.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "isa/instruction.hh"

namespace sdsp
{

/** Execution state of one SU entry. */
enum class EntryState : std::uint8_t
{
    Waiting, //!< missing at least one source operand
    Ready,   //!< all operands present; eligible for issue
    Issued,  //!< executing in a functional unit
    Done,    //!< result written back (or no result to produce)
};

/** One source operand: either a value or a tag to wait for. */
struct Operand
{
    bool ready = true;
    RegVal value = 0;
    Tag tag = kNoTag;
};

/** One instruction resident in the scheduling unit. */
struct SuEntry
{
    bool valid = false; //!< false: empty or squashed slot
    Tag seq = 0;        //!< unique renaming tag / age
    ThreadId tid = 0;
    InstAddr pc = 0;
    Instruction inst;
    EntryState state = EntryState::Waiting;

    Operand src1;
    Operand src2;
    RegVal result = 0;

    /** Earliest cycle this entry may issue (bypassing control). */
    Cycle earliestIssue = 0;

    // ---- Control transfer bookkeeping ----
    bool predictedTaken = false;
    InstAddr predictedNextPc = 0; //!< PC fetch continued from
    bool resolvedTaken = false;
    InstAddr resolvedNextPc = 0;
    bool mispredicted = false;

    // ---- Memory bookkeeping ----
    bool storeBuffered = false; //!< store deposited in store buffer

    /** All sources present? */
    bool operandsReady() const { return src1.ready && src2.ready; }
};

/** One SU block: a fetch block's worth of entries, all same thread. */
struct SuBlock
{
    ThreadId tid = 0;
    Tag blockSeq = 0; //!< seq of the first (oldest) entry
    std::vector<SuEntry> entries;

    /** All valid entries executed to completion? */
    bool
    complete() const
    {
        for (const auto &entry : entries) {
            if (entry.valid && entry.state != EntryState::Done)
                return false;
        }
        return true;
    }

    /** Any valid entries left (false after a full squash)? */
    bool
    anyValid() const
    {
        for (const auto &entry : entries) {
            if (entry.valid)
                return true;
        }
        return false;
    }
};

/** Outcome of the commit-selection scan. */
struct CommitSelection
{
    bool found = false;
    /** Index into the block deque (0 = bottom). */
    std::size_t blockIndex = 0;
};

/** The combined reorder buffer + instruction window. */
class SchedulingUnit
{
  public:
    /**
     * @param num_blocks Capacity in blocks (suEntries / blockSize).
     * @param block_size Instructions per block.
     */
    SchedulingUnit(unsigned num_blocks, unsigned block_size);

    /** Room for one more block? */
    bool hasSpace() const { return blocks.size() < capacityBlocks; }

    /** No blocks resident? */
    bool empty() const { return blocks.empty(); }

    /** Resident blocks, bottom (oldest) first. */
    const std::deque<SuBlock> &contents() const { return blocks; }
    std::deque<SuBlock> &contents() { return blocks; }

    /** Occupied entries (valid only). */
    unsigned occupancy() const;

    /** Append a decoded block at the top. Caller checked hasSpace(). */
    void dispatch(SuBlock block);

    /**
     * Operand lookup for the decoder: find the newest in-flight
     * writer of (tid, reg). @return the producing entry, or nullptr
     * if the value should come from the register file.
     */
    const SuEntry *findNewestWriter(ThreadId tid, RegIndex reg) const;

    /** Is there any in-flight entry of @p tid writing @p reg?
     *  (1-bit scoreboard dispatch check.) */
    bool
    hasInflightWriter(ThreadId tid, RegIndex reg) const
    {
        return findNewestWriter(tid, reg) != nullptr;
    }

    /** Locate an entry by its unique tag. @return nullptr if gone
     *  (squashed). */
    SuEntry *findBySeq(Tag seq);

    /**
     * Broadcast a result: every waiting operand with a matching tag
     * receives the value.
     *
     * @param seq            Producer's tag.
     * @param value          Result value.
     * @param now            Current cycle.
     * @param bypassing      If false, woken entries may issue only
     *                       from the next cycle.
     */
    void broadcast(Tag seq, RegVal value, Cycle now, bool bypassing);

    /**
     * Selective squash after a mispredicted control transfer of
     * thread @p tid: invalidate every same-thread entry with
     * seq > @p after and drop emptied blocks.
     *
     * @param squashed_seqs If non-null, receives the tags of all
     *                      squashed entries (to cancel in-flight FU
     *                      operations).
     * @return Number of entries squashed.
     */
    unsigned squashThread(ThreadId tid, Tag after,
                          std::vector<Tag> *squashed_seqs = nullptr);

    /**
     * Commit selection (paper Figure 2): scan the bottom
     * @p window_blocks blocks bottom-up and pick the first complete
     * block whose thread differs from every incomplete block below
     * it.
     */
    CommitSelection selectCommit(unsigned window_blocks) const;

    /** Remove the block at @p block_index (after committing it). */
    SuBlock removeBlock(std::size_t block_index);

    /**
     * Is there an older same-thread store, not yet executed into the
     * store buffer, below the given load? (Conservative memory
     * disambiguation: such a store has an unresolved address.)
     */
    bool hasOlderUnresolvedStore(ThreadId tid, Tag load_seq) const;

    /**
     * Is there an older store of ANY thread not yet in the store
     * buffer? Used to reserve the last store-buffer slot for the
     * globally oldest store, which guarantees the buffer always
     * drains (without the reservation, younger stores can fill the
     * buffer while the commit of its head transitively waits — via
     * load disambiguation — on an older store that can no longer
     * enter).
     */
    bool hasOlderUnbufferedStore(Tag seq) const;

    /**
     * Iterate entries oldest-first (bottom block first, in-block
     * program order); used by the issue stage. The callback returns
     * false to stop early.
     */
    void forEachOldestFirst(
        const std::function<bool(SuEntry &)> &visit);

  private:
    unsigned capacityBlocks;
    unsigned blockSize;
    std::deque<SuBlock> blocks;
};

} // namespace sdsp

#endif // SDSP_CORE_SU_HH

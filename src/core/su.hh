/**
 * @file
 * The Scheduling Unit (SU): the SDSP's combined reorder buffer and
 * instruction window.
 *
 * The SU is a FIFO of fetch blocks (4 instructions each). Newly
 * decoded blocks enter at the top; blocks leave from the bottom region
 * at result commit. Each entry carries the decoded instruction, its
 * renaming tag (a globally unique sequence number), its thread ID (the
 * single field multithreading adds — paper section 3.2), operand
 * values/tags, and execution state.
 *
 * Multithreading specifics implemented here:
 *  - operand lookup matches on (thread, register), newest first;
 *  - selective squash removes only same-thread entries younger than a
 *    mispredicted control transfer;
 *  - Flexible Result Commit may retire any of the bottom four blocks
 *    whose thread differs from every incomplete block below it.
 *
 * Implementation: the architectural model is a linear window, but the
 * hot-path queries are served from incremental indices kept exactly in
 * sync with it (DESIGN.md, "Simulator performance"):
 *  - a tag -> entry open-addressing map (findBySeq, broadcast);
 *  - a per-(thread, register) newest-writer table (findNewestWriter);
 *  - intrusive per-tag waiter chains so broadcast touches only the
 *    consumers of a result instead of every resident entry;
 *  - per-thread sorted lists of unbuffered store tags for the two
 *    O(1) memory-disambiguation queries.
 * Entry storage is pooled: recycled fixed-capacity vectors back
 * SuBlock::entries, so the steady-state cycle loop performs no heap
 * allocation. All indices rely on entry addresses being stable, which
 * holds because entry vectors never grow after dispatch and only the
 * SuBlock headers (not their heap buffers) move inside the window.
 */

#ifndef SDSP_CORE_SU_HH
#define SDSP_CORE_SU_HH

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/stats_registry.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "isa/instruction.hh"

namespace sdsp
{

/** Execution state of one SU entry. */
enum class EntryState : std::uint8_t
{
    Waiting, //!< missing at least one source operand
    Ready,   //!< all operands present; eligible for issue
    Issued,  //!< executing in a functional unit
    Done,    //!< result written back (or no result to produce)
};

/** One source operand: either a value or a tag to wait for. */
struct Operand
{
    bool ready = true;
    RegVal value = 0;
    Tag tag = kNoTag;
};

struct SuEntry;

/** Reference to one source operand of one entry (waiter-chain node). */
struct OperandRef
{
    SuEntry *entry = nullptr;
    std::uint8_t op = 0; //!< 0 = src1, 1 = src2
};

/** One instruction resident in the scheduling unit. */
struct SuEntry
{
    bool valid = false; //!< false: empty or squashed slot
    Tag seq = 0;        //!< unique renaming tag / age
    ThreadId tid = 0;
    InstAddr pc = 0;
    Instruction inst;
    EntryState state = EntryState::Waiting;

    Operand src1;
    Operand src2;
    RegVal result = 0;

    /** Earliest cycle this entry may issue (bypassing control). */
    Cycle earliestIssue = 0;

    // ---- Lifecycle timestamps (observability) ----
    Cycle fetchedAt = 0;   //!< cycle the block entered the fetch latch
    Cycle dispatchedAt = 0; //!< cycle the entry entered the SU
    Cycle issuedAt = 0;     //!< cycle the entry left for its FU
    Cycle completedAt = 0;  //!< cycle the result wrote back

    // ---- Dependence evidence (critical-path analysis). Plain
    // recording with no timing effect; published on the CommitInst
    // trace event at retirement. ----
    Cycle readyAt = 0;  //!< cycle the last pending operand arrived
    Tag wakeupTag = 0;  //!< broadcast that completed the operands
    Tag waitTag1 = 0;   //!< src1 producer in flight at rename (0 none)
    Tag waitTag2 = 0;   //!< src2 producer in flight at rename (0 none)
    Cycle missExtra = 0; //!< load miss cycles beyond the FU latency
    Cycle issueBlockCycle = 0; //!< last cycle an issue attempt failed
    IssueBlockCause issueBlockCause = IssueBlockCause::None;
    DispatchWaitCause dispatchWaitCause = DispatchWaitCause::None;

    // ---- Control transfer bookkeeping ----
    bool predictedTaken = false;
    InstAddr predictedNextPc = 0; //!< PC fetch continued from
    bool resolvedTaken = false;
    InstAddr resolvedNextPc = 0;
    bool mispredicted = false;

    // ---- Memory bookkeeping ----
    bool storeBuffered = false; //!< store deposited in store buffer
                                //!< (set via markStoreBuffered)

    /**
     * Waiter-chain links, managed by the SchedulingUnit: the next
     * consumer operand waiting on the same producer tag as this
     * entry's src1 (index 0) / src2 (index 1).
     */
    OperandRef nextWaiter[2];

    /** All sources present? */
    bool operandsReady() const { return src1.ready && src2.ready; }
};

/** One SU block: a fetch block's worth of entries, all same thread. */
struct SuBlock
{
    ThreadId tid = 0;
    Tag blockSeq = 0; //!< seq of the first (oldest) entry
    std::vector<SuEntry> entries;

    /** All valid entries executed to completion? */
    bool
    complete() const
    {
        for (const auto &entry : entries) {
            if (entry.valid && entry.state != EntryState::Done)
                return false;
        }
        return true;
    }

    /** Any valid entries left (false after a full squash)? */
    bool
    anyValid() const
    {
        for (const auto &entry : entries) {
            if (entry.valid)
                return true;
        }
        return false;
    }
};

/** Outcome of the commit-selection scan. */
struct CommitSelection
{
    bool found = false;
    /** Index into the block list (0 = bottom). */
    std::size_t blockIndex = 0;
};

/** The combined reorder buffer + instruction window. */
class SchedulingUnit
{
  public:
    /**
     * @param num_blocks      Capacity in blocks (suEntries /
     *                        blockSize).
     * @param block_size      Instructions per block.
     * @param num_threads     Hardware threads (sizes the newest-writer
     *                        table and the disambiguation lists).
     * @param regs_per_thread Architectural registers per thread.
     */
    SchedulingUnit(unsigned num_blocks, unsigned block_size,
                   unsigned num_threads = 8,
                   unsigned regs_per_thread = 64);

    /** Room for one more block? */
    bool hasSpace() const { return blocks.size() < capacityBlocks; }

    /** No blocks resident? */
    bool empty() const { return blocks.empty(); }

    /** Resident blocks, bottom (oldest) first. */
    const std::vector<SuBlock> &contents() const { return blocks; }

    /** Occupied entries (valid only). */
    unsigned occupancy() const { return validCount; }

    /** Occupied entries of one thread. */
    unsigned
    occupancy(ThreadId tid) const
    {
        return validPerThread[tid];
    }

    /** Valid entries of @p tid not yet in the Done state (still
     *  waiting, ready, or executing). Zero with occupancy(tid) > 0
     *  means the thread is purely commit-blocked. */
    unsigned
    pendingOf(ThreadId tid) const
    {
        return pendingPerThread[tid];
    }

    /** Transition @p entry to Done, keeping the per-thread pending
     *  count in sync. The writeback stage must use this instead of
     *  writing entry.state directly. */
    void
    markDone(SuEntry &entry)
    {
        if (entry.state != EntryState::Done && entry.valid)
            --pendingPerThread[entry.tid];
        if (entry.state == EntryState::Ready && entry.valid &&
            readyCount > 0) {
            --readyCount;
        }
        entry.state = EntryState::Done;
    }

    /** Transition @p entry from Ready to Issued, keeping the ready
     *  count in sync. The issue stage must use this instead of
     *  writing entry.state directly. */
    void
    markIssued(SuEntry &entry)
    {
        if (entry.state == EntryState::Ready && entry.valid &&
            readyCount > 0) {
            --readyCount;
        }
        entry.state = EntryState::Issued;
    }

    /** Valid entries currently in the Ready state. The issue stage
     *  scans only until it has seen this many, which turns the
     *  common nothing-is-ready cycle into a constant-time check. */
    unsigned readyEntries() const { return readyCount; }

    /**
     * Take a block with pooled (recycled) entry storage. Fill it and
     * pass it to dispatch(); in steady state this allocates nothing.
     */
    SuBlock acquireBlock();

    /**
     * Return a committed block's entry storage to the pool (after
     * removeBlock).
     */
    void recycleBlock(SuBlock &&block);

    /** Append a decoded block at the top. Caller checked hasSpace(). */
    void dispatch(SuBlock block);

    /**
     * In-place dispatch, avoiding the block move of dispatch():
     * append an empty block (pooled entry storage) at the top and
     * return it for direct filling. The block is not indexed until
     * finishDispatch(), so operand lookups during renaming still see
     * only older entries. Caller checked hasSpace().
     */
    SuBlock &beginDispatch(ThreadId tid, Tag block_seq);

    /** Index the block returned by beginDispatch(). */
    void finishDispatch();

    /**
     * Operand lookup for the decoder: find the newest in-flight
     * writer of (tid, reg). @return the producing entry, or nullptr
     * if the value should come from the register file.
     */
    const SuEntry *findNewestWriter(ThreadId tid, RegIndex reg) const;

    /** Is there any in-flight entry of @p tid writing @p reg?
     *  (1-bit scoreboard dispatch check.) */
    bool
    hasInflightWriter(ThreadId tid, RegIndex reg) const
    {
        return findNewestWriter(tid, reg) != nullptr;
    }

    /** Locate an entry by its unique tag. @return nullptr if gone
     *  (squashed). */
    SuEntry *findBySeq(Tag seq);

    /**
     * Broadcast a result: every waiting operand with a matching tag
     * receives the value.
     *
     * @param seq            Producer's tag.
     * @param value          Result value.
     * @param now            Current cycle.
     * @param bypassing      If false, woken entries may issue only
     *                       from the next cycle.
     */
    void broadcast(Tag seq, RegVal value, Cycle now, bool bypassing);

    /**
     * Selective squash after a mispredicted control transfer of
     * thread @p tid: invalidate every same-thread entry with
     * seq > @p after and drop emptied blocks.
     *
     * @param squashed_seqs If non-null, receives the tags of all
     *                      squashed entries (to cancel in-flight FU
     *                      operations).
     * @return Number of entries squashed.
     */
    unsigned squashThread(ThreadId tid, Tag after,
                          std::vector<Tag> *squashed_seqs = nullptr);

    /**
     * Commit selection (paper Figure 2): scan the bottom
     * @p window_blocks blocks bottom-up and pick the first complete
     * block whose thread differs from every incomplete block below
     * it.
     */
    CommitSelection selectCommit(unsigned window_blocks) const;

    /** Remove the block at @p block_index (after committing it). */
    SuBlock removeBlock(std::size_t block_index);

    /** Record that @p entry's store was deposited in the store
     *  buffer. Keeps the disambiguation index in sync — callers must
     *  not set entry.storeBuffered directly. */
    void markStoreBuffered(SuEntry &entry);

    /**
     * Is there an older same-thread store, not yet executed into the
     * store buffer, below the given load? (Conservative memory
     * disambiguation: such a store has an unresolved address.)
     */
    bool
    hasOlderUnresolvedStore(ThreadId tid, Tag load_seq) const
    {
        const std::vector<Tag> &list = unbufferedStores[tid];
        return !list.empty() && list.front() < load_seq;
    }

    /**
     * Is there an older store of ANY thread not yet in the store
     * buffer? Used to reserve the last store-buffer slot for the
     * globally oldest store, which guarantees the buffer always
     * drains (without the reservation, younger stores can fill the
     * buffer while the commit of its head transitively waits — via
     * load disambiguation — on an older store that can no longer
     * enter).
     */
    bool
    hasOlderUnbufferedStore(Tag seq) const
    {
        for (const std::vector<Tag> &list : unbufferedStores) {
            if (!list.empty() && list.front() < seq)
                return true;
        }
        return false;
    }

    /**
     * Number of stores (any thread) not yet in the store buffer, in
     * blocks strictly below @p target's block or in @p target's own
     * block, excluding @p target itself.
     *
     * The store buffer drains in global tag order from its head, and
     * an SU block only commits whole; so before @p target may claim a
     * buffer slot there must remain a free slot for every such store
     * — otherwise a block with several stores can wedge with some
     * buffered and the rest locked out of a full buffer, and the
     * buffer's head (in that block) never becomes committable.
     */
    std::size_t
    countUnbufferedStoresThrough(const SuEntry &target) const
    {
        // Tags are assigned in dispatch order, so the block list is
        // ascending in blockSeq and each block covers the contiguous
        // tag range [blockSeq, blockSeq + entries.size()). Locate the
        // target's block by binary search and count, in the sorted
        // per-thread disambiguation lists, every unbuffered store
        // whose tag falls below the end of that range. The target is
        // itself an unbuffered store below the bound — exclude it.
        // Equivalent to (but much cheaper than) walking every entry
        // of every block up to and including the target's.
        auto it = std::upper_bound(
            blocks.begin(), blocks.end(), target.seq,
            [](Tag seq, const SuBlock &block) {
                return seq < block.blockSeq;
            });
        sdsp_assert(it != blocks.begin(),
                    "store entry not resident in the SU");
        const SuBlock &home = *(it - 1);
        Tag bound = home.blockSeq + home.entries.size();
        sdsp_assert(target.seq < bound,
                    "store entry not resident in the SU");
        std::size_t count = 0;
        for (const std::vector<Tag> &list : unbufferedStores) {
            count += static_cast<std::size_t>(
                std::lower_bound(list.begin(), list.end(), bound) -
                list.begin());
        }
        sdsp_assert(count > 0,
                    "target store missing from disambiguation index");
        return count - 1;
    }

    /**
     * Iterate entries oldest-first (bottom block first, in-block
     * program order); used by the issue stage. The visitor returns
     * false to stop early. Templated so the per-entry call inlines
     * into the issue loop.
     */
    template <typename Visitor>
    void
    forEachOldestFirst(Visitor &&visit)
    {
        for (auto &block : blocks) {
            for (auto &entry : block.entries) {
                if (!entry.valid)
                    continue;
                if (!visit(entry))
                    return;
            }
        }
    }

  private:
    /**
     * One slot of the tag map: open addressing with linear probing
     * and backward-shift deletion. A slot holds the resident entry
     * with that tag (if any) and the head of the chain of operands
     * waiting on the tag. A slot with entry == nullptr is a
     * placeholder created by a waiter whose producer is not resident
     * (possible only via direct SU use in tests); it is reclaimed
     * when its chain drains.
     */
    struct TagSlot
    {
        Tag seq = 0;
        SuEntry *entry = nullptr;
        OperandRef waitHead;
        bool used = false;
    };

    /** Preferred (home) slot index of @p seq. */
    std::size_t
    homeSlot(Tag seq) const
    {
        // Fibonacci hashing: tags are sequential, this spreads them.
        return static_cast<std::size_t>(
                   (seq * 0x9E3779B97F4A7C15ull) >> 32) &
               tagMask;
    }

    TagSlot *findSlot(Tag seq);
    const TagSlot *findSlot(Tag seq) const;
    /** Find-or-insert. May grow the map (invalidates slot refs). */
    TagSlot &insertSlot(Tag seq);
    /** Remove the slot for @p seq (backward-shift deletion). */
    void eraseSlot(Tag seq);
    void growTagMap();

    /** Newest-writer table record (oldest first per (tid, reg)). */
    struct WriterRec
    {
        Tag seq = 0;
        SuEntry *entry = nullptr;
    };

    std::size_t
    writerIndex(ThreadId tid, RegIndex reg) const
    {
        return static_cast<std::size_t>(tid) * regsPerThread + reg;
    }

    /** Insert a freshly dispatched block's entries into all indices. */
    void indexBlock(SuBlock &block);

    /** Unlink one waiting operand from its producer's chain. */
    void unlinkWaiter(Tag tag, const SuEntry &entry, unsigned op);

    /** Remove one entry (commit/removeBlock path) from all indices. */
    void unindexEntry(SuEntry &entry);

    /** Return entry storage to the pool. */
    void recycleEntries(std::vector<SuEntry> &&entries);

    unsigned capacityBlocks;
    unsigned blockSize;
    unsigned numThreads;
    unsigned regsPerThread;

    /** Resident blocks, bottom (oldest) first. Reserved to
     *  capacityBlocks up front so SuBlock headers move but never
     *  reallocate; entry buffers are stable throughout. */
    std::vector<SuBlock> blocks;

    /** Valid (non-squashed) resident entries. */
    unsigned validCount = 0;

    /** Valid resident entries per thread. */
    std::vector<unsigned> validPerThread;
    /** Valid entries per thread not yet Done (see pendingOf). */
    std::vector<unsigned> pendingPerThread;
    /** Valid entries in the Ready state (see readyEntries()). */
    unsigned readyCount = 0;

    // ---- Indices (see file comment) ----
    std::vector<TagSlot> tagSlots; //!< power-of-two open addressing
    std::size_t tagMask = 0;
    std::size_t tagCount = 0; //!< used slots

    /** writers[tid * regsPerThread + reg]: resident writers of that
     *  (thread, register), oldest first — back() is the newest. */
    std::vector<std::vector<WriterRec>> writers;

    /** Per-thread ascending tags of resident stores not yet in the
     *  store buffer — front() is the oldest. */
    std::vector<std::vector<Tag>> unbufferedStores;

    /** Recycled entry storage for acquireBlock. */
    std::vector<std::vector<SuEntry>> entryPool;
};

} // namespace sdsp

#endif // SDSP_CORE_SU_HH

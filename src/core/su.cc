#include "core/su.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sdsp
{

namespace
{

/** Smallest power of two >= @p n (and >= 2). */
std::size_t
nextPow2(std::size_t n)
{
    std::size_t p = 2;
    while (p < n)
        p <<= 1;
    return p;
}

Operand &
operandOf(SuEntry &entry, unsigned op)
{
    return op ? entry.src2 : entry.src1;
}

} // namespace

SchedulingUnit::SchedulingUnit(unsigned num_blocks, unsigned block_size,
                               unsigned num_threads,
                               unsigned regs_per_thread)
    : capacityBlocks(num_blocks),
      blockSize(block_size),
      numThreads(num_threads),
      regsPerThread(regs_per_thread)
{
    sdsp_assert(num_blocks >= 1, "SU needs at least one block");
    sdsp_assert(block_size >= 1, "block size must be positive");
    sdsp_assert(num_threads >= 1, "SU needs at least one thread");
    sdsp_assert(regs_per_thread >= 1,
                "SU needs at least one register per thread");

    blocks.reserve(capacityBlocks);
    entryPool.reserve(capacityBlocks + 2);

    // Load factor stays below 1/4 with all entries resident, so
    // probe chains are short and the map never grows during a run.
    std::size_t slots = nextPow2(
        std::max<std::size_t>(64, 4ull * num_blocks * block_size));
    tagSlots.resize(slots);
    tagMask = slots - 1;

    writers.resize(static_cast<std::size_t>(num_threads) *
                   regs_per_thread);
    // A single (thread, register) list is bounded by the window, so
    // pre-reserving makes every later push_back allocation-free.
    for (auto &list : writers)
        list.reserve(static_cast<std::size_t>(num_blocks) * block_size);
    unbufferedStores.resize(num_threads);
    for (auto &list : unbufferedStores)
        list.reserve(static_cast<std::size_t>(num_blocks) * block_size);

    validPerThread.assign(num_threads, 0);
    pendingPerThread.assign(num_threads, 0);
}

// --------------------------------------------------------------------
// Tag map
// --------------------------------------------------------------------

SchedulingUnit::TagSlot *
SchedulingUnit::findSlot(Tag seq)
{
    std::size_t i = homeSlot(seq);
    while (tagSlots[i].used) {
        if (tagSlots[i].seq == seq)
            return &tagSlots[i];
        i = (i + 1) & tagMask;
    }
    return nullptr;
}

const SchedulingUnit::TagSlot *
SchedulingUnit::findSlot(Tag seq) const
{
    return const_cast<SchedulingUnit *>(this)->findSlot(seq);
}

SchedulingUnit::TagSlot &
SchedulingUnit::insertSlot(Tag seq)
{
    if ((tagCount + 1) * 4 > tagSlots.size())
        growTagMap();
    std::size_t i = homeSlot(seq);
    while (tagSlots[i].used) {
        if (tagSlots[i].seq == seq)
            return tagSlots[i];
        i = (i + 1) & tagMask;
    }
    tagSlots[i].used = true;
    tagSlots[i].seq = seq;
    tagSlots[i].entry = nullptr;
    tagSlots[i].waitHead = {};
    ++tagCount;
    return tagSlots[i];
}

void
SchedulingUnit::eraseSlot(Tag seq)
{
    std::size_t hole = homeSlot(seq);
    for (;;) {
        if (!tagSlots[hole].used)
            return; // not present
        if (tagSlots[hole].seq == seq)
            break;
        hole = (hole + 1) & tagMask;
    }
    --tagCount;
    // Backward-shift deletion: pull displaced successors into the
    // hole so lookups never need tombstones.
    std::size_t j = hole;
    for (;;) {
        tagSlots[hole].used = false;
        tagSlots[hole].entry = nullptr;
        tagSlots[hole].waitHead = {};
        for (;;) {
            j = (j + 1) & tagMask;
            if (!tagSlots[j].used)
                return;
            std::size_t home = homeSlot(tagSlots[j].seq);
            // Slot j may fill the hole iff the hole lies on j's probe
            // path, i.e. home .. j (cyclically) covers the hole.
            if (((j - home) & tagMask) >= ((j - hole) & tagMask)) {
                tagSlots[hole] = tagSlots[j];
                hole = j;
                break;
            }
        }
    }
}

void
SchedulingUnit::growTagMap()
{
    std::vector<TagSlot> old = std::move(tagSlots);
    tagSlots.assign(old.size() * 2, TagSlot{});
    tagMask = tagSlots.size() - 1;
    tagCount = 0;
    for (TagSlot &slot : old) {
        if (!slot.used)
            continue;
        TagSlot &fresh = insertSlot(slot.seq);
        fresh.entry = slot.entry;
        fresh.waitHead = slot.waitHead;
    }
}

// --------------------------------------------------------------------
// Index maintenance
// --------------------------------------------------------------------

void
SchedulingUnit::indexBlock(SuBlock &block)
{
    for (SuEntry &entry : block.entries) {
        if (!entry.valid)
            continue;
        ++validCount;
        sdsp_assert(entry.tid < numThreads,
                    "entry thread beyond SU's thread count");
        ++validPerThread[entry.tid];
        if (entry.state != EntryState::Done)
            ++pendingPerThread[entry.tid];
        if (entry.state == EntryState::Ready)
            ++readyCount;

        insertSlot(entry.seq).entry = &entry;

        if (entry.inst.writesRd()) {
            sdsp_assert(entry.inst.rd < regsPerThread,
                        "entry register beyond SU's partition");
            std::vector<WriterRec> &list =
                writers[writerIndex(entry.tid, entry.inst.rd)];
            sdsp_assert(list.empty() || list.back().seq < entry.seq,
                        "dispatch out of tag order");
            list.push_back({entry.seq, &entry});
        }

        if (entry.inst.isStore() && !entry.storeBuffered) {
            std::vector<Tag> &list = unbufferedStores[entry.tid];
            sdsp_assert(list.empty() || list.back() < entry.seq,
                        "store dispatch out of tag order");
            list.push_back(entry.seq);
        }

        for (unsigned op = 0; op < 2; ++op) {
            Operand &operand = operandOf(entry, op);
            entry.nextWaiter[op] = {};
            if (operand.ready)
                continue;
            sdsp_assert(operand.tag != kNoTag,
                        "waiting operand without a tag");
            TagSlot &producer = insertSlot(operand.tag);
            entry.nextWaiter[op] = producer.waitHead;
            producer.waitHead = {&entry,
                                 static_cast<std::uint8_t>(op)};
        }
    }
}

void
SchedulingUnit::unlinkWaiter(Tag tag, const SuEntry &entry, unsigned op)
{
    TagSlot *slot = findSlot(tag);
    if (!slot)
        return; // producer already removed in the same squash pass
    OperandRef *link = &slot->waitHead;
    while (link->entry) {
        if (link->entry == &entry && link->op == op) {
            *link = entry.nextWaiter[op];
            return;
        }
        link = &link->entry->nextWaiter[link->op];
    }
}

void
SchedulingUnit::unindexEntry(SuEntry &entry)
{
    --validCount;
    --validPerThread[entry.tid];
    if (entry.state != EntryState::Done)
        --pendingPerThread[entry.tid];
    if (entry.state == EntryState::Ready && readyCount > 0)
        --readyCount;
    eraseSlot(entry.seq);

    if (entry.inst.writesRd()) {
        std::vector<WriterRec> &list =
            writers[writerIndex(entry.tid, entry.inst.rd)];
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (it->seq == entry.seq) {
                list.erase(it);
                break;
            }
        }
    }

    if (entry.inst.isStore() && !entry.storeBuffered) {
        std::vector<Tag> &list = unbufferedStores[entry.tid];
        auto it = std::lower_bound(list.begin(), list.end(), entry.seq);
        if (it != list.end() && *it == entry.seq)
            list.erase(it);
    }

    // A removed entry may still be waiting (tests remove arbitrary
    // blocks); detach it from its producers' chains.
    for (unsigned op = 0; op < 2; ++op) {
        Operand &operand = operandOf(entry, op);
        if (!operand.ready)
            unlinkWaiter(operand.tag, entry, op);
        entry.nextWaiter[op] = {};
    }
}

// --------------------------------------------------------------------
// Block storage pool
// --------------------------------------------------------------------

SuBlock
SchedulingUnit::acquireBlock()
{
    SuBlock block;
    if (!entryPool.empty()) {
        block.entries = std::move(entryPool.back());
        entryPool.pop_back();
        block.entries.clear();
    }
    block.entries.reserve(blockSize);
    return block;
}

void
SchedulingUnit::recycleBlock(SuBlock &&block)
{
    recycleEntries(std::move(block.entries));
}

void
SchedulingUnit::recycleEntries(std::vector<SuEntry> &&entries)
{
    if (entryPool.size() < entryPool.capacity()) {
        entries.clear();
        entryPool.push_back(std::move(entries));
    }
}

// --------------------------------------------------------------------
// Architectural operations
// --------------------------------------------------------------------

void
SchedulingUnit::dispatch(SuBlock block)
{
    sdsp_assert(hasSpace(), "dispatch into a full SU");
    sdsp_assert(block.entries.size() <= blockSize,
                "oversized block dispatched");
    blocks.push_back(std::move(block));
    // blocks was reserved to capacityBlocks, so entry addresses are
    // stable from here until the entry leaves the window.
    indexBlock(blocks.back());
}

SuBlock &
SchedulingUnit::beginDispatch(ThreadId tid, Tag block_seq)
{
    sdsp_assert(hasSpace(), "dispatch into a full SU");
    blocks.emplace_back();
    SuBlock &block = blocks.back();
    if (!entryPool.empty()) {
        block.entries = std::move(entryPool.back());
        entryPool.pop_back();
        block.entries.clear();
    }
    block.entries.reserve(blockSize);
    block.tid = tid;
    block.blockSeq = block_seq;
    return block;
}

void
SchedulingUnit::finishDispatch()
{
    sdsp_assert(!blocks.empty(),
                "finishDispatch without beginDispatch");
    sdsp_assert(blocks.back().entries.size() <= blockSize,
                "oversized block dispatched");
    indexBlock(blocks.back());
}

const SuEntry *
SchedulingUnit::findNewestWriter(ThreadId tid, RegIndex reg) const
{
    sdsp_assert(tid < numThreads && reg < regsPerThread,
                "operand lookup outside the SU's partition");
    const std::vector<WriterRec> &list =
        writers[writerIndex(tid, reg)];
    return list.empty() ? nullptr : list.back().entry;
}

SuEntry *
SchedulingUnit::findBySeq(Tag seq)
{
    TagSlot *slot = findSlot(seq);
    return slot ? slot->entry : nullptr;
}

void
SchedulingUnit::broadcast(Tag seq, RegVal value, Cycle now,
                          bool bypassing)
{
    TagSlot *slot = findSlot(seq);
    if (!slot)
        return;

    Cycle earliest = bypassing ? now : now + 1;
    bool placeholder = slot->entry == nullptr;
    OperandRef waiter = slot->waitHead;
    slot->waitHead = {};

    while (waiter.entry) {
        SuEntry &entry = *waiter.entry;
        Operand &operand = operandOf(entry, waiter.op);
        OperandRef next = entry.nextWaiter[waiter.op];
        entry.nextWaiter[waiter.op] = {};
        waiter = next;

        if (!entry.valid || entry.state != EntryState::Waiting ||
            operand.ready || operand.tag != seq) {
            continue;
        }
        operand.ready = true;
        operand.value = value;
        if (entry.operandsReady()) {
            entry.state = EntryState::Ready;
            ++readyCount;
            entry.earliestIssue =
                std::max(entry.earliestIssue, earliest);
            entry.readyAt = now;
            entry.wakeupTag = seq;
        }
    }

    // A placeholder slot (no resident producer) exists only to hold
    // its chain; reclaim it once the chain drains.
    if (placeholder)
        eraseSlot(seq);
}

unsigned
SchedulingUnit::squashThread(ThreadId tid, Tag after,
                             std::vector<Tag> *squashed_seqs)
{
    if (squashed_seqs)
        squashed_seqs->reserve(squashed_seqs->size() + validCount);

    unsigned squashed = 0;
    for (auto &block : blocks) {
        if (block.tid != tid)
            continue;
        for (auto &entry : block.entries) {
            if (!entry.valid || entry.seq <= after)
                continue;
            entry.valid = false;
            --validCount;
            --validPerThread[tid];
            if (entry.state != EntryState::Done)
                --pendingPerThread[tid];
            if (entry.state == EntryState::Ready && readyCount > 0)
                --readyCount;
            ++squashed;
            if (squashed_seqs)
                squashed_seqs->push_back(entry.seq);

            // Purge the squashed tag from every index: the writer
            // table (squash removes a per-register suffix, since all
            // younger same-thread writers die with it), ...
            if (entry.inst.writesRd()) {
                std::vector<WriterRec> &list =
                    writers[writerIndex(tid, entry.inst.rd)];
                while (!list.empty() && list.back().seq > after)
                    list.pop_back();
            }
            // ... the unbuffered-store list (same suffix argument),
            if (entry.inst.isStore() && !entry.storeBuffered) {
                std::vector<Tag> &list = unbufferedStores[tid];
                while (!list.empty() && list.back() > after)
                    list.pop_back();
            }
            // ... the waiter chains it sits in, and the tag map.
            for (unsigned op = 0; op < 2; ++op) {
                Operand &operand = operandOf(entry, op);
                if (!operand.ready)
                    unlinkWaiter(operand.tag, entry, op);
                entry.nextWaiter[op] = {};
            }

            // Retire the squashed entry's own tag slot. Its waiter
            // chain can still hold consumers dying in this same pass
            // (same-thread younger entries, visited later) — prune
            // those now. Any survivor keeps the slot alive as a
            // placeholder so a later broadcast of the (now stale) tag
            // still reaches it, exactly as the scan-based SU would.
            TagSlot *slot = findSlot(entry.seq);
            sdsp_assert(slot && slot->entry == &entry,
                        "squashed entry missing from the tag map");
            OperandRef *link = &slot->waitHead;
            while (link->entry) {
                SuEntry &waiter = *link->entry;
                if (!waiter.valid ||
                    (waiter.tid == tid && waiter.seq > after)) {
                    OperandRef next = waiter.nextWaiter[link->op];
                    waiter.nextWaiter[link->op] = {};
                    *link = next;
                } else {
                    link = &waiter.nextWaiter[link->op];
                }
            }
            if (slot->waitHead.entry)
                slot->entry = nullptr; // placeholder for survivors
            else
                eraseSlot(entry.seq);
        }
    }

    // Drop fully squashed blocks (recycling their entry storage).
    for (auto it = blocks.begin(); it != blocks.end();) {
        if (it->tid == tid && it->blockSeq > after && !it->anyValid()) {
            recycleEntries(std::move(it->entries));
            it = blocks.erase(it);
        } else {
            ++it;
        }
    }
    return squashed;
}

CommitSelection
SchedulingUnit::selectCommit(unsigned window_blocks) const
{
    std::size_t window = std::min<std::size_t>(window_blocks,
                                               blocks.size());
    // Single bottom-up pass: a complete block commits iff no
    // incomplete block strictly below belongs to the same thread
    // (paper section 3.5), so it suffices to carry the set of
    // threads with an incomplete block seen so far.
    if (numThreads <= 64) {
        std::uint64_t incomplete_tids = 0;
        for (std::size_t i = 0; i < window; ++i) {
            const SuBlock &candidate = blocks[i];
            if (candidate.complete()) {
                if (!((incomplete_tids >> candidate.tid) & 1))
                    return {true, i};
            } else {
                incomplete_tids |= std::uint64_t{1} << candidate.tid;
            }
        }
        return {false, 0};
    }
    // Arbitrary thread counts (direct SU use): quadratic rescan.
    for (std::size_t i = 0; i < window; ++i) {
        const SuBlock &candidate = blocks[i];
        if (!candidate.complete())
            continue;
        bool blocked = false;
        for (std::size_t j = 0; j < i; ++j) {
            if (!blocks[j].complete() && blocks[j].tid == candidate.tid) {
                blocked = true;
                break;
            }
        }
        if (!blocked)
            return {true, i};
    }
    return {false, 0};
}

SuBlock
SchedulingUnit::removeBlock(std::size_t block_index)
{
    sdsp_assert(block_index < blocks.size(),
                "removeBlock index out of range");
    SuBlock block = std::move(blocks[block_index]);
    blocks.erase(blocks.begin() +
                 static_cast<std::ptrdiff_t>(block_index));
    for (SuEntry &entry : block.entries) {
        if (entry.valid)
            unindexEntry(entry);
    }
    return block;
}

void
SchedulingUnit::markStoreBuffered(SuEntry &entry)
{
    sdsp_assert(entry.inst.isStore(),
                "markStoreBuffered on a non-store");
    if (entry.storeBuffered)
        return;
    entry.storeBuffered = true;
    std::vector<Tag> &list = unbufferedStores[entry.tid];
    auto it = std::lower_bound(list.begin(), list.end(), entry.seq);
    sdsp_assert(it != list.end() && *it == entry.seq,
                "buffered store missing from the disambiguation list");
    list.erase(it);
}

} // namespace sdsp

#include "core/su.hh"

#include "common/logging.hh"

namespace sdsp
{

SchedulingUnit::SchedulingUnit(unsigned num_blocks, unsigned block_size)
    : capacityBlocks(num_blocks), blockSize(block_size)
{
    sdsp_assert(num_blocks >= 1, "SU needs at least one block");
    sdsp_assert(block_size >= 1, "block size must be positive");
}

unsigned
SchedulingUnit::occupancy() const
{
    unsigned count = 0;
    for (const auto &block : blocks) {
        for (const auto &entry : block.entries) {
            if (entry.valid)
                ++count;
        }
    }
    return count;
}

void
SchedulingUnit::dispatch(SuBlock block)
{
    sdsp_assert(hasSpace(), "dispatch into a full SU");
    sdsp_assert(block.entries.size() <= blockSize,
                "oversized block dispatched");
    blocks.push_back(std::move(block));
}

const SuEntry *
SchedulingUnit::findNewestWriter(ThreadId tid, RegIndex reg) const
{
    // Newest first: top block backwards, within a block backwards.
    for (auto bit = blocks.rbegin(); bit != blocks.rend(); ++bit) {
        if (bit->tid != tid)
            continue;
        for (auto eit = bit->entries.rbegin();
             eit != bit->entries.rend(); ++eit) {
            if (eit->valid && eit->inst.writesRd() &&
                eit->inst.rd == reg) {
                return &*eit;
            }
        }
    }
    return nullptr;
}

SuEntry *
SchedulingUnit::findBySeq(Tag seq)
{
    for (auto &block : blocks) {
        if (!block.entries.empty() && block.blockSeq > seq)
            continue;
        for (auto &entry : block.entries) {
            if (entry.valid && entry.seq == seq)
                return &entry;
        }
    }
    return nullptr;
}

void
SchedulingUnit::broadcast(Tag seq, RegVal value, Cycle now,
                          bool bypassing)
{
    Cycle earliest = bypassing ? now : now + 1;
    for (auto &block : blocks) {
        for (auto &entry : block.entries) {
            if (!entry.valid || entry.state != EntryState::Waiting)
                continue;
            bool woke = false;
            if (!entry.src1.ready && entry.src1.tag == seq) {
                entry.src1.ready = true;
                entry.src1.value = value;
                woke = true;
            }
            if (!entry.src2.ready && entry.src2.tag == seq) {
                entry.src2.ready = true;
                entry.src2.value = value;
                woke = true;
            }
            if (woke && entry.operandsReady()) {
                entry.state = EntryState::Ready;
                entry.earliestIssue =
                    std::max(entry.earliestIssue, earliest);
            }
        }
    }
}

unsigned
SchedulingUnit::squashThread(ThreadId tid, Tag after,
                             std::vector<Tag> *squashed_seqs)
{
    unsigned squashed = 0;
    for (auto &block : blocks) {
        if (block.tid != tid)
            continue;
        for (auto &entry : block.entries) {
            if (entry.valid && entry.seq > after) {
                entry.valid = false;
                ++squashed;
                if (squashed_seqs)
                    squashed_seqs->push_back(entry.seq);
            }
        }
    }
    // Drop fully squashed blocks from the top (younger blocks of this
    // thread are contiguous at the top only logically, so scan all).
    for (auto it = blocks.begin(); it != blocks.end();) {
        if (it->tid == tid && !it->anyValid() && it->blockSeq > after)
            it = blocks.erase(it);
        else
            ++it;
    }
    return squashed;
}

CommitSelection
SchedulingUnit::selectCommit(unsigned window_blocks) const
{
    std::size_t window = std::min<std::size_t>(window_blocks,
                                               blocks.size());
    for (std::size_t i = 0; i < window; ++i) {
        const SuBlock &candidate = blocks[i];
        if (!candidate.complete())
            continue;
        // Every incomplete block strictly below must belong to a
        // different thread (paper section 3.5).
        bool blocked = false;
        for (std::size_t j = 0; j < i; ++j) {
            if (!blocks[j].complete() && blocks[j].tid == candidate.tid) {
                blocked = true;
                break;
            }
        }
        if (!blocked)
            return {true, i};
    }
    return {false, 0};
}

SuBlock
SchedulingUnit::removeBlock(std::size_t block_index)
{
    sdsp_assert(block_index < blocks.size(),
                "removeBlock index out of range");
    SuBlock block = std::move(blocks[block_index]);
    blocks.erase(blocks.begin() +
                 static_cast<std::ptrdiff_t>(block_index));
    return block;
}

bool
SchedulingUnit::hasOlderUnbufferedStore(Tag seq) const
{
    for (const auto &block : blocks) {
        if (block.blockSeq > seq)
            continue;
        for (const auto &entry : block.entries) {
            if (entry.valid && entry.seq < seq &&
                entry.inst.isStore() && !entry.storeBuffered) {
                return true;
            }
        }
    }
    return false;
}

bool
SchedulingUnit::hasOlderUnresolvedStore(ThreadId tid, Tag load_seq) const
{
    for (const auto &block : blocks) {
        if (block.tid != tid || block.blockSeq > load_seq)
            continue;
        for (const auto &entry : block.entries) {
            if (entry.valid && entry.seq < load_seq &&
                entry.inst.isStore() && !entry.storeBuffered) {
                return true;
            }
        }
    }
    return false;
}

void
SchedulingUnit::forEachOldestFirst(
    const std::function<bool(SuEntry &)> &visit)
{
    for (auto &block : blocks) {
        for (auto &entry : block.entries) {
            if (!entry.valid)
                continue;
            if (!visit(entry))
                return;
        }
    }
}

} // namespace sdsp

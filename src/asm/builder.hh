/**
 * @file
 * Programmatic assembler ("program builder").
 *
 * The paper compiled its eleven C benchmarks with the SDSP tool chain;
 * this repository's substitute is a builder API with labels, fix-ups, a
 * data section and pseudo-instructions, used by the workload generators
 * (src/workloads) and by the text assembler (assembler.hh).
 *
 * The builder also implements the code-layout optimization the paper
 * proposes in section 6.1: padding so that branch targets start a
 * fetch block and/or control transfers end one, which maximizes the
 * number of valid instructions per fetched block.
 */

#ifndef SDSP_ASM_BUILDER_HH
#define SDSP_ASM_BUILDER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace sdsp
{

/** Code-layout options applied by ProgramBuilder::finish(). */
struct LayoutOptions
{
    /**
     * Pad with NOPs so every label that is used as a control-transfer
     * target begins a 4-instruction fetch block (paper section 6.1,
     * item 2, first half).
     */
    bool alignTargetsToBlocks = false;

    /**
     * Pad with NOPs so every control-transfer instruction is the last
     * slot of its fetch block (section 6.1, item 2, second half).
     */
    bool alignBranchesToBlockEnd = false;
};

/**
 * Builds a Program: code with symbolic labels, plus a named data
 * section. All emit methods append one instruction and return the
 * builder for chaining.
 */
class ProgramBuilder
{
  public:
    ProgramBuilder();

    // ---- Labels and raw emission ----

    /** Define @p name at the current code position. */
    ProgramBuilder &label(const std::string &name);

    /**
     * Tag instructions emitted from here on with 1-based source line
     * @p line (0 = unknown). The text assembler calls this per
     * statement so lint findings can point at the .s line.
     */
    ProgramBuilder &atLine(int line);

    /** Append a fully formed instruction. */
    ProgramBuilder &emit(const Instruction &inst);

    /** Append a control transfer whose target is a label. */
    ProgramBuilder &emitToLabel(const Instruction &inst,
                                const std::string &target);

    // ---- Integer ALU ----

    ProgramBuilder &nop();
    ProgramBuilder &spin();
    ProgramBuilder &add(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &sub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &and_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &or_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &xor_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &sll(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &srl(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &sra(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &slt(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &sltu(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &addi(RegIndex rd, RegIndex rs1, std::int32_t imm);
    ProgramBuilder &andi(RegIndex rd, RegIndex rs1, std::int32_t imm);
    ProgramBuilder &ori(RegIndex rd, RegIndex rs1, std::int32_t imm);
    ProgramBuilder &xori(RegIndex rd, RegIndex rs1, std::int32_t imm);
    ProgramBuilder &slti(RegIndex rd, RegIndex rs1, std::int32_t imm);
    ProgramBuilder &slli(RegIndex rd, RegIndex rs1, std::int32_t imm);
    ProgramBuilder &srli(RegIndex rd, RegIndex rs1, std::int32_t imm);
    ProgramBuilder &srai(RegIndex rd, RegIndex rs1, std::int32_t imm);
    ProgramBuilder &ldi(RegIndex rd, std::int32_t imm);
    ProgramBuilder &lui(RegIndex rd, std::int32_t imm);
    ProgramBuilder &tid(RegIndex rd);
    ProgramBuilder &nth(RegIndex rd);

    // ---- Multiply / divide ----

    ProgramBuilder &mul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &div(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &rem(RegIndex rd, RegIndex rs1, RegIndex rs2);

    // ---- Memory ----

    /** rd = mem64[rs(base) + imm] */
    ProgramBuilder &ld(RegIndex rd, std::int32_t imm, RegIndex base);
    /** mem64[rs(base) + imm] = rv */
    ProgramBuilder &st(RegIndex rv, std::int32_t imm, RegIndex base);

    // ---- Control transfer ----

    ProgramBuilder &beq(RegIndex rs1, RegIndex rs2,
                        const std::string &target);
    ProgramBuilder &bne(RegIndex rs1, RegIndex rs2,
                        const std::string &target);
    ProgramBuilder &blt(RegIndex rs1, RegIndex rs2,
                        const std::string &target);
    ProgramBuilder &bge(RegIndex rs1, RegIndex rs2,
                        const std::string &target);
    ProgramBuilder &j(const std::string &target);
    ProgramBuilder &jal(RegIndex rd, const std::string &target);
    ProgramBuilder &jr(RegIndex rs1);
    ProgramBuilder &halt();

    // ---- Floating point ----

    ProgramBuilder &fadd(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &fsub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &fmul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &fdiv(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &fsqrt(RegIndex rd, RegIndex rs1);
    ProgramBuilder &fneg(RegIndex rd, RegIndex rs1);
    ProgramBuilder &fabs_(RegIndex rd, RegIndex rs1);
    ProgramBuilder &fcmplt(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &fcmple(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &fcmpeq(RegIndex rd, RegIndex rs1, RegIndex rs2);
    ProgramBuilder &cvtif(RegIndex rd, RegIndex rs1);
    ProgramBuilder &cvtfi(RegIndex rd, RegIndex rs1);

    // ---- Pseudo-instructions ----

    /**
     * Load an arbitrary non-negative constant up to 27 bits (or any
     * 10-bit signed constant) into @p rd. Expands to LDI or LUI+ORI.
     */
    ProgramBuilder &li(RegIndex rd, std::int64_t value);

    /** Load the address of data symbol @p name into @p rd. */
    ProgramBuilder &la(RegIndex rd, const std::string &name);

    /** rd = rs (expands to ORI rd, rs, 0). */
    ProgramBuilder &mov(RegIndex rd, RegIndex rs);

    // ---- Data section ----

    /** Reserve one 8-byte word named @p name with initial @p value. */
    Addr dword(const std::string &name, std::uint64_t value = 0);

    /** Reserve one 8-byte double named @p name. */
    Addr dvalue(const std::string &name, double value);

    /**
     * Reserve @p count zero-initialized 8-byte words named @p name.
     * @return The address of the first word.
     */
    Addr array(const std::string &name, std::uint32_t count);

    /** Reserve an array of doubles with explicit initial values. */
    Addr arrayOf(const std::string &name,
                 const std::vector<double> &values);

    /** Reserve an array of 64-bit words with explicit values. */
    Addr arrayOfWords(const std::string &name,
                      const std::vector<std::uint64_t> &values);

    /** Address of a previously defined data symbol. */
    Addr dataAddress(const std::string &name) const;

    /** Current end of the data section (the next symbol's address). */
    Addr
    dataCursor() const
    {
        return static_cast<Addr>(data.size());
    }

    /** True if a data symbol of this name exists. */
    bool hasDataSymbol(const std::string &name) const;

    // ---- Introspection ----

    /** Instructions emitted so far (next instruction's index). */
    InstAddr here() const;

    /** Highest register index named so far (for budget checks). */
    unsigned maxRegisterUsed() const { return maxReg; }

    /** True if a code label of this name is defined. */
    bool hasLabel(const std::string &name) const;

    /**
     * Source line of each emitted instruction (0 = untagged). After
     * finish() this is parallel to Program::code: layout padding
     * carries line 0.
     */
    const std::vector<int> &sourceLines() const { return lines; }

    // ---- Finalization ----

    /**
     * Resolve fix-ups, apply layout options, encode, and produce the
     * image. @p extra_memory bytes of zeroed scratch are appended
     * after the data section. Fatal on undefined labels or overflowing
     * branch offsets.
     */
    Program finish(std::uint32_t extra_memory = 0,
                   const LayoutOptions &layout = {});

  private:
    struct Fixup
    {
        std::size_t index;  //!< instruction list position
        std::string label;
    };

    void applyLayout(const LayoutOptions &layout);
    void insertNops(std::size_t position, unsigned count);
    void noteRegs(const Instruction &inst);

    std::vector<Instruction> insts;
    std::vector<int> lines;
    int currentLine = 0;
    std::vector<Fixup> fixups;
    std::map<std::string, std::size_t> labels;
    std::vector<std::uint8_t> data;
    std::map<std::string, Addr> dataSymbols;
    unsigned maxReg = 0;
    bool finished = false;
};

} // namespace sdsp

#endif // SDSP_ASM_BUILDER_HH

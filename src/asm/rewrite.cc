#include "asm/rewrite.hh"

#include <string>

#include "common/logging.hh"

namespace sdsp
{

Program
realignProgram(const Program &program, const LayoutOptions &layout)
{
    ProgramBuilder b;

    auto label_of = [](std::size_t index) {
        return "L" + std::to_string(index);
    };

    for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
        Instruction inst = Instruction::decode(program.code[pc]);
        b.label(label_of(pc));

        if (inst.isIndirectJump() ||
            (inst.isDirectJump() && inst.writesRd())) {
            fatal("realignProgram: instruction %zu (%s) stores or "
                  "consumes a code address; moving code would break it",
                  pc, inst.toString().c_str());
        }

        if (inst.isCondBranch() || inst.isDirectJump()) {
            InstAddr target =
                inst.staticTarget(static_cast<InstAddr>(pc));
            sdsp_assert(target <= program.code.size(),
                        "control transfer to %u outside program",
                        target);
            Instruction symbolic = inst;
            symbolic.imm = 0;
            b.emitToLabel(symbolic, label_of(target));
        } else {
            b.emit(inst);
        }
    }
    // A branch may target one past the last instruction.
    b.label(label_of(program.code.size()));

    Program out = b.finish(0, layout);
    out.data = program.data;
    out.memorySize = program.memorySize;
    out.entry = program.entry; // entry 0 stays 0 under padding
    sdsp_assert(program.entry == 0,
                "realignProgram assumes entry at instruction 0");
    return out;
}

} // namespace sdsp

#include "asm/builder.hh"

#include <algorithm>
#include <cstring>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace sdsp
{

ProgramBuilder::ProgramBuilder() = default;

void
ProgramBuilder::noteRegs(const Instruction &inst)
{
    const OpInfo &oi = inst.info();
    if (oi.flags & kWritesRd)
        maxReg = std::max<unsigned>(maxReg, inst.rd);
    if (oi.flags & kReadsRs1)
        maxReg = std::max<unsigned>(maxReg, inst.rs1);
    if (oi.flags & kReadsRs2)
        maxReg = std::max<unsigned>(maxReg, inst.rs2);
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    sdsp_assert(!finished, "label() after finish()");
    auto [it, inserted] = labels.emplace(name, insts.size());
    (void)it;
    if (!inserted)
        fatal("duplicate code label '%s'", name.c_str());
    return *this;
}

ProgramBuilder &
ProgramBuilder::atLine(int line)
{
    currentLine = line;
    return *this;
}

ProgramBuilder &
ProgramBuilder::emit(const Instruction &inst)
{
    sdsp_assert(!finished, "emit() after finish()");
    noteRegs(inst);
    insts.push_back(inst);
    lines.push_back(currentLine);
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitToLabel(const Instruction &inst,
                            const std::string &target)
{
    emit(inst);
    fixups.push_back({insts.size() - 1, target});
    return *this;
}

// ---- Integer ALU ----

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit(Instruction::makeR(Opcode::NOP, 0, 0, 0));
}

ProgramBuilder &
ProgramBuilder::spin()
{
    return emit(Instruction::makeR(Opcode::SPIN, 0, 0, 0));
}

#define SDSP_BUILDER_R3(method, OP)                                        \
    ProgramBuilder &ProgramBuilder::method(RegIndex rd, RegIndex rs1,      \
                                           RegIndex rs2)                   \
    {                                                                      \
        return emit(Instruction::makeR(Opcode::OP, rd, rs1, rs2));         \
    }

SDSP_BUILDER_R3(add, ADD)
SDSP_BUILDER_R3(sub, SUB)
SDSP_BUILDER_R3(and_, AND)
SDSP_BUILDER_R3(or_, OR)
SDSP_BUILDER_R3(xor_, XOR)
SDSP_BUILDER_R3(sll, SLL)
SDSP_BUILDER_R3(srl, SRL)
SDSP_BUILDER_R3(sra, SRA)
SDSP_BUILDER_R3(slt, SLT)
SDSP_BUILDER_R3(sltu, SLTU)
SDSP_BUILDER_R3(mul, MUL)
SDSP_BUILDER_R3(div, DIV)
SDSP_BUILDER_R3(rem, REM)
SDSP_BUILDER_R3(fadd, FADD)
SDSP_BUILDER_R3(fsub, FSUB)
SDSP_BUILDER_R3(fmul, FMUL)
SDSP_BUILDER_R3(fdiv, FDIV)
SDSP_BUILDER_R3(fcmplt, FCMPLT)
SDSP_BUILDER_R3(fcmple, FCMPLE)
SDSP_BUILDER_R3(fcmpeq, FCMPEQ)

#undef SDSP_BUILDER_R3

#define SDSP_BUILDER_R2(method, OP)                                        \
    ProgramBuilder &ProgramBuilder::method(RegIndex rd, RegIndex rs1)      \
    {                                                                      \
        return emit(Instruction::makeR(Opcode::OP, rd, rs1, 0));           \
    }

SDSP_BUILDER_R2(fsqrt, FSQRT)
SDSP_BUILDER_R2(fneg, FNEG)
SDSP_BUILDER_R2(fabs_, FABS)
SDSP_BUILDER_R2(cvtif, CVTIF)
SDSP_BUILDER_R2(cvtfi, CVTFI)

#undef SDSP_BUILDER_R2

#define SDSP_BUILDER_I(method, OP)                                         \
    ProgramBuilder &ProgramBuilder::method(RegIndex rd, RegIndex rs1,      \
                                           std::int32_t imm)               \
    {                                                                      \
        return emit(Instruction::makeI(Opcode::OP, rd, rs1, imm));         \
    }

SDSP_BUILDER_I(addi, ADDI)
SDSP_BUILDER_I(andi, ANDI)
SDSP_BUILDER_I(ori, ORI)
SDSP_BUILDER_I(xori, XORI)
SDSP_BUILDER_I(slti, SLTI)
SDSP_BUILDER_I(slli, SLLI)
SDSP_BUILDER_I(srli, SRLI)
SDSP_BUILDER_I(srai, SRAI)

#undef SDSP_BUILDER_I

ProgramBuilder &
ProgramBuilder::ldi(RegIndex rd, std::int32_t imm)
{
    return emit(Instruction::makeI(Opcode::LDI, rd, 0, imm));
}

ProgramBuilder &
ProgramBuilder::lui(RegIndex rd, std::int32_t imm)
{
    return emit(Instruction::makeJ(Opcode::LUI, rd, imm));
}

ProgramBuilder &
ProgramBuilder::tid(RegIndex rd)
{
    return emit(Instruction::makeR(Opcode::TID, rd, 0, 0));
}

ProgramBuilder &
ProgramBuilder::nth(RegIndex rd)
{
    return emit(Instruction::makeR(Opcode::NTH, rd, 0, 0));
}

// ---- Memory ----

ProgramBuilder &
ProgramBuilder::ld(RegIndex rd, std::int32_t imm, RegIndex base)
{
    return emit(Instruction::makeI(Opcode::LD, rd, base, imm));
}

ProgramBuilder &
ProgramBuilder::st(RegIndex rv, std::int32_t imm, RegIndex base)
{
    return emit(Instruction::makeB(Opcode::ST, base, rv, imm));
}

// ---- Control transfer ----

#define SDSP_BUILDER_BR(method, OP)                                        \
    ProgramBuilder &ProgramBuilder::method(RegIndex rs1, RegIndex rs2,     \
                                           const std::string &target)      \
    {                                                                      \
        return emitToLabel(Instruction::makeB(Opcode::OP, rs1, rs2, 0),    \
                           target);                                        \
    }

SDSP_BUILDER_BR(beq, BEQ)
SDSP_BUILDER_BR(bne, BNE)
SDSP_BUILDER_BR(blt, BLT)
SDSP_BUILDER_BR(bge, BGE)

#undef SDSP_BUILDER_BR

ProgramBuilder &
ProgramBuilder::j(const std::string &target)
{
    return emitToLabel(Instruction::makeJ(Opcode::J, 0, 0), target);
}

ProgramBuilder &
ProgramBuilder::jal(RegIndex rd, const std::string &target)
{
    return emitToLabel(Instruction::makeJ(Opcode::JAL, rd, 0), target);
}

ProgramBuilder &
ProgramBuilder::jr(RegIndex rs1)
{
    return emit(Instruction::makeR(Opcode::JR, 0, rs1, 0));
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit(Instruction::makeR(Opcode::HALT, 0, 0, 0));
}

// ---- Pseudo-instructions ----

ProgramBuilder &
ProgramBuilder::li(RegIndex rd, std::int64_t value)
{
    if (fitsSigned(value, kImmBits))
        return ldi(rd, static_cast<std::int32_t>(value));
    if (value >= 0 && fitsUnsigned(static_cast<std::uint64_t>(value),
                                   kWideImmBits + kImmBits)) {
        auto uvalue = static_cast<std::uint64_t>(value);
        lui(rd, static_cast<std::int32_t>(uvalue >> kImmBits));
        std::int32_t low = static_cast<std::int32_t>(uvalue & 0x3ff);
        if (low != 0)
            ori(rd, rd, low);
        return *this;
    }
    fatal("li: constant %lld not encodable (use the data section)",
          static_cast<long long>(value));
}

ProgramBuilder &
ProgramBuilder::la(RegIndex rd, const std::string &name)
{
    return li(rd, dataAddress(name));
}

ProgramBuilder &
ProgramBuilder::mov(RegIndex rd, RegIndex rs)
{
    return ori(rd, rs, 0);
}

// ---- Data section ----

Addr
ProgramBuilder::dword(const std::string &name, std::uint64_t value)
{
    return arrayOfWords(name, {value});
}

Addr
ProgramBuilder::dvalue(const std::string &name, double value)
{
    std::uint64_t raw;
    std::memcpy(&raw, &value, 8);
    return arrayOfWords(name, {raw});
}

Addr
ProgramBuilder::array(const std::string &name, std::uint32_t count)
{
    return arrayOfWords(name,
                        std::vector<std::uint64_t>(count, 0));
}

Addr
ProgramBuilder::arrayOf(const std::string &name,
                        const std::vector<double> &values)
{
    std::vector<std::uint64_t> raw(values.size());
    std::memcpy(raw.data(), values.data(), values.size() * 8);
    return arrayOfWords(name, raw);
}

Addr
ProgramBuilder::arrayOfWords(const std::string &name,
                             const std::vector<std::uint64_t> &values)
{
    sdsp_assert(!finished, "data definition after finish()");
    auto addr = static_cast<Addr>(data.size());
    auto [it, inserted] = dataSymbols.emplace(name, addr);
    (void)it;
    if (!inserted)
        fatal("duplicate data symbol '%s'", name.c_str());
    data.resize(data.size() + values.size() * 8);
    std::memcpy(data.data() + addr, values.data(), values.size() * 8);
    return addr;
}

Addr
ProgramBuilder::dataAddress(const std::string &name) const
{
    auto it = dataSymbols.find(name);
    if (it == dataSymbols.end())
        fatal("undefined data symbol '%s'", name.c_str());
    return it->second;
}

bool
ProgramBuilder::hasDataSymbol(const std::string &name) const
{
    return dataSymbols.count(name) != 0;
}

// ---- Introspection ----

InstAddr
ProgramBuilder::here() const
{
    return static_cast<InstAddr>(insts.size());
}

bool
ProgramBuilder::hasLabel(const std::string &name) const
{
    return labels.count(name) != 0;
}

// ---- Finalization ----

void
ProgramBuilder::insertNops(std::size_t position, unsigned count)
{
    if (count == 0)
        return;
    insts.insert(insts.begin() + static_cast<std::ptrdiff_t>(position),
                 count, Instruction::makeR(Opcode::NOP, 0, 0, 0));
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(position),
                 count, 0);
    for (auto &[name, index] : labels) {
        (void)name;
        if (index >= position)
            index += count;
    }
    for (auto &fixup : fixups) {
        if (fixup.index >= position)
            fixup.index += count;
    }
}

void
ProgramBuilder::applyLayout(const LayoutOptions &layout)
{
    constexpr unsigned block = 4;

    if (layout.alignTargetsToBlocks) {
        // Only labels actually used as control-transfer targets are
        // aligned; data-flow labels are left alone.
        std::vector<std::string> target_names;
        for (const auto &fixup : fixups)
            target_names.push_back(fixup.label);
        std::sort(target_names.begin(), target_names.end());
        target_names.erase(
            std::unique(target_names.begin(), target_names.end()),
            target_names.end());

        // Align targets in address order so earlier padding is
        // accounted for when aligning later ones.
        bool changed = true;
        while (changed) {
            changed = false;
            std::size_t best = insts.size() + 1;
            for (const auto &name : target_names) {
                auto it = labels.find(name);
                if (it == labels.end())
                    fatal("undefined label '%s'", name.c_str());
                if (it->second % block != 0)
                    best = std::min(best, it->second);
            }
            if (best <= insts.size()) {
                insertNops(best, block - (best % block));
                changed = true;
            }
        }
    }

    if (layout.alignBranchesToBlockEnd) {
        // Walk forward; every inserted NOP shifts later instructions,
        // so recompute positions as we go.
        for (std::size_t i = 0; i < insts.size(); ++i) {
            if (!insts[i].isControl())
                continue;
            unsigned slot = static_cast<unsigned>(i % block);
            if (slot != block - 1) {
                insertNops(i, block - 1 - slot);
                i += block - 1 - slot;
            }
        }
    }
}

Program
ProgramBuilder::finish(std::uint32_t extra_memory,
                       const LayoutOptions &layout)
{
    sdsp_assert(!finished, "finish() called twice");
    finished = true;

    applyLayout(layout);

    for (const auto &fixup : fixups) {
        auto it = labels.find(fixup.label);
        if (it == labels.end())
            fatal("undefined label '%s'", fixup.label.c_str());
        Instruction &inst = insts[fixup.index];
        auto target = static_cast<std::int64_t>(it->second);
        if (inst.isDirectJump()) {
            inst.imm = static_cast<std::int32_t>(target);
        } else {
            std::int64_t offset =
                target - static_cast<std::int64_t>(fixup.index);
            if (!fitsSigned(offset, kImmBits)) {
                fatal("branch to '%s' out of range (offset %lld)",
                      fixup.label.c_str(),
                      static_cast<long long>(offset));
            }
            inst.imm = static_cast<std::int32_t>(offset);
        }
    }

    Program prog;
    prog.code.reserve(insts.size());
    for (const auto &inst : insts)
        prog.code.push_back(inst.encode());
    prog.data = data;
    prog.memorySize = static_cast<std::uint32_t>(data.size()) +
                      extra_memory;
    // Round up so whole-word accesses at the end stay in bounds.
    prog.memorySize = (prog.memorySize + 7u) & ~7u;
    prog.entry = 0;
    return prog;
}

} // namespace sdsp

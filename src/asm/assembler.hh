/**
 * @file
 * Text assembler for the SDSP-MT ISA.
 *
 * Syntax, one statement per line:
 *
 *     ; comment            # comment
 *     label:
 *         add   r1, r2, r3
 *         addi  r1, r2, -4
 *         ld    r1, 8(r2)
 *         st    r1, 0(r2)
 *         beq   r1, r2, label
 *         j     label
 *         jal   r31, func
 *         li    r1, 100000        ; pseudo: LDI or LUI+ORI
 *         la    r1, buffer        ; pseudo: address of data symbol
 *         mov   r1, r2            ; pseudo: ORI r1, r2, 0
 *         halt
 *
 * Data directives (may appear anywhere; the data section is laid out
 * in order of appearance):
 *
 *     .dword  name 42            ; one 64-bit word
 *     .double name 3.5           ; one IEEE double
 *     .space  name 16            ; n zeroed 64-bit words
 *     .words  name 1 2 3         ; initialized word array
 *
 * Immediates accept decimal and 0x-hex.
 */

#ifndef SDSP_ASM_ASSEMBLER_HH
#define SDSP_ASM_ASSEMBLER_HH

#include <string>

#include "asm/builder.hh"
#include "isa/program.hh"

namespace sdsp
{

/** Result of assembling a source string. */
struct AssemblyResult
{
    Program program;
    /** Highest register index named by the source. */
    unsigned maxRegisterUsed = 0;
    /**
     * 1-based source line of each instruction, parallel to
     * program.code (0 for layout padding). Lets sdsp-lint point
     * findings at the .s line instead of an instruction address.
     */
    std::vector<int> sourceLines;
};

/**
 * Assemble @p source into a program image.
 *
 * @param source       Assembly text.
 * @param extra_memory Zeroed scratch bytes appended after the data
 *                     section.
 * @param layout       Optional code-layout passes.
 * @return The assembled image. Fatal (with line numbers) on any
 *         syntax or range error.
 */
AssemblyResult assemble(const std::string &source,
                        std::uint32_t extra_memory = 0,
                        const LayoutOptions &layout = {});

/** Disassemble an entire program, one instruction per line. */
std::string disassemble(const Program &program);

} // namespace sdsp

#endif // SDSP_ASM_ASSEMBLER_HH

/**
 * @file
 * Binary rewriting: re-lay-out a finished program.
 *
 * The paper's section 6.1 proposes aligning instructions in memory so
 * that control transfers lie at the end of a fetched block and branch
 * targets at the beginning of one. This pass applies that layout to
 * an already-assembled image by reconstructing the instruction stream
 * with symbolic targets and re-running the builder's layout passes —
 * the ablation benches use it to re-lay-out the eleven benchmark
 * programs without touching their generators.
 */

#ifndef SDSP_ASM_REWRITE_HH
#define SDSP_ASM_REWRITE_HH

#include "asm/builder.hh"
#include "isa/program.hh"

namespace sdsp
{

/**
 * Produce a semantically identical program with the requested code
 * layout. The data section is preserved byte-for-byte.
 *
 * Fatal if the program contains JAL or JR: moving code invalidates
 * stored link values, the classic limitation of static binary
 * rewriting.
 */
Program realignProgram(const Program &program,
                       const LayoutOptions &layout);

} // namespace sdsp

#endif // SDSP_ASM_REWRITE_HH

#include "asm/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace sdsp
{

namespace
{

/** One parsed operand. */
struct Operand
{
    enum class Kind { Reg, Imm, Mem, Symbol } kind;
    RegIndex reg = 0;       //!< Reg and Mem (base register)
    std::int64_t imm = 0;   //!< Imm and Mem (offset)
    std::string symbol;     //!< Symbol
};

struct Line
{
    int number;
    std::string mnemonic;
    std::vector<Operand> operands;
};

[[noreturn]] void
syntaxError(int line, const std::string &message)
{
    fatal("assembly error on line %d: %s", line, message.c_str());
}

std::string
stripComment(const std::string &line)
{
    auto pos = line.find_first_of(";#");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
isIdentChar(char ch)
{
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == '.';
}

std::optional<std::int64_t>
parseInt(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    long long value = std::strtoll(text.c_str(), &end, 0);
    if (end != text.c_str() + text.size())
        return std::nullopt;
    return value;
}

std::optional<RegIndex>
parseReg(const std::string &text)
{
    if (text.size() < 2 || (text[0] != 'r' && text[0] != 'R'))
        return std::nullopt;
    auto value = parseInt(text.substr(1));
    if (!value || *value < 0 || *value >= kNumArchRegs)
        return std::nullopt;
    return static_cast<RegIndex>(*value);
}

Operand
parseOperand(const std::string &raw, int line)
{
    std::string text = trim(raw);
    if (text.empty())
        syntaxError(line, "empty operand");

    if (auto reg = parseReg(text))
        return {Operand::Kind::Reg, *reg, 0, {}};

    // imm(rN) memory operand.
    auto open = text.find('(');
    if (open != std::string::npos && text.back() == ')') {
        auto offset = parseInt(trim(text.substr(0, open)));
        auto base = parseReg(
            trim(text.substr(open + 1, text.size() - open - 2)));
        if (!offset || !base)
            syntaxError(line, "malformed memory operand '" + text + "'");
        return {Operand::Kind::Mem, *base, *offset, {}};
    }

    if (auto value = parseInt(text))
        return {Operand::Kind::Imm, 0, *value, {}};

    for (char ch : text) {
        if (!isIdentChar(ch))
            syntaxError(line, "malformed operand '" + text + "'");
    }
    return {Operand::Kind::Symbol, 0, 0, text};
}

/** Find the opcode whose mnemonic matches @p name (lower-cased). */
std::optional<Opcode>
findOpcode(const std::string &name)
{
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
        auto op = static_cast<Opcode>(i);
        std::string mnemonic = opName(op);
        for (char &ch : mnemonic)
            ch = static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        if (mnemonic == name)
            return op;
    }
    return std::nullopt;
}

RegIndex
expectReg(const Line &line, std::size_t index)
{
    if (index >= line.operands.size() ||
        line.operands[index].kind != Operand::Kind::Reg) {
        syntaxError(line.number, "operand " + std::to_string(index + 1) +
                                     " of '" + line.mnemonic +
                                     "' must be a register");
    }
    return line.operands[index].reg;
}

std::int64_t
expectImm(const Line &line, std::size_t index)
{
    if (index >= line.operands.size() ||
        line.operands[index].kind != Operand::Kind::Imm) {
        syntaxError(line.number, "operand " + std::to_string(index + 1) +
                                     " of '" + line.mnemonic +
                                     "' must be an immediate");
    }
    return line.operands[index].imm;
}

const Operand &
expectMem(const Line &line, std::size_t index)
{
    if (index >= line.operands.size() ||
        line.operands[index].kind != Operand::Kind::Mem) {
        syntaxError(line.number, "operand " + std::to_string(index + 1) +
                                     " of '" + line.mnemonic +
                                     "' must be offset(reg)");
    }
    return line.operands[index];
}

std::string
expectSymbol(const Line &line, std::size_t index)
{
    if (index >= line.operands.size() ||
        line.operands[index].kind != Operand::Kind::Symbol) {
        syntaxError(line.number, "operand " + std::to_string(index + 1) +
                                     " of '" + line.mnemonic +
                                     "' must be a label");
    }
    return line.operands[index].symbol;
}

void
expectArity(const Line &line, std::size_t arity)
{
    if (line.operands.size() != arity) {
        syntaxError(line.number,
                    "'" + line.mnemonic + "' expects " +
                        std::to_string(arity) + " operand(s), got " +
                        std::to_string(line.operands.size()));
    }
}

void
emitInstruction(ProgramBuilder &builder, const Line &line, Opcode op)
{
    const OpInfo &oi = opInfo(op);
    Instruction inst;
    inst.op = op;

    switch (oi.format) {
      case Format::R:
        if (op == Opcode::NOP || op == Opcode::SPIN ||
            op == Opcode::HALT) {
            expectArity(line, 0);
        } else if (op == Opcode::TID || op == Opcode::NTH) {
            expectArity(line, 1);
            inst.rd = expectReg(line, 0);
        } else if (op == Opcode::JR) {
            expectArity(line, 1);
            inst.rs1 = expectReg(line, 0);
        } else if (!(oi.flags & kReadsRs2)) {
            expectArity(line, 2);
            inst.rd = expectReg(line, 0);
            inst.rs1 = expectReg(line, 1);
        } else {
            expectArity(line, 3);
            inst.rd = expectReg(line, 0);
            inst.rs1 = expectReg(line, 1);
            inst.rs2 = expectReg(line, 2);
        }
        builder.emit(inst);
        return;
      case Format::I:
        if (op == Opcode::LD) {
            expectArity(line, 2);
            inst.rd = expectReg(line, 0);
            const Operand &mem = expectMem(line, 1);
            inst.rs1 = mem.reg;
            inst.imm = static_cast<std::int32_t>(mem.imm);
        } else if (op == Opcode::LDI) {
            expectArity(line, 2);
            inst.rd = expectReg(line, 0);
            inst.imm = static_cast<std::int32_t>(expectImm(line, 1));
        } else {
            expectArity(line, 3);
            inst.rd = expectReg(line, 0);
            inst.rs1 = expectReg(line, 1);
            inst.imm = static_cast<std::int32_t>(expectImm(line, 2));
        }
        builder.emit(inst);
        return;
      case Format::B:
        if (op == Opcode::ST) {
            expectArity(line, 2);
            inst.rs2 = expectReg(line, 0);
            const Operand &mem = expectMem(line, 1);
            inst.rs1 = mem.reg;
            inst.imm = static_cast<std::int32_t>(mem.imm);
            builder.emit(inst);
        } else {
            expectArity(line, 3);
            inst.rs1 = expectReg(line, 0);
            inst.rs2 = expectReg(line, 1);
            builder.emitToLabel(inst, expectSymbol(line, 2));
        }
        return;
      case Format::J:
        if (op == Opcode::JAL) {
            expectArity(line, 2);
            inst.rd = expectReg(line, 0);
            builder.emitToLabel(inst, expectSymbol(line, 1));
        } else {
            expectArity(line, 1);
            builder.emitToLabel(inst, expectSymbol(line, 0));
        }
        return;
      case Format::U:
        expectArity(line, 2);
        inst.rd = expectReg(line, 0);
        inst.imm = static_cast<std::int32_t>(expectImm(line, 1));
        builder.emit(inst);
        return;
    }
}

void
handleDirective(ProgramBuilder &builder, const Line &line)
{
    auto symbol_and_values = [&](std::size_t min_values) {
        if (line.operands.size() < 1 + min_values)
            syntaxError(line.number,
                        "'" + line.mnemonic + "' needs a name and " +
                            std::to_string(min_values) + "+ value(s)");
        return expectSymbol(line, 0);
    };

    if (line.mnemonic == ".dword") {
        std::string name = symbol_and_values(1);
        builder.dword(name,
                      static_cast<std::uint64_t>(expectImm(line, 1)));
    } else if (line.mnemonic == ".double") {
        std::string name = symbol_and_values(1);
        double value = 0;
        const Operand &operand = line.operands[1];
        if (operand.kind == Operand::Kind::Imm) {
            value = static_cast<double>(operand.imm);
        } else if (operand.kind == Operand::Kind::Symbol) {
            char *end = nullptr;
            value = std::strtod(operand.symbol.c_str(), &end);
            if (end != operand.symbol.c_str() + operand.symbol.size())
                syntaxError(line.number, "malformed double literal");
        } else {
            syntaxError(line.number, "malformed double literal");
        }
        builder.dvalue(name, value);
    } else if (line.mnemonic == ".space") {
        std::string name = symbol_and_values(1);
        auto count = expectImm(line, 1);
        if (count <= 0)
            syntaxError(line.number, ".space count must be positive");
        builder.array(name, static_cast<std::uint32_t>(count));
    } else if (line.mnemonic == ".words") {
        std::string name = symbol_and_values(1);
        std::vector<std::uint64_t> values;
        for (std::size_t i = 1; i < line.operands.size(); ++i)
            values.push_back(
                static_cast<std::uint64_t>(expectImm(line, i)));
        builder.arrayOfWords(name, values);
    } else {
        syntaxError(line.number,
                    "unknown directive '" + line.mnemonic + "'");
    }
}

} // namespace

AssemblyResult
assemble(const std::string &source, std::uint32_t extra_memory,
         const LayoutOptions &layout)
{
    ProgramBuilder builder;
    std::istringstream stream(source);
    std::string raw;
    int line_no = 0;

    // The ".double x 3.5" form tokenizes its value as a symbol or an
    // immediate; everything else splits on commas/whitespace.
    while (std::getline(stream, raw)) {
        ++line_no;
        std::string text = trim(stripComment(raw));
        if (text.empty())
            continue;

        // Labels (possibly several per line, then an instruction).
        while (true) {
            auto colon = text.find(':');
            if (colon == std::string::npos)
                break;
            std::string name = trim(text.substr(0, colon));
            if (name.empty())
                syntaxError(line_no, "empty label");
            for (char ch : name) {
                if (!isIdentChar(ch))
                    syntaxError(line_no,
                                "malformed label '" + name + "'");
            }
            builder.label(name);
            text = trim(text.substr(colon + 1));
        }
        if (text.empty())
            continue;

        Line line;
        line.number = line_no;
        auto space = text.find_first_of(" \t");
        line.mnemonic = text.substr(0, space);
        for (char &ch : line.mnemonic)
            ch = static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        std::string rest =
            space == std::string::npos ? "" : trim(text.substr(space));

        if (!rest.empty()) {
            // Split on commas; fall back to whitespace for
            // directive value lists.
            std::vector<std::string> parts;
            if (rest.find(',') != std::string::npos ||
                line.mnemonic[0] != '.') {
                std::size_t begin = 0;
                while (begin <= rest.size()) {
                    auto comma = rest.find(',', begin);
                    std::string part =
                        comma == std::string::npos
                            ? rest.substr(begin)
                            : rest.substr(begin, comma - begin);
                    parts.push_back(trim(part));
                    if (comma == std::string::npos)
                        break;
                    begin = comma + 1;
                }
            } else {
                std::istringstream words(rest);
                std::string word;
                while (words >> word)
                    parts.push_back(word);
            }
            for (const auto &part : parts)
                line.operands.push_back(parseOperand(part, line_no));
        }

        builder.atLine(line_no);
        if (line.mnemonic[0] == '.') {
            handleDirective(builder, line);
        } else if (line.mnemonic == "li") {
            expectArity(line, 2);
            builder.li(expectReg(line, 0), expectImm(line, 1));
        } else if (line.mnemonic == "la") {
            expectArity(line, 2);
            builder.la(expectReg(line, 0), expectSymbol(line, 1));
        } else if (line.mnemonic == "mov") {
            expectArity(line, 2);
            builder.mov(expectReg(line, 0), expectReg(line, 1));
        } else if (auto op = findOpcode(line.mnemonic)) {
            emitInstruction(builder, line, *op);
        } else {
            syntaxError(line_no,
                        "unknown mnemonic '" + line.mnemonic + "'");
        }
    }

    AssemblyResult result;
    result.maxRegisterUsed = builder.maxRegisterUsed();
    result.program = builder.finish(extra_memory, layout);
    result.sourceLines = builder.sourceLines();
    return result;
}

std::string
disassemble(const Program &program)
{
    std::ostringstream os;
    for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
        Instruction inst = Instruction::decode(program.code[pc]);
        os << format("%5zu:  %s\n", pc, inst.toString().c_str());
    }
    return os.str();
}

} // namespace sdsp

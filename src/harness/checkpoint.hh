/**
 * @file
 * Sweep checkpointing: crash-safe JSONL progress log + resume loader.
 *
 * A long sweep (the 253-point paper grid, or far larger extension
 * grids) must not lose completed work to one crash, OOM kill, or CI
 * timeout. The driver appends one self-contained JSON line per
 * completed job — flushed immediately, so a hard kill loses at most
 * the in-flight jobs — and on --resume the loader replays the file,
 * verifies that each line belongs to the current grid (schema
 * version, suite, scale, and the full config identity key), and
 * hands back the verified results so only the missing points re-run.
 *
 * The stored result object is kept as raw JSON text (see
 * JsonValue::raw) and spliced verbatim into the merged artifact, so
 * a resumed artifact is byte-identical to an uninterrupted one in
 * every deterministic field.
 *
 * Line schema (v1):
 *     {"v":1,"suite":"...","scale":25,"benchmark":"LL1",
 *      "label":"fig05","config_key":"{...}","status":"ok",
 *      "attempts":1,"error":"","result":{...}}
 */

#ifndef SDSP_HARNESS_CHECKPOINT_HH
#define SDSP_HARNESS_CHECKPOINT_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace sdsp
{

/** One reloaded checkpoint line. */
struct CheckpointEntry
{
    std::string benchmark;
    std::string label;
    /** configKey() of the point's MachineConfig — the identity the
     *  resume path verifies against the current grid. */
    std::string configKey;
    /** jobStatusName() at checkpoint time. */
    std::string status;
    std::string error;
    unsigned attempts = 1;
    /** Headline numbers re-parsed for aggregate totals. */
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    /** The result object's exact JSON text, for verbatim splicing. */
    std::string resultRaw;

    bool ok() const { return status == "ok"; }
};

/** Appends one flushed JSONL line per completed job. Thread-safe. */
class CheckpointWriter
{
  public:
    /**
     * Open @p path (append when @p append, else truncate). A failed
     * open leaves the writer disabled (ok() false) — checkpointing
     * degrades to a warning, it never kills the sweep.
     */
    CheckpointWriter(const std::string &path, const std::string &suite,
                     unsigned scale, bool append);

    bool ok() const { return static_cast<bool>(out_); }
    const std::string &path() const { return path_; }

    /** Serialize and append @p outcome; flushes the line. */
    void record(const SweepJob &job, const JobOutcome &outcome);

  private:
    std::mutex mutex_;
    std::ofstream out_;
    std::string path_;
    std::string suite_;
    unsigned scale_;
};

/** What loadCheckpoint() recovered. */
struct CheckpointLog
{
    std::vector<CheckpointEntry> entries;
    std::size_t linesTotal = 0;
    /** Malformed or truncated lines skipped (a hard kill can tear
     *  the final line; that must not poison the resume). */
    std::size_t linesIgnored = 0;
};

/**
 * Reload @p path. Fatal when the file is missing, or when a line's
 * schema version, suite, or scale contradicts the current run —
 * resuming across incompatible grids silently corrupts artifacts.
 * Malformed lines are skipped with a warning.
 */
CheckpointLog loadCheckpoint(const std::string &path,
                             const std::string &suite, unsigned scale);

} // namespace sdsp

#endif // SDSP_HARNESS_CHECKPOINT_HH

/**
 * @file
 * Parallel sweep engine.
 *
 * The paper's evaluation is an embarrassingly parallel grid — eleven
 * benchmarks times many machine variants per figure. Every grid point
 * is an independent simulation (runWorkload constructs its own
 * Processor, workload generators are stateless const objects, and all
 * randomness is instance-seeded), so the points can run concurrently
 * and the results are bit-identical to a serial sweep.
 *
 * SweepRunner is a batch executor: queue grid points with add(), then
 * run() executes them on a fixed pool of worker threads and returns
 * the results in submission order. The worker count comes from the
 * constructor, the SDSP_BENCH_JOBS environment variable, or
 * std::thread::hardware_concurrency(), in that priority order; one
 * worker degenerates to a plain serial loop on the calling thread,
 * which is both the determinism baseline and the zero-thread-overhead
 * fallback.
 */

#ifndef SDSP_HARNESS_SWEEP_HH
#define SDSP_HARNESS_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace sdsp
{

/** One grid point of a sweep. */
struct SweepJob
{
    const Workload *workload = nullptr;
    MachineConfig config;
    /** Problem-size scale in percent (see Workload::build). */
    unsigned scale = 100;
    /** Free-form tag (e.g. the experiment id) carried to artifacts. */
    std::string label;
};

/**
 * Executes a batch of independent grid points on a fixed thread pool.
 *
 * Results are returned in submission order regardless of completion
 * order. If a grid point throws, the remaining queued points still
 * run; run() then rethrows the exception of the lowest-indexed failed
 * point on the calling thread.
 */
class SweepRunner
{
  public:
    /** @param jobs Worker threads; 0 means defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);

    /**
     * The worker count used when the constructor is given 0:
     * SDSP_BENCH_JOBS if set (fatal when unparseable or out of
     * [1, 256]), otherwise hardware_concurrency(), at least 1.
     */
    static unsigned defaultJobs();

    /** Worker threads run() will use. */
    unsigned jobs() const { return jobs_; }

    /** Queue a grid point. @return its index into run()'s result. */
    std::size_t add(SweepJob job);

    /** Queue a grid point. @return its index into run()'s result. */
    std::size_t add(const Workload &workload,
                    const MachineConfig &config, unsigned scale = 100,
                    std::string label = std::string());

    /** Grid points queued since the last run(). */
    std::size_t pending() const { return queue_.size(); }

    /**
     * Execute every queued point, clear the queue, and return the
     * results in submission order.
     */
    std::vector<RunResult> run();

  private:
    unsigned jobs_;
    std::vector<SweepJob> queue_;
};

/** One-shot convenience: run @p grid on @p jobs workers. */
std::vector<RunResult> runSweep(std::vector<SweepJob> grid,
                                unsigned jobs = 0);

} // namespace sdsp

#endif // SDSP_HARNESS_SWEEP_HH

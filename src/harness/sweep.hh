/**
 * @file
 * Parallel sweep engine.
 *
 * The paper's evaluation is an embarrassingly parallel grid — eleven
 * benchmarks times many machine variants per figure. Every grid point
 * is an independent simulation (runWorkload constructs its own
 * Processor, workload generators are stateless const objects, and all
 * randomness is instance-seeded), so the points can run concurrently
 * and the results are bit-identical to a serial sweep.
 *
 * SweepRunner is a batch executor: queue grid points with add(), then
 * runAll() executes them on a fixed pool of worker threads and
 * returns one JobOutcome per point, in submission order. The engine
 * is fault tolerant: a grid point that throws, exceeds its wall-clock
 * or simulated-cycle budget, or fails verification produces a
 * classified outcome (ok | failed | timed_out | skipped) with the
 * captured error text — it never takes down the pool or the other
 * points. Thrown (transient) failures can be retried with exponential
 * backoff, and a FaultPlan can deterministically inject failures for
 * testing (see fault.hh).
 *
 * The worker count comes from the constructor, the SDSP_BENCH_JOBS
 * environment variable, or std::thread::hardware_concurrency(), in
 * that priority order; one worker degenerates to a plain serial loop
 * on the calling thread, which is both the determinism baseline and
 * the zero-thread-overhead fallback.
 */

#ifndef SDSP_HARNESS_SWEEP_HH
#define SDSP_HARNESS_SWEEP_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "harness/fault.hh"
#include "harness/runner.hh"

namespace sdsp
{

/** One grid point of a sweep. */
struct SweepJob
{
    const Workload *workload = nullptr;
    MachineConfig config;
    /** Problem-size scale in percent (see Workload::build). */
    unsigned scale = 100;
    /** Free-form tag (e.g. the experiment id) carried to artifacts. */
    std::string label;
    /**
     * Do not run this point; produce a Skipped outcome instead. Set
     * by drivers resuming from a checkpoint that already holds a
     * verified result for the point.
     */
    bool skip = false;
};

/** Classified result of one sweep job. */
enum class JobStatus : unsigned char
{
    Ok,       //!< finished and verified
    Failed,   //!< threw, failed verification, or hit the config cap
    TimedOut, //!< wall-clock or simulated-cycle budget exceeded
    Skipped,  //!< not run (SweepJob::skip, e.g. checkpoint resume)
};

/** Stable artifact/JSON name of @p status ("ok", "timed_out", ...). */
const char *jobStatusName(JobStatus status);

/** Execution budgets and retry policy for a sweep. */
struct SweepOptions
{
    /** Per-job wall-clock budget in seconds; 0 = unlimited. */
    double timeoutSeconds = 0.0;
    /** Per-job simulated-cycle budget, clamped onto each job's
     *  config.maxCycles; 0 = the config cap alone. */
    std::uint64_t maxCycles = 0;
    /** Extra attempts after a *thrown* failure (transient faults).
     *  Verification failures and timeouts are deterministic and are
     *  not retried. */
    unsigned retries = 0;
    /** Backoff before the first retry; doubles per further retry. */
    double retryBackoffSeconds = 0.05;
    /** Deterministic fault injection (testing; see fault.hh). */
    FaultPlan faults;
    /**
     * Group jobs that share (workload, scale, thread count) into
     * batches of up to this many configurations and run each batch in
     * one pass over one shared built + decoded program (see
     * harness/batch.hh). 0 or 1 disables batching. Results are
     * bit-identical either way; jobs the fault plan targets, skipped
     * jobs, and singleton groups run per-point as before, and a batch
     * that throws falls back to per-point execution (retries and all).
     */
    unsigned batchSize = 0;

    /**
     * Defaults from the environment: SDSP_BENCH_TIMEOUT (seconds),
     * SDSP_BENCH_MAX_CYCLES, SDSP_BENCH_RETRIES,
     * SDSP_BENCH_RETRY_BACKOFF (seconds), SDSP_BENCH_FAULT,
     * SDSP_BENCH_BATCH (batch size, 0..256). Fatal on unparseable
     * values.
     */
    static SweepOptions fromEnvironment();
};

/** Everything one sweep job produced. */
struct JobOutcome
{
    JobStatus status = JobStatus::Ok;
    /**
     * The measurements. For Failed-by-exception and Skipped outcomes
     * only benchmark and config are meaningful (identity for
     * reporting); the run never produced numbers.
     */
    RunResult result;
    /** Failure/timeout detail; empty when ok. */
    std::string error;
    /** Attempts consumed (1 = first try; 0 = skipped). */
    unsigned attempts = 0;
    /** The last thrown error, kept for legacy rethrow paths. */
    std::exception_ptr exception;

    bool ok() const { return status == JobStatus::Ok; }
};

/**
 * Executes a batch of independent grid points on a fixed thread pool.
 *
 * Outcomes are returned in submission order regardless of completion
 * order, and every queued point runs (or is skipped) no matter what
 * happens to its neighbours.
 */
class SweepRunner
{
  public:
    /**
     * Called as each job completes, from the worker that ran it
     * (invocations are serialized by the runner, so the callback may
     * write shared state — e.g. a checkpoint file — without extra
     * locking). Completion order is schedule-dependent; the index
     * identifies the job.
     */
    using JobCallback =
        std::function<void(std::size_t index, const JobOutcome &)>;

    /** @param jobs Worker threads; 0 means defaultJobs(). */
    explicit SweepRunner(
        unsigned jobs = 0,
        SweepOptions options = SweepOptions::fromEnvironment());

    /**
     * The worker count used when the constructor is given 0:
     * SDSP_BENCH_JOBS if set (fatal when unparseable or out of
     * [1, 256]), otherwise hardware_concurrency(), at least 1.
     */
    static unsigned defaultJobs();

    /** Worker threads runAll() will use. */
    unsigned jobs() const { return jobs_; }

    /** Budgets/retry policy in force. */
    const SweepOptions &options() const { return options_; }

    /** Queue a grid point. @return its index into runAll()'s result. */
    std::size_t add(SweepJob job);

    /** Queue a grid point. @return its index into runAll()'s result. */
    std::size_t add(const Workload &workload,
                    const MachineConfig &config, unsigned scale = 100,
                    std::string label = std::string());

    /** Grid points queued since the last run. */
    std::size_t pending() const { return queue_.size(); }

    /**
     * Execute every queued point, clear the queue, and return one
     * outcome per point in submission order. Never throws for a
     * job-level failure; inspect JobOutcome::status.
     */
    std::vector<JobOutcome> runAll(const JobCallback &completed = {});

    /**
     * Legacy strict interface: runAll(), then rethrow the exception
     * of the lowest-indexed job that threw (if any) and unwrap the
     * results. Timeouts surface as unfinished results.
     */
    std::vector<RunResult> run();

  private:
    JobOutcome executeJob(const SweepJob &job) const;

    /**
     * Partition job indices into execution units: each unit is either
     * one job (run via executeJob) or a batchable group of 2+ jobs
     * sharing (workload, scale, threads), run via executeBatchUnit.
     */
    std::vector<std::vector<std::size_t>>
    planUnits(const std::vector<SweepJob> &grid) const;

    /** Run one batchable unit; fills outcomes at the unit's indices.
     *  Falls back to per-point executeJob if the batch throws. */
    void executeBatchUnit(const std::vector<SweepJob> &grid,
                          const std::vector<std::size_t> &unit,
                          std::vector<JobOutcome> &outcomes) const;

    unsigned jobs_;
    SweepOptions options_;
    std::vector<SweepJob> queue_;
};

/** One-shot convenience: run @p grid on @p jobs workers. */
std::vector<RunResult> runSweep(std::vector<SweepJob> grid,
                                unsigned jobs = 0);

} // namespace sdsp

#endif // SDSP_HARNESS_SWEEP_HH

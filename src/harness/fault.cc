#include "harness/fault.hh"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "common/logging.hh"

namespace sdsp
{

namespace
{

/** Parse a non-negative integer; fatal with context on failure. */
unsigned long
parseCount(const std::string &text, const char *what)
{
    if (text.empty())
        fatal("SDSP_BENCH_FAULT: missing %s", what);
    char *end = nullptr;
    unsigned long value = std::strtoul(text.c_str(), &end, 10);
    if (*end)
        fatal("SDSP_BENCH_FAULT: bad %s: %s", what, text.c_str());
    return value;
}

FaultRule
parseRule(const std::string &text)
{
    std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("SDSP_BENCH_FAULT: rule needs 'match=action': %s",
              text.c_str());

    FaultRule rule;
    rule.match = text.substr(0, eq);
    std::string action = text.substr(eq + 1);

    std::size_t star = action.rfind('*');
    if (star != std::string::npos) {
        unsigned long n =
            parseCount(action.substr(star + 1), "attempt count");
        if (n < 1 || n > 1000)
            fatal("SDSP_BENCH_FAULT: attempt count out of range: %s",
                  action.c_str());
        rule.attemptLimit = static_cast<unsigned>(n);
        action.erase(star);
    }

    if (action == "throw") {
        rule.action = FaultAction::Throw;
    } else if (action.rfind("delay:", 0) == 0) {
        rule.action = FaultAction::Delay;
        unsigned long ms =
            parseCount(action.substr(6), "delay milliseconds");
        if (ms > 600'000)
            fatal("SDSP_BENCH_FAULT: delay too long: %s",
                  action.c_str());
        rule.delayMillis = static_cast<unsigned>(ms);
    } else if (action.rfind("exit:", 0) == 0) {
        rule.action = FaultAction::Exit;
        unsigned long code =
            parseCount(action.substr(5), "exit code");
        if (code > 255)
            fatal("SDSP_BENCH_FAULT: exit code out of range: %s",
                  action.c_str());
        rule.exitCode = static_cast<int>(code);
    } else {
        fatal("SDSP_BENCH_FAULT: unknown action '%s' (want throw, "
              "delay:<ms>, or exit:<code>)",
              action.c_str());
    }
    return rule;
}

bool
ruleMatches(const FaultRule &rule, const std::string &id,
            unsigned attempt)
{
    if (rule.attemptLimit && attempt >= rule.attemptLimit)
        return false;
    return rule.match == "*" ||
           id.find(rule.match) != std::string::npos;
}

} // namespace

FaultPlan
FaultPlan::fromSpec(const std::string &spec)
{
    FaultPlan plan;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(';', begin);
        if (end == std::string::npos)
            end = spec.size();
        std::string rule = spec.substr(begin, end - begin);
        if (!rule.empty())
            plan.rules_.push_back(parseRule(rule));
        begin = end + 1;
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnvironment()
{
    const char *env = std::getenv("SDSP_BENCH_FAULT");
    if (!env || !*env)
        return FaultPlan{};
    return fromSpec(env);
}

void
FaultPlan::inject(const std::string &id, unsigned attempt) const
{
    for (const FaultRule &rule : rules_) {
        if (!ruleMatches(rule, id, attempt))
            continue;
        switch (rule.action) {
        case FaultAction::Delay:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(rule.delayMillis));
            break;
        case FaultAction::Throw:
            throw std::runtime_error(
                format("injected fault: %s (attempt %u)", id.c_str(),
                       attempt));
        case FaultAction::Exit:
            // Simulates a hard kill mid-grid: no stack unwinding, no
            // atexit flushing — exactly what checkpoint resume must
            // survive.
            std::_Exit(rule.exitCode);
        }
    }
}

bool
FaultPlan::matches(const std::string &id, unsigned attempt) const
{
    for (const FaultRule &rule : rules_) {
        if (ruleMatches(rule, id, attempt))
            return true;
    }
    return false;
}

} // namespace sdsp

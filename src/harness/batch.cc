#include "harness/batch.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "isa/decoded_program.hh"

namespace sdsp
{

BatchRunner::BatchRunner(const Workload &workload,
                         std::vector<MachineConfig> configs,
                         unsigned scale, const RunLimits &limits_in,
                         std::uint64_t slice_cycles)
    : limits(limits_in),
      sliceCycles(slice_cycles ? slice_cycles : kDefaultSliceCycles)
{
    sdsp_assert(!configs.empty(), "batch without configurations");
    start = std::chrono::steady_clock::now();

    // The workload build depends on the thread count, so one shared
    // image requires one shared thread count.
    unsigned threads = configs.front().numThreads;
    for (const MachineConfig &config : configs) {
        sdsp_assert(config.numThreads == threads,
                    "batched configurations must share a thread count "
                    "(%u vs %u)",
                    config.numThreads, threads);
    }

    // Built once, decoded once; every lane shares the immutable
    // decoded image.
    image = workload.build(threads, scale);
    std::shared_ptr<const DecodedProgram> program =
        DecodedProgram::decode(image.program);

    lanes.reserve(configs.size());
    for (MachineConfig &config : configs) {
        Lane lane;
        lane.config = config;
        lane.effective = config;
        if (limits.maxCycles && limits.maxCycles < config.maxCycles) {
            lane.effective.maxCycles = limits.maxCycles;
            lane.cycleBudgeted = true;
        }
        lane.cpu = std::make_unique<Processor>(lane.effective, program);
        lanes.push_back(std::move(lane));
    }
    liveLanes = lanes.size();

    if (limits.timeoutSeconds > 0.0) {
        deadlineArmed = true;
        deadline =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            limits.timeoutSeconds));
    }
}

BatchRunner::~BatchRunner() = default;

Processor &
BatchRunner::processor(std::size_t i)
{
    sdsp_assert(i < lanes.size(), "batch lane index out of range");
    return *lanes[i].cpu;
}

void
BatchRunner::finishLane(Lane &lane)
{
    lane.running = false;
    --liveLanes;
    lane.cpu->finishTrace();
    lane.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
}

bool
BatchRunner::stepSlice()
{
    if (liveLanes == 0)
        return false;

    for (Lane &lane : lanes) {
        if (!lane.running)
            continue;
        Processor &cpu = *lane.cpu;
        auto slice_start = std::chrono::steady_clock::now();
        std::uint64_t slice_end = std::min<std::uint64_t>(
            lane.effective.maxCycles, cpu.cycle() + sliceCycles);
        while (!cpu.done() && cpu.cycle() < slice_end)
            cpu.step();
        lane.simSeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - slice_start)
                .count();
        if (cpu.done() || cpu.cycle() >= lane.effective.maxCycles)
            finishLane(lane);
    }

    // Shared wall-clock deadline, checked once per round like the
    // serial watchdog checks once per slice. Lanes that finished
    // inside this round are not timed out.
    if (deadlineArmed && liveLanes > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
        for (Lane &lane : lanes) {
            if (lane.running) {
                lane.wallTimedOut = true;
                finishLane(lane);
            }
        }
    }
    return liveLanes > 0;
}

std::vector<LimitedRunResult>
BatchRunner::run()
{
    while (stepSlice()) {
    }

    // Fill one result per lane exactly as runWorkloadImpl does for a
    // serial run (harness/runner.cc), so batched and serial artifacts
    // agree in every deterministic field.
    std::vector<LimitedRunResult> out;
    out.reserve(lanes.size());
    for (Lane &lane : lanes) {
        Processor &cpu = *lane.cpu;
        LimitedRunResult limited;
        RunResult &result = limited.result;

        bool finished = cpu.done();
        result.benchmark = image.name;
        result.config = lane.config;
        result.finished = finished;
        result.cycles = cpu.cycle();
        result.committed = cpu.committedInstructions();
        result.ipc = result.cycles
                         ? static_cast<double>(result.committed) /
                               static_cast<double>(result.cycles)
                         : 0.0;
        result.cacheHitRate = cpu.dcache().hitRate();
        result.branchAccuracy = cpu.predictor().accuracy();
        result.suStalls = cpu.suStalls();
        result.flexCommits = cpu.flexibleCommits();
        result.stallCycles.resize(lane.config.numThreads);
        for (unsigned t = 0; t < lane.config.numThreads; ++t) {
            for (unsigned r = 0; r < kNumStallReasons; ++r) {
                result.stallCycles[t][r] =
                    cpu.stallCycles(static_cast<ThreadId>(t),
                                    static_cast<StallReason>(r));
            }
        }
        cpu.reportStats(result.stats);

        if (finished) {
            VerifyResult verdict = image.verify(cpu.memory());
            result.verified = verdict.ok;
            result.verifyMessage = verdict.message;
        } else {
            result.verified = false;
            if (lane.wallTimedOut) {
                result.verifyMessage = format(
                    "wall-clock budget (%.3f s) exceeded at cycle "
                    "%llu",
                    limits.timeoutSeconds,
                    static_cast<unsigned long long>(result.cycles));
            } else if (lane.cycleBudgeted &&
                       result.cycles >= lane.effective.maxCycles) {
                result.verifyMessage = format(
                    "simulated-cycle budget (%llu cycles) exceeded",
                    static_cast<unsigned long long>(
                        lane.effective.maxCycles));
            } else {
                result.verifyMessage = "simulation hit the cycle cap";
            }
            limited.timedOut =
                lane.wallTimedOut ||
                (lane.cycleBudgeted &&
                 result.cycles >= lane.effective.maxCycles);
            if (limited.timedOut)
                limited.timeoutReason = result.verifyMessage;
        }
        result.wallSeconds = lane.wallSeconds;
        result.simSeconds = lane.simSeconds;
        if (result.simSeconds > 0.0) {
            result.simCyclesPerSecond =
                static_cast<double>(result.cycles) / result.simSeconds;
            result.simInstsPerSecond =
                static_cast<double>(result.committed) /
                result.simSeconds;
        }
        out.push_back(std::move(limited));
    }
    return out;
}

std::vector<LimitedRunResult>
runWorkloadBatch(const Workload &workload,
                 std::vector<MachineConfig> configs, unsigned scale,
                 const RunLimits &limits)
{
    BatchRunner batch(workload, std::move(configs), scale, limits);
    return batch.run();
}

} // namespace sdsp

#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <system_error>
#include <thread>
#include <tuple>
#include <utility>

#include "common/logging.hh"
#include "harness/batch.hh"

namespace sdsp
{

namespace
{

/** Parse an environment double (locale independent); fatal on junk. */
double
envSeconds(const char *name, double fallback)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    double value = 0.0;
    const char *end = env + std::string_view(env).size();
    auto [ptr, ec] = std::from_chars(env, end, value);
    if (ec != std::errc() || ptr != end || value < 0.0)
        fatal("%s out of range: %s", name, env);
    return value;
}

std::uint64_t
envUint64(const char *name, std::uint64_t fallback,
          std::uint64_t max_value)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    std::uint64_t value = 0;
    const char *end = env + std::string_view(env).size();
    auto [ptr, ec] = std::from_chars(env, end, value);
    if (ec != std::errc() || ptr != end || value > max_value)
        fatal("%s out of range: %s", name, env);
    return value;
}

} // namespace

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
    case JobStatus::Ok: return "ok";
    case JobStatus::Failed: return "failed";
    case JobStatus::TimedOut: return "timed_out";
    case JobStatus::Skipped: return "skipped";
    }
    return "unknown";
}

SweepOptions
SweepOptions::fromEnvironment()
{
    SweepOptions options;
    options.timeoutSeconds = envSeconds("SDSP_BENCH_TIMEOUT", 0.0);
    options.maxCycles = envUint64("SDSP_BENCH_MAX_CYCLES", 0,
                                  std::uint64_t(-1));
    options.retries = static_cast<unsigned>(
        envUint64("SDSP_BENCH_RETRIES", 0, 100));
    options.retryBackoffSeconds =
        envSeconds("SDSP_BENCH_RETRY_BACKOFF", 0.05);
    options.faults = FaultPlan::fromEnvironment();
    options.batchSize =
        static_cast<unsigned>(envUint64("SDSP_BENCH_BATCH", 0, 256));
    return options;
}

SweepRunner::SweepRunner(unsigned jobs, SweepOptions options)
    : jobs_(jobs ? jobs : defaultJobs()), options_(std::move(options))
{
}

unsigned
SweepRunner::defaultJobs()
{
    const char *env = std::getenv("SDSP_BENCH_JOBS");
    if (env && *env) {
        char *end = nullptr;
        long value = std::strtol(env, &end, 10);
        if (*end || value < 1 || value > 256)
            fatal("SDSP_BENCH_JOBS out of range: %s", env);
        return static_cast<unsigned>(value);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::size_t
SweepRunner::add(SweepJob job)
{
    sdsp_assert(job.workload != nullptr, "sweep job without workload");
    queue_.push_back(std::move(job));
    return queue_.size() - 1;
}

std::size_t
SweepRunner::add(const Workload &workload, const MachineConfig &config,
                 unsigned scale, std::string label)
{
    return add(SweepJob{&workload, config, scale, std::move(label)});
}

JobOutcome
SweepRunner::executeJob(const SweepJob &job) const
{
    JobOutcome outcome;
    if (job.skip) {
        outcome.status = JobStatus::Skipped;
        outcome.result.benchmark = job.workload->name();
        outcome.result.config = job.config;
        return outcome;
    }

    const std::string id = job.workload->name() + "/" + job.label;
    RunLimits limits;
    limits.timeoutSeconds = options_.timeoutSeconds;
    limits.maxCycles = options_.maxCycles;

    for (unsigned attempt = 0;; ++attempt) {
        ++outcome.attempts;
        try {
            options_.faults.inject(id, attempt);
            LimitedRunResult run = runWorkloadLimited(
                *job.workload, job.config, job.scale, limits);
            outcome.result = std::move(run.result);
            outcome.exception = nullptr;
            if (run.timedOut) {
                outcome.status = JobStatus::TimedOut;
                outcome.error = run.timeoutReason;
            } else if (outcome.result.finished &&
                       outcome.result.verified) {
                outcome.status = JobStatus::Ok;
                outcome.error.clear();
            } else {
                outcome.status = JobStatus::Failed;
                outcome.error = outcome.result.verifyMessage;
            }
            // Only thrown failures are assumed transient; a
            // deterministic verification failure or timeout would
            // simply repeat.
            return outcome;
        } catch (const std::exception &err) {
            outcome.status = JobStatus::Failed;
            outcome.error = err.what();
            outcome.exception = std::current_exception();
        } catch (...) {
            outcome.status = JobStatus::Failed;
            outcome.error = "unknown exception";
            outcome.exception = std::current_exception();
        }
        if (attempt >= options_.retries) {
            // The run never produced measurements; keep at least the
            // point's identity for reporting.
            outcome.result.benchmark = job.workload->name();
            outcome.result.config = job.config;
            return outcome;
        }
        double backoff = options_.retryBackoffSeconds *
                         static_cast<double>(1u << attempt);
        if (backoff > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
        }
    }
}

std::vector<std::vector<std::size_t>>
SweepRunner::planUnits(const std::vector<SweepJob> &grid) const
{
    std::vector<std::vector<std::size_t>> units;
    units.reserve(grid.size());
    if (options_.batchSize < 2) {
        for (std::size_t i = 0; i < grid.size(); ++i)
            units.push_back({i});
        return units;
    }

    // Batchable jobs group by the identity the shared image depends
    // on. Skipped jobs and jobs the fault plan targets on their first
    // attempt run per-point, so checkpoint-resume and deterministic
    // fault injection behave exactly as without batching.
    using GroupKey = std::tuple<const Workload *, unsigned, unsigned>;
    std::map<GroupKey, std::vector<std::size_t>> groups;
    std::vector<GroupKey> order;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const SweepJob &job = grid[i];
        if (job.skip ||
            options_.faults.matches(
                job.workload->name() + "/" + job.label, 0)) {
            units.push_back({i});
            continue;
        }
        GroupKey key{job.workload, job.scale, job.config.numThreads};
        auto [it, inserted] = groups.try_emplace(key);
        if (inserted)
            order.push_back(key);
        it->second.push_back(i);
    }
    for (const GroupKey &key : order) {
        const std::vector<std::size_t> &members = groups[key];
        for (std::size_t at = 0; at < members.size();
             at += options_.batchSize) {
            std::size_t end = std::min<std::size_t>(
                at + options_.batchSize, members.size());
            units.emplace_back(members.begin() +
                                   static_cast<std::ptrdiff_t>(at),
                               members.begin() +
                                   static_cast<std::ptrdiff_t>(end));
        }
    }
    return units;
}

void
SweepRunner::executeBatchUnit(const std::vector<SweepJob> &grid,
                              const std::vector<std::size_t> &unit,
                              std::vector<JobOutcome> &outcomes) const
{
    const SweepJob &first = grid[unit.front()];
    RunLimits limits;
    limits.timeoutSeconds = options_.timeoutSeconds;
    limits.maxCycles = options_.maxCycles;

    try {
        std::vector<MachineConfig> configs;
        configs.reserve(unit.size());
        for (std::size_t i : unit)
            configs.push_back(grid[i].config);
        BatchRunner batch(*first.workload, std::move(configs),
                          first.scale, limits);
        std::vector<LimitedRunResult> results = batch.run();
        for (std::size_t k = 0; k < unit.size(); ++k) {
            JobOutcome &outcome = outcomes[unit[k]];
            LimitedRunResult &run = results[k];
            outcome.attempts = 1;
            outcome.exception = nullptr;
            outcome.result = std::move(run.result);
            if (run.timedOut) {
                outcome.status = JobStatus::TimedOut;
                outcome.error = run.timeoutReason;
            } else if (outcome.result.finished &&
                       outcome.result.verified) {
                outcome.status = JobStatus::Ok;
                outcome.error.clear();
            } else {
                outcome.status = JobStatus::Failed;
                outcome.error = outcome.result.verifyMessage;
            }
        }
    } catch (...) {
        // A failure in the shared setup (or any lane) poisons the
        // whole batch; re-run its members per-point so one bad lane
        // cannot fail its neighbours and the retry machinery applies.
        for (std::size_t i : unit)
            outcomes[i] = executeJob(grid[i]);
    }
}

std::vector<JobOutcome>
SweepRunner::runAll(const JobCallback &completed)
{
    std::vector<SweepJob> grid = std::move(queue_);
    queue_.clear();

    std::vector<JobOutcome> outcomes(grid.size());

    // Execution units: single jobs, or batches of jobs sharing one
    // built + decoded program (SweepOptions::batchSize).
    std::vector<std::vector<std::size_t>> units = planUnits(grid);

    // Self-scheduling work queue: workers claim the next unclaimed
    // unit. Outcomes land at each job's submission index, so the
    // output order never depends on the schedule.
    std::atomic<std::size_t> next{0};
    std::mutex callback_mutex;
    auto worker = [&]() {
        for (;;) {
            std::size_t u = next.fetch_add(1, std::memory_order_relaxed);
            if (u >= units.size())
                return;
            const std::vector<std::size_t> &unit = units[u];
            if (unit.size() == 1) {
                std::size_t i = unit.front();
                outcomes[i] = executeJob(grid[i]);
            } else {
                executeBatchUnit(grid, unit, outcomes);
            }
            if (completed) {
                std::lock_guard<std::mutex> hold(callback_mutex);
                for (std::size_t i : unit)
                    completed(i, outcomes[i]);
            }
        }
    };

    std::size_t workers =
        std::min<std::size_t>(jobs_, units.size() ? units.size() : 1);
    if (workers <= 1) {
        // Serial fallback: same loop, calling thread, no pool.
        worker();
    } else {
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        // jthread joins on destruction.
    }
    return outcomes;
}

std::vector<RunResult>
SweepRunner::run()
{
    std::vector<JobOutcome> outcomes = runAll();
    for (JobOutcome &outcome : outcomes) {
        if (outcome.exception)
            std::rethrow_exception(outcome.exception);
    }
    std::vector<RunResult> results;
    results.reserve(outcomes.size());
    for (JobOutcome &outcome : outcomes)
        results.push_back(std::move(outcome.result));
    return results;
}

std::vector<RunResult>
runSweep(std::vector<SweepJob> grid, unsigned jobs)
{
    SweepRunner runner(jobs);
    for (SweepJob &job : grid)
        runner.add(std::move(job));
    return runner.run();
}

} // namespace sdsp

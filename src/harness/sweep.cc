#include "harness/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "common/logging.hh"

namespace sdsp
{

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
}

unsigned
SweepRunner::defaultJobs()
{
    const char *env = std::getenv("SDSP_BENCH_JOBS");
    if (env && *env) {
        char *end = nullptr;
        long value = std::strtol(env, &end, 10);
        if (*end || value < 1 || value > 256)
            fatal("SDSP_BENCH_JOBS out of range: %s", env);
        return static_cast<unsigned>(value);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::size_t
SweepRunner::add(SweepJob job)
{
    sdsp_assert(job.workload != nullptr, "sweep job without workload");
    queue_.push_back(std::move(job));
    return queue_.size() - 1;
}

std::size_t
SweepRunner::add(const Workload &workload, const MachineConfig &config,
                 unsigned scale, std::string label)
{
    return add(SweepJob{&workload, config, scale, std::move(label)});
}

std::vector<RunResult>
SweepRunner::run()
{
    std::vector<SweepJob> grid = std::move(queue_);
    queue_.clear();

    std::vector<RunResult> results(grid.size());
    std::vector<std::exception_ptr> errors(grid.size());

    // Self-scheduling work queue: workers claim the next unclaimed
    // grid point. Results land at the point's submission index, so
    // the output order never depends on the schedule.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= grid.size())
                return;
            try {
                results[i] = runWorkload(*grid[i].workload,
                                         grid[i].config, grid[i].scale);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    std::size_t workers =
        std::min<std::size_t>(jobs_, grid.size() ? grid.size() : 1);
    if (workers <= 1) {
        // Serial fallback: same loop, calling thread, no pool.
        worker();
    } else {
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        // jthread joins on destruction.
    }

    for (std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

std::vector<RunResult>
runSweep(std::vector<SweepJob> grid, unsigned jobs)
{
    SweepRunner runner(jobs);
    for (SweepJob &job : grid)
        runner.add(std::move(job));
    return runner.run();
}

} // namespace sdsp

/**
 * @file
 * Experiment runner: builds a workload, runs it on a configured
 * processor, verifies the architectural output, and returns the
 * measurements the paper reports. All bench binaries and most
 * integration tests go through this entry point.
 */

#ifndef SDSP_HARNESS_RUNNER_HH
#define SDSP_HARNESS_RUNNER_HH

#include <chrono>
#include <string>
#include <vector>

#include "common/stats_registry.hh"
#include "core/config.hh"
#include "core/processor.hh"
#include "workloads/workload.hh"

namespace sdsp
{

/** Measurements from one benchmark run. */
struct RunResult
{
    std::string benchmark;
    MachineConfig config;
    bool finished = false;  //!< ran to completion within the cycle cap
    bool verified = false;  //!< outputs matched the C++ reference
    std::string verifyMessage;
    Cycle cycles = 0;
    std::uint64_t committed = 0;
    double ipc = 0.0;
    double cacheHitRate = 1.0;
    double branchAccuracy = 1.0;
    std::uint64_t suStalls = 0;
    std::uint64_t flexCommits = 0;
    /** stallCycles[tid][reason]: top-down attribution matrix. Each
     *  thread's row sums to `cycles` (one charge per cycle). */
    std::vector<std::array<std::uint64_t, kNumStallReasons>>
        stallCycles;
    /** Host wall-clock seconds spent building + simulating the run. */
    double wallSeconds = 0.0;
    /** Host wall-clock seconds of the simulation loop alone (no
     *  workload build, no verification). */
    double simSeconds = 0.0;
    /** Simulated cycles per host wall-second (simulation
     *  throughput; uses simSeconds). */
    double simCyclesPerSecond = 0.0;
    /** Committed instructions per host wall-second. */
    double simInstsPerSecond = 0.0;
    /** Full statistics dump. */
    StatsRegistry stats;
};

/**
 * Run one benchmark on one configuration.
 *
 * @param workload The benchmark generator.
 * @param config   Machine configuration (numThreads is taken from
 *                 here and passed to the workload build).
 * @param scale    Problem-size scale in percent.
 * @param sink     Optional structured-event sink attached for the
 *                 whole run (e.g. a DdgRecorder); purely
 *                 observational, the simulation is unchanged.
 */
RunResult runWorkload(const Workload &workload,
                      const MachineConfig &config, unsigned scale = 100,
                      TraceSink *sink = nullptr);

/** Watchdog budgets for one run (0 = unlimited / config default). */
struct RunLimits
{
    /** Wall-clock budget in seconds for the whole run (workload
     *  build + simulation). Checked between simulation slices, so a
     *  runaway run stops within a few thousand cycles of the
     *  deadline instead of hanging its worker. */
    double timeoutSeconds = 0.0;
    /** Simulated-cycle budget, clamped onto config.maxCycles. */
    std::uint64_t maxCycles = 0;
};

/** runWorkload() plus the watchdog verdict. */
struct LimitedRunResult
{
    RunResult result;
    /** A RunLimits budget (not the config's own cycle cap) stopped
     *  the run; result.finished is false and timeoutReason says
     *  which budget. */
    bool timedOut = false;
    std::string timeoutReason;
};

/**
 * runWorkload() under @p limits. With all limits zero this is
 * byte-identical to runWorkload() (same stepping path, no per-slice
 * clock reads).
 */
LimitedRunResult runWorkloadLimited(const Workload &workload,
                                    const MachineConfig &config,
                                    unsigned scale,
                                    const RunLimits &limits);

/**
 * Step @p cpu until it is done, reaches @p cycle_cap, or the wall
 * clock passes @p deadline (checked every few thousand cycles).
 * Flushes open trace spans like Processor::run(). Sets @p timed_out
 * iff the deadline stopped the run.
 */
SimResult runToDeadline(Processor &cpu, std::uint64_t cycle_cap,
                        std::chrono::steady_clock::time_point deadline,
                        bool *timed_out);

/**
 * The paper's speedup formula (section 5.2):
 * speedup = (Mt_perf - St_perf)/St_perf with performance = 1/cycles.
 * Returned in percent.
 */
double speedupPercent(Cycle multithreaded_cycles,
                      Cycle single_thread_cycles);

/** Geometric-mean-free average of a vector (plain arithmetic mean). */
double mean(const std::vector<double> &values);

/** Fatal unless the run finished and verified (used by benches). */
void requireGood(const RunResult &result);

} // namespace sdsp

#endif // SDSP_HARNESS_RUNNER_HH

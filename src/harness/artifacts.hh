/**
 * @file
 * Structured run artifacts: JSON serialization of sweep results.
 *
 * Every measurement the harness produces can be exported as a
 * machine-checkable JSON record — the CI pipeline diffs and gates on
 * these instead of scraping ASCII tables. The serializers append to a
 * caller-owned JsonWriter so one consolidated document
 * (bench_results.json) and many small per-experiment exports share
 * the same code.
 */

#ifndef SDSP_HARNESS_ARTIFACTS_HH
#define SDSP_HARNESS_ARTIFACTS_HH

#include <string>

#include "common/json.hh"
#include "harness/runner.hh"

namespace sdsp
{

/** Append @p stats as one flat JSON object (name -> value). */
void appendJson(JsonWriter &writer, const StatsRegistry &stats);

/**
 * Append @p config as a JSON object covering every design axis the
 * paper sweeps (and the extension axes), so two configurations
 * serialize equal iff the simulations they describe are equivalent.
 */
void appendJson(JsonWriter &writer, const MachineConfig &config);

/**
 * Append one run as a JSON object: identity, verification status,
 * the paper's headline measurements, host wall-clock, and (when
 * @p include_stats) the full statistics dump.
 */
void appendJson(JsonWriter &writer, const RunResult &result,
                bool include_stats = true);

/** Append host/build metadata (compiler, cores, UTC timestamp). */
void appendHostJson(JsonWriter &writer);

/**
 * Stable identity key of a configuration (its JSON serialization).
 * Used to deduplicate grid points shared between experiments.
 */
std::string configKey(const MachineConfig &config);

/**
 * Create @p dir (and parents) if missing. @return whether the
 * directory exists afterwards; warns on failure.
 */
bool ensureOutputDir(const std::string &dir);

} // namespace sdsp

#endif // SDSP_HARNESS_ARTIFACTS_HH

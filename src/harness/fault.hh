/**
 * @file
 * Deterministic fault injection for the sweep engine.
 *
 * The fault-tolerant harness (per-job isolation, retry, checkpoint
 * resume) is only trustworthy if its failure paths are exercised in
 * CI, and real grid points essentially never fail. A FaultPlan —
 * normally parsed from the SDSP_BENCH_FAULT environment variable —
 * injects failures into chosen grid points by name, before the
 * simulation starts, so the outcome/retry/resume machinery can be
 * tested end to end with real binaries.
 *
 * Spec grammar (rules separated by ';'):
 *
 *     SDSP_BENCH_FAULT = rule[;rule...]
 *     rule   = match '=' action
 *     match  = substring of "<benchmark>/<label>", or '*' for all
 *     action = 'throw'        throw std::runtime_error
 *            | 'delay:<ms>'   sleep that many milliseconds
 *            | 'exit:<code>'  _Exit(code) — simulates a hard kill
 *     Any action may carry a '*N' suffix: inject only on the job's
 *     first N attempts (so 'throw*1' fails once, then the retry
 *     succeeds). Without a suffix the rule applies to every attempt.
 *
 * Examples:
 *     LL1/fig05=throw             that point always fails
 *     Matrix=throw*1;Water=throw  Matrix fails once, Water always
 *     Sieve=delay:300             Sieve sleeps 300 ms (trips a
 *                                 --timeout watchdog deterministically)
 *     LL3=exit:9                  process dies mid-grid (resume test)
 *
 * Matching is attempt-scoped and stateless, so injection is
 * deterministic regardless of the worker schedule.
 */

#ifndef SDSP_HARNESS_FAULT_HH
#define SDSP_HARNESS_FAULT_HH

#include <string>
#include <vector>

namespace sdsp
{

/** What an injected fault does to the matched attempt. */
enum class FaultAction : unsigned char
{
    Throw, //!< throw std::runtime_error from the job
    Delay, //!< sleep before the simulation starts
    Exit,  //!< _Exit the whole process (hard-kill simulation)
};

/** One parsed SDSP_BENCH_FAULT rule. */
struct FaultRule
{
    /** Substring matched against "<benchmark>/<label>"; "*" = all. */
    std::string match;
    FaultAction action = FaultAction::Throw;
    unsigned delayMillis = 0; //!< Delay only
    int exitCode = 1;         //!< Exit only
    /** Inject on attempts [0, attemptLimit); 0 means every attempt. */
    unsigned attemptLimit = 0;
};

/** An ordered set of fault rules applied to every sweep job. */
class FaultPlan
{
  public:
    /** The empty plan: inject() is a no-op. */
    FaultPlan() = default;

    /** Parse @p spec (see file comment). Fatal on a malformed spec. */
    static FaultPlan fromSpec(const std::string &spec);

    /** Parse SDSP_BENCH_FAULT; empty plan when unset/empty. */
    static FaultPlan fromEnvironment();

    bool empty() const { return rules_.empty(); }
    const std::vector<FaultRule> &rules() const { return rules_; }

    /**
     * Fire every rule matching job @p id (= "<benchmark>/<label>")
     * on @p attempt (0-based). Delay rules sleep, Throw rules throw
     * std::runtime_error, Exit rules terminate the process.
     */
    void inject(const std::string &id, unsigned attempt) const;

    /** Does any rule match @p id on @p attempt? (For tests/logs.) */
    bool matches(const std::string &id, unsigned attempt) const;

  private:
    std::vector<FaultRule> rules_;
};

} // namespace sdsp

#endif // SDSP_HARNESS_FAULT_HH

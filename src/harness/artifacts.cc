#include "harness/artifacts.hh"

#include <chrono>
#include <ctime>
#include <filesystem>
#include <thread>

#include "common/logging.hh"

namespace sdsp
{

void
appendJson(JsonWriter &writer, const StatsRegistry &stats)
{
    writer.beginObject();
    for (const StatEntry &entry : stats.entries())
        writer.field(entry.name, entry.value);
    if (!stats.distributions().empty()) {
        // Histograms ride along under one key so scalar consumers
        // keep working unchanged.
        writer.key("histograms").beginObject();
        for (const DistEntry &entry : stats.distributions()) {
            const Distribution &dist = entry.dist;
            writer.key(entry.name).beginObject();
            writer.field("count", dist.count());
            writer.field("sum", dist.sum());
            writer.field("min", dist.min());
            writer.field("max", dist.max());
            writer.field("mean", dist.mean());
            writer.key("buckets").beginArray();
            for (unsigned b = 0; b < Distribution::kBuckets; ++b) {
                if (dist.bucketCount(b) == 0)
                    continue;
                writer.beginObject()
                    .field("lo", Distribution::bucketLo(b))
                    .field("hi", Distribution::bucketHi(b))
                    .field("count", dist.bucketCount(b))
                    .endObject();
            }
            writer.endArray().endObject();
        }
        writer.endObject();
    }
    writer.endObject();
}

void
appendJson(JsonWriter &writer, const MachineConfig &config)
{
    writer.beginObject();
    writer.field("threads", config.numThreads);
    writer.field("fetch_policy", fetchPolicyName(config.fetchPolicy));
    if (!config.fetchWeights.empty()) {
        writer.key("fetch_weights").beginArray();
        for (unsigned weight : config.fetchWeights)
            writer.value(weight);
        writer.endArray();
    }
    writer.field("block_size", config.blockSize);
    writer.field("su_entries", config.suEntries);
    writer.field("issue_width", config.issueWidth);
    writer.field("writeback_width", config.writebackWidth);
    writer.field("commit_policy",
                 commitPolicyName(config.commitPolicy));
    writer.field("rename_scheme",
                 renameSchemeName(config.renameScheme));
    writer.field("bypassing", config.bypassing);

    writer.key("fu").beginObject();
    for (unsigned cls = 0; cls < kNumFuClasses; ++cls) {
        writer.key(fuClassName(static_cast<FuClass>(cls)))
            .beginArray()
            .value(config.fu.count[cls])
            .value(config.fu.latency[cls])
            .value(config.fu.pipelined[cls])
            .endArray();
    }
    writer.endObject();

    writer.key("dcache").beginObject();
    writer.field("size_bytes", config.dcache.sizeBytes);
    writer.field("line_bytes", config.dcache.lineBytes);
    writer.field("ways", config.dcache.ways);
    writer.field("miss_penalty", config.dcache.missPenalty);
    writer.field("ports", config.dcache.ports);
    writer.field("partitions", config.dcache.partitions);
    writer.endObject();

    writer.field("perfect_icache", config.perfectICache);
    if (!config.perfectICache) {
        writer.key("icache").beginObject();
        writer.field("size_bytes", config.icache.sizeBytes);
        writer.field("line_bytes", config.icache.lineBytes);
        writer.field("ways", config.icache.ways);
        writer.field("miss_penalty", config.icache.missPenalty);
        writer.endObject();
    }

    writer.field("store_buffer_entries", config.storeBufferEntries);
    writer.field("registers", config.numRegisters);
    writer.field("btb_entries", config.btbEntries);
    writer.field("btb_banks", config.btbBanks);
    if (config.fetchPolicy == FetchPolicy::Adaptive)
        writer.field("adaptive_threshold", config.adaptiveThreshold);
    writer.field("max_cycles", config.maxCycles);
    writer.endObject();
}

void
appendJson(JsonWriter &writer, const RunResult &result,
           bool include_stats)
{
    writer.beginObject();
    writer.field("benchmark", result.benchmark);
    writer.key("config");
    appendJson(writer, result.config);
    writer.field("finished", result.finished);
    writer.field("verified", result.verified);
    if (!result.verified)
        writer.field("verify_message", result.verifyMessage);
    writer.field("cycles", result.cycles);
    writer.field("committed", result.committed);
    writer.field("ipc", result.ipc);
    writer.field("cache_hit_rate", result.cacheHitRate);
    writer.field("branch_accuracy", result.branchAccuracy);
    writer.field("su_stalls", result.suStalls);
    writer.field("flex_commits", result.flexCommits);
    if (!result.stallCycles.empty()) {
        writer.key("stall_attribution").beginObject();
        for (std::size_t t = 0; t < result.stallCycles.size(); ++t) {
            writer.key(format("thread%zu", t)).beginObject();
            for (unsigned r = 0; r < kNumStallReasons; ++r) {
                writer.field(
                    stallReasonName(static_cast<StallReason>(r)),
                    result.stallCycles[t][r]);
            }
            writer.endObject();
        }
        writer.endObject();
    }
    writer.field("wall_seconds", result.wallSeconds);
    writer.field("sim_seconds", result.simSeconds);
    writer.field("sim_cycles_per_second", result.simCyclesPerSecond);
    writer.field("sim_insts_per_second", result.simInstsPerSecond);
    if (include_stats) {
        writer.key("stats");
        appendJson(writer, result.stats);
    }
    writer.endObject();
}

void
appendHostJson(JsonWriter &writer)
{
    writer.beginObject();
    writer.field("compiler", __VERSION__);
#ifdef NDEBUG
    writer.field("assertions", false);
#else
    writer.field("assertions", true);
#endif
    writer.field("hardware_concurrency",
                 std::thread::hardware_concurrency());

    std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char stamp[32];
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    writer.field("generated_utc", stamp);
    writer.endObject();
}

std::string
configKey(const MachineConfig &config)
{
    JsonWriter writer;
    appendJson(writer, config);
    return writer.str();
}

bool
ensureOutputDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create output directory %s: %s", dir.c_str(),
             ec.message().c_str());
        return false;
    }
    return true;
}

} // namespace sdsp

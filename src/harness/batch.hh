/**
 * @file
 * Batched execution engine: run B machine variants over one workload
 * in a single pass.
 *
 * Every paper figure sweeps many machine configurations against the
 * same benchmark program, and the serial harness pays the workload
 * build and instruction decode once per grid point. BatchRunner
 * builds the workload once, decodes the program once (see
 * isa/decoded_program.hh), and constructs one Processor per
 * configuration, all sharing the immutable decoded image. The cycle
 * loop then interleaves the configurations in the inner dimension:
 * each round advances every still-running processor by one slice of
 * cycles, so the shared program text stays warm while each
 * processor's private state (SU, store buffer, caches, memory image)
 * is touched in one contiguous burst per round.
 *
 * Bit-identity: processors never interact — each step() touches only
 * its own state plus the shared *immutable* program — so every
 * configuration's cycle count, committed-instruction count,
 * architectural registers/memory, stall attribution and statistics
 * are bit-identical to a serial runWorkload() of the same
 * configuration, for any slice size and any batch composition. The
 * differential test (test_batch) asserts this.
 *
 * Budgets mirror runWorkloadLimited(): a per-configuration
 * simulated-cycle budget clamps onto each config's own maxCycles, and
 * the wall-clock budget is a shared deadline measured from batch
 * start (the batch is one unit of work; its members share the host).
 */

#ifndef SDSP_HARNESS_BATCH_HH
#define SDSP_HARNESS_BATCH_HH

#include <chrono>
#include <memory>
#include <vector>

#include "harness/runner.hh"

namespace sdsp
{

/** Runs B configurations of one workload concurrently (interleaved
 *  on the calling thread), sharing one built + decoded program. */
class BatchRunner
{
  public:
    /** Cycles each configuration advances per interleave round. Any
     *  value produces bit-identical results; this one amortizes the
     *  round overhead while keeping the wall-clock deadline check as
     *  responsive as the serial harness's (runner.cc kSliceCycles). */
    static constexpr std::uint64_t kDefaultSliceCycles = 4096;

    /**
     * Build the workload at (@p configs front's numThreads, @p scale)
     * once and construct one processor per configuration.
     *
     * All configurations must agree on numThreads (the workload build
     * depends on it); the constructor asserts this. @p configs must
     * be non-empty.
     */
    BatchRunner(const Workload &workload,
                std::vector<MachineConfig> configs, unsigned scale,
                const RunLimits &limits = {},
                std::uint64_t slice_cycles = kDefaultSliceCycles);

    ~BatchRunner();

    BatchRunner(const BatchRunner &) = delete;
    BatchRunner &operator=(const BatchRunner &) = delete;

    /** Configurations in the batch. */
    std::size_t size() const { return lanes.size(); }

    /** Processor of configuration @p i (tests: inspect state while
     *  stepping the batch manually with stepSlice()). */
    Processor &processor(std::size_t i);

    /**
     * Advance every still-running configuration by one slice, then
     * check the shared wall-clock deadline.
     *
     * @return true while at least one configuration is still running.
     */
    bool stepSlice();

    /**
     * Run the batch to completion and return one result per
     * configuration, in input order, each filled exactly like
     * runWorkloadLimited() fills it (verification included).
     */
    std::vector<LimitedRunResult> run();

  private:
    /** Per-configuration execution state. */
    struct Lane
    {
        MachineConfig config;    //!< as given (reported in results)
        MachineConfig effective; //!< budget-clamped maxCycles
        bool cycleBudgeted = false;
        std::unique_ptr<Processor> cpu;
        bool running = true;
        bool wallTimedOut = false;
        /** Host seconds this lane's slices have consumed. */
        double simSeconds = 0.0;
        /** Wall seconds from batch start to this lane stopping. */
        double wallSeconds = 0.0;
    };

    void finishLane(Lane &lane);

    WorkloadImage image;
    RunLimits limits;
    std::uint64_t sliceCycles;
    std::vector<Lane> lanes;
    std::size_t liveLanes = 0;
    std::chrono::steady_clock::time_point start;
    bool deadlineArmed = false;
    std::chrono::steady_clock::time_point deadline;
};

/**
 * One-shot convenience: run @p configs over @p workload in one batch.
 * Results are in config order and bit-identical (in every
 * deterministic field) to calling runWorkloadLimited() per config.
 */
std::vector<LimitedRunResult>
runWorkloadBatch(const Workload &workload,
                 std::vector<MachineConfig> configs, unsigned scale,
                 const RunLimits &limits = {});

} // namespace sdsp

#endif // SDSP_HARNESS_BATCH_HH

#include "harness/checkpoint.hh"

#include <utility>

#include "common/json.hh"
#include "common/json_reader.hh"
#include "common/logging.hh"
#include "harness/artifacts.hh"

namespace sdsp
{

namespace
{

constexpr int kSchemaVersion = 1;

} // namespace

CheckpointWriter::CheckpointWriter(const std::string &path,
                                   const std::string &suite,
                                   unsigned scale, bool append)
    : path_(path), suite_(suite), scale_(scale)
{
    std::ios_base::openmode mode = std::ios::out;
    mode |= append ? std::ios::app : std::ios::trunc;
    out_.open(path, mode);
    if (!out_)
        warn("checkpoint: cannot open %s; progress will not be saved",
             path.c_str());
}

void
CheckpointWriter::record(const SweepJob &job, const JobOutcome &outcome)
{
    std::lock_guard<std::mutex> hold(mutex_);
    if (!out_)
        return;

    JsonWriter json;
    json.beginObject();
    json.key("v").value(static_cast<std::uint64_t>(kSchemaVersion));
    json.key("suite").value(suite_);
    json.key("scale").value(static_cast<std::uint64_t>(scale_));
    json.key("benchmark").value(job.workload->name());
    json.key("label").value(job.label);
    json.key("config_key").value(configKey(job.config));
    json.key("status").value(jobStatusName(outcome.status));
    json.key("attempts").value(
        static_cast<std::uint64_t>(outcome.attempts));
    json.key("error").value(outcome.error);
    json.key("result");
    appendJson(json, outcome.result, /*include_stats=*/false);
    json.endObject();

    out_ << json.str() << '\n';
    // Flush per line: a hard kill must lose at most the in-flight
    // jobs, never the lines already recorded.
    out_.flush();
}

CheckpointLog
loadCheckpoint(const std::string &path, const std::string &suite,
               unsigned scale)
{
    std::ifstream in(path);
    if (!in)
        fatal("checkpoint: cannot open %s", path.c_str());

    CheckpointLog log;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        ++log.linesTotal;

        std::string error;
        std::optional<JsonValue> doc = parseJson(line, &error);
        if (!doc || !doc->isObject()) {
            // A hard kill can tear the final line mid-write; that is
            // exactly the situation resume exists for, so skip it.
            warn("checkpoint %s:%zu: unreadable line ignored (%s)",
                 path.c_str(), line_no,
                 doc ? "not an object" : error.c_str());
            ++log.linesIgnored;
            continue;
        }

        const JsonValue *version = doc->find("v");
        std::optional<std::uint64_t> v =
            version ? version->toUint64() : std::nullopt;
        if (!v || *v != kSchemaVersion) {
            fatal("checkpoint %s:%zu: schema version %s (want %d)",
                  path.c_str(), line_no,
                  version ? version->raw().c_str() : "missing",
                  kSchemaVersion);
        }

        const JsonValue *line_suite = doc->find("suite");
        std::optional<std::string> suite_name =
            line_suite ? line_suite->toString() : std::nullopt;
        if (!suite_name || *suite_name != suite) {
            fatal("checkpoint %s:%zu: suite \"%s\" does not match "
                  "this run (\"%s\") — wrong checkpoint file?",
                  path.c_str(), line_no,
                  suite_name ? suite_name->c_str() : "?",
                  suite.c_str());
        }

        const JsonValue *line_scale = doc->find("scale");
        std::optional<std::uint64_t> scale_value =
            line_scale ? line_scale->toUint64() : std::nullopt;
        if (!scale_value || *scale_value != scale) {
            fatal("checkpoint %s:%zu: scale %s does not match this "
                  "run (%u) — results would not be comparable",
                  path.c_str(), line_no,
                  line_scale ? line_scale->raw().c_str() : "missing",
                  scale);
        }

        const JsonValue *benchmark = doc->find("benchmark");
        const JsonValue *label = doc->find("label");
        const JsonValue *config_key = doc->find("config_key");
        const JsonValue *status = doc->find("status");
        const JsonValue *err = doc->find("error");
        const JsonValue *attempts = doc->find("attempts");
        const JsonValue *result = doc->find("result");
        if (!benchmark || !benchmark->isString() || !label ||
            !label->isString() || !config_key ||
            !config_key->isString() || !status || !status->isString() ||
            !result || !result->isObject()) {
            warn("checkpoint %s:%zu: incomplete line ignored",
                 path.c_str(), line_no);
            ++log.linesIgnored;
            continue;
        }

        CheckpointEntry entry;
        entry.benchmark = benchmark->asString();
        entry.label = label->asString();
        entry.configKey = config_key->asString();
        entry.status = status->asString();
        if (err && err->isString())
            entry.error = err->asString();
        if (attempts) {
            entry.attempts = static_cast<unsigned>(
                attempts->toUint64().value_or(1));
        }
        const JsonValue *cycles = result->find("cycles");
        const JsonValue *committed = result->find("committed");
        if (cycles)
            entry.cycles = cycles->toUint64().value_or(0);
        if (committed)
            entry.committed = committed->toUint64().value_or(0);
        entry.resultRaw = result->raw();
        log.entries.push_back(std::move(entry));
    }
    return log;
}

} // namespace sdsp

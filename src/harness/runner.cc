#include "harness/runner.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/logging.hh"

namespace sdsp
{

namespace
{

/**
 * Shared body of runWorkload/runWorkloadLimited. @p limits may be
 * null (no watchdogs: the plain Processor::run path).
 */
RunResult
runWorkloadImpl(const Workload &workload, const MachineConfig &config,
                unsigned scale, const RunLimits *limits,
                bool *timed_out, std::string *timeout_reason,
                TraceSink *sink = nullptr)
{
    auto start = std::chrono::steady_clock::now();

    MachineConfig effective = config;
    bool cycle_budgeted = false;
    if (limits && limits->maxCycles &&
        limits->maxCycles < config.maxCycles) {
        effective.maxCycles = limits->maxCycles;
        cycle_budgeted = true;
    }

    WorkloadImage image = workload.build(effective.numThreads, scale);

    Processor cpu(effective, image.program);
    if (sink)
        cpu.setTraceSink(sink);
    auto sim_start = std::chrono::steady_clock::now();
    SimResult sim;
    bool wall_timed_out = false;
    if (limits && limits->timeoutSeconds > 0.0) {
        auto deadline =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            limits->timeoutSeconds));
        sim = runToDeadline(cpu, effective.maxCycles, deadline,
                            &wall_timed_out);
    } else {
        sim = cpu.run();
    }
    auto sim_end = std::chrono::steady_clock::now();

    RunResult result;
    result.benchmark = image.name;
    result.config = config;
    result.finished = sim.finished;
    result.cycles = sim.cycles;
    result.committed = sim.committedInstructions;
    result.ipc = sim.ipc();
    result.cacheHitRate = cpu.dcache().hitRate();
    result.branchAccuracy = cpu.predictor().accuracy();
    result.suStalls = cpu.suStalls();
    result.flexCommits = cpu.flexibleCommits();
    result.stallCycles.resize(config.numThreads);
    for (unsigned t = 0; t < config.numThreads; ++t) {
        for (unsigned r = 0; r < kNumStallReasons; ++r) {
            result.stallCycles[t][r] = cpu.stallCycles(
                static_cast<ThreadId>(t), static_cast<StallReason>(r));
        }
    }
    cpu.reportStats(result.stats);

    if (sim.finished) {
        VerifyResult verdict = image.verify(cpu.memory());
        result.verified = verdict.ok;
        result.verifyMessage = verdict.message;
    } else {
        result.verified = false;
        if (wall_timed_out) {
            result.verifyMessage = format(
                "wall-clock budget (%.3f s) exceeded at cycle %llu",
                limits->timeoutSeconds,
                static_cast<unsigned long long>(sim.cycles));
        } else if (cycle_budgeted &&
                   sim.cycles >= effective.maxCycles) {
            result.verifyMessage = format(
                "simulated-cycle budget (%llu cycles) exceeded",
                static_cast<unsigned long long>(effective.maxCycles));
        } else {
            result.verifyMessage = "simulation hit the cycle cap";
        }
        if (timed_out) {
            *timed_out =
                wall_timed_out ||
                (cycle_budgeted && sim.cycles >= effective.maxCycles);
            if (*timed_out && timeout_reason)
                *timeout_reason = result.verifyMessage;
        }
    }
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.simSeconds =
        std::chrono::duration<double>(sim_end - sim_start).count();
    if (result.simSeconds > 0.0) {
        result.simCyclesPerSecond =
            static_cast<double>(result.cycles) / result.simSeconds;
        result.simInstsPerSecond =
            static_cast<double>(result.committed) / result.simSeconds;
    }
    return result;
}

} // namespace

RunResult
runWorkload(const Workload &workload, const MachineConfig &config,
            unsigned scale, TraceSink *sink)
{
    return runWorkloadImpl(workload, config, scale, nullptr, nullptr,
                           nullptr, sink);
}

LimitedRunResult
runWorkloadLimited(const Workload &workload,
                   const MachineConfig &config, unsigned scale,
                   const RunLimits &limits)
{
    LimitedRunResult limited;
    limited.result =
        runWorkloadImpl(workload, config, scale, &limits,
                        &limited.timedOut, &limited.timeoutReason);
    return limited;
}

SimResult
runToDeadline(Processor &cpu, std::uint64_t cycle_cap,
              std::chrono::steady_clock::time_point deadline,
              bool *timed_out)
{
    // Check the clock once per slice, not per cycle: a clock read
    // every few thousand simulated cycles is noise (< 0.1 %) while
    // still bounding overshoot to well under a millisecond.
    constexpr std::uint64_t kSliceCycles = 4096;

    bool hit_deadline = false;
    while (!cpu.done() && cpu.cycle() < cycle_cap) {
        std::uint64_t slice_end =
            std::min<std::uint64_t>(cycle_cap,
                                    cpu.cycle() + kSliceCycles);
        while (!cpu.done() && cpu.cycle() < slice_end)
            cpu.step();
        if (!cpu.done() &&
            std::chrono::steady_clock::now() >= deadline) {
            hit_deadline = true;
            break;
        }
    }
    cpu.finishTrace();

    if (timed_out)
        *timed_out = hit_deadline && !cpu.done();

    SimResult sim;
    sim.finished = cpu.done();
    sim.cycles = cpu.cycle();
    sim.committedInstructions = cpu.committedInstructions();
    return sim;
}

double
speedupPercent(Cycle multithreaded_cycles, Cycle single_thread_cycles)
{
    sdsp_assert(multithreaded_cycles > 0 && single_thread_cycles > 0,
                "speedup of a zero-cycle run");
    double mt_perf = 1.0 / static_cast<double>(multithreaded_cycles);
    double st_perf = 1.0 / static_cast<double>(single_thread_cycles);
    return (mt_perf - st_perf) / st_perf * 100.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = std::accumulate(values.begin(), values.end(), 0.0);
    return sum / static_cast<double>(values.size());
}

void
requireGood(const RunResult &result)
{
    if (!result.finished) {
        fatal("%s (%s): did not finish", result.benchmark.c_str(),
              result.config.toString().c_str());
    }
    if (!result.verified) {
        fatal("%s (%s): verification failed: %s",
              result.benchmark.c_str(),
              result.config.toString().c_str(),
              result.verifyMessage.c_str());
    }
}

} // namespace sdsp

#include "harness/runner.hh"

#include <chrono>
#include <numeric>

#include "common/logging.hh"

namespace sdsp
{

RunResult
runWorkload(const Workload &workload, const MachineConfig &config,
            unsigned scale)
{
    auto start = std::chrono::steady_clock::now();
    WorkloadImage image = workload.build(config.numThreads, scale);

    Processor cpu(config, image.program);
    auto sim_start = std::chrono::steady_clock::now();
    SimResult sim = cpu.run();
    auto sim_end = std::chrono::steady_clock::now();

    RunResult result;
    result.benchmark = image.name;
    result.config = config;
    result.finished = sim.finished;
    result.cycles = sim.cycles;
    result.committed = sim.committedInstructions;
    result.ipc = sim.ipc();
    result.cacheHitRate = cpu.dcache().hitRate();
    result.branchAccuracy = cpu.predictor().accuracy();
    result.suStalls = cpu.suStalls();
    result.flexCommits = cpu.flexibleCommits();
    result.stallCycles.resize(config.numThreads);
    for (unsigned t = 0; t < config.numThreads; ++t) {
        for (unsigned r = 0; r < kNumStallReasons; ++r) {
            result.stallCycles[t][r] = cpu.stallCycles(
                static_cast<ThreadId>(t), static_cast<StallReason>(r));
        }
    }
    cpu.reportStats(result.stats);

    if (sim.finished) {
        VerifyResult verdict = image.verify(cpu.memory());
        result.verified = verdict.ok;
        result.verifyMessage = verdict.message;
    } else {
        result.verified = false;
        result.verifyMessage = "simulation hit the cycle cap";
    }
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.simSeconds =
        std::chrono::duration<double>(sim_end - sim_start).count();
    if (result.simSeconds > 0.0) {
        result.simCyclesPerSecond =
            static_cast<double>(result.cycles) / result.simSeconds;
        result.simInstsPerSecond =
            static_cast<double>(result.committed) / result.simSeconds;
    }
    return result;
}

double
speedupPercent(Cycle multithreaded_cycles, Cycle single_thread_cycles)
{
    sdsp_assert(multithreaded_cycles > 0 && single_thread_cycles > 0,
                "speedup of a zero-cycle run");
    double mt_perf = 1.0 / static_cast<double>(multithreaded_cycles);
    double st_perf = 1.0 / static_cast<double>(single_thread_cycles);
    return (mt_perf - st_perf) / st_perf * 100.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = std::accumulate(values.begin(), values.end(), 0.0);
    return sum / static_cast<double>(values.size());
}

void
requireGood(const RunResult &result)
{
    if (!result.finished) {
        fatal("%s (%s): did not finish", result.benchmark.c_str(),
              result.config.toString().c_str());
    }
    if (!result.verified) {
        fatal("%s (%s): verification failed: %s",
              result.benchmark.c_str(),
              result.config.toString().c_str(),
              result.verifyMessage.c_str());
    }
}

} // namespace sdsp

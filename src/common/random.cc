#include "common/random.hh"

namespace sdsp
{

Xorshift64::Xorshift64(std::uint64_t seed)
    : state(seed ? seed : 0x9e3779b97f4a7c15ull)
{
}

std::uint64_t
Xorshift64::next()
{
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
}

std::uint64_t
Xorshift64::nextBelow(std::uint64_t bound)
{
    // Modulo bias is irrelevant for workload generation purposes.
    return next() % bound;
}

double
Xorshift64::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Xorshift64::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

} // namespace sdsp

/**
 * @file
 * Error and status reporting, in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a bug in the
 *            simulator itself); aborts.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, malformed program); exits with code 1.
 * warn()   - something is questionable but simulation continues.
 * inform() - neutral status output.
 */

#ifndef SDSP_COMMON_LOGGING_HH
#define SDSP_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace sdsp
{

/** Printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** Printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

#define panic(...)  ::sdsp::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...)  ::sdsp::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...)   ::sdsp::warnImpl(__VA_ARGS__)
#define inform(...) ::sdsp::informImpl(__VA_ARGS__)

/** Assert a simulator invariant with a formatted explanation. */
#define sdsp_assert(cond, ...)                                             \
    do {                                                                   \
        if (!(cond))                                                       \
            ::sdsp::panicImpl(__FILE__, __LINE__, __VA_ARGS__);            \
    } while (0)

} // namespace sdsp

#endif // SDSP_COMMON_LOGGING_HH

#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace sdsp
{

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    sdsp_assert(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    sdsp_assert(row.size() == header_.size(),
                "row arity %zu != header arity %zu", row.size(),
                header_.size());
    rows_.push_back(std::move(row));
}

void
Table::beginRow()
{
    rows_.emplace_back();
}

void
Table::cell(const std::string &text)
{
    sdsp_assert(!rows_.empty(), "cell() before beginRow()");
    sdsp_assert(rows_.back().size() < header_.size(),
                "too many cells in row");
    rows_.back().push_back(text);
}

void
Table::cell(double value, int precision)
{
    cell(format("%.*f", precision, value));
}

void
Table::cell(std::uint64_t value)
{
    cell(format("%llu", static_cast<unsigned long long>(value)));
}

std::string
Table::toAscii() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string &text = c < row.size() ? row[c] : "";
            os << (c == 0 ? "" : "  ");
            os << text
               << std::string(widths[c] - text.size(), ' ');
        }
        os << "\n";
    };

    std::ostringstream os;
    emit_row(os, header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(os, row);
    return os.str();
}

std::string
Table::toCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c == 0 ? "" : ",") << quote(row[c]);
        os << "\n";
    };
    emit_row(header_);
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

} // namespace sdsp

/**
 * @file
 * Bit-manipulation helpers used by the instruction encoder/decoder and
 * the cache indexing logic.
 */

#ifndef SDSP_COMMON_BITFIELD_HH
#define SDSP_COMMON_BITFIELD_HH

#include <cstdint>

#include "common/logging.hh"

namespace sdsp
{

/**
 * Extract bits [hi:lo] (inclusive) of @p value, right-justified.
 *
 * @param value Source word.
 * @param hi    Most-significant bit of the field (0-based).
 * @param lo    Least-significant bit of the field.
 * @return The extracted field.
 */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned hi, unsigned lo)
{
    unsigned width = hi - lo + 1;
    std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return (value >> lo) & mask;
}

/**
 * Insert @p field into bits [hi:lo] of @p base and return the result.
 * Bits of @p field above the target width are discarded.
 */
constexpr std::uint64_t
insertBits(std::uint64_t base, unsigned hi, unsigned lo,
           std::uint64_t field)
{
    unsigned width = hi - lo + 1;
    std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return (base & ~(mask << lo)) | ((field & mask) << lo);
}

/**
 * Sign-extend the low @p width bits of @p value to a signed 64-bit
 * integer.
 */
constexpr std::int64_t
sext(std::uint64_t value, unsigned width)
{
    unsigned shift = 64 - width;
    return static_cast<std::int64_t>(value << shift) >>
           static_cast<std::int64_t>(shift);
}

/** True iff @p value is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t value)
{
    unsigned n = 0;
    while (value > 1) {
        value >>= 1;
        ++n;
    }
    return n;
}

/**
 * Does @p value fit in a @p width-bit two's-complement immediate
 * field?
 */
constexpr bool
fitsSigned(std::int64_t value, unsigned width)
{
    std::int64_t lo = -(std::int64_t{1} << (width - 1));
    std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** Does @p value fit in a @p width-bit unsigned field? */
constexpr bool
fitsUnsigned(std::uint64_t value, unsigned width)
{
    return width >= 64 || value < (std::uint64_t{1} << width);
}

} // namespace sdsp

#endif // SDSP_COMMON_BITFIELD_HH

/**
 * @file
 * A tiny named-statistics registry.
 *
 * Simulator components own plain integer/double counters for speed; a
 * StatsRegistry gathers name -> value pairs at reporting time so the
 * harness can print, diff, and CSV-dump any component's statistics
 * without knowing its concrete type.
 */

#ifndef SDSP_COMMON_STATS_REGISTRY_HH
#define SDSP_COMMON_STATS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sdsp
{

/** One reported statistic. */
struct StatEntry
{
    std::string name;
    double value;
};

/**
 * An ordered collection of named statistics. Components implement a
 * `reportStats(StatsRegistry &)` method that appends their counters;
 * the registry preserves insertion order for stable output.
 */
class StatsRegistry
{
  public:
    /** Append a statistic. Duplicate names are allowed (prefixed). */
    void add(const std::string &name, double value);

    /** Append a statistic under `prefix.name`. */
    void add(const std::string &prefix, const std::string &name,
             double value);

    /** Look up a statistic by exact name. Fatal if absent. */
    double get(const std::string &name) const;

    /** True if a statistic with this exact name exists. */
    bool has(const std::string &name) const;

    /** All entries in insertion order. */
    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Render as "name = value" lines. */
    std::string toString() const;

  private:
    std::vector<StatEntry> entries_;
};

} // namespace sdsp

#endif // SDSP_COMMON_STATS_REGISTRY_HH

/**
 * @file
 * A tiny named-statistics registry.
 *
 * Simulator components own plain integer/double counters for speed; a
 * StatsRegistry gathers name -> value pairs at reporting time so the
 * harness can print, diff, and CSV-dump any component's statistics
 * without knowing its concrete type.
 *
 * Besides scalars, the registry holds log2-bucketed Distribution
 * entries (latency histograms): components sample values into a
 * Distribution during simulation (fixed storage, allocation-free) and
 * append it at reporting time next to their scalars.
 */

#ifndef SDSP_COMMON_STATS_REGISTRY_HH
#define SDSP_COMMON_STATS_REGISTRY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace sdsp
{

/** One reported statistic. */
struct StatEntry
{
    std::string name;
    double value;
};

/**
 * A log2-bucketed histogram of non-negative integer samples.
 *
 * Bucket 0 holds exactly the value 0; bucket b >= 1 holds the values
 * in [2^(b-1), 2^b - 1], so bucketOf(v) = bit_width(v). The full
 * 64-bit range fits in 65 buckets and sampling is two increments and
 * a bit-scan — cheap enough for once-per-committed-instruction use on
 * the simulator hot path, with no heap storage at all.
 */
class Distribution
{
  public:
    static constexpr unsigned kBuckets = 65;

    /** Record one sample. */
    void
    sample(std::uint64_t value)
    {
        ++buckets_[bucketOf(value)];
        ++count_;
        sum_ += value;
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    /** Bucket index of @p value (0 for 0, else bit_width). */
    static unsigned
    bucketOf(std::uint64_t value)
    {
        return static_cast<unsigned>(std::bit_width(value));
    }

    /** Smallest value bucket @p b holds. */
    static std::uint64_t
    bucketLo(unsigned b)
    {
        return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    }

    /** Largest value bucket @p b holds. */
    static std::uint64_t
    bucketHi(unsigned b)
    {
        if (b == 0)
            return 0;
        if (b >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << b) - 1;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    std::uint64_t
    bucketCount(unsigned b) const
    {
        return b < kBuckets ? buckets_[b] : 0;
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/** One reported histogram. */
struct DistEntry
{
    std::string name;
    Distribution dist;
};

/**
 * An ordered collection of named statistics. Components implement a
 * `reportStats(StatsRegistry &)` method that appends their counters;
 * the registry preserves insertion order for stable output.
 */
class StatsRegistry
{
  public:
    /** Append a statistic. Duplicate names are allowed (prefixed). */
    void add(const std::string &name, double value);

    /** Append a statistic under `prefix.name`. */
    void add(const std::string &prefix, const std::string &name,
             double value);

    /** Look up a statistic by exact name. Fatal if absent. */
    double get(const std::string &name) const;

    /** True if a statistic with this exact name exists. */
    bool has(const std::string &name) const;

    /** Append a histogram. */
    void addDistribution(const std::string &name,
                         const Distribution &dist);

    /** Look up a histogram by exact name. Fatal if absent. */
    const Distribution &getDistribution(const std::string &name) const;

    /** True if a histogram with this exact name exists. */
    bool hasDistribution(const std::string &name) const;

    /** All entries in insertion order. */
    const std::vector<StatEntry> &entries() const { return entries_; }

    /** All histograms in insertion order. */
    const std::vector<DistEntry> &distributions() const
    {
        return dists_;
    }

    /** Render as "name = value" lines, then one block per histogram
     *  ("histogram <name>: ..." header and non-empty bucket lines). */
    std::string toString() const;

  private:
    std::vector<StatEntry> entries_;
    std::vector<DistEntry> dists_;
};

} // namespace sdsp

#endif // SDSP_COMMON_STATS_REGISTRY_HH

/**
 * @file
 * Fundamental scalar type aliases used across the simulator.
 *
 * The simulated machine is a 32-bit-instruction RISC with 64-bit
 * registers and a byte-addressable data memory; the aliases below name
 * the quantities that flow between its components so that signatures
 * stay self-describing.
 */

#ifndef SDSP_COMMON_TYPES_HH
#define SDSP_COMMON_TYPES_HH

#include <cstdint>

namespace sdsp
{

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** A byte address in simulated data memory. */
using Addr = std::uint32_t;

/** An instruction index in simulated instruction memory (not bytes). */
using InstAddr = std::uint32_t;

/** The raw 32-bit encoding of one instruction. */
using InstWord = std::uint32_t;

/** Contents of one 64-bit general-purpose register. */
using RegVal = std::uint64_t;

/** Architectural (per-thread) register index. */
using RegIndex = std::uint8_t;

/** Physical register-file index (after static partitioning). */
using PhysRegIndex = std::uint16_t;

/** Hardware thread (instruction stream) identifier. */
using ThreadId = std::uint8_t;

/**
 * Renaming tag. Tags are drawn from a monotonically increasing
 * sequence, so a tag is unique among all in-flight instructions of all
 * threads, exactly as the paper's renaming hardware requires ("does not
 * reuse one until its previous occurrence is no longer in use").
 */
using Tag = std::uint64_t;

/** Sentinel for "no tag / operand already has its value". */
inline constexpr Tag kNoTag = ~Tag{0};

} // namespace sdsp

#endif // SDSP_COMMON_TYPES_HH

/**
 * @file
 * A minimal JSON reader, the read-side counterpart of JsonWriter.
 *
 * The harness originally never read JSON back; the resumable sweep
 * changed that: checkpoint lines (JSONL) must be reloaded, their
 * identity keys verified, and the stored result objects re-emitted
 * byte-identically. The reader therefore keeps, for every value, the
 * exact input span it was parsed from (raw()), so a checkpointed
 * result can be spliced into a new document without a lossy
 * parse/re-serialize round trip.
 *
 * Numbers are parsed with std::from_chars — locale independent, like
 * the writer — and the original token is preserved so integers up to
 * uint64 range can be recovered exactly via toUint64().
 */

#ifndef SDSP_COMMON_JSON_READER_HH
#define SDSP_COMMON_JSON_READER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdsp
{

/**
 * One parsed JSON value. Accessors of the wrong kind panic (the
 * caller is expected to check the kind first, or use the checked
 * to*() helpers which return nullopt instead).
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const;
    double asDouble() const;
    /** Decoded string contents (escapes resolved). */
    const std::string &asString() const;
    /** Array elements in document order. */
    const std::vector<JsonValue> &items() const;
    /** Object members in document order (duplicates preserved). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** First member named @p key, or nullptr. Panics unless object. */
    const JsonValue *find(const std::string &key) const;

    /** The exact input text this value was parsed from. */
    const std::string &raw() const { return raw_; }

    /** The number's original token as an exact uint64, if it is one
     *  (non-negative, integral, in range); nullopt otherwise or when
     *  this is not a number. */
    std::optional<std::uint64_t> toUint64() const;

    /** String contents if this is a string, else nullopt. */
    std::optional<std::string> toString() const;

    /** Numeric value if this is a number, else nullopt. */
    std::optional<double> toDouble() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    /** String contents, or the raw number token. */
    std::string text_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
    std::string raw_;
};

/**
 * Parse one complete JSON document (leading/trailing whitespace
 * allowed, nothing else may follow). On failure returns nullopt and,
 * when @p error is non-null, stores a message with the byte offset.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

} // namespace sdsp

#endif // SDSP_COMMON_JSON_READER_HH

/**
 * @file
 * ASCII table and CSV rendering for the benchmark harness.
 *
 * Every figure and table reproduced from the paper is printed through
 * this formatter so that all bench binaries share one output style.
 */

#ifndef SDSP_COMMON_TABLE_HH
#define SDSP_COMMON_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sdsp
{

/**
 * A rectangular table of strings with a header row, rendered either as
 * an aligned ASCII table or as CSV.
 */
class Table
{
  public:
    /** @param header Column titles; fixes the column count. */
    explicit Table(std::vector<std::string> header);

    /** Append a full row. Fatal if the arity mismatches the header. */
    void addRow(std::vector<std::string> row);

    /** Start a new row built cell-by-cell with cell(). */
    void beginRow();

    /** Append one cell to the row opened by beginRow(). */
    void cell(const std::string &text);

    /** Append a formatted numeric cell (printf %.*f). */
    void cell(double value, int precision = 2);

    /** Append an integer cell. */
    void cell(std::uint64_t value);

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render as an aligned ASCII table with a rule under the header. */
    std::string toAscii() const;

    /** Render as RFC-4180-ish CSV (quotes only when needed). */
    std::string toCsv() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sdsp

#endif // SDSP_COMMON_TABLE_HH

#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <system_error>

#include "common/logging.hh"

namespace sdsp
{

void
JsonWriter::beforeValue()
{
    sdsp_assert(!done_, "JsonWriter: document already complete");
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    sdsp_assert(open_.empty() || open_.back() == 'a',
                "JsonWriter: value inside an object needs a key");
    if (!open_.empty()) {
        if (hasElement_.back())
            out_ += ',';
        hasElement_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    open_.push_back('o');
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    sdsp_assert(!open_.empty() && open_.back() == 'o' && !afterKey_,
                "JsonWriter: endObject without matching beginObject");
    out_ += '}';
    open_.pop_back();
    hasElement_.pop_back();
    if (open_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    open_.push_back('a');
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    sdsp_assert(!open_.empty() && open_.back() == 'a',
                "JsonWriter: endArray without matching beginArray");
    out_ += ']';
    open_.pop_back();
    hasElement_.pop_back();
    if (open_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    sdsp_assert(!open_.empty() && open_.back() == 'o' && !afterKey_,
                "JsonWriter: key() is only valid inside an object");
    if (hasElement_.back())
        out_ += ',';
    hasElement_.back() = true;
    out_ += '"';
    out_ += escaped(name);
    out_ += "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    beforeValue();
    out_ += '"';
    out_ += escaped(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    if (!std::isfinite(number))
        return null();
    beforeValue();
    // std::to_chars emits the shortest decimal form that round-trips
    // the double, and — unlike the printf family — is locale
    // independent, so artifacts stay valid JSON under comma-decimal
    // locales (RFC 8259 mandates '.' as the decimal separator).
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), number);
    sdsp_assert(ec == std::errc(), "JsonWriter: double format failed");
    out_.append(buf, end);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    out_ += format("%llu", static_cast<unsigned long long>(number));
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    out_ += format("%lld", static_cast<long long>(number));
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned number)
{
    return value(static_cast<std::uint64_t>(number));
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beforeValue();
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &raw)
{
    sdsp_assert(!raw.empty(), "JsonWriter: empty raw value");
    beforeValue();
    out_ += raw;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    sdsp_assert(open_.empty() && !afterKey_,
                "JsonWriter: str() with %zu open containers",
                open_.size());
    return out_;
}

std::string
JsonWriter::escaped(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        unsigned char ch = static_cast<unsigned char>(c);
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (ch < 0x20)
                out += format("\\u%04x", ch);
            else
                out += c;
        }
    }
    return out;
}

} // namespace sdsp

#include "common/stats_registry.hh"

#include <sstream>

#include "common/logging.hh"

namespace sdsp
{

void
StatsRegistry::add(const std::string &name, double value)
{
    entries_.push_back({name, value});
}

void
StatsRegistry::add(const std::string &prefix, const std::string &name,
                   double value)
{
    entries_.push_back({prefix + "." + name, value});
}

double
StatsRegistry::get(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return e.value;
    }
    fatal("no statistic named '%s'", name.c_str());
}

bool
StatsRegistry::has(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return true;
    }
    return false;
}

std::string
StatsRegistry::toString() const
{
    std::ostringstream os;
    for (const auto &e : entries_)
        os << e.name << " = " << e.value << "\n";
    return os.str();
}

} // namespace sdsp

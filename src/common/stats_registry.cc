#include "common/stats_registry.hh"

#include <sstream>

#include "common/logging.hh"

namespace sdsp
{

void
StatsRegistry::add(const std::string &name, double value)
{
    entries_.push_back({name, value});
}

void
StatsRegistry::add(const std::string &prefix, const std::string &name,
                   double value)
{
    entries_.push_back({prefix + "." + name, value});
}

double
StatsRegistry::get(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return e.value;
    }
    fatal("no statistic named '%s'", name.c_str());
}

bool
StatsRegistry::has(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return true;
    }
    return false;
}

void
StatsRegistry::addDistribution(const std::string &name,
                               const Distribution &dist)
{
    dists_.push_back({name, dist});
}

const Distribution &
StatsRegistry::getDistribution(const std::string &name) const
{
    for (const auto &d : dists_) {
        if (d.name == name)
            return d.dist;
    }
    fatal("no histogram named '%s'", name.c_str());
}

bool
StatsRegistry::hasDistribution(const std::string &name) const
{
    for (const auto &d : dists_) {
        if (d.name == name)
            return true;
    }
    return false;
}

std::string
StatsRegistry::toString() const
{
    std::ostringstream os;
    for (const auto &e : entries_)
        os << e.name << " = " << e.value << "\n";
    for (const auto &d : dists_) {
        os << format("histogram %s: count=%llu mean=%.3f min=%llu "
                     "max=%llu\n",
                     d.name.c_str(),
                     static_cast<unsigned long long>(d.dist.count()),
                     d.dist.mean(),
                     static_cast<unsigned long long>(d.dist.min()),
                     static_cast<unsigned long long>(d.dist.max()));
        for (unsigned b = 0; b < Distribution::kBuckets; ++b) {
            if (!d.dist.bucketCount(b))
                continue;
            os << format(
                "  [%llu, %llu] %llu\n",
                static_cast<unsigned long long>(
                    Distribution::bucketLo(b)),
                static_cast<unsigned long long>(
                    Distribution::bucketHi(b)),
                static_cast<unsigned long long>(d.dist.bucketCount(b)));
        }
    }
    return os.str();
}

} // namespace sdsp

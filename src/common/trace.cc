#include "common/trace.hh"

#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"

namespace sdsp
{

namespace
{

/** pid of the pipeline-event tracks in the Chrome trace. */
constexpr int kPipelinePid = 1;
/** pid of the stall-attribution tracks. */
constexpr int kStallPid = 2;
/** ThreadId is 8 bits, so 256 tracks per pid bound the bitmap. */
constexpr std::size_t kMaxTracks = 256;

} // namespace

const char *
traceEventName(TraceEventKind kind)
{
    switch (kind) {
    case TraceEventKind::Fetch: return "fetch";
    case TraceEventKind::Dispatch: return "dispatch";
    case TraceEventKind::Issue: return "issue";
    case TraceEventKind::Writeback: return "writeback";
    case TraceEventKind::CommitInst: return "commit_inst";
    case TraceEventKind::CommitHalt: return "commit_halt";
    case TraceEventKind::CommitBlock: return "commit_block";
    case TraceEventKind::Squash: return "squash";
    case TraceEventKind::CacheMiss: return "cache_miss";
    case TraceEventKind::Stall: return "stall";
    case TraceEventKind::Counter: return "counter";
    }
    return "unknown";
}

const char *
issueBlockCauseName(IssueBlockCause cause)
{
    switch (cause) {
    case IssueBlockCause::None: return "none";
    case IssueBlockCause::FuBusy: return "fuBusy";
    case IssueBlockCause::MemOrder: return "memOrder";
    case IssueBlockCause::StoreBufferFull: return "storeBufferFull";
    case IssueBlockCause::CachePort: return "cachePort";
    }
    return "unknown";
}

const char *
dispatchWaitCauseName(DispatchWaitCause cause)
{
    switch (cause) {
    case DispatchWaitCause::None: return "none";
    case DispatchWaitCause::SuFull: return "suFull";
    case DispatchWaitCause::Scoreboard: return "scoreboard";
    }
    return "unknown";
}

// --------------------------------------------------------------------
// TextTraceSink
// --------------------------------------------------------------------

void
TextTraceSink::emit(const TraceEvent &event)
{
    auto line = [&](const std::string &msg) {
        out_ << format("[%8llu] ",
                       static_cast<unsigned long long>(event.cycle))
             << msg << "\n";
    };

    switch (event.kind) {
    case TraceEventKind::Fetch:
        line(format("fetch: tid=%u pc=%u n=%zu", unsigned{event.tid},
                    event.pc, static_cast<std::size_t>(event.args[0])));
        break;
    case TraceEventKind::CommitHalt:
        line(format("commit: thread %u HALT", unsigned{event.tid}));
        break;
    case TraceEventKind::CommitBlock:
        line(format("commit: block seq=%llu tid=%u from slot %zu",
                    static_cast<unsigned long long>(event.seq),
                    unsigned{event.tid},
                    static_cast<std::size_t>(event.args[0])));
        break;
    case TraceEventKind::Squash:
        line(format("squash: tid=%u pc=%u -> %u (%u entries)",
                    unsigned{event.tid}, event.pc,
                    static_cast<InstAddr>(event.args[0]),
                    static_cast<unsigned>(event.args[1])));
        break;
    default:
        // The classic trace never printed the other kinds; stay
        // byte-identical.
        break;
    }
}

// --------------------------------------------------------------------
// JsonTraceSink
// --------------------------------------------------------------------

JsonTraceSink::JsonTraceSink(std::ostream &out)
    : out_(out), announced_(2 * kMaxTracks, false)
{
}

JsonTraceSink::~JsonTraceSink()
{
    finish();
}

void
JsonTraceSink::record(const std::string &json)
{
    if (!opened_) {
        out_ << "[\n" << json;
        opened_ = true;
    } else {
        out_ << ",\n" << json;
    }
}

void
JsonTraceSink::ensureThread(int pid, ThreadId tid)
{
    std::size_t index =
        static_cast<std::size_t>(pid - 1) * kMaxTracks + tid;
    if (announced_[index])
        return;
    announced_[index] = true;

    if (!processesNamed_) {
        processesNamed_ = true;
        // Name the two processes once, before the first real track.
        for (int p : {kPipelinePid, kStallPid}) {
            JsonWriter meta;
            meta.beginObject()
                .field("name", "process_name")
                .field("ph", "M")
                .field("ts", std::uint64_t{0})
                .field("pid", p)
                .key("args")
                .beginObject()
                .field("name", p == kPipelinePid
                                   ? "sdsp pipeline"
                                   : "stall attribution")
                .endObject()
                .endObject();
            record(meta.str());
        }
    }

    JsonWriter meta;
    meta.beginObject()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("ts", std::uint64_t{0})
        .field("pid", pid)
        .field("tid", unsigned{tid})
        .key("args")
        .beginObject()
        .field("name", format("thread %u", unsigned{tid}))
        .endObject()
        .endObject();
    record(meta.str());
}

void
JsonTraceSink::emit(const TraceEvent &event)
{
    sdsp_assert(!finished_, "trace event after finish()");

    JsonWriter w;
    switch (event.kind) {
    case TraceEventKind::Counter:
        // Counters live on the pipeline process; no thread track.
        w.beginObject()
            .field("name", event.label ? event.label : "counter")
            .field("ph", "C")
            .field("ts", event.cycle)
            .field("pid", kPipelinePid)
            .key("args")
            .beginObject();
        if (event.hasFval)
            w.field("value", event.fval);
        else
            w.field("value", event.args[0]);
        w.endObject().endObject();
        break;

    case TraceEventKind::CommitInst:
        ensureThread(kPipelinePid, event.tid);
        w.beginObject()
            .field("name", event.label ? event.label : "inst")
            .field("cat", "instruction")
            .field("ph", "X")
            .field("ts", event.args[0])
            .field("dur", event.cycle - event.args[0])
            .field("pid", kPipelinePid)
            .field("tid", unsigned{event.tid})
            .key("args")
            .beginObject()
            .field("seq", event.seq)
            .field("pc", event.pc)
            .field("fetch", event.args[0])
            .field("dispatch", event.args[1])
            .field("issue", event.args[2])
            .field("complete", event.args[3])
            .field("commit", event.cycle)
            .endObject()
            .endObject();
        break;

    case TraceEventKind::Stall:
        ensureThread(kStallPid, event.tid);
        w.beginObject()
            .field("name", event.label ? event.label : "stall")
            .field("cat", "stall")
            .field("ph", "X")
            .field("ts", event.cycle)
            .field("dur", event.args[1])
            .field("pid", kStallPid)
            .field("tid", unsigned{event.tid})
            .key("args")
            .beginObject()
            .field("reason", event.label ? event.label : "stall")
            .field("cycles", event.args[1])
            .endObject()
            .endObject();
        break;

    default:
        // Everything else is an instant on the thread's pipeline
        // track.
        ensureThread(kPipelinePid, event.tid);
        w.beginObject()
            .field("name", traceEventName(event.kind))
            .field("cat", "pipeline")
            .field("ph", "i")
            .field("s", "t")
            .field("ts", event.cycle)
            .field("pid", kPipelinePid)
            .field("tid", unsigned{event.tid})
            .key("args")
            .beginObject()
            .field("seq", event.seq)
            .field("pc", event.pc);
        if (event.label)
            w.field("op", event.label);
        switch (event.kind) {
        case TraceEventKind::Fetch:
        case TraceEventKind::Dispatch:
            w.field("count", event.args[0]);
            break;
        case TraceEventKind::Squash:
            w.field("resume_pc", event.args[0]);
            w.field("squashed", event.args[1]);
            break;
        case TraceEventKind::CommitBlock:
            w.field("slot", event.args[0]);
            break;
        case TraceEventKind::CacheMiss:
            w.field("address", event.args[0]);
            w.field("ready", event.args[1]);
            break;
        default:
            break;
        }
        w.endObject().endObject();
        break;
    }
    record(w.str());
}

void
JsonTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (!opened_)
        out_ << "[\n";
    out_ << "\n]\n";
    out_.flush();
}

// --------------------------------------------------------------------
// TeeTraceSink
// --------------------------------------------------------------------

void
TeeTraceSink::add(TraceSink *sink)
{
    if (sink)
        sinks_.push_back(sink);
}

void
TeeTraceSink::emit(const TraceEvent &event)
{
    for (TraceSink *sink : sinks_)
        sink->emit(event);
}

void
TeeTraceSink::finish()
{
    for (TraceSink *sink : sinks_)
        sink->finish();
}

} // namespace sdsp

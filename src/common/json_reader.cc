#include "common/json_reader.hh"

#include <charconv>
#include <cctype>
#include <cmath>
#include <system_error>

#include "common/logging.hh"

namespace sdsp
{

bool
JsonValue::asBool() const
{
    sdsp_assert(kind_ == Kind::Bool, "JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    sdsp_assert(kind_ == Kind::Number, "JsonValue: not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    sdsp_assert(kind_ == Kind::String, "JsonValue: not a string");
    return text_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    sdsp_assert(kind_ == Kind::Array, "JsonValue: not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    sdsp_assert(kind_ == Kind::Object, "JsonValue: not an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    sdsp_assert(kind_ == Kind::Object, "JsonValue: not an object");
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::optional<std::uint64_t>
JsonValue::toUint64() const
{
    if (kind_ != Kind::Number)
        return std::nullopt;
    std::uint64_t value = 0;
    auto [end, ec] = std::from_chars(
        text_.data(), text_.data() + text_.size(), value);
    if (ec != std::errc() || end != text_.data() + text_.size())
        return std::nullopt;
    return value;
}

std::optional<std::string>
JsonValue::toString() const
{
    if (kind_ != Kind::String)
        return std::nullopt;
    return text_;
}

std::optional<double>
JsonValue::toDouble() const
{
    if (kind_ != Kind::Number)
        return std::nullopt;
    return number_;
}

/** Recursive-descent parser over one string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    parse(std::string *error)
    {
        JsonValue root;
        if (!parseValue(root, 0)) {
            if (error)
                *error = error_;
            return std::nullopt;
        }
        skipWhitespace();
        if (pos_ != text_.size()) {
            if (error)
                *error = fail("trailing characters after document");
            return std::nullopt;
        }
        return root;
    }

  private:
    /** Containers may nest at most this deep (stack safety). */
    static constexpr unsigned kMaxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;

    std::string
    fail(const std::string &why)
    {
        if (error_.empty())
            error_ = format("JSON error at byte %zu: %s", pos_,
                            why.c_str());
        return error_;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char expect)
    {
        if (pos_ < text_.size() && text_[pos_] == expect) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > kMaxDepth) {
            fail("too deeply nested");
            return false;
        }
        skipWhitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        std::size_t start = pos_;
        bool ok = false;
        switch (text_[pos_]) {
        case '{': ok = parseObject(out, depth); break;
        case '[': ok = parseArray(out, depth); break;
        case '"':
            out.kind_ = JsonValue::Kind::String;
            ok = parseString(out.text_);
            break;
        case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            ok = consumeWord("true");
            if (!ok)
                fail("bad literal");
            break;
        case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            ok = consumeWord("false");
            if (!ok)
                fail("bad literal");
            break;
        case 'n':
            out.kind_ = JsonValue::Kind::Null;
            ok = consumeWord("null");
            if (!ok)
                fail("bad literal");
            break;
        default: ok = parseNumber(out); break;
        }
        if (ok)
            out.raw_.assign(text_.substr(start, pos_ - start));
        return ok;
    }

    bool
    parseObject(JsonValue &out, unsigned depth)
    {
        out.kind_ = JsonValue::Kind::Object;
        consume('{');
        skipWhitespace();
        if (consume('}'))
            return true;
        for (;;) {
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return false;
            }
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.members_.emplace_back(std::move(key),
                                      std::move(value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    parseArray(JsonValue &out, unsigned depth)
    {
        out.kind_ = JsonValue::Kind::Array;
        consume('[');
        skipWhitespace();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.items_.push_back(std::move(value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    /** Append @p code as UTF-8 to @p out. */
    static void
    appendUtf8(std::string &out, std::uint32_t code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    bool
    parseHex4(std::uint32_t &out)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else {
                fail("bad \\u escape digit");
                return false;
            }
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        consume('"');
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                std::uint32_t code = 0;
                if (!parseHex4(code))
                    return false;
                // Combine UTF-16 surrogate pairs.
                if (code >= 0xd800 && code <= 0xdbff) {
                    if (!consumeWord("\\u")) {
                        fail("lone high surrogate");
                        return false;
                    }
                    std::uint32_t low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xdc00 || low > 0xdfff) {
                        fail("bad low surrogate");
                        return false;
                    }
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (low - 0xdc00);
                } else if (code >= 0xdc00 && code <= 0xdfff) {
                    fail("lone low surrogate");
                    return false;
                }
                appendUtf8(out, code);
                break;
            }
            default: fail("bad string escape"); return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        // JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        consume('-');
        if (consume('0')) {
            // no further integer digits allowed
        } else if (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        } else {
            fail("bad number");
            return false;
        }
        if (consume('.')) {
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("bad number fraction");
                return false;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("bad number exponent");
                return false;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        out.kind_ = JsonValue::Kind::Number;
        out.text_.assign(text_.substr(start, pos_ - start));
        // from_chars is locale independent, matching the writer.
        auto [end, ec] =
            std::from_chars(out.text_.data(),
                            out.text_.data() + out.text_.size(),
                            out.number_);
        if (ec == std::errc::result_out_of_range) {
            // Grammar-valid but beyond double range; keep the token,
            // clamp the double (toUint64 still sees the exact text).
            out.number_ = out.text_[0] == '-' ? -HUGE_VAL : HUGE_VAL;
        } else if (ec != std::errc() ||
                   end != out.text_.data() + out.text_.size()) {
            fail("unparseable number");
            return false;
        }
        return true;
    }
};

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return JsonParser(text).parse(error);
}

} // namespace sdsp

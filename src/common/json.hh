/**
 * @file
 * A minimal streaming JSON writer.
 *
 * The harness exports run artifacts (bench_results.json, per-table
 * JSON next to the CSVs) without external dependencies; this writer
 * produces RFC-8259 output with full string escaping. It is
 * write-only by design — nothing in the simulator reads JSON back.
 *
 * Usage:
 *     JsonWriter w;
 *     w.beginObject().field("cycles", std::uint64_t{42});
 *     w.key("tags").beginArray().value("a").value("b").endArray();
 *     w.endObject();
 *     std::string text = w.str();
 */

#ifndef SDSP_COMMON_JSON_HH
#define SDSP_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sdsp
{

/**
 * Builds one JSON document into a string. Structural misuse (a key
 * outside an object, unbalanced end calls, str() mid-document) is a
 * simulator bug and panics.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Name the next value. Only valid directly inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number); //!< non-finite values emit null
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(unsigned number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /**
     * Splice @p raw — one complete, already-serialized JSON value —
     * into the document verbatim. The caller vouches for its
     * validity; the writer only places separators around it. Used to
     * re-emit checkpointed results byte-identically on resume.
     */
    JsonWriter &rawValue(const std::string &raw);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

    /** The finished document. Panics while containers are open. */
    const std::string &str() const;

    /** Escape @p raw for inclusion inside a JSON string literal. */
    static std::string escaped(const std::string &raw);

  private:
    /** Emit a separator/indicate a value is legal here. */
    void beforeValue();

    std::string out_;
    /** Open containers: 'o' for object, 'a' for array. */
    std::vector<char> open_;
    /** Whether the current container already holds an element. */
    std::vector<bool> hasElement_;
    bool afterKey_ = false;
    bool done_ = false;
};

} // namespace sdsp

#endif // SDSP_COMMON_JSON_HH

/**
 * @file
 * Structured pipeline tracing.
 *
 * The simulator's observability layer is built on typed pipeline
 * events rather than printf calls: every stage of the cycle model
 * describes what happened (fetch, dispatch, issue, writeback, commit,
 * squash, cache miss, stall span, counter sample) as a TraceEvent,
 * and a TraceSink decides what to do with it. Three backends ship:
 *
 *  - TextTraceSink reproduces the classic `--trace` line format
 *    byte-for-byte (it prints the event kinds the old printf trace
 *    printed and ignores the rest), so existing scripts keep working;
 *  - JsonTraceSink writes Chrome-trace-event records, one JSON object
 *    per line inside a strictly valid JSON array, so the file loads
 *    directly in ui.perfetto.dev / chrome://tracing AND each line can
 *    be parsed on its own (strip the trailing comma);
 *  - NullTraceSink swallows everything (useful as a test double).
 *
 * Cost model: the processor holds a `TraceSink *` that is nullptr when
 * tracing is off, so the disabled hot path pays one pointer test per
 * event site and performs no allocation — test_allocfree and the
 * simspeed gate enforce this.
 */

#ifndef SDSP_COMMON_TRACE_HH
#define SDSP_COMMON_TRACE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"

namespace sdsp
{

/** What happened. See TraceEvent for the per-kind payload layout. */
enum class TraceEventKind : std::uint8_t
{
    Fetch,       //!< a block entered the fetch latch
    Dispatch,    //!< a decoded block entered the scheduling unit
    Issue,       //!< one instruction left for a functional unit
    Writeback,   //!< one result returned to the scheduling unit
    CommitInst,  //!< one instruction retired (carries its lifecycle)
    CommitHalt,  //!< a HALT retired; the thread is done
    CommitBlock, //!< a whole block left the scheduling unit
    Squash,      //!< a mispredict squashed younger same-thread work
    CacheMiss,   //!< an issued load missed in the data cache
    Stall,       //!< a completed span of cycles charged to one reason
    Counter,     //!< a sampled counter value (SU occupancy, IPC)
};

/** Number of event kinds (for per-kind tables in tests/sinks). */
inline constexpr unsigned kNumTraceEventKinds = 11;

/** Stable lowercase name of @p kind (JSON `name` field). */
const char *traceEventName(TraceEventKind kind);

/**
 * Why a ready instruction most recently failed to issue. Recorded on
 * the SU entry at every failed issue attempt together with the cycle
 * of the attempt, and published on the CommitInst event; the
 * critical-path builder uses it to classify issue-side residual edges
 * (DESIGN.md "Critical-path analysis").
 */
enum class IssueBlockCause : std::uint8_t
{
    None,            //!< never failed an issue attempt
    FuBusy,          //!< no free functional unit of its class
    MemOrder,        //!< conservative load/store disambiguation
    StoreBufferFull, //!< no store-buffer slot available
    CachePort,       //!< data-cache port rejection
};

/** Number of IssueBlockCause values. */
inline constexpr unsigned kNumIssueBlockCauses = 5;

/** Stable camelCase name of @p cause (JSON / stats key). */
const char *issueBlockCauseName(IssueBlockCause cause);

/**
 * Why a fetched block sat in the fetch latch before dispatching.
 * Recorded while the latch is blocked and stamped on every entry of
 * the block when it finally dispatches.
 */
enum class DispatchWaitCause : std::uint8_t
{
    None,       //!< dispatched on its first opportunity
    SuFull,     //!< the scheduling unit had no free block
    Scoreboard, //!< 1-bit scoreboard WAW serialization
};

/** Number of DispatchWaitCause values. */
inline constexpr unsigned kNumDispatchWaitCauses = 3;

/** Stable camelCase name of @p cause (JSON / stats key). */
const char *dispatchWaitCauseName(DispatchWaitCause cause);

/**
 * One pipeline event. The fixed fields are meaningful for almost
 * every kind; `args` carries the kind-specific payload:
 *
 *  kind        seq        pc          args[0..3]
 *  ----        ---        --          ----------
 *  Fetch       -          first pc    count
 *  Dispatch    block seq  first pc    count
 *  Issue       entry seq  pc          -
 *  Writeback   entry seq  pc          -
 *  CommitInst  entry seq  pc          fetched, dispatched, issued,
 *                                     completed (commit = cycle)
 *  CommitHalt  entry seq  pc          -
 *  CommitBlock block seq  -           window slot committed from
 *  Squash      entry seq  resolved pc resumed pc, squashed count
 *  CacheMiss   entry seq  pc          byte address, ready cycle
 *  Stall       -          -           reason index, span length
 *                                     (cycle = span start)
 *  Counter     -          -           integer value (or fval)
 *
 * `label` (when set) points at static storage: an opcode mnemonic,
 * a stall-reason name, or a counter name.
 */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::Fetch;
    Cycle cycle = 0;
    ThreadId tid = 0;
    Tag seq = 0;
    InstAddr pc = 0;
    std::array<std::uint64_t, 4> args{};
    const char *label = nullptr;
    /** Counter kinds may carry a floating-point value instead. */
    double fval = 0.0;
    bool hasFval = false;

    // ---- CommitInst architectural payload (trace recording) ----
    /** The committed instruction's 32-bit encoding. */
    std::uint32_t word = 0;
    /** Effective byte address (loads/stores; valid iff hasMemAddr). */
    std::uint64_t memAddr = 0;
    bool hasMemAddr = false;
    /** Resolved outcome of a conditional branch. */
    bool taken = false;

    // ---- CommitInst dependence evidence (critical-path analysis).
    // Every shipped sink ignores these; the DdgRecorder in
    // src/critpath consumes them to build the dynamic dependence
    // graph. ----
    /** Cycle the entry's last pending operand arrived (== dispatch
     *  cycle when all operands were present at rename time). */
    Cycle readyAt = 0;
    /** Producer tag whose broadcast completed the operands (0 when
     *  the entry was ready at dispatch). */
    Tag wakeupSeq = 0;
    /** Producer tags still in flight when this entry renamed
     *  (0 = operand was ready); the register RAW edges. */
    std::array<Tag, 2> waitSeq{};
    /** Load miss cycles beyond the FU latency (0 on hit/forward). */
    Cycle missExtra = 0;
    /** Last failed issue attempt: why and when. */
    IssueBlockCause issueBlockCause = IssueBlockCause::None;
    Cycle issueBlockCycle = 0;
    /** Why the block waited in the fetch latch before dispatch. */
    DispatchWaitCause dispatchWaitCause = DispatchWaitCause::None;
    /** The instruction was a resolved-mispredicted control
     *  transfer (its squash triggered a same-thread refetch). */
    bool mispredicted = false;
};

/** Consumer of pipeline events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Receive one event. Events of one cycle arrive in pipeline
     *  stage order; Stall spans arrive when the span *ends*. */
    virtual void emit(const TraceEvent &event) = 0;

    /** Finish the output document (idempotent; JSON closer). */
    virtual void finish() {}
};

/** Discards everything. */
class NullTraceSink final : public TraceSink
{
  public:
    void emit(const TraceEvent &) override {}
};

/**
 * The classic text trace. Prints exactly the lines the original
 * printf trace printed — Fetch, CommitHalt, CommitBlock, and Squash —
 * in the original format, and ignores every other kind, so `--trace`
 * output is unchanged by the structured-event rework.
 */
class TextTraceSink final : public TraceSink
{
  public:
    explicit TextTraceSink(std::ostream &out) : out_(out) {}

    void emit(const TraceEvent &event) override;

  private:
    std::ostream &out_;
};

/**
 * Chrome-trace-event writer (the format ui.perfetto.dev and
 * chrome://tracing load natively).
 *
 * Layout: the whole file is one strict JSON array with one record per
 * line (`[`, then `{...},` lines, then a final `{...}` and `]`), so
 * a consumer may either parse the file wholesale or stream it
 * line-wise after stripping the trailing comma.
 *
 * Track mapping:
 *  - pid 1 "pipeline": one duration track per thread. Committed
 *    instructions appear as complete ("X") slices spanning fetch to
 *    commit with the full lifecycle in args; fetch/dispatch/issue/
 *    writeback/squash/cache-miss appear as instant ("i") events.
 *  - pid 2 "stall attribution": one track per thread of "X" slices,
 *    one per attributed non-Active stall span.
 *  - counter ("C") events on pid 1: su_occupancy, ipc.
 */
class JsonTraceSink final : public TraceSink
{
  public:
    explicit JsonTraceSink(std::ostream &out);
    ~JsonTraceSink() override;

    void emit(const TraceEvent &event) override;
    void finish() override;

  private:
    /** Write one raw record line (handles separators). */
    void record(const std::string &json);
    /** Emit thread_name metadata once per (pid, tid). */
    void ensureThread(int pid, ThreadId tid);

    std::ostream &out_;
    bool opened_ = false;
    bool finished_ = false;
    bool processesNamed_ = false;
    /** (pid - 1) * kMaxTracks + tid marks an announced track. */
    std::vector<bool> announced_;
};

/** Forwards every event to each registered sink, in order. */
class TeeTraceSink final : public TraceSink
{
  public:
    void add(TraceSink *sink);

    void emit(const TraceEvent &event) override;
    void finish() override;

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace sdsp

#endif // SDSP_COMMON_TRACE_HH

/**
 * @file
 * Deterministic pseudo-random number generation for workload inputs.
 *
 * All benchmark inputs in the repository come from this generator with
 * fixed seeds, so every figure and table regenerates bit-identically.
 */

#ifndef SDSP_COMMON_RANDOM_HH
#define SDSP_COMMON_RANDOM_HH

#include <cstdint>

namespace sdsp
{

/**
 * xorshift64* generator. Small, fast, seed-stable across platforms,
 * and entirely independent of the C++ standard library's unspecified
 * distribution implementations.
 */
class Xorshift64
{
  public:
    /** @param seed Any value; zero is remapped to a fixed constant. */
    explicit Xorshift64(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

  private:
    std::uint64_t state;
};

} // namespace sdsp

#endif // SDSP_COMMON_RANDOM_HH

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace sdsp
{

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace sdsp

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sdsp
{

namespace
{

/**
 * Emit one complete message line with a single fwrite under a global
 * lock. Concurrent SweepRunner workers warn() from many threads; a
 * prefix/body/newline emitted as separate stdio calls can interleave
 * mid-line, so the whole line is assembled first and written once.
 */
void
emitLine(std::FILE *to, const char *prefix, const std::string &msg)
{
    static std::mutex log_mutex;
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> guard(log_mutex);
    std::fwrite(line.data(), 1, line.size(), to);
    std::fflush(to);
}

} // namespace

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr, "warn: ", msg);
}

void
informImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stdout, "info: ", msg);
}

} // namespace sdsp

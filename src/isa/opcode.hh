/**
 * @file
 * Opcode set of the simulated SDSP-like RISC ISA.
 *
 * The paper's SDSP is a 32-bit-instruction RISC with integer ALU,
 * multiply, divide, load, store and control-transfer units, extended
 * for the study with FP add / multiply / divide units. This file
 * defines the opcode space, the instruction formats, the functional
 * unit class of each opcode, and per-opcode behavioural flags that the
 * decoder and scheduler consult.
 *
 * Multithreading-specific opcodes:
 *  - TID / NTH expose the hardware thread id and thread count, which is
 *    how homogeneous-multitasking programs (all threads run the same
 *    code on different data) find their data partition.
 *  - SPIN is a no-op hint marking a synchronization busy-wait. It is
 *    one of the "synchronization primitive" trigger instructions of the
 *    Conditional Switch fetch policy (paper section 5.1).
 */

#ifndef SDSP_ISA_OPCODE_HH
#define SDSP_ISA_OPCODE_HH

#include <cstdint>

#include "common/logging.hh"

namespace sdsp
{

/** Instruction encoding formats (see instruction.hh for bit layout). */
enum class Format : std::uint8_t
{
    R, //!< op rd, rs1, rs2
    I, //!< op rd, rs1, imm10
    B, //!< op rs1, rs2, imm10   (branches; ST uses rs1=base, rs2=value)
    J, //!< op rd, target17      (direct jumps)
    U, //!< op rd, imm17         (LUI)
};

/** Functional unit classes (paper Table 1). */
enum class FuClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    Load,
    Store,
    Ctrl,
    FpAdd,
    FpMul,
    FpDiv,
    NumClasses,
};

/** Number of functional unit classes. */
inline constexpr unsigned kNumFuClasses =
    static_cast<unsigned>(FuClass::NumClasses);

/** Printable name of a functional unit class. */
const char *fuClassName(FuClass cls);

/** Per-opcode behavioural flags. */
enum OpFlags : std::uint32_t
{
    kReadsRs1  = 1u << 0,
    kReadsRs2  = 1u << 1,
    kWritesRd  = 1u << 2,
    kIsLoad    = 1u << 3,
    kIsStore   = 1u << 4,
    kIsCondBr  = 1u << 5,  //!< conditional direct branch
    kIsDirJump = 1u << 6,  //!< unconditional direct jump (J/JAL)
    kIsIndJump = 1u << 7,  //!< unconditional indirect jump (JR)
    kIsHalt    = 1u << 8,  //!< terminates its thread at commit
    kIsTrigger = 1u << 9,  //!< Conditional Switch fetch trigger
};

/**
 * The opcode space. The X-macro lists, for each opcode:
 * name, format, functional unit class, flags.
 */
#define SDSP_FOR_EACH_OPCODE(X)                                            \
    /* Integer ALU */                                                      \
    X(NOP,    R, IntAlu, 0)                                                \
    X(ADD,    R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(SUB,    R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(AND,    R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(OR,     R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(XOR,    R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(SLL,    R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(SRL,    R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(SRA,    R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(SLT,    R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(SLTU,   R, IntAlu, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(ADDI,   I, IntAlu, kReadsRs1 | kWritesRd)                            \
    X(ANDI,   I, IntAlu, kReadsRs1 | kWritesRd)                            \
    X(ORI,    I, IntAlu, kReadsRs1 | kWritesRd)                            \
    X(XORI,   I, IntAlu, kReadsRs1 | kWritesRd)                            \
    X(SLTI,   I, IntAlu, kReadsRs1 | kWritesRd)                            \
    X(SLLI,   I, IntAlu, kReadsRs1 | kWritesRd)                            \
    X(SRLI,   I, IntAlu, kReadsRs1 | kWritesRd)                            \
    X(SRAI,   I, IntAlu, kReadsRs1 | kWritesRd)                            \
    X(LDI,    I, IntAlu, kWritesRd)                                        \
    X(LUI,    U, IntAlu, kWritesRd)                                        \
    X(TID,    R, IntAlu, kWritesRd)                                        \
    X(NTH,    R, IntAlu, kWritesRd)                                        \
    X(SPIN,   R, IntAlu, kIsTrigger)                                       \
    /* Integer multiply / divide */                                        \
    X(MUL,    R, IntMul, kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(DIV,    R, IntDiv, kReadsRs1 | kReadsRs2 | kWritesRd | kIsTrigger)   \
    X(REM,    R, IntDiv, kReadsRs1 | kReadsRs2 | kWritesRd | kIsTrigger)   \
    /* Memory */                                                           \
    X(LD,     I, Load,   kReadsRs1 | kWritesRd | kIsLoad)                  \
    X(ST,     B, Store,  kReadsRs1 | kReadsRs2 | kIsStore)                 \
    /* Control transfer */                                                 \
    X(BEQ,    B, Ctrl,   kReadsRs1 | kReadsRs2 | kIsCondBr)                \
    X(BNE,    B, Ctrl,   kReadsRs1 | kReadsRs2 | kIsCondBr)                \
    X(BLT,    B, Ctrl,   kReadsRs1 | kReadsRs2 | kIsCondBr)                \
    X(BGE,    B, Ctrl,   kReadsRs1 | kReadsRs2 | kIsCondBr)                \
    X(J,      J, Ctrl,   kIsDirJump)                                       \
    X(JAL,    J, Ctrl,   kWritesRd | kIsDirJump)                           \
    X(JR,     R, Ctrl,   kReadsRs1 | kIsIndJump)                           \
    X(HALT,   R, Ctrl,   kIsHalt)                                          \
    /* Floating point (values are IEEE double bit patterns) */             \
    X(FADD,   R, FpAdd,  kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(FSUB,   R, FpAdd,  kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(FNEG,   R, FpAdd,  kReadsRs1 | kWritesRd)                            \
    X(FABS,   R, FpAdd,  kReadsRs1 | kWritesRd)                            \
    X(FCMPLT, R, FpAdd,  kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(FCMPLE, R, FpAdd,  kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(FCMPEQ, R, FpAdd,  kReadsRs1 | kReadsRs2 | kWritesRd)                \
    X(CVTIF,  R, FpAdd,  kReadsRs1 | kWritesRd)                            \
    X(CVTFI,  R, FpAdd,  kReadsRs1 | kWritesRd)                            \
    X(FMUL,   R, FpMul,  kReadsRs1 | kReadsRs2 | kWritesRd | kIsTrigger)   \
    X(FDIV,   R, FpDiv,  kReadsRs1 | kReadsRs2 | kWritesRd | kIsTrigger)   \
    X(FSQRT,  R, FpDiv,  kReadsRs1 | kWritesRd | kIsTrigger)

/** Opcode enumeration. Values are the 8-bit encoding field. */
enum class Opcode : std::uint8_t
{
#define SDSP_OPCODE_ENUM(name, fmt, fu, flags) name,
    SDSP_FOR_EACH_OPCODE(SDSP_OPCODE_ENUM)
#undef SDSP_OPCODE_ENUM
    NumOpcodes,
};

/** Number of defined opcodes. */
inline constexpr unsigned kNumOpcodes =
    static_cast<unsigned>(Opcode::NumOpcodes);

/** Static description of one opcode. */
struct OpInfo
{
    const char *name;
    Format format;
    FuClass fuClass;
    std::uint32_t flags;
};

/**
 * Static description table, indexed by opcode value. Lives in the
 * header as an inline constexpr array so opInfo() — on the decode and
 * scheduling hot path, consulted several times per simulated
 * instruction — fully inlines to an indexed load.
 */
inline constexpr OpInfo kOpInfoTable[] = {
#define SDSP_OPCODE_INFO(name, fmt, fu, flags)                             \
    {#name, Format::fmt, FuClass::fu, (flags)},
    SDSP_FOR_EACH_OPCODE(SDSP_OPCODE_INFO)
#undef SDSP_OPCODE_INFO
};

static_assert(sizeof(kOpInfoTable) / sizeof(kOpInfoTable[0]) ==
                  kNumOpcodes,
              "opcode table arity mismatch");

/** Look up the static description of @p op. */
inline const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    sdsp_assert(idx < kNumOpcodes, "invalid opcode %u", idx);
    return kOpInfoTable[idx];
}

/** Printable mnemonic of @p op. */
inline const char *
opName(Opcode op)
{
    return opInfo(op).name;
}

/** True iff the 8-bit field @p raw names a defined opcode. */
inline bool
isValidOpcode(std::uint8_t raw)
{
    return raw < kNumOpcodes;
}

} // namespace sdsp

#endif // SDSP_ISA_OPCODE_HH

/**
 * @file
 * A program plus its pre-decoded instruction text, shareable across
 * processors.
 *
 * Every Processor needs the program's words decoded into Instruction
 * records before fetch can read them. When many machine variants run
 * the same program (the batched execution engine, harness/batch.hh),
 * decoding each word once and letting every processor reference the
 * same immutable table removes the per-processor decode pass and the
 * per-processor copy of the text.
 *
 * A DecodedProgram is immutable after decode(): processors hold it by
 * shared_ptr<const>, so its lifetime outlives any of them and the
 * fetch unit's reference into `code` stays valid for the whole run.
 */

#ifndef SDSP_ISA_DECODED_PROGRAM_HH
#define SDSP_ISA_DECODED_PROGRAM_HH

#include <memory>
#include <vector>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace sdsp
{

/** An assembled program with its decoded instruction table. */
struct DecodedProgram
{
    Program program;
    /** program.code decoded one-to-one (code[i] = decode(code[i])). */
    std::vector<Instruction> code;

    /** Decode @p prog once, ready for any number of processors. */
    static std::shared_ptr<const DecodedProgram> decode(Program prog);

    /**
     * Fatal unless every register the program names fits the
     * per-thread partition [0, budget). Same check (and message) the
     * Processor constructor historically performed; hoisted here so a
     * batch pays it once per shared program instead of per config.
     */
    void checkRegisterPartition(unsigned num_threads,
                                unsigned budget) const;
};

} // namespace sdsp

#endif // SDSP_ISA_DECODED_PROGRAM_HH

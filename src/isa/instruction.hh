/**
 * @file
 * Decoded instruction representation and the 32-bit binary encoding.
 *
 * Bit layout (big fields first, bit 31 on the left):
 *
 *   R:  [op:8][rd:7][rs1:7][rs2:7][unused:3]
 *   I:  [op:8][rd:7][rs1:7][imm:10 signed]
 *   B:  [op:8][rs1:7][rs2:7][imm:10 signed]
 *   J:  [op:8][rd:7][target:17 unsigned]
 *   U:  [op:8][rd:7][imm:17 unsigned]
 *
 * Register fields are 7 bits wide because the machine has 128
 * architectural registers that are statically partitioned among the
 * resident threads (paper section 3); a program compiled for N threads
 * may only name registers 0 .. 128/N - 1.
 *
 * Branch immediates are instruction-index offsets relative to the
 * branch itself; J/JAL targets are absolute instruction indices.
 */

#ifndef SDSP_ISA_INSTRUCTION_HH
#define SDSP_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace sdsp
{

/** Width of a register specifier field, in bits. */
inline constexpr unsigned kRegFieldBits = 7;

/** Width of an I/B-format immediate, in bits (signed). */
inline constexpr unsigned kImmBits = 10;

/** Width of a J/U-format immediate, in bits (unsigned). */
inline constexpr unsigned kWideImmBits = 17;

/** Total number of architectural registers shared by all threads. */
inline constexpr unsigned kNumArchRegs = 128;

/**
 * A decoded instruction. This is the working representation used by
 * the assembler, the pipeline and the reference interpreter; encode()
 * and decode() convert to and from the packed 32-bit form.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    /** Sign- or zero-extended immediate, per format. */
    std::int32_t imm = 0;

    /** Pack into the 32-bit binary encoding. Fatal on field overflow. */
    InstWord encode() const;

    /** Unpack from the 32-bit binary encoding. Fatal on bad opcode. */
    static Instruction decode(InstWord word);

    /** Static description of this instruction's opcode. */
    const OpInfo &info() const { return opInfo(op); }

    bool readsRs1() const { return info().flags & kReadsRs1; }
    bool readsRs2() const { return info().flags & kReadsRs2; }
    bool writesRd() const { return info().flags & kWritesRd; }
    bool isLoad() const { return info().flags & kIsLoad; }
    bool isStore() const { return info().flags & kIsStore; }
    bool isCondBranch() const { return info().flags & kIsCondBr; }
    bool isDirectJump() const { return info().flags & kIsDirJump; }
    bool isIndirectJump() const { return info().flags & kIsIndJump; }
    bool isHalt() const { return info().flags & kIsHalt; }
    bool isSwitchTrigger() const { return info().flags & kIsTrigger; }

    /** Any instruction that can redirect the PC (incl. HALT). */
    bool
    isControl() const
    {
        return info().flags &
               (kIsCondBr | kIsDirJump | kIsIndJump | kIsHalt);
    }

    /** Executes on the control-transfer unit? */
    bool isCtrlClass() const { return info().fuClass == FuClass::Ctrl; }

    /**
     * For direct control transfers, the statically known target
     * instruction index given the instruction's own index @p pc.
     */
    InstAddr
    staticTarget(InstAddr pc) const
    {
        if (isDirectJump())
            return static_cast<InstAddr>(imm);
        return static_cast<InstAddr>(static_cast<std::int64_t>(pc) + imm);
    }

    bool operator==(const Instruction &other) const = default;

    /** Disassemble to "mnemonic operands" text. */
    std::string toString() const;

    // ---- Convenience constructors used by the program builder ----

    static Instruction
    makeR(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
    {
        return {op, rd, rs1, rs2, 0};
    }

    static Instruction
    makeI(Opcode op, RegIndex rd, RegIndex rs1, std::int32_t imm)
    {
        return {op, rd, rs1, 0, imm};
    }

    static Instruction
    makeB(Opcode op, RegIndex rs1, RegIndex rs2, std::int32_t imm)
    {
        return {op, 0, rs1, rs2, imm};
    }

    static Instruction
    makeJ(Opcode op, RegIndex rd, std::int32_t target)
    {
        return {op, rd, 0, 0, target};
    }
};

} // namespace sdsp

#endif // SDSP_ISA_INSTRUCTION_HH

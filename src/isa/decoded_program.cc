#include "isa/decoded_program.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "isa/opcode.hh"

namespace sdsp
{

std::shared_ptr<const DecodedProgram>
DecodedProgram::decode(Program prog)
{
    auto decoded = std::make_shared<DecodedProgram>();
    decoded->program = std::move(prog);
    decoded->code.reserve(decoded->program.code.size());
    for (InstWord word : decoded->program.code)
        decoded->code.push_back(Instruction::decode(word));
    return decoded;
}

void
DecodedProgram::checkRegisterPartition(unsigned num_threads,
                                       unsigned budget) const
{
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instruction &inst = code[i];
        const OpInfo &oi = inst.info();
        unsigned top = 0;
        if (oi.flags & kWritesRd)
            top = std::max<unsigned>(top, inst.rd);
        if (oi.flags & kReadsRs1)
            top = std::max<unsigned>(top, inst.rs1);
        if (oi.flags & kReadsRs2)
            top = std::max<unsigned>(top, inst.rs2);
        if (top >= budget) {
            fatal("instruction %zu (%s) names r%u but the %u-thread "
                  "partition allows only r0..r%u",
                  i, inst.toString().c_str(), top, num_threads,
                  budget - 1);
        }
    }
}

} // namespace sdsp

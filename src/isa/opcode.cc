#include "isa/opcode.hh"

#include "common/logging.hh"

namespace sdsp
{

namespace
{

const char *kFuClassNames[kNumFuClasses] = {
    "IntAlu", "IntMul", "IntDiv", "Load", "Store",
    "Ctrl",   "FpAdd",  "FpMul",  "FpDiv",
};

} // namespace

const char *
fuClassName(FuClass cls)
{
    auto idx = static_cast<unsigned>(cls);
    sdsp_assert(idx < kNumFuClasses, "invalid FU class %u", idx);
    return kFuClassNames[idx];
}

} // namespace sdsp

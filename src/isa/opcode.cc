#include "isa/opcode.hh"

#include "common/logging.hh"

namespace sdsp
{

namespace
{

const OpInfo kOpTable[] = {
#define SDSP_OPCODE_INFO(name, fmt, fu, flags)                             \
    {#name, Format::fmt, FuClass::fu, (flags)},
    SDSP_FOR_EACH_OPCODE(SDSP_OPCODE_INFO)
#undef SDSP_OPCODE_INFO
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) == kNumOpcodes,
              "opcode table arity mismatch");

const char *kFuClassNames[kNumFuClasses] = {
    "IntAlu", "IntMul", "IntDiv", "Load", "Store",
    "Ctrl",   "FpAdd",  "FpMul",  "FpDiv",
};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    sdsp_assert(idx < kNumOpcodes, "invalid opcode %u", idx);
    return kOpTable[idx];
}

const char *
fuClassName(FuClass cls)
{
    auto idx = static_cast<unsigned>(cls);
    sdsp_assert(idx < kNumFuClasses, "invalid FU class %u", idx);
    return kFuClassNames[idx];
}

} // namespace sdsp

/**
 * @file
 * Architectural semantics of each opcode, shared by the reference
 * interpreter and the cycle-level pipeline so that the two can never
 * disagree about what an instruction computes.
 *
 * Conventions:
 *  - Registers hold 64-bit values; integer ops treat them as signed
 *    two's-complement, FP ops as IEEE double bit patterns.
 *  - ADDI/SLTI/LDI/LD/ST sign-extend their 10-bit immediate;
 *    ANDI/ORI/XORI zero-extend it so that LUI+ORI composes 27-bit
 *    constants; shift immediates use the low 6 bits.
 *  - Integer divide by zero yields 0 (quotient) / the dividend
 *    (remainder), mirroring a hardware unit that never traps.
 */

#ifndef SDSP_ISA_SEMANTICS_HH
#define SDSP_ISA_SEMANTICS_HH

#include "common/types.hh"
#include "isa/instruction.hh"

namespace sdsp
{

/**
 * Compute the result value of a register-writing, non-memory,
 * non-control instruction.
 *
 * @param inst     The instruction.
 * @param s1       Value of rs1 (ignored when not read).
 * @param s2       Value of rs2 (ignored when not read).
 * @param tid      Executing hardware thread (for TID).
 * @param nthreads Number of resident threads (for NTH).
 * @return The value to write to rd.
 */
RegVal evalCompute(const Instruction &inst, RegVal s1, RegVal s2,
                   ThreadId tid, unsigned nthreads);

/**
 * Evaluate a conditional branch.
 *
 * @return True iff the branch is taken.
 */
bool evalBranchTaken(const Instruction &inst, RegVal s1, RegVal s2);

/** Effective byte address of a load or store. */
Addr evalEffectiveAddress(const Instruction &inst, RegVal base);

/** Link value written by JAL at instruction index @p pc. */
inline RegVal
evalLinkValue(InstAddr pc)
{
    return static_cast<RegVal>(pc) + 1;
}

} // namespace sdsp

#endif // SDSP_ISA_SEMANTICS_HH

#include "isa/interpreter.hh"

#include "common/logging.hh"
#include "isa/semantics.hh"

namespace sdsp
{

Interpreter::Interpreter(const Program &program, unsigned num_threads)
    : prog(program),
      numThreads(num_threads),
      regsPerThread(kNumArchRegs / (num_threads ? num_threads : 1)),
      regs(kNumArchRegs, 0),
      threads(num_threads)
{
    sdsp_assert(num_threads >= 1 && num_threads <= kNumArchRegs,
                "bad thread count %u", num_threads);
    mem.assign(prog.memorySize, 0);
    sdsp_assert(prog.data.size() <= mem.size(),
                "program data larger than its declared memory size");
    std::copy(prog.data.begin(), prog.data.end(), mem.begin());
    for (unsigned tid = 0; tid < threads.size(); ++tid)
        threads[tid].pc = prog.entryOf(static_cast<ThreadId>(tid));
}

PhysRegIndex
Interpreter::physReg(ThreadId tid, RegIndex reg) const
{
    sdsp_assert(reg < regsPerThread,
                "thread %u names register r%u but its static partition "
                "has only %u registers",
                unsigned{tid}, unsigned{reg}, regsPerThread);
    return static_cast<PhysRegIndex>(tid * regsPerThread + reg);
}

RegVal
Interpreter::reg(ThreadId tid, RegIndex reg) const
{
    return regs[physReg(tid, reg)];
}

void
Interpreter::setReg(ThreadId tid, RegIndex reg, RegVal value)
{
    regs[physReg(tid, reg)] = value;
}

bool
Interpreter::finished() const
{
    for (const auto &thread : threads) {
        if (!thread.halted)
            return false;
    }
    return true;
}

bool
Interpreter::anyFaulted() const
{
    for (const auto &thread : threads) {
        if (thread.faulted)
            return true;
    }
    return false;
}

void
Interpreter::fault(ThreadId tid, const std::string &why)
{
    ThreadState &thread = threads[tid];
    thread.faulted = true;
    thread.halted = true;
    if (faultMsg.empty()) {
        faultMsg = format("thread %u at pc %u: %s", unsigned{tid},
                          thread.pc, why.c_str());
    }
}

std::uint64_t
Interpreter::totalInstructionCount() const
{
    std::uint64_t total = 0;
    for (const auto &thread : threads)
        total += thread.instructions;
    return total;
}

void
Interpreter::stepThread(ThreadId tid)
{
    ThreadState &thread = threads[tid];
    if (thread.halted)
        return;

    if (thread.pc >= prog.size()) {
        fault(tid, "instruction fetch past the end of the image");
        return;
    }
    Instruction inst = prog.fetch(thread.pc);
    InstAddr pc = thread.pc;
    ++thread.instructions;
    ++opClassCounts[static_cast<unsigned>(inst.info().fuClass)];

    RegVal s1 = inst.readsRs1() ? reg(tid, inst.rs1) : 0;
    RegVal s2 = inst.readsRs2() ? reg(tid, inst.rs2) : 0;

    InstAddr next_pc = pc + 1;

    if (inst.isHalt()) {
        thread.halted = true;
        return;
    } else if (inst.isCondBranch()) {
        if (evalBranchTaken(inst, s1, s2))
            next_pc = inst.staticTarget(pc);
    } else if (inst.isDirectJump()) {
        if (inst.writesRd())
            setReg(tid, inst.rd, evalLinkValue(pc));
        next_pc = inst.staticTarget(pc);
    } else if (inst.isIndirectJump()) {
        next_pc = static_cast<InstAddr>(s1);
    } else if (inst.isLoad()) {
        Addr addr = evalEffectiveAddress(inst, s1);
        if (addr % 8 != 0 || addr + 8 > mem.size()) {
            fault(tid, format("misaligned or out-of-bounds load at "
                              "0x%x",
                              addr));
            return;
        }
        setReg(tid, inst.rd, readWord(mem, addr));
    } else if (inst.isStore()) {
        Addr addr = evalEffectiveAddress(inst, s1);
        if (addr % 8 != 0 || addr + 8 > mem.size()) {
            fault(tid, format("misaligned or out-of-bounds store at "
                              "0x%x",
                              addr));
            return;
        }
        writeWord(mem, addr, s2);
    } else if (inst.op == Opcode::NOP || inst.op == Opcode::SPIN) {
        // No architectural effect.
    } else {
        setReg(tid, inst.rd,
               evalCompute(inst, s1, s2, tid, numThreads));
    }

    thread.pc = next_pc;
}

bool
Interpreter::run(std::uint64_t max_steps)
{
    std::uint64_t steps = 0;
    while (!finished()) {
        for (unsigned tid = 0; tid < numThreads; ++tid)
            stepThread(static_cast<ThreadId>(tid));
        steps += numThreads;
        if (steps >= max_steps)
            return false;
    }
    return true;
}

} // namespace sdsp

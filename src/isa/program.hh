/**
 * @file
 * A loadable program image.
 *
 * The machine is Harvard-style at the simulator level: instruction
 * memory is an array of 32-bit words indexed by instruction address
 * (the paper assumes a perfect instruction cache), and data memory is
 * a flat byte-addressable space initialized from the image's data
 * section at address zero.
 *
 * In the paper's homogeneous-multitasking model, all threads execute
 * the same code; every thread therefore starts at the same entry point
 * and uses the TID instruction to locate its data partition.
 */

#ifndef SDSP_ISA_PROGRAM_HH
#define SDSP_ISA_PROGRAM_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace sdsp
{

/** A binary program image plus its initial data memory contents. */
struct Program
{
    /** Encoded instructions, indexed by instruction address. */
    std::vector<InstWord> code;

    /** Initial contents of data memory, loaded at address 0. */
    std::vector<std::uint8_t> data;

    /**
     * Total bytes of data memory the program requires (>= data.size();
     * the remainder is zero-initialized scratch space).
     */
    std::uint32_t memorySize = 0;

    /** Entry instruction address for every thread. */
    InstAddr entry = 0;

    /**
     * Optional per-thread entry points. Empty for normal programs
     * (every thread starts at `entry`, the homogeneous-multitasking
     * model); a trace-stream cocktail flattens one instruction stream
     * per hardware thread into a single image and starts thread t at
     * threadEntries[t]. When non-empty it must provide an entry for
     * every resident thread.
     */
    std::vector<InstAddr> threadEntries;

    /** Entry instruction address of thread @p tid. */
    InstAddr
    entryOf(ThreadId tid) const
    {
        return tid < threadEntries.size() ? threadEntries[tid] : entry;
    }

    /** Number of instructions. */
    std::size_t size() const { return code.size(); }

    /** Decode the instruction at index @p pc. Fatal if out of range. */
    Instruction
    fetch(InstAddr pc) const
    {
        sdsp_assert(pc < code.size(), "instruction fetch out of range: %u",
                    pc);
        return Instruction::decode(code[pc]);
    }
};

/** Read a 64-bit little-endian word from a byte buffer. */
inline std::uint64_t
readWord(const std::vector<std::uint8_t> &mem, Addr addr)
{
    sdsp_assert(addr % 8 == 0, "misaligned 8-byte read at 0x%x", addr);
    sdsp_assert(addr + 8 <= mem.size(), "read out of range at 0x%x", addr);
    std::uint64_t value;
    std::memcpy(&value, mem.data() + addr, 8);
    return value;
}

/** Write a 64-bit little-endian word to a byte buffer. */
inline void
writeWord(std::vector<std::uint8_t> &mem, Addr addr, std::uint64_t value)
{
    sdsp_assert(addr % 8 == 0, "misaligned 8-byte write at 0x%x", addr);
    sdsp_assert(addr + 8 <= mem.size(), "write out of range at 0x%x",
                addr);
    std::memcpy(mem.data() + addr, &value, 8);
}

/** Read a double stored as its bit pattern. */
inline double
readDouble(const std::vector<std::uint8_t> &mem, Addr addr)
{
    std::uint64_t raw = readWord(mem, addr);
    double value;
    std::memcpy(&value, &raw, 8);
    return value;
}

/** Write a double as its bit pattern. */
inline void
writeDouble(std::vector<std::uint8_t> &mem, Addr addr, double value)
{
    std::uint64_t raw;
    std::memcpy(&raw, &value, 8);
    writeWord(mem, addr, raw);
}

} // namespace sdsp

#endif // SDSP_ISA_PROGRAM_HH

/**
 * @file
 * Functional reference interpreter.
 *
 * Executes a program with architectural semantics only (no timing).
 * Threads are stepped round-robin, one instruction at a time, which is
 * one legal interleaving of the machine; programs whose threads touch
 * disjoint data — or synchronize through spin flags — produce the same
 * final memory image here as on the cycle-level pipeline, which is how
 * the test suite cross-checks the pipeline's correctness and how
 * workloads validate their expected outputs.
 */

#ifndef SDSP_ISA_INTERPRETER_HH
#define SDSP_ISA_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace sdsp
{

/** Architectural executor for a Program. */
class Interpreter
{
  public:
    /**
     * @param program    The program image (copied).
     * @param num_threads Resident threads; the 128 architectural
     *                    registers are partitioned equally among them.
     */
    Interpreter(const Program &program, unsigned num_threads);

    /**
     * Run until every thread has executed HALT.
     *
     * @param max_steps Abort guard (total instructions, all threads).
     * @return True iff all threads halted within the budget.
     */
    bool run(std::uint64_t max_steps = 50'000'000);

    /** Execute a single instruction of thread @p tid (if not halted). */
    void stepThread(ThreadId tid);

    /** Has thread @p tid executed HALT? */
    bool halted(ThreadId tid) const { return threads[tid].halted; }

    /**
     * Did thread @p tid take an architectural fault (misaligned or
     * out-of-bounds access, runaway PC)? A faulted thread counts as
     * halted; its architectural state is whatever it was at the
     * fault. This keeps invalid programs — fuzz-minimization
     * candidates in particular — a reportable outcome instead of a
     * process abort.
     */
    bool faulted(ThreadId tid) const { return threads[tid].faulted; }

    /** Did any thread fault? */
    bool anyFaulted() const;

    /** Description of the first fault (empty when none). */
    const std::string &faultMessage() const { return faultMsg; }

    /** Have all threads halted? */
    bool finished() const;

    /** Architectural register @p reg of thread @p tid. */
    RegVal reg(ThreadId tid, RegIndex reg) const;

    /** Set architectural register @p reg of thread @p tid. */
    void setReg(ThreadId tid, RegIndex reg, RegVal value);

    /** Current PC of thread @p tid. */
    InstAddr pc(ThreadId tid) const { return threads[tid].pc; }

    /** Data memory image. */
    const std::vector<std::uint8_t> &memory() const { return mem; }
    std::vector<std::uint8_t> &memory() { return mem; }

    /** Instructions executed by thread @p tid. */
    std::uint64_t
    instructionCount(ThreadId tid) const
    {
        return threads[tid].instructions;
    }

    /** Total instructions executed by all threads. */
    std::uint64_t totalInstructionCount() const;

    /** Registers each thread may name (128 / numThreads). */
    unsigned registersPerThread() const { return regsPerThread; }

    /**
     * Dynamic instruction count per functional-unit class, summed
     * over all threads (workload characterization).
     */
    const std::array<std::uint64_t, kNumFuClasses> &
    classCounts() const
    {
        return opClassCounts;
    }

  private:
    PhysRegIndex physReg(ThreadId tid, RegIndex reg) const;

    struct ThreadState
    {
        InstAddr pc = 0;
        bool halted = false;
        bool faulted = false;
        std::uint64_t instructions = 0;
    };

    /** Halt @p tid with an architectural fault. */
    void fault(ThreadId tid, const std::string &why);

    Program prog;
    unsigned numThreads;
    unsigned regsPerThread;
    std::vector<RegVal> regs;
    std::vector<std::uint8_t> mem;
    std::vector<ThreadState> threads;
    std::string faultMsg;
    std::array<std::uint64_t, kNumFuClasses> opClassCounts{};
};

} // namespace sdsp

#endif // SDSP_ISA_INTERPRETER_HH

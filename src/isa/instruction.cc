#include "isa/instruction.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace sdsp
{

namespace
{

void
checkReg(RegIndex reg, const char *field, const char *mnemonic)
{
    if (reg >= kNumArchRegs) {
        fatal("%s: register field %s out of range (%u >= %u)", mnemonic,
              field, unsigned{reg}, kNumArchRegs);
    }
}

/**
 * The logical immediates zero-extend (so that LUI+ORI composes
 * constants); everything else sign-extends.
 */
bool
zeroExtendsImm(Opcode op)
{
    return op == Opcode::ANDI || op == Opcode::ORI || op == Opcode::XORI;
}

} // namespace

InstWord
Instruction::encode() const
{
    const OpInfo &oi = info();
    std::uint64_t word = 0;
    word = insertBits(word, 31, 24, static_cast<std::uint8_t>(op));

    switch (oi.format) {
      case Format::R:
        checkReg(rd, "rd", oi.name);
        checkReg(rs1, "rs1", oi.name);
        checkReg(rs2, "rs2", oi.name);
        word = insertBits(word, 23, 17, rd);
        word = insertBits(word, 16, 10, rs1);
        word = insertBits(word, 9, 3, rs2);
        break;
      case Format::I:
        checkReg(rd, "rd", oi.name);
        checkReg(rs1, "rs1", oi.name);
        if (zeroExtendsImm(op)
                ? (imm < 0 || !fitsUnsigned(
                                  static_cast<std::uint32_t>(imm),
                                  kImmBits))
                : !fitsSigned(imm, kImmBits)) {
            fatal("%s: immediate %d does not fit in %u bits", oi.name,
                  imm, kImmBits);
        }
        word = insertBits(word, 23, 17, rd);
        word = insertBits(word, 16, 10, rs1);
        word = insertBits(word, 9, 0, static_cast<std::uint32_t>(imm));
        break;
      case Format::B:
        checkReg(rs1, "rs1", oi.name);
        checkReg(rs2, "rs2", oi.name);
        if (!fitsSigned(imm, kImmBits))
            fatal("%s: immediate %d does not fit in %u bits", oi.name,
                  imm, kImmBits);
        word = insertBits(word, 23, 17, rs1);
        word = insertBits(word, 16, 10, rs2);
        word = insertBits(word, 9, 0, static_cast<std::uint32_t>(imm));
        break;
      case Format::J:
      case Format::U:
        checkReg(rd, "rd", oi.name);
        if (imm < 0 || !fitsUnsigned(static_cast<std::uint32_t>(imm),
                                     kWideImmBits)) {
            fatal("%s: immediate %d does not fit in %u unsigned bits",
                  oi.name, imm, kWideImmBits);
        }
        word = insertBits(word, 23, 17, rd);
        word = insertBits(word, 16, 0, static_cast<std::uint32_t>(imm));
        break;
    }
    return static_cast<InstWord>(word);
}

Instruction
Instruction::decode(InstWord word)
{
    auto raw_op = static_cast<std::uint8_t>(bits(word, 31, 24));
    if (!isValidOpcode(raw_op))
        fatal("cannot decode: invalid opcode field %u", unsigned{raw_op});

    Instruction inst;
    inst.op = static_cast<Opcode>(raw_op);
    const OpInfo &oi = inst.info();

    switch (oi.format) {
      case Format::R:
        inst.rd = static_cast<RegIndex>(bits(word, 23, 17));
        inst.rs1 = static_cast<RegIndex>(bits(word, 16, 10));
        inst.rs2 = static_cast<RegIndex>(bits(word, 9, 3));
        break;
      case Format::I:
        inst.rd = static_cast<RegIndex>(bits(word, 23, 17));
        inst.rs1 = static_cast<RegIndex>(bits(word, 16, 10));
        inst.imm = zeroExtendsImm(inst.op)
                       ? static_cast<std::int32_t>(bits(word, 9, 0))
                       : static_cast<std::int32_t>(
                             sext(bits(word, 9, 0), kImmBits));
        break;
      case Format::B:
        inst.rs1 = static_cast<RegIndex>(bits(word, 23, 17));
        inst.rs2 = static_cast<RegIndex>(bits(word, 16, 10));
        inst.imm =
            static_cast<std::int32_t>(sext(bits(word, 9, 0), kImmBits));
        break;
      case Format::J:
      case Format::U:
        inst.rd = static_cast<RegIndex>(bits(word, 23, 17));
        inst.imm = static_cast<std::int32_t>(bits(word, 16, 0));
        break;
    }
    return inst;
}

std::string
Instruction::toString() const
{
    const OpInfo &oi = info();
    switch (oi.format) {
      case Format::R:
        if (op == Opcode::NOP || op == Opcode::SPIN ||
            op == Opcode::HALT) {
            return oi.name;
        }
        if (op == Opcode::TID || op == Opcode::NTH)
            return format("%s r%u", oi.name, unsigned{rd});
        if (op == Opcode::JR)
            return format("%s r%u", oi.name, unsigned{rs1});
        if (!readsRs2()) {
            return format("%s r%u, r%u", oi.name, unsigned{rd},
                          unsigned{rs1});
        }
        return format("%s r%u, r%u, r%u", oi.name, unsigned{rd},
                      unsigned{rs1}, unsigned{rs2});
      case Format::I:
        if (op == Opcode::LD) {
            return format("%s r%u, %d(r%u)", oi.name, unsigned{rd}, imm,
                          unsigned{rs1});
        }
        if (op == Opcode::LDI)
            return format("%s r%u, %d", oi.name, unsigned{rd}, imm);
        return format("%s r%u, r%u, %d", oi.name, unsigned{rd},
                      unsigned{rs1}, imm);
      case Format::B:
        if (op == Opcode::ST) {
            return format("%s r%u, %d(r%u)", oi.name, unsigned{rs2}, imm,
                          unsigned{rs1});
        }
        return format("%s r%u, r%u, %d", oi.name, unsigned{rs1},
                      unsigned{rs2}, imm);
      case Format::J:
        if (op == Opcode::JAL)
            return format("%s r%u, %d", oi.name, unsigned{rd}, imm);
        return format("%s %d", oi.name, imm);
      case Format::U:
        return format("%s r%u, %d", oi.name, unsigned{rd}, imm);
    }
    return "<bad format>";
}

} // namespace sdsp

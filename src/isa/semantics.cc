#include "isa/semantics.hh"

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace sdsp
{

namespace
{

using S64 = std::int64_t;
using U64 = std::uint64_t;

double
asDouble(RegVal raw)
{
    return std::bit_cast<double>(raw);
}

RegVal
fromDouble(double value)
{
    return std::bit_cast<RegVal>(value);
}

/** Zero-extended 10-bit immediate for the logical immediates. */
U64
uimm(const Instruction &inst)
{
    return static_cast<U64>(static_cast<std::uint32_t>(inst.imm)) &
           0x3ffu;
}

} // namespace

RegVal
evalCompute(const Instruction &inst, RegVal s1, RegVal s2, ThreadId tid,
            unsigned nthreads)
{
    auto a = static_cast<S64>(s1);
    auto b = static_cast<S64>(s2);
    S64 imm = inst.imm;

    switch (inst.op) {
      case Opcode::ADD: return static_cast<RegVal>(a + b);
      case Opcode::SUB: return static_cast<RegVal>(a - b);
      case Opcode::AND: return s1 & s2;
      case Opcode::OR: return s1 | s2;
      case Opcode::XOR: return s1 ^ s2;
      case Opcode::SLL: return s1 << (s2 & 63);
      case Opcode::SRL: return s1 >> (s2 & 63);
      case Opcode::SRA: return static_cast<RegVal>(a >> (b & 63));
      case Opcode::SLT: return a < b ? 1 : 0;
      case Opcode::SLTU: return s1 < s2 ? 1 : 0;
      case Opcode::ADDI: return static_cast<RegVal>(a + imm);
      case Opcode::ANDI: return s1 & uimm(inst);
      case Opcode::ORI: return s1 | uimm(inst);
      case Opcode::XORI: return s1 ^ uimm(inst);
      case Opcode::SLTI: return a < imm ? 1 : 0;
      case Opcode::SLLI: return s1 << (imm & 63);
      case Opcode::SRLI: return s1 >> (imm & 63);
      case Opcode::SRAI: return static_cast<RegVal>(a >> (imm & 63));
      case Opcode::LDI: return static_cast<RegVal>(imm);
      case Opcode::LUI:
        return static_cast<RegVal>(static_cast<std::uint32_t>(inst.imm))
               << kImmBits;
      case Opcode::TID: return tid;
      case Opcode::NTH: return nthreads;
      case Opcode::MUL: return static_cast<RegVal>(a * b);
      case Opcode::DIV:
        return b == 0 ? 0 : static_cast<RegVal>(a / b);
      case Opcode::REM:
        return b == 0 ? s1 : static_cast<RegVal>(a % b);
      case Opcode::FADD: return fromDouble(asDouble(s1) + asDouble(s2));
      case Opcode::FSUB: return fromDouble(asDouble(s1) - asDouble(s2));
      case Opcode::FMUL: return fromDouble(asDouble(s1) * asDouble(s2));
      case Opcode::FDIV: return fromDouble(asDouble(s1) / asDouble(s2));
      case Opcode::FSQRT: return fromDouble(std::sqrt(asDouble(s1)));
      case Opcode::FNEG: return fromDouble(-asDouble(s1));
      case Opcode::FABS: return fromDouble(std::fabs(asDouble(s1)));
      case Opcode::FCMPLT: return asDouble(s1) < asDouble(s2) ? 1 : 0;
      case Opcode::FCMPLE: return asDouble(s1) <= asDouble(s2) ? 1 : 0;
      case Opcode::FCMPEQ: return asDouble(s1) == asDouble(s2) ? 1 : 0;
      case Opcode::CVTIF: return fromDouble(static_cast<double>(a));
      case Opcode::CVTFI:
        return static_cast<RegVal>(static_cast<S64>(asDouble(s1)));
      default:
        panic("evalCompute called on non-compute opcode %s",
              opName(inst.op));
    }
}

bool
evalBranchTaken(const Instruction &inst, RegVal s1, RegVal s2)
{
    auto a = static_cast<S64>(s1);
    auto b = static_cast<S64>(s2);
    switch (inst.op) {
      case Opcode::BEQ: return a == b;
      case Opcode::BNE: return a != b;
      case Opcode::BLT: return a < b;
      case Opcode::BGE: return a >= b;
      default:
        panic("evalBranchTaken called on non-branch opcode %s",
              opName(inst.op));
    }
}

Addr
evalEffectiveAddress(const Instruction &inst, RegVal base)
{
    return static_cast<Addr>(static_cast<std::int64_t>(base) + inst.imm);
}

} // namespace sdsp

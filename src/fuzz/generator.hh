/**
 * @file
 * Seeded random-program generation for differential fuzzing.
 *
 * Programs are valid by construction so that every generated case
 * exercises the *machine*, not the input validators:
 *
 *  - every value register is initialized in a straight-line prologue,
 *    so no path reads a register before writing it;
 *  - memory accesses go through a per-thread base register
 *    (TID << 9: 512 disjoint bytes per thread) with 8-aligned
 *    immediate offsets, so accesses are always in bounds, aligned,
 *    and thread-disjoint — which also makes the round-robin reference
 *    interpreter a valid architectural oracle for the pipeline;
 *  - loops are counted: a reserved counter register per nesting depth
 *    is initialized on entry, decremented once per iteration, and
 *    never written by the loop body, so every loop terminates;
 *  - other branches are forward, and jump targets stay inside the
 *    generated region, so control never escapes the image;
 *  - an epilogue stores every value register to a reserved memory
 *    slot, so the final memory image captures the register state and
 *    intermediate writes are not trivially dead.
 *
 * The knobs (FuzzShape) steer what the program stresses: dependency
 * chain depth, branch density, loop nesting, memory traffic, and the
 * long-latency FP/mul/div units.
 */

#ifndef SDSP_FUZZ_GENERATOR_HH
#define SDSP_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sdsp
{

/** Generation knobs; see the named presets below. */
struct FuzzShape
{
    std::string name = "smoke";
    /** Top-level body size range (instructions, before expansions). */
    unsigned minBodyOps = 24;
    unsigned maxBodyOps = 96;
    /** Probability an item is a forward branch over a few ops. */
    double branchDensity = 0.12;
    /** Probability an item opens a counted loop (when depth and
     *  budget allow). */
    double loopDensity = 0.06;
    unsigned maxLoopDepth = 2;
    unsigned maxLoopTrips = 6;
    /** Probability a plain op is a load/store. */
    double memDensity = 0.2;
    /** Probability a plain op is FP / integer mul-div. */
    double fpDensity = 0.1;
    double mulDivDensity = 0.1;
    /** Value ("pool") registers the program computes with. */
    unsigned poolRegs = 8;
    /** Percent of source operands biased to the most recently
     *  written pool register (dependency chain depth). */
    unsigned depChainBias = 35;

    /** Named presets: smoke, branchy, loopy, memory, deep. */
    static FuzzShape preset(const std::string &name);
    /** All preset names, stable order. */
    static const std::vector<std::string> &presetNames();
};

/** Bytes of data memory each thread's partition spans. */
inline constexpr std::uint32_t kFuzzBytesPerThread = 512;

/** Threads the generated memory layout supports. */
inline constexpr unsigned kFuzzMaxThreads = 8;

/**
 * Generate one program. Deterministic in (@p shape, @p seed): the
 * same inputs always yield the same image.
 */
Program generateProgram(const FuzzShape &shape, std::uint64_t seed);

} // namespace sdsp

#endif // SDSP_FUZZ_GENERATOR_HH

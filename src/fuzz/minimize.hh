/**
 * @file
 * Failing-case minimization and repro emission.
 *
 * Given a program that fails the differential checker, the minimizer
 * shrinks it while preserving the failure *kind* (a "reg-mismatch"
 * must still be a reg-mismatch, not merely any failure):
 *
 *  1. delta-debugging over instructions, replacing chunks with NOP
 *     (never a HALT — removing thread termination would morph every
 *     failure into a timeout);
 *  2. NOP compaction: deleting NOP runs and remapping branch/jump
 *     targets across the deleted gaps (deleting instructions only
 *     shrinks distances, so remapped immediates always still fit).
 *
 * The result can be emitted as an assemblable `.s` repro
 * (programToAssembly) for checking into tests/corpus/.
 */

#ifndef SDSP_FUZZ_MINIMIZE_HH
#define SDSP_FUZZ_MINIMIZE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "isa/program.hh"

namespace sdsp
{

/**
 * Classifies a candidate: returns the failure kind (empty string =
 * the candidate passes). The minimizer only keeps candidates whose
 * kind matches the original failure.
 */
using FailureClassifier =
    std::function<std::string(const Program &)>;

/** Minimization outcome. */
struct MinimizeResult
{
    Program program;
    std::size_t originalInsts = 0;
    std::size_t minimizedInsts = 0;
    /** ddmin + compaction passes performed. */
    unsigned rounds = 0;
};

/**
 * Shrink @p program while @p classify keeps reporting
 * @p failure_kind.
 */
MinimizeResult minimizeProgram(const Program &program,
                               const std::string &failure_kind,
                               const FailureClassifier &classify);

/**
 * Emit @p program as assemblable SDSP-MT assembly: labels at every
 * branch/jump target, a `.space` directive reproducing memorySize,
 * and @p header_comment (may be multi-line) as leading comments.
 * Only data-less programs are supported (generated programs carry no
 * initial data).
 */
std::string programToAssembly(const Program &program,
                              const std::string &header_comment);

} // namespace sdsp

#endif // SDSP_FUZZ_MINIMIZE_HH

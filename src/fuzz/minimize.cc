#include "fuzz/minimize.hh"

#include <cctype>
#include <set>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "isa/instruction.hh"

namespace sdsp
{

namespace
{

const InstWord kNopWord = Instruction{}.encode();

Program
withCode(const Program &original, std::vector<InstWord> code)
{
    Program candidate = original;
    candidate.code = std::move(code);
    return candidate;
}

bool
removable(InstWord word)
{
    return word != kNopWord &&
           !Instruction::decode(word).isHalt();
}

/**
 * One ddmin sweep: chunk sizes from half the image down to single
 * instructions, replacing each chunk's removable instructions with
 * NOP and keeping the replacement when the failure kind survives.
 * HALTs are never touched: removing thread termination would morph
 * every failure into a timeout.
 */
bool
ddminPass(std::vector<InstWord> &code, const Program &original,
          const std::string &failure_kind,
          const FailureClassifier &classify)
{
    bool progressed = false;
    for (std::size_t chunk = (code.size() + 1) / 2; chunk >= 1;
         chunk = chunk == 1 ? 0 : (chunk + 1) / 2) {
        for (std::size_t start = 0; start < code.size();
             start += chunk) {
            std::size_t end = std::min(start + chunk, code.size());
            std::vector<InstWord> candidate = code;
            bool changed = false;
            for (std::size_t i = start; i < end; ++i) {
                if (removable(candidate[i])) {
                    candidate[i] = kNopWord;
                    changed = true;
                }
            }
            if (!changed)
                continue;
            if (classify(withCode(original, candidate)) ==
                failure_kind) {
                code = std::move(candidate);
                progressed = true;
            }
        }
        if (chunk == 0)
            break;
    }
    return progressed;
}

/**
 * Delete NOPs and remap branch/jump targets across the deleted gaps.
 * Deleting instructions only shrinks branch distances, so the
 * remapped immediates always still fit their fields. The compacted
 * image is kept only if the failure kind survives.
 */
bool
compactPass(std::vector<InstWord> &code, const Program &original,
            const std::string &failure_kind,
            const FailureClassifier &classify)
{
    // newIndex[i] = kept instructions before old index i; a deleted
    // index maps to the next kept instruction at or after it.
    std::vector<std::size_t> new_index(code.size() + 1, 0);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
        new_index[i] = kept;
        kept += code[i] != kNopWord;
    }
    new_index[code.size()] = kept;
    if (kept == code.size() || kept == 0)
        return false;

    std::vector<InstWord> packed;
    packed.reserve(kept);
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i] == kNopWord)
            continue;
        Instruction inst = Instruction::decode(code[i]);
        if (inst.isCondBranch() || inst.isDirectJump()) {
            auto target = inst.staticTarget(
                static_cast<InstAddr>(i));
            if (target > code.size())
                return false; // target escapes: leave uncompacted
            auto mapped =
                static_cast<std::int64_t>(new_index[target]);
            if (inst.isCondBranch()) {
                inst.imm = static_cast<std::int32_t>(
                    mapped -
                    static_cast<std::int64_t>(new_index[i]));
            } else {
                inst.imm = static_cast<std::int32_t>(mapped);
            }
        }
        packed.push_back(inst.encode());
    }

    if (classify(withCode(original, packed)) != failure_kind)
        return false;
    code = std::move(packed);
    return true;
}

} // namespace

MinimizeResult
minimizeProgram(const Program &program,
                const std::string &failure_kind,
                const FailureClassifier &classify)
{
    sdsp_assert(program.threadEntries.empty(),
                "minimizer supports single-entry programs only");
    MinimizeResult result;
    result.originalInsts = program.code.size();

    std::vector<InstWord> code = program.code;
    while (true) {
        ++result.rounds;
        bool progressed =
            ddminPass(code, program, failure_kind, classify);
        progressed |=
            compactPass(code, program, failure_kind, classify);
        if (!progressed)
            break;
    }

    result.program = withCode(program, std::move(code));
    result.minimizedInsts = result.program.code.size();
    return result;
}

namespace
{

std::string
lower(const char *text)
{
    std::string out(text);
    for (char &ch : out)
        ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch)));
    return out;
}

std::string
labelName(InstAddr target)
{
    return format("L%u", target);
}

} // namespace

std::string
programToAssembly(const Program &program,
                  const std::string &header_comment)
{
    sdsp_assert(program.data.empty(),
                "programToAssembly supports data-less programs only");
    sdsp_assert(program.memorySize % 8 == 0,
                "memorySize must be a whole number of 8-byte words");

    // Every static control-transfer target gets a label.
    std::set<InstAddr> targets;
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        Instruction inst = Instruction::decode(program.code[i]);
        if (inst.isCondBranch() || inst.isDirectJump())
            targets.insert(
                inst.staticTarget(static_cast<InstAddr>(i)));
    }

    std::ostringstream out;
    std::istringstream comments(header_comment);
    std::string comment_line;
    while (std::getline(comments, comment_line))
        out << "; " << comment_line << "\n";
    if (!header_comment.empty())
        out << "\n";
    if (program.memorySize > 0) {
        out << format(".space scratch %u\n\n",
                      program.memorySize / 8);
    }

    for (std::size_t i = 0; i < program.code.size(); ++i) {
        auto pc = static_cast<InstAddr>(i);
        if (targets.count(pc))
            out << labelName(pc) << ":\n";
        Instruction inst = Instruction::decode(program.code[i]);
        const OpInfo &oi = inst.info();
        std::string mnemonic = lower(oi.name);
        out << "    ";
        switch (oi.format) {
          case Format::R:
            if (inst.isHalt() || inst.op == Opcode::NOP ||
                inst.op == Opcode::SPIN) {
                out << mnemonic;
            } else if (inst.isIndirectJump()) {
                out << format("%s r%u", mnemonic.c_str(),
                              unsigned{inst.rs1});
            } else if (!inst.readsRs1()) { // TID / NTH
                out << format("%s r%u", mnemonic.c_str(),
                              unsigned{inst.rd});
            } else if (!inst.readsRs2()) { // FNEG, CVTIF, ...
                out << format("%s r%u, r%u", mnemonic.c_str(),
                              unsigned{inst.rd}, unsigned{inst.rs1});
            } else {
                out << format("%s r%u, r%u, r%u", mnemonic.c_str(),
                              unsigned{inst.rd}, unsigned{inst.rs1},
                              unsigned{inst.rs2});
            }
            break;
          case Format::I:
            if (inst.isLoad()) {
                out << format("%s r%u, %d(r%u)", mnemonic.c_str(),
                              unsigned{inst.rd}, inst.imm,
                              unsigned{inst.rs1});
            } else if (!inst.readsRs1()) { // LDI
                out << format("%s r%u, %d", mnemonic.c_str(),
                              unsigned{inst.rd}, inst.imm);
            } else {
                out << format("%s r%u, r%u, %d", mnemonic.c_str(),
                              unsigned{inst.rd}, unsigned{inst.rs1},
                              inst.imm);
            }
            break;
          case Format::B:
            if (inst.isStore()) {
                // Value operand first: st rs2, imm(rs1).
                out << format("%s r%u, %d(r%u)", mnemonic.c_str(),
                              unsigned{inst.rs2}, inst.imm,
                              unsigned{inst.rs1});
            } else {
                out << format(
                    "%s r%u, r%u, %s", mnemonic.c_str(),
                    unsigned{inst.rs1}, unsigned{inst.rs2},
                    labelName(inst.staticTarget(pc)).c_str());
            }
            break;
          case Format::J:
            if (inst.writesRd()) {
                out << format(
                    "%s r%u, %s", mnemonic.c_str(),
                    unsigned{inst.rd},
                    labelName(inst.staticTarget(pc)).c_str());
            } else {
                out << format(
                    "%s %s", mnemonic.c_str(),
                    labelName(inst.staticTarget(pc)).c_str());
            }
            break;
          case Format::U:
            out << format("%s r%u, %d", mnemonic.c_str(),
                          unsigned{inst.rd}, inst.imm);
            break;
        }
        out << "\n";
    }
    sdsp_assert(targets.empty() ||
                    *targets.rbegin() < program.code.size(),
                "control transfer targets past the end of the image");
    return out.str();
}

} // namespace sdsp

/**
 * @file
 * The differential checker: one generated program, three oracles.
 *
 * A program is run through the reference interpreter and the
 * cycle-level pipeline, and analyzed with sdsp-lint; a case passes
 * when
 *
 *  1. the interpreter and the pipeline agree on the final
 *     architectural state: every thread register partition, the data
 *     memory image, and the per-thread instruction counts;
 *  2. the pipeline's measured IPC does not exceed sdsp-lint's static
 *     IPC upper bound for the machine shape;
 *  3. the interpreter never executes an instruction the analyzer's
 *     CFG proved unreachable;
 *  4. nothing times out and the lint report carries no errors
 *     (generated programs are valid by construction — an error here
 *     is a generator or analyzer bug).
 *
 * Any violation is reported as a stable failure kind string, which is
 * what the minimizer preserves while shrinking.
 */

#ifndef SDSP_FUZZ_DIFFERENTIAL_HH
#define SDSP_FUZZ_DIFFERENTIAL_HH

#include <cstdint>
#include <string>

#include "core/config.hh"
#include "core/processor.hh"
#include "isa/program.hh"

namespace sdsp
{

/** Differential-check limits. */
struct DiffLimits
{
    /** Interpreter step cap (all threads). */
    std::uint64_t maxInterpSteps = 2'000'000;
    /** Pipeline cycle cap. */
    std::uint64_t maxCycles = 4'000'000;
};

/** Outcome of one differential check. */
struct DiffResult
{
    bool ok = true;
    /**
     * Stable failure kind: "lint-error", "arch-fault",
     * "interp-timeout", "unreachable-pc", "sim-timeout",
     * "reg-mismatch", "mem-mismatch", "count-mismatch",
     * "ipc-bound-violation". Empty when ok.
     */
    std::string kind;
    std::string detail;

    /** Pipeline outcome (valid once the pipeline ran). */
    SimResult sim;
    /** Static IPC bound at the run's cycle count. */
    double ipcBound = 0.0;
};

/** Run @p program through all oracles on @p config. */
DiffResult runDifferential(const Program &program,
                           const MachineConfig &config,
                           const DiffLimits &limits = {});

} // namespace sdsp

#endif // SDSP_FUZZ_DIFFERENTIAL_HH

#include "fuzz/generator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/instruction.hh"

namespace sdsp
{

FuzzShape
FuzzShape::preset(const std::string &name)
{
    FuzzShape shape;
    shape.name = name;
    if (name == "smoke") {
        // The defaults: a bit of everything.
    } else if (name == "branchy") {
        shape.branchDensity = 0.35;
        shape.loopDensity = 0.04;
        shape.maxBodyOps = 128;
    } else if (name == "loopy") {
        shape.loopDensity = 0.18;
        shape.maxLoopDepth = 3;
        shape.maxLoopTrips = 8;
        shape.minBodyOps = 16;
        shape.maxBodyOps = 48;
    } else if (name == "memory") {
        shape.memDensity = 0.55;
        shape.branchDensity = 0.06;
    } else if (name == "deep") {
        shape.depChainBias = 90;
        shape.fpDensity = 0.2;
        shape.mulDivDensity = 0.2;
        shape.branchDensity = 0.05;
    } else {
        fatal("unknown fuzz shape '%s' (try: smoke branchy loopy "
              "memory deep)",
              name.c_str());
    }
    return shape;
}

const std::vector<std::string> &
FuzzShape::presetNames()
{
    static const std::vector<std::string> names = {
        "smoke", "branchy", "loopy", "memory", "deep"};
    return names;
}

namespace
{

/** Register plan: fixed roles below the value pool. */
struct RegPlan
{
    RegIndex zero = 0; //!< constant 0 (loop compare)
    RegIndex base = 1; //!< TID << 9 memory base
    RegIndex firstCounter = 2;
    unsigned counters;
    RegIndex firstPool;
    unsigned pool;

    explicit RegPlan(const FuzzShape &shape)
    {
        counters = std::max(1u, shape.maxLoopDepth);
        firstPool = static_cast<RegIndex>(2 + counters);
        // Stay inside the 8-thread partition (128/8 = 16 registers).
        unsigned budget = kNumArchRegs / kFuzzMaxThreads;
        sdsp_assert(firstPool < budget, "register plan overflow");
        pool = std::min(shape.poolRegs,
                        budget - static_cast<unsigned>(firstPool));
        sdsp_assert(pool >= 2, "need at least two pool registers");
    }
};

class Generator
{
  public:
    Generator(const FuzzShape &shape, std::uint64_t seed)
        : shape_(shape), plan_(shape), rng_(seed ? seed : 1)
    {
    }

    Program run();

  private:
    RegIndex
    poolReg(unsigned index) const
    {
        return static_cast<RegIndex>(plan_.firstPool + index);
    }

    RegIndex
    randomPoolReg()
    {
        return poolReg(static_cast<unsigned>(
            rng_.nextBelow(plan_.pool)));
    }

    /** A source operand, biased toward the latest write. */
    RegIndex
    sourceReg()
    {
        if (rng_.nextBelow(100) < shape_.depChainBias)
            return lastWritten_;
        return randomPoolReg();
    }

    RegIndex
    destReg()
    {
        RegIndex rd = randomPoolReg();
        lastWritten_ = rd;
        return rd;
    }

    void
    emit(Instruction inst)
    {
        code_.push_back(inst);
    }

    /** An 8-aligned offset into this thread's 512-byte partition
     *  (slots 48..63 are reserved for the epilogue). */
    std::int32_t
    randomOffset()
    {
        return static_cast<std::int32_t>(8 * rng_.nextBelow(48));
    }

    void emitPlainOp();
    void emitForwardBranch(unsigned budget_left);
    void emitLoop(unsigned depth, unsigned budget);
    void emitBody(unsigned depth, unsigned budget);

    const FuzzShape &shape_;
    RegPlan plan_;
    Xorshift64 rng_;
    std::vector<Instruction> code_;
    RegIndex lastWritten_ = 0;
};

void
Generator::emitPlainOp()
{
    double roll = rng_.nextDouble();

    if (roll < shape_.memDensity) {
        if (rng_.nextBelow(2) == 0) {
            emit(Instruction::makeI(Opcode::LD, destReg(), plan_.base,
                                    randomOffset()));
        } else {
            emit(Instruction::makeB(Opcode::ST, plan_.base,
                                    sourceReg(), randomOffset()));
        }
        return;
    }
    roll -= shape_.memDensity;

    if (roll < shape_.fpDensity) {
        static const Opcode kFpOps[] = {
            Opcode::FADD, Opcode::FSUB,   Opcode::FNEG,
            Opcode::FABS, Opcode::FCMPLT, Opcode::FCMPLE,
            Opcode::FCMPEQ, Opcode::CVTIF, Opcode::CVTFI,
            Opcode::FMUL, Opcode::FDIV,   Opcode::FSQRT,
        };
        Opcode op = kFpOps[rng_.nextBelow(std::size(kFpOps))];
        RegIndex rs1 = sourceReg();
        RegIndex rs2 = opInfo(op).flags & kReadsRs2 ? sourceReg()
                                                    : RegIndex{0};
        emit(Instruction::makeR(op, destReg(), rs1, rs2));
        return;
    }
    roll -= shape_.fpDensity;

    if (roll < shape_.mulDivDensity) {
        static const Opcode kMulDivOps[] = {Opcode::MUL, Opcode::DIV,
                                            Opcode::REM};
        Opcode op = kMulDivOps[rng_.nextBelow(std::size(kMulDivOps))];
        emit(Instruction::makeR(op, destReg(), sourceReg(),
                                sourceReg()));
        return;
    }

    switch (rng_.nextBelow(12)) {
      case 0:
        emit(Instruction::makeI(Opcode::ADDI, destReg(), sourceReg(),
                                static_cast<std::int32_t>(
                                    rng_.nextBelow(64)) -
                                    32));
        return;
      case 1:
        emit(Instruction::makeI(Opcode::SLLI, destReg(), sourceReg(),
                                static_cast<std::int32_t>(
                                    rng_.nextBelow(8))));
        return;
      case 2:
        emit(Instruction::makeI(Opcode::SRLI, destReg(), sourceReg(),
                                static_cast<std::int32_t>(
                                    rng_.nextBelow(8))));
        return;
      case 3:
        emit(Instruction::makeI(Opcode::LDI, destReg(), 0,
                                static_cast<std::int32_t>(
                                    rng_.nextBelow(512)) -
                                    256));
        return;
      case 4:
        emit(Instruction::makeR(Opcode::SLT, destReg(), sourceReg(),
                                sourceReg()));
        return;
      default: {
        static const Opcode kAluOps[] = {Opcode::ADD, Opcode::SUB,
                                         Opcode::AND, Opcode::OR,
                                         Opcode::XOR, Opcode::SLTU};
        Opcode op = kAluOps[rng_.nextBelow(std::size(kAluOps))];
        emit(Instruction::makeR(op, destReg(), sourceReg(),
                                sourceReg()));
        return;
      }
    }
}

void
Generator::emitForwardBranch(unsigned budget_left)
{
    unsigned skip = 1 + static_cast<unsigned>(rng_.nextBelow(
                            std::min(budget_left, 5u)));

    if (rng_.nextBelow(5) == 0) {
        // Unconditional forward jump (J, occasionally JAL).
        auto target = static_cast<std::int32_t>(code_.size() + 1 +
                                                skip);
        if (rng_.nextBelow(3) == 0) {
            emit(Instruction::makeJ(Opcode::JAL, destReg(), target));
        } else {
            emit(Instruction::makeJ(Opcode::J, 0, target));
        }
    } else {
        static const Opcode kBranchOps[] = {Opcode::BEQ, Opcode::BNE,
                                            Opcode::BLT, Opcode::BGE};
        Opcode op = kBranchOps[rng_.nextBelow(std::size(kBranchOps))];
        emit(Instruction::makeB(op, sourceReg(), sourceReg(),
                                static_cast<std::int32_t>(skip + 1)));
    }
    for (unsigned i = 0; i < skip; ++i)
        emitPlainOp();
}

void
Generator::emitLoop(unsigned depth, unsigned budget)
{
    auto counter =
        static_cast<RegIndex>(plan_.firstCounter + depth);
    auto trips = static_cast<std::int32_t>(
        1 + rng_.nextBelow(shape_.maxLoopTrips));

    emit(Instruction::makeI(Opcode::LDI, counter, 0, trips));
    auto loop_start = static_cast<std::int32_t>(code_.size());
    emitBody(depth + 1, budget);
    emit(Instruction::makeI(Opcode::ADDI, counter, counter, -1));
    // Back edge: counters are never written by the body, so the trip
    // count is exact and the loop always terminates.
    auto backedge_at = static_cast<std::int32_t>(code_.size());
    emit(Instruction::makeB(Opcode::BNE, counter, plan_.zero,
                            loop_start - backedge_at));
}

void
Generator::emitBody(unsigned depth, unsigned budget)
{
    unsigned emitted = 0;
    while (emitted < budget) {
        unsigned left = budget - emitted;
        double roll = rng_.nextDouble();
        if (roll < shape_.loopDensity && depth < shape_.maxLoopDepth &&
            left >= 8) {
            unsigned inner = 2 + static_cast<unsigned>(
                                     rng_.nextBelow(left / 2));
            emitLoop(depth, inner);
            emitted += inner + 3;
        } else if (roll < shape_.loopDensity + shape_.branchDensity &&
                   left >= 3) {
            emitForwardBranch(left - 1);
            emitted += 3;
        } else {
            emitPlainOp();
            emitted += 1;
        }
    }
}

Program
Generator::run()
{
    // ---- Prologue: give every named register a defined value ----
    emit(Instruction::makeI(Opcode::LDI, plan_.zero, 0, 0));
    emit(Instruction::makeR(Opcode::TID, plan_.base, 0, 0));
    emit(Instruction::makeI(Opcode::SLLI, plan_.base, plan_.base, 9));
    for (unsigned i = 0; i < plan_.pool; ++i) {
        switch (rng_.nextBelow(4)) {
          case 0:
            emit(Instruction::makeR(Opcode::TID, poolReg(i), 0, 0));
            break;
          case 1:
            emit(Instruction::makeR(Opcode::NTH, poolReg(i), 0, 0));
            break;
          default:
            emit(Instruction::makeI(
                Opcode::LDI, poolReg(i), 0,
                static_cast<std::int32_t>(rng_.nextBelow(512)) - 256));
            break;
        }
    }
    lastWritten_ = poolReg(plan_.pool - 1);

    // ---- Body ----
    unsigned span = shape_.maxBodyOps - shape_.minBodyOps + 1;
    unsigned budget = shape_.minBodyOps +
                      static_cast<unsigned>(rng_.nextBelow(span));
    emitBody(0, budget);

    // ---- Epilogue: spill the pool so the memory image captures the
    // register state (and intermediate writes are not dead) ----
    for (unsigned i = 0; i < plan_.pool; ++i) {
        emit(Instruction::makeB(Opcode::ST, plan_.base, poolReg(i),
                                static_cast<std::int32_t>(
                                    8 * (48 + i))));
    }
    emit(Instruction{Opcode::HALT, 0, 0, 0, 0});

    Program program;
    program.code.reserve(code_.size());
    for (const Instruction &inst : code_)
        program.code.push_back(inst.encode());
    program.memorySize = kFuzzBytesPerThread * kFuzzMaxThreads;
    program.entry = 0;
    return program;
}

} // namespace

Program
generateProgram(const FuzzShape &shape, std::uint64_t seed)
{
    return Generator(shape, seed).run();
}

} // namespace sdsp

#include "fuzz/differential.hh"

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/lint.hh"
#include "common/logging.hh"
#include "isa/interpreter.hh"

namespace sdsp
{

namespace
{

DiffResult
failure(std::string kind, std::string detail)
{
    DiffResult result;
    result.ok = false;
    result.kind = std::move(kind);
    result.detail = std::move(detail);
    return result;
}

} // namespace

DiffResult
runDifferential(const Program &program, const MachineConfig &config,
                const DiffLimits &limits)
{
    // ---- Static analysis first: it is the gate that makes running
    // the program safe (no undecodable words, no escaping control,
    // no provably bad accesses — all fatal() paths in the runners).
    LintOptions lint_options;
    lint_options.machine = {config.numThreads, config.blockSize,
                            config.issueWidth};
    LintReport report = lintProgram(program, lint_options);
    if (report.errorCount() > 0) {
        for (const LintFinding &finding : report.findings) {
            if (finding.severity == LintSeverity::Error) {
                return failure(
                    "lint-error",
                    format("pc %u: [%s] %s", finding.pc,
                           lintCodeName(finding.code),
                           finding.message.c_str()));
            }
        }
    }

    Cfg cfg = Cfg::build(program);

    // ---- Reference interpreter, tracking the PCs it visits ----
    Interpreter interp(program, config.numThreads);
    std::vector<std::uint8_t> visited(program.code.size(), 0);
    std::uint64_t steps = 0;
    while (!interp.finished() && steps < limits.maxInterpSteps) {
        for (unsigned tid = 0; tid < config.numThreads; ++tid) {
            auto thread = static_cast<ThreadId>(tid);
            if (interp.halted(thread))
                continue;
            if (interp.pc(thread) < visited.size())
                visited[interp.pc(thread)] = 1;
            interp.stepThread(thread);
            ++steps;
        }
    }
    if (interp.anyFaulted()) {
        // Contained architectural fault (misaligned / out-of-bounds
        // access, runaway PC). Generated programs are valid by
        // construction, but minimization candidates are not.
        return failure("arch-fault", interp.faultMessage());
    }
    if (!interp.finished()) {
        return failure("interp-timeout",
                       format("interpreter exceeded %llu steps",
                              static_cast<unsigned long long>(
                                  limits.maxInterpSteps)));
    }

    // ---- Analyzer consistency: executed PCs must be reachable ----
    for (InstAddr pc = 0; pc < visited.size(); ++pc) {
        if (visited[pc] && !cfg.reachable(pc)) {
            return failure(
                "unreachable-pc",
                format("interpreter executed pc %u but the CFG "
                       "proves it unreachable",
                       pc));
        }
    }

    // ---- Pipeline run ----
    MachineConfig run_config = config;
    run_config.maxCycles = limits.maxCycles;
    Processor cpu(run_config, program);
    DiffResult result;
    result.sim = cpu.run();
    if (!result.sim.finished) {
        DiffResult fail = failure(
            "sim-timeout", format("pipeline exceeded %llu cycles",
                                  static_cast<unsigned long long>(
                                      limits.maxCycles)));
        fail.sim = result.sim;
        return fail;
    }

    // ---- Architectural state comparison ----
    unsigned budget = run_config.regsPerThread();
    for (unsigned tid = 0; tid < config.numThreads; ++tid) {
        auto thread = static_cast<ThreadId>(tid);
        for (unsigned reg = 0; reg < budget; ++reg) {
            RegVal expected =
                interp.reg(thread, static_cast<RegIndex>(reg));
            RegVal actual =
                cpu.readReg(thread, static_cast<RegIndex>(reg));
            if (expected != actual) {
                DiffResult fail = failure(
                    "reg-mismatch",
                    format("thread %u r%u: interpreter 0x%llx, "
                           "pipeline 0x%llx",
                           tid, reg,
                           static_cast<unsigned long long>(expected),
                           static_cast<unsigned long long>(actual)));
                fail.sim = result.sim;
                return fail;
            }
        }
    }

    const auto &interp_mem = interp.memory();
    const auto &cpu_mem = cpu.memory().image();
    if (interp_mem.size() != cpu_mem.size()) {
        DiffResult fail = failure(
            "mem-mismatch",
            format("memory sizes differ: %zu vs %zu",
                   interp_mem.size(), cpu_mem.size()));
        fail.sim = result.sim;
        return fail;
    }
    for (std::size_t addr = 0; addr < interp_mem.size(); ++addr) {
        if (interp_mem[addr] != cpu_mem[addr]) {
            DiffResult fail = failure(
                "mem-mismatch",
                format("byte 0x%zx: interpreter 0x%02x, pipeline "
                       "0x%02x",
                       addr, unsigned{interp_mem[addr]},
                       unsigned{cpu_mem[addr]}));
            fail.sim = result.sim;
            return fail;
        }
    }

    for (unsigned tid = 0; tid < config.numThreads; ++tid) {
        auto thread = static_cast<ThreadId>(tid);
        std::uint64_t expected = interp.instructionCount(thread);
        std::uint64_t actual = cpu.committedInstructions(thread);
        if (expected != actual) {
            DiffResult fail = failure(
                "count-mismatch",
                format("thread %u: interpreter executed %llu, "
                       "pipeline committed %llu",
                       tid,
                       static_cast<unsigned long long>(expected),
                       static_cast<unsigned long long>(actual)));
            fail.sim = result.sim;
            return fail;
        }
    }

    // ---- Static IPC bound as a simulator oracle ----
    result.ipcBound = report.bound.boundAtCycles(result.sim.cycles);
    if (result.sim.ipc() > result.ipcBound + 1e-9) {
        DiffResult fail = failure(
            "ipc-bound-violation",
            format("measured IPC %.6f exceeds the static bound %.6f",
                   result.sim.ipc(), result.ipcBound));
        fail.sim = result.sim;
        fail.ipcBound = result.ipcBound;
        return fail;
    }

    return result;
}

} // namespace sdsp

/**
 * @file
 * Running your own multithreaded assembly on the simulator.
 *
 * Assembles a homogeneous-multitasking program from text (all threads
 * run the same code; TID selects the data partition), disassembles
 * it, runs it on a 4-thread machine, and reads the results out of
 * simulated memory.
 *
 * The program computes, in parallel, sum[t] = sum of the t-th quarter
 * of a 64-element array, then thread 0 spin-waits for the others'
 * done-flags and totals the partial sums.
 *
 *   $ ./build/examples/custom_workload
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "core/processor.hh"

namespace
{

const char *kSource = R"(
    ; data ------------------------------------------------------------
    .space values 64          ; filled by the host before the run
    .space partial 8          ; one partial sum per thread
    .space done 8             ; per-thread completion flags
    .dword total 0

    ; code (every thread executes this) --------------------------------
        tid   r2
        nth   r3
        ; chunk = 64 / nth; start = tid*chunk
        ldi   r4, 64
        div   r5, r4, r3
        mul   r6, r2, r5      ; start index
        add   r7, r6, r5      ; end index
        la    r8, values
        ldi   r9, 0           ; sum
    loop:
        bge   r6, r7, loop_done
        slli  r10, r6, 3
        add   r10, r8, r10
        ld    r11, 0(r10)
        add   r9, r9, r11
        addi  r6, r6, 1
        j     loop
    loop_done:
        ; partial[tid] = sum; done[tid] = 1
        la    r8, partial
        slli  r10, r2, 3
        add   r8, r8, r10
        st    r9, 0(r8)
        la    r8, done
        add   r8, r8, r10
        ldi   r11, 1
        st    r11, 0(r8)
        ; thread 0 reduces once everyone is done
        bne   r2, r0, finish
        ldi   r6, 0
    wait_all:
        bge   r6, r3, reduce
        la    r8, done
        slli  r10, r6, 3
        add   r8, r8, r10
    spin_one:
        spin
        ld    r11, 0(r8)
        beq   r11, r0, spin_one
        addi  r6, r6, 1
        j     wait_all
    reduce:
        ldi   r9, 0
        ldi   r6, 0
    acc:
        bge   r6, r3, store_total
        la    r8, partial
        slli  r10, r6, 3
        add   r8, r8, r10
        ld    r11, 0(r8)
        add   r9, r9, r11
        addi  r6, r6, 1
        j     acc
    store_total:
        la    r8, total
        st    r9, 0(r8)
    finish:
        halt
)";

} // namespace

int
main()
{
    using namespace sdsp;

    // Assemble and show the first block of the listing.
    AssemblyResult assembly = assemble(kSource);
    std::printf("assembled %zu instructions, %zu data bytes\n",
                assembly.program.code.size(),
                assembly.program.data.size());
    std::string listing = disassemble(assembly.program);
    std::printf("--- first lines of the disassembly ---\n%.360s...\n\n",
                listing.c_str());

    // Fill the input array (values[i] = i).
    Program program = assembly.program;
    Addr values = 0; // first data symbol
    for (std::uint64_t i = 0; i < 64; ++i)
        writeWord(program.data, values + Addr(i * 8), i);

    // Run on the paper's default 4-thread machine.
    MachineConfig cfg;
    Processor cpu(cfg, program);
    SimResult sim = cpu.run();
    if (!sim.finished) {
        std::fprintf(stderr, "simulation did not finish\n");
        return 1;
    }

    Addr total = 64 * 8 + 8 * 8 + 8 * 8; // values + partial + done
    std::printf("total = %llu (expected %u)\n",
                static_cast<unsigned long long>(
                    cpu.memory().read(total)),
                63 * 64 / 2);
    std::printf("cycles = %llu, IPC = %.2f\n",
                static_cast<unsigned long long>(sim.cycles),
                sim.ipc());
    for (unsigned t = 0; t < cfg.numThreads; ++t) {
        std::printf("thread %u committed %llu instructions\n", t,
                    static_cast<unsigned long long>(
                        cpu.committedInstructions(
                            static_cast<ThreadId>(t))));
    }
    return cpu.memory().read(total) == 63 * 64 / 2 ? 0 : 1;
}

/**
 * @file
 * Design-space exploration over the paper's configuration axes.
 *
 * Sweeps thread count x fetch policy for one benchmark (default:
 * Water; pass another suite name as argv[1]) and prints a
 * cycles matrix plus the best configuration found — the kind of
 * what-if study the simulator exists for.
 *
 *   $ ./build/examples/design_explorer [benchmark] [scale%]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "harness/runner.hh"

int
main(int argc, char **argv)
{
    using namespace sdsp;

    const char *name = argc > 1 ? argv[1] : "Water";
    unsigned scale = argc > 2
                         ? static_cast<unsigned>(std::atoi(argv[2]))
                         : 60;
    const Workload &workload = workloadByName(name);

    const FetchPolicy policies[] = {
        FetchPolicy::TrueRoundRobin,
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
        FetchPolicy::Adaptive,
    };

    std::printf("design space: %s at %u%% scale "
                "(threads 1-6 x fetch policy)\n\n",
                name, scale);

    Table table({"threads", "TrueRR", "MaskedRR", "CSwitch",
                 "Adaptive"});
    Cycle best_cycles = ~Cycle{0};
    std::string best_name;
    for (unsigned threads = 1; threads <= 6; ++threads) {
        table.beginRow();
        table.cell(std::uint64_t{threads});
        for (FetchPolicy policy : policies) {
            MachineConfig cfg;
            cfg.numThreads = threads;
            cfg.fetchPolicy = policy;
            RunResult result = runWorkload(workload, cfg, scale);
            requireGood(result);
            table.cell(result.cycles);
            if (result.cycles < best_cycles) {
                best_cycles = result.cycles;
                best_name = format("%u threads / %s", threads,
                                   fetchPolicyName(policy));
            }
        }
    }
    std::printf("%s\n", table.toAscii().c_str());
    std::printf("best configuration: %s (%llu cycles)\n",
                best_name.c_str(),
                static_cast<unsigned long long>(best_cycles));
    return 0;
}

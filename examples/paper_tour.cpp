/**
 * @file
 * A guided tour of the paper's main results at reduced scale — a
 * five-minute version of the full bench suite, printing one mini
 * experiment per headline finding with the paper's claim above each.
 *
 *   $ ./build/examples/paper_tour [scale%]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "harness/runner.hh"

namespace
{

using namespace sdsp;

unsigned g_scale = 25;

MachineConfig
machine(unsigned threads)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    return cfg;
}

Cycle
cyclesOf(const char *benchmark, const MachineConfig &cfg)
{
    RunResult result =
        runWorkload(workloadByName(benchmark), cfg, g_scale);
    requireGood(result);
    return result.cycles;
}

void
claim(const char *number, const char *text)
{
    std::printf("\n--- %s ------------------------------------\n", number);
    std::printf("paper: %s\n", text);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1)
        g_scale = static_cast<unsigned>(std::atoi(argv[1]));
    std::printf("paper tour at %u%% problem scale\n", g_scale);

    claim("1 (abstract)",
          "multithreading yields a significant gain across a range "
          "of benchmarks");
    {
        Table table({"benchmark", "1 thread", "4 threads", "speedup %"});
        for (const char *name : {"LL1", "LL7", "Water", "Laplace"}) {
            Cycle base = cyclesOf(name, machine(1));
            Cycle multi = cyclesOf(name, machine(4));
            table.beginRow();
            table.cell(std::string(name));
            table.cell(base);
            table.cell(multi);
            table.cell(speedupPercent(multi, base), 1);
        }
        std::printf("%s", table.toAscii().c_str());
    }

    claim("2 (section 5.2)",
          "LL5's cross-iteration dependency makes it the negative "
          "case, worsening with thread count");
    {
        Table table({"threads", "LL5 cycles", "speedup %"});
        Cycle base = cyclesOf("LL5", machine(1));
        for (unsigned threads : {1u, 2u, 4u, 6u}) {
            Cycle cycles = cyclesOf("LL5", machine(threads));
            table.beginRow();
            table.cell(std::uint64_t{threads});
            table.cell(cycles);
            table.cell(speedupPercent(cycles, base), 1);
        }
        std::printf("%s", table.toAscii().c_str());
    }

    claim("3 (section 5.1)",
          "the three fetch policies perform about equivalently; "
          "True Round Robin is the simplest");
    {
        Table table({"policy", "Water cycles"});
        for (auto [name, policy] :
             {std::pair{"TrueRR", FetchPolicy::TrueRoundRobin},
              std::pair{"MaskedRR", FetchPolicy::MaskedRoundRobin},
              std::pair{"CSwitch", FetchPolicy::ConditionalSwitch}}) {
            MachineConfig cfg = machine(4);
            cfg.fetchPolicy = policy;
            table.beginRow();
            table.cell(std::string(name));
            table.cell(cyclesOf("Water", cfg));
        }
        std::printf("%s", table.toAscii().c_str());
    }

    claim("4 (section 5.5)",
          "Flexible Result Commit beats committing from the lowest "
          "block only");
    {
        MachineConfig lowest = machine(4);
        lowest.commitPolicy = CommitPolicy::LowestBlockOnly;
        Table table({"benchmark", "flexible", "lowest-only", "gain %"});
        for (const char *name : {"LL2", "MPD"}) {
            Cycle flexible = cyclesOf(name, machine(4));
            Cycle strict = cyclesOf(name, lowest);
            table.beginRow();
            table.cell(std::string(name));
            table.cell(flexible);
            table.cell(strict);
            table.cell(speedupPercent(flexible, strict), 1);
        }
        std::printf("%s", table.toAscii().c_str());
    }

    claim("5 (section 6.1)",
          "software scheduling - dividing tasks judiciously - can "
          "have a great impact (LL5 rearranged)");
    {
        Table table({"variant", "4T cycles", "vs its own 1T %"});
        for (const char *name : {"LL5", "LL5sched"}) {
            Cycle base = cyclesOf(name, machine(1));
            Cycle multi = cyclesOf(name, machine(4));
            table.beginRow();
            table.cell(std::string(name));
            table.cell(multi);
            table.cell(speedupPercent(multi, base), 1);
        }
        std::printf("%s", table.toAscii().c_str());
    }

    std::printf("\ntour complete; the full suite is "
                "`for b in build/bench/*; do $b; done`\n");
    return 0;
}

# Trace demo: each thread walks a slice of a shared table, folds the
# elements into a running sum with a multiply in the loop body, and
# stores its partial result to a per-thread output slot.  The mix of
# loads, a long-latency MUL, stores, and a data-dependent branch makes
# every stall reason show up in `--trace-json` / `--stats` output.
#
#   ./build/src/tools/sdsp-run -t 4 --trace-json trace.json \
#       --stats examples/trace_demo.s
#
# Register budget stays within r0..r15, so the program runs at any
# thread count from 1 to 8 under the default 128-register file.

    .space table 512          # 64 dwords of shared input
    .space out    64          # one output dword per thread (up to 8)

        ldi   r0, 0           # r0 = constant zero for the loop tests
        tid   r2              # r2 = my thread id
        nth   r3              # r3 = number of threads
        ldi   r4, 64          # table length in dwords
        div   r5, r4, r3      # r5 = slice length
        mul   r6, r5, r2      # r6 = my first index
        la    r7, table
        slli  r8, r6, 3
        add   r7, r7, r8      # r7 = &table[first]
        ldi   r9, 0           # r9 = accumulator
        ldi   r10, 3          # odd multiplier, mixes the sum

fill:                         # seed my slice: table[i] = i + tid
        beq   r5, r0, reduce
        add   r11, r6, r2
        st    r11, 0(r7)
        addi  r7, r7, 8
        addi  r6, r6, 1
        addi  r5, r5, -1
        j     fill

reduce:
        div   r5, r4, r3      # reset slice length
        mul   r6, r5, r2
        la    r7, table
        slli  r8, r6, 3
        add   r7, r7, r8      # back to &table[first]
loop:
        beq   r5, r0, done
        ld    r12, 0(r7)
        mul   r12, r12, r10   # long-latency op inside the loop
        add   r9, r9, r12
        addi  r7, r7, 8
        addi  r5, r5, -1
        j     loop

done:
        la    r13, out
        slli  r14, r2, 3
        add   r13, r13, r14
        st    r9, 0(r13)      # out[tid] = partial sum
        halt

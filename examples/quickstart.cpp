/**
 * @file
 * Quickstart: the smallest useful program against the public API.
 *
 * Builds the paper's default 4-thread machine, runs the Matrix
 * benchmark on it and on a single-threaded baseline, verifies both
 * runs against the C++ reference, and prints the multithreading
 * speedup with a few headline statistics.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/runner.hh"

int
main()
{
    using namespace sdsp;

    // 1. Pick a benchmark from the suite (the paper's eleven are all
    //    registered; see src/workloads).
    const Workload &matrix = workloadByName("Matrix");

    // 2. Configure the machine. MachineConfig defaults to the
    //    paper's Table 2: 4 threads, True Round Robin fetch, 32-entry
    //    scheduling unit, flexible result commit, 8 KB 2-way cache.
    MachineConfig multithreaded;
    MachineConfig baseline;
    baseline.numThreads = 1;

    // 3. Run. runWorkload() builds the benchmark for the configured
    //    thread count, simulates it cycle by cycle, and verifies the
    //    final memory image against a C++ reference implementation.
    RunResult mt = runWorkload(matrix, multithreaded);
    RunResult st = runWorkload(matrix, baseline);
    requireGood(mt);
    requireGood(st);

    // 4. Report, using the paper's speedup formula.
    std::printf("benchmark        : %s\n", mt.benchmark.c_str());
    std::printf("baseline (1T)    : %llu cycles, IPC %.2f\n",
                static_cast<unsigned long long>(st.cycles), st.ipc);
    std::printf("multithreaded 4T : %llu cycles, IPC %.2f\n",
                static_cast<unsigned long long>(mt.cycles), mt.ipc);
    std::printf("speedup          : %+.1f%%\n",
                speedupPercent(mt.cycles, st.cycles));
    std::printf("cache hit rate   : %.1f%%\n",
                100.0 * mt.cacheHitRate);
    std::printf("branch accuracy  : %.1f%%\n",
                100.0 * mt.branchAccuracy);
    std::printf("flexible commits : %llu\n",
                static_cast<unsigned long long>(mt.flexCommits));
    return 0;
}

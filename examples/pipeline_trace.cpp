/**
 * @file
 * Watching the pipeline work: runs a tiny two-thread program with the
 * per-cycle event trace enabled, printing fetches, commits and
 * branch-misprediction squashes as they happen — then a summary of
 * where the cycles went.
 *
 *   $ ./build/examples/pipeline_trace
 */

#include <cstdio>
#include <iostream>

#include "asm/builder.hh"
#include "core/processor.hh"

int
main()
{
    using namespace sdsp;

    // Two threads; each sums tid+1 ten times into cells[tid].
    ProgramBuilder b;
    b.array("cells", 2);
    b.tid(2);
    b.addi(3, 2, 1);  // value = tid + 1
    b.ldi(4, 10);     // iterations
    b.ldi(5, 0);      // accumulator
    b.label("loop");
    b.add(5, 5, 3);
    b.addi(4, 4, -1);
    b.bne(4, 0, "loop");
    b.la(6, "cells");
    b.slli(7, 2, 3);
    b.add(6, 6, 7);
    b.st(5, 0, 6);
    b.halt();
    Program prog = b.finish();

    MachineConfig cfg;
    cfg.numThreads = 2;

    Processor cpu(cfg, prog);
    cpu.setTrace(&std::cout);
    std::printf("--- per-cycle pipeline events ---\n");
    SimResult sim = cpu.run();
    std::printf("--- end of trace ---\n\n");

    if (!sim.finished)
        return 1;

    std::printf("cells = {%llu, %llu} (expected {10, 20})\n",
                static_cast<unsigned long long>(cpu.memory().read(0)),
                static_cast<unsigned long long>(cpu.memory().read(8)));
    std::printf("cycles=%llu committed=%llu IPC=%.2f\n",
                static_cast<unsigned long long>(sim.cycles),
                static_cast<unsigned long long>(
                    sim.committedInstructions),
                sim.ipc());

    StatsRegistry stats;
    cpu.reportStats(stats);
    std::printf("\nfull statistics dump:\n%s",
                stats.toString().c_str());
    return 0;
}

/**
 * @file
 * Ablation: thread priorities through the fetch policy (paper section
 * 3.3: "If different priorities are to be allotted, the fetch policy
 * of the processor can be adapted to favor or discriminate against
 * the particular thread(s)"). Weighted round robin gives thread 0 a
 * multiple of the other threads' fetch slots; the table shows total
 * cycles and how far ahead the favored thread finishes.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "core/processor.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

/** Committed share of thread 0 at the end of the run. */
double
thread0Share(const RunResult &result)
{
    double total = result.stats.get("sim.committed");
    double t0 = result.stats.get("sim.committed.thread0");
    return total > 0 ? t0 / total : 0.0;
}

} // namespace

int
main()
{
    printHeader("Ablation: thread priorities (section 3.3)",
                "weighted round robin favoring thread 0 by 1x/2x/4x, "
                "4 threads",
                "higher weight advances the favored thread at a "
                "modest total-throughput cost; useful when one stream "
                "is latency-critical");

    std::vector<Variant> variants;
    for (unsigned boost : {1u, 2u, 4u}) {
        MachineConfig cfg = paperConfig(4);
        cfg.fetchPolicy = FetchPolicy::WeightedRoundRobin;
        cfg.fetchWeights = {boost, 1, 1, 1};
        variants.push_back({format("%ux", boost), cfg});
    }
    const auto &workloads = allWorkloads();
    auto grid = runGrid(workloads, variants);
    exportRunsJson(variants, grid);

    Table table({"benchmark", "equal cycles", "2x cycles", "4x cycles",
                 "t0 share equal %", "t0 share 4x %"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<RunResult> &results = grid[w];
        table.beginRow();
        table.cell(workloads[w]->name());
        table.cell(results[0].cycles);
        table.cell(results[1].cycles);
        table.cell(results[2].cycles);
        table.cell(100.0 * thread0Share(results[0]), 1);
        table.cell(100.0 * thread0Share(results[2]), 1);
    }
    std::printf("\n%s", table.toAscii().c_str());
    exportCsv(table);
    return 0;
}

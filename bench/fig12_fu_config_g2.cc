/**
 * @file
 * Bench binary regenerating the paper's Figure 12 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runFuConfigFigure(
        "Figure 12", sdsp::BenchmarkGroup::GroupII);
}

#include "figures.hh"

#include <cstdio>

#include "common/logging.hh"

namespace sdsp
{
namespace bench
{

namespace
{

std::vector<const Workload *>
of(BenchmarkGroup group)
{
    return workloadsInGroup(group);
}

const char *
groupName(BenchmarkGroup group)
{
    return group == BenchmarkGroup::LivermoreLoops
               ? "Group I (Livermore loops)"
               : "Group II (Laplace, MPD, Matrix, Sieve, Water)";
}

} // namespace

int
runFetchPolicyFigure(const std::string &figure, BenchmarkGroup group)
{
    printHeader(figure,
                std::string("cycles of execution of ") +
                    groupName(group) + " under the fetch policies",
                "TrueRR ~ MaskedRR ~ CSwitch, all well ahead of the "
                "single-threaded base case for most benchmarks "
                "(LL5 behind it)");

    MachineConfig true_rr = paperConfig(4);
    MachineConfig masked = paperConfig(4);
    masked.fetchPolicy = FetchPolicy::MaskedRoundRobin;
    MachineConfig cswitch = paperConfig(4);
    cswitch.fetchPolicy = FetchPolicy::ConditionalSwitch;

    std::vector<Variant> variants = {
        {"BaseCase", paperConfig(1)},
        {"TrueRR", true_rr},
        {"MaskedRR", masked},
        {"CSwitch", cswitch},
    };
    auto cycles = printCyclesTable(of(group), variants);
    printSpeedupTable(of(group), variants, cycles, 0);
    return 0;
}

int
runThreadCountFigure(const std::string &figure, BenchmarkGroup group)
{
    printHeader(figure,
                std::string("cycles of execution of ") +
                    groupName(group) + " for 1-6 threads",
                "peak improvements mostly +20..55%; LL5 negative; "
                "Livermore group deteriorates by ~6 threads");

    std::vector<Variant> variants;
    for (unsigned threads = 1; threads <= 6; ++threads) {
        variants.push_back(
            {format("%uT", threads), paperConfig(threads)});
    }
    auto cycles = printCyclesTable(of(group), variants);
    printSpeedupTable(of(group), variants, cycles, 0);

    // Peak improvement per benchmark (the paper's section 5.2
    // summary statistic).
    Table peaks({"benchmark", "peak speedup %", "at threads"});
    double sum = 0.0;
    auto workloads = of(group);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        double best = -1e9;
        unsigned best_threads = 2;
        for (std::size_t v = 1; v < variants.size(); ++v) {
            double speedup = speedupPercent(cycles[w][v], cycles[w][0]);
            if (speedup > best) {
                best = speedup;
                best_threads = static_cast<unsigned>(v + 1);
            }
        }
        sum += best;
        peaks.beginRow();
        peaks.cell(workloads[w]->name());
        peaks.cell(best, 1);
        peaks.cell(std::uint64_t{best_threads});
    }
    std::printf("\npeak improvement per benchmark:\n%s",
                peaks.toAscii().c_str());
    std::printf("group average peak improvement: %.1f%%\n",
                sum / static_cast<double>(workloads.size()));
    return 0;
}

int
runCacheFigure(const std::string &figure, BenchmarkGroup group)
{
    printHeader(figure,
                std::string("average cycles of ") + groupName(group) +
                    " with direct-mapped vs 2-way associative caches, "
                    "1-6 threads",
                "associative ahead of direct everywhere, and the gap "
                "widens as threads contend for the cache");

    // One sweep covers the whole (organization x threads) grid;
    // column order is direct then assoc for each thread count.
    std::vector<Variant> variants;
    for (unsigned threads = 1; threads <= 6; ++threads) {
        MachineConfig direct = paperConfig(threads);
        direct.dcache.ways = 1;
        variants.push_back({format("direct/%uT", threads), direct});
        variants.push_back(
            {format("assoc/%uT", threads), paperConfig(threads)});
    }
    auto grid = runGrid(of(group), variants);
    exportRunsJson(variants, grid);

    Table table({"threads", "direct", "assoc", "assoc gain %"});
    double n = static_cast<double>(of(group).size());
    for (unsigned threads = 1; threads <= 6; ++threads) {
        double direct_sum = 0.0, assoc_sum = 0.0;
        for (std::size_t w = 0; w < grid.size(); ++w) {
            direct_sum += static_cast<double>(
                grid[w][2 * (threads - 1)].cycles);
            assoc_sum += static_cast<double>(
                grid[w][2 * (threads - 1) + 1].cycles);
        }
        table.beginRow();
        table.cell(std::uint64_t{threads});
        table.cell(direct_sum / n, 1);
        table.cell(assoc_sum / n, 1);
        table.cell((direct_sum - assoc_sum) / direct_sum * 100.0, 2);
    }
    std::printf("\n%s", table.toAscii().c_str());
    exportCsv(table);
    return 0;
}

int
runSuDepthFigure(const std::string &figure, BenchmarkGroup group)
{
    printHeader(figure,
                std::string("performance of ") + groupName(group) +
                    " for scheduling units of 16/32/48/64 entries, "
                    "1 and 4 threads",
                "big step 16->32, small 32->48, negligible 48->64; a "
                "deeper SU narrows the multithreading advantage; "
                "occasional inversions from commit-time predictor "
                "updates and the restricted load/store policy");

    std::vector<Variant> variants;
    for (unsigned threads : {4u, 1u}) {
        for (unsigned entries : {16u, 32u, 48u, 64u}) {
            MachineConfig cfg = paperConfig(threads);
            cfg.suEntries = entries;
            variants.push_back(
                {format("%uT/SU%u", threads, entries), cfg});
        }
    }
    printCyclesTable(of(group), variants);
    return 0;
}

int
runFuConfigFigure(const std::string &figure, BenchmarkGroup group)
{
    printHeader(figure,
                std::string("cycles of ") + groupName(group) +
                    " with default vs enhanced (++) functional units",
                "multithreaded speedup over single-threaded is larger "
                "under the enhanced configuration, especially for the "
                "compute-bound Livermore group");

    MachineConfig base1 = paperConfig(1);
    MachineConfig base4 = paperConfig(4);
    MachineConfig enh1 = paperConfig(1);
    enh1.fu = FuConfig::sdspEnhanced();
    MachineConfig enh4 = paperConfig(4);
    enh4.fu = FuConfig::sdspEnhanced();

    std::vector<Variant> variants = {
        {"Base", base1},
        {"Base++", enh1},
        {"4Thread", base4},
        {"4Thread++", enh4},
    };
    auto cycles = printCyclesTable(of(group), variants);

    // The paper's headline: relative multithreaded speedup within
    // each FU configuration.
    auto workloads = of(group);
    double default_sum = 0.0, enhanced_sum = 0.0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        default_sum += speedupPercent(cycles[w][2], cycles[w][0]);
        enhanced_sum += speedupPercent(cycles[w][3], cycles[w][1]);
    }
    double n = static_cast<double>(workloads.size());
    std::printf("\nmultithreading speedup, default FUs:  %.1f%%\n",
                default_sum / n);
    std::printf("multithreading speedup, enhanced FUs: %.1f%%\n",
                enhanced_sum / n);
    return 0;
}

int
runCommitFigure(const std::string &figure, BenchmarkGroup group)
{
    printHeader(figure,
                std::string("cycles of ") + groupName(group) +
                    " committing from multiple (four) vs the lowest "
                    "block only, 4 threads",
                "flexible result commit ahead (Group I ~+x%, Group II "
                "smaller); without it, scheduling-unit stalls occur "
                "more often");

    MachineConfig lowest = paperConfig(4);
    lowest.commitPolicy = CommitPolicy::LowestBlockOnly;
    std::vector<Variant> variants = {
        {"Multiple", paperConfig(4)},
        {"Lowest", lowest},
    };
    auto workloads = of(group);
    auto grid = runGrid(workloads, variants);
    auto cycles = printCyclesTable(workloads, variants, grid);

    // SU-stall counts, the paper's explanation for the gap, from the
    // same runs the cycles table reports.
    Table stalls(
        {"benchmark", "suStalls multiple", "suStalls lowest",
         "flexCommits"});
    double gain_sum = 0.0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const RunResult &multiple = grid[w][0];
        const RunResult &only_lowest = grid[w][1];
        stalls.beginRow();
        stalls.cell(workloads[w]->name());
        stalls.cell(multiple.suStalls);
        stalls.cell(only_lowest.suStalls);
        stalls.cell(multiple.flexCommits);
        gain_sum += speedupPercent(cycles[w][0], cycles[w][1]);
    }
    std::printf("\n%s", stalls.toAscii().c_str());
    std::printf("average improvement from flexible commit: %.1f%%\n",
                gain_sum / static_cast<double>(workloads.size()));
    return 0;
}

} // namespace bench
} // namespace sdsp

/**
 * @file
 * Bench binary regenerating the paper's Table 3: average data-cache
 * hit rates for direct-mapped and 2-way set-associative caches, for
 * 1-6 threads, per benchmark group.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

/** Column index for (threads, ways) in the variant grid below. */
std::size_t
column(unsigned threads, std::uint32_t ways)
{
    return 2 * (threads - 1) + (ways - 1);
}

double
averageHitRate(const std::vector<std::vector<RunResult>> &grid,
               std::size_t col)
{
    double sum = 0.0;
    for (const std::vector<RunResult> &row : grid)
        sum += row[col].cacheHitRate;
    return sum / static_cast<double>(grid.size());
}

} // namespace

int
main()
{
    printHeader("Table 3",
                "average hit rates for direct and 2-way set "
                "associative caches, 1-6 threads",
                "hit rate rises then falls with thread count (working "
                "sets first coexist, then thrash); associative ahead "
                "of direct throughout, by a growing margin");

    std::vector<Variant> variants;
    for (unsigned threads = 1; threads <= 6; ++threads) {
        for (std::uint32_t ways : {1u, 2u}) {
            MachineConfig cfg = paperConfig(threads);
            cfg.dcache.ways = ways;
            variants.push_back(
                {format("%uT/%u-way", threads, ways), cfg});
        }
    }

    auto grid1 = runGrid(
        workloadsInGroup(BenchmarkGroup::LivermoreLoops), variants);
    auto grid2 =
        runGrid(workloadsInGroup(BenchmarkGroup::GroupII), variants);
    exportRunsJson(variants, grid1, "_group1_runs");
    exportRunsJson(variants, grid2, "_group2_runs");

    Table table({"threads", "group", "direct %", "assoc %"});
    for (unsigned threads = 1; threads <= 6; ++threads) {
        for (BenchmarkGroup group :
             {BenchmarkGroup::LivermoreLoops, BenchmarkGroup::GroupII}) {
            const auto &grid =
                group == BenchmarkGroup::LivermoreLoops ? grid1 : grid2;
            table.beginRow();
            table.cell(std::uint64_t{threads});
            table.cell(group == BenchmarkGroup::LivermoreLoops
                           ? "Group I"
                           : "Group II");
            table.cell(
                100.0 * averageHitRate(grid, column(threads, 1)), 2);
            table.cell(
                100.0 * averageHitRate(grid, column(threads, 2)), 2);
        }
    }
    std::printf("\n%s", table.toAscii().c_str());
    exportCsv(table);
    return 0;
}

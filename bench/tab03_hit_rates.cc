/**
 * @file
 * Bench binary regenerating the paper's Table 3: average data-cache
 * hit rates for direct-mapped and 2-way set-associative caches, for
 * 1-6 threads, per benchmark group.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

double
averageHitRate(const std::vector<const Workload *> &workloads,
               unsigned threads, std::uint32_t ways)
{
    double sum = 0.0;
    for (const Workload *workload : workloads) {
        MachineConfig cfg = paperConfig(threads);
        cfg.dcache.ways = ways;
        sum += runChecked(*workload, cfg).cacheHitRate;
    }
    return sum / static_cast<double>(workloads.size());
}

} // namespace

int
main()
{
    printHeader("Table 3",
                "average hit rates for direct and 2-way set "
                "associative caches, 1-6 threads",
                "hit rate rises then falls with thread count (working "
                "sets first coexist, then thrash); associative ahead "
                "of direct throughout, by a growing margin");

    Table table({"threads", "group", "direct %", "assoc %"});
    for (unsigned threads = 1; threads <= 6; ++threads) {
        for (BenchmarkGroup group :
             {BenchmarkGroup::LivermoreLoops, BenchmarkGroup::GroupII}) {
            auto workloads = workloadsInGroup(group);
            table.beginRow();
            table.cell(std::uint64_t{threads});
            table.cell(group == BenchmarkGroup::LivermoreLoops
                           ? "Group I"
                           : "Group II");
            table.cell(100.0 * averageHitRate(workloads, threads, 1),
                       2);
            table.cell(100.0 * averageHitRate(workloads, threads, 2),
                       2);
        }
    }
    std::printf("\n%s", table.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Workload characterization: dynamic instruction mix of each
 * benchmark (the standard companion table to an evaluation like the
 * paper's — it explains *why* each benchmark responds to each design
 * axis, e.g. Water's FP-divide share vs Sieve's store share).
 *
 * Counted on the functional interpreter at 4 threads, so the numbers
 * are architectural (no wrong-path pollution).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "isa/interpreter.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Workload characterization",
                "dynamic instruction mix per benchmark (percent of "
                "committed instructions, 4 threads)",
                "Group I is FP-multiply/add heavy; Water is the FP "
                "divide/sqrt user; Sieve is integer stores; the sync "
                "benchmarks show their spin overhead as extra "
                "loads/branches");

    std::vector<std::string> header{"benchmark", "dyn.insts"};
    for (unsigned cls = 0; cls < kNumFuClasses; ++cls)
        header.push_back(fuClassName(static_cast<FuClass>(cls)));
    Table table(header);

    for (const Workload *workload : allWorkloads()) {
        WorkloadImage image = workload->build(4, benchScale());
        Interpreter interp(image.program, 4);
        if (!interp.run())
            fatal("%s did not terminate", workload->name().c_str());

        double total =
            static_cast<double>(interp.totalInstructionCount());
        table.beginRow();
        table.cell(workload->name());
        table.cell(interp.totalInstructionCount());
        for (unsigned cls = 0; cls < kNumFuClasses; ++cls) {
            table.cell(100.0 *
                           static_cast<double>(
                               interp.classCounts()[cls]) /
                           total,
                       1);
        }
    }
    std::printf("\n%s", table.toAscii().c_str());
    return 0;
}

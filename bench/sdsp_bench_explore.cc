/**
 * @file
 * Design-space lattice exploration gate.
 *
 * Records LL1, LL5, and Sieve once each at 4 threads on the paper
 * baseline, projects the what-if lattice through the critical-path
 * engine, cuts the (hardware cost, projected cycles) Pareto
 * frontier, re-simulates every frontier point for real, and writes
 * the sdsp-explore-v1 artifact as bench_explore.json. The run fails
 * (non-zero exit) unless:
 *
 *   - the frontier is non-empty and every point was re-simulated,
 *   - no re-simulation failed,
 *   - no pure-capacity-increase point projected above its
 *     re-simulated total (optimistic-bound soundness),
 *   - the worst per-point projection error is within
 *     exploreTolerancePercent() for the scale actually run.
 *
 *     sdsp_bench_explore [--scale PCT] [--jobs N] [--out FILE]
 *                        [--reduced | --full]
 *
 * CI runs --reduced at the golden scale; --full covers the whole
 * 3456-point lattice (minutes of re-simulation, same gates).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "explore/explore.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

int
usage(const char *argv0, int code)
{
    std::printf("usage: %s [--scale PCT] [--jobs N] [--out FILE] "
                "[--reduced | --full]\n",
                argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned scale = benchScale();
    unsigned jobs = benchJobs();
    std::string out_path;
    bool reduced = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto strArg = [&](const char *name) -> const char * {
            if (++i >= argc)
                fatal("%s needs a value", name);
            return argv[i];
        };
        if (arg == "--scale") {
            long value = std::strtol(strArg("--scale"), nullptr, 10);
            if (value < 1 || value > 1000)
                fatal("--scale out of range");
            scale = static_cast<unsigned>(value);
        } else if (arg == "--jobs" || arg == "-j") {
            long value = std::strtol(strArg("--jobs"), nullptr, 10);
            if (value < 1 || value > 256)
                fatal("--jobs out of range");
            jobs = static_cast<unsigned>(value);
        } else if (arg == "--out") {
            out_path = strArg("--out");
        } else if (arg == "--reduced") {
            reduced = true;
        } else if (arg == "--full") {
            reduced = false;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }

    const MachineConfig base = paperConfig(4);
    const std::vector<std::string> names = {"LL1", "LL5", "Sieve"};

    std::printf("sdsp_bench_explore: %s lattice, scale %u%%, %u "
                "jobs\n",
                reduced ? "reduced" : "full", scale, jobs);

    std::vector<ExploreRecording> recordings;
    for (const std::string &name : names) {
        ExploreRecording recording = recordBaseline(
            cachedWorkload(workloadByName(name)), base, scale);
        if (!recording.error.empty())
            fatal("%s: %s", name.c_str(), recording.error.c_str());
        std::printf("  %-6s %10llu cycles (%zu nodes)\n",
                    recording.workload.c_str(),
                    static_cast<unsigned long long>(
                        recording.measured),
                    recording.graph->nodeCount());
        recordings.push_back(std::move(recording));
    }

    LatticeAxes axes =
        reduced ? LatticeAxes::reduced() : LatticeAxes::full();
    std::vector<LatticePoint> points = buildLattice(axes, base);
    projectLattice(points, recordings, jobs);
    std::vector<std::size_t> frontier = paretoFrontier(points);

    ExploreReport report;
    report.base = base;
    report.scale = scale;
    report.tolerancePercent = exploreTolerancePercent(scale);
    report.recordings = &recordings;
    report.points = &points;
    report.frontier = &frontier;

    std::vector<FrontierValidation> validations = validateFrontier(
        points, frontier, recordings, base, scale, jobs);
    report.validations = &validations;

    const ExploreSummary summary = summarize(report);
    std::printf("  %zu points projected, %zu-point frontier, %zu "
                "re-simulated\n",
                summary.latticePoints, summary.frontierSize,
                summary.validated);
    std::printf("  max |error| %.2f%% (tolerance %.1f%% at scale "
                "%u), %zu resim failures, %zu optimistic "
                "violations\n",
                summary.maxAbsErrorPercent, report.tolerancePercent,
                scale, summary.resimFailures,
                summary.optimisticViolations);

    if (out_path.empty()) {
        const char *dir = std::getenv("SDSP_BENCH_JSON");
        if (dir && *dir)
            out_path = std::string(dir) + "/bench_explore.json";
        else
            out_path = "bench_explore.json";
    }
    std::ofstream file(out_path);
    if (!file)
        fatal("cannot write %s", out_path.c_str());
    file << exploreJson(report) << '\n';
    std::printf("(json written to %s)\n", out_path.c_str());

    // ---- The gates. ----
    std::size_t failures = 0;
    auto gate = [&](bool ok, const char *what) {
        if (!ok) {
            ++failures;
            std::fprintf(stderr, "sdsp_bench_explore: GATE: %s\n",
                         what);
        }
    };
    gate(summary.frontierSize > 0, "frontier is empty");
    gate(summary.validated == summary.frontierSize,
         "not every frontier point was re-simulated");
    gate(summary.resimFailures == 0, "re-simulation failures");
    gate(summary.optimisticViolations == 0,
         "optimistic-bound violations (capacity increase projected "
         "above its re-simulation)");
    gate(summary.maxAbsErrorPercent <= report.tolerancePercent,
         "projection error beyond the scale tolerance");
    return failures ? 1 : 0;
}

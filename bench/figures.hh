/**
 * @file
 * Implementations of the paper's figures/tables, shared between the
 * Group I and Group II bench binaries (each figure pair differs only
 * in the benchmark group it reports).
 */

#ifndef SDSP_BENCH_FIGURES_HH
#define SDSP_BENCH_FIGURES_HH

#include "bench_util.hh"

namespace sdsp
{
namespace bench
{

/** Figures 3/4: cycles under the three fetch policies vs base case. */
int runFetchPolicyFigure(const std::string &figure,
                         BenchmarkGroup group);

/** Figures 5/6: cycles for 1-6 threads. */
int runThreadCountFigure(const std::string &figure,
                         BenchmarkGroup group);

/** Figures 7/8: direct vs associative cache, 1-6 threads (group
 *  average cycles). */
int runCacheFigure(const std::string &figure, BenchmarkGroup group);

/** Figures 9/10: SU depth {16,32,48,64} x {1,4} threads. */
int runSuDepthFigure(const std::string &figure, BenchmarkGroup group);

/** Figures 11/12: default vs enhanced functional units. */
int runFuConfigFigure(const std::string &figure, BenchmarkGroup group);

/** Figures 13/14: flexible vs lowest-block-only result commit. */
int runCommitFigure(const std::string &figure, BenchmarkGroup group);

} // namespace bench
} // namespace sdsp

#endif // SDSP_BENCH_FIGURES_HH

/**
 * @file
 * Ablation: the code-layout optimization of paper section 6.1 item 2
 * ("align instructions in memory in such a way that control transfer
 * operations lie at the end of a fetched block, and branch targets at
 * the beginning of a block") applied to every benchmark with the
 * binary-rewriting pass.
 */

#include <cstdio>

#include "asm/rewrite.hh"
#include "bench_util.hh"
#include "common/logging.hh"
#include "core/processor.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

Cycle
runProgram(const Program &prog, const WorkloadImage &image,
           const MachineConfig &cfg)
{
    Processor cpu(cfg, prog);
    SimResult sim = cpu.run();
    if (!sim.finished || !image.verify(cpu.memory()).ok)
        fatal("%s failed", image.name.c_str());
    return sim.cycles;
}

} // namespace

int
main()
{
    printHeader("Ablation: code alignment (section 6.1)",
                "plain layout vs block-aligned branch targets / "
                "block-ending control transfers, 4 threads",
                "alignment recovers fetch slots wasted on invalid "
                "instructions; gains are largest for short-loop "
                "benchmarks, at the cost of a larger code image");

    LayoutOptions both;
    both.alignTargetsToBlocks = true;
    both.alignBranchesToBlockEnd = true;
    LayoutOptions targets_only;
    targets_only.alignTargetsToBlocks = true;

    Table table({"benchmark", "plain", "targets-aligned",
                 "fully-aligned", "gain %", "code growth %"});
    MachineConfig cfg = paperConfig(4);
    for (const Workload *workload : allWorkloads()) {
        WorkloadImage image = workload->build(4, benchScale());
        Program targets = realignProgram(image.program, targets_only);
        Program full = realignProgram(image.program, both);

        Cycle plain = runProgram(image.program, image, cfg);
        Cycle aligned_targets = runProgram(targets, image, cfg);
        Cycle aligned_full = runProgram(full, image, cfg);

        table.beginRow();
        table.cell(workload->name());
        table.cell(plain);
        table.cell(aligned_targets);
        table.cell(aligned_full);
        table.cell(speedupPercent(aligned_full, plain), 1);
        table.cell(100.0 *
                       (static_cast<double>(full.code.size()) /
                            static_cast<double>(
                                image.program.code.size()) -
                        1.0),
                   1);
    }
    std::printf("\n%s", table.toAscii().c_str());
    return 0;
}

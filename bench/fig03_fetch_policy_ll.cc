/**
 * @file
 * Bench binary regenerating the paper's Figure 3 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runFetchPolicyFigure(
        "Figure 3", sdsp::BenchmarkGroup::LivermoreLoops);
}

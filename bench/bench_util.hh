/**
 * @file
 * Shared infrastructure for the paper-reproduction bench binaries.
 *
 * Every figure and table from the paper's evaluation section has one
 * binary (see DESIGN.md section 3 for the index). They all print an
 * experiment header (what the paper reports, what shape to expect), a
 * measurement table, and exit non-zero if any run fails verification
 * — so the bench suite doubles as an end-to-end regression test at
 * full problem scale.
 *
 * The problem-size scale (percent) can be overridden with the
 * SDSP_BENCH_SCALE environment variable (default 100), and every
 * printed table is also written as CSV into the directory named by
 * SDSP_BENCH_CSV (if set) for plotting. Grid experiments execute
 * their points concurrently on the sweep engine (SDSP_BENCH_JOBS
 * workers, default hardware_concurrency); setting SDSP_BENCH_JSON to
 * a directory additionally exports every grid's raw runs as JSON.
 */

#ifndef SDSP_BENCH_BENCH_UTIL_HH
#define SDSP_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workload.hh"

namespace sdsp
{
namespace bench
{

/** Problem-size scale in percent (SDSP_BENCH_SCALE, default 100). */
unsigned benchScale();

/** Sweep workers (SDSP_BENCH_JOBS, default hardware_concurrency). */
unsigned benchJobs();

/** The paper's default machine (Table 2) for @p threads threads. */
MachineConfig paperConfig(unsigned threads = 4);

/** Group I (Livermore loops). */
std::vector<const Workload *> groupI();

/** Group II (Laplace, MPD, Matrix, Sieve, Water). */
std::vector<const Workload *> groupII();

/** Print the experiment banner (also names any CSV exports). */
void printHeader(const std::string &experiment_id,
                 const std::string &title,
                 const std::string &paper_expectation);

/**
 * Write @p table as CSV into $SDSP_BENCH_CSV/<experiment><suffix>.csv
 * when that environment variable is set (the directory is created if
 * missing); otherwise a no-op. The experiment name comes from the
 * last printHeader call.
 */
void exportCsv(const Table &table, const std::string &suffix = "");

/**
 * A process-lifetime cached view of @p workload: build(num_threads,
 * scale) assembles the program once per distinct (threads, scale) key
 * and returns copies of the cached image afterwards. Workload
 * generators are deterministic const objects, so the copy is
 * bit-identical to a fresh build. The returned reference is stable for
 * the life of the process (grid points batched by workload identity
 * compare these pointers), and the cache is thread-safe, so sweep
 * workers that hit the same benchmark concurrently assemble it once.
 */
const Workload &cachedWorkload(const Workload &workload);

/** Run one benchmark, fatal unless it finishes and verifies. */
RunResult runChecked(const Workload &workload,
                     const MachineConfig &config);

/** A named machine configuration (one table column). */
struct Variant
{
    std::string name;
    MachineConfig config;
};

/** One deduplicated paper-grid point and the experiments needing it. */
struct PaperGridPoint
{
    const Workload *workload = nullptr;
    MachineConfig config;
    std::vector<std::string> experiments;
};

/** The deduplicated figure/table grid of the paper's evaluation. */
struct PaperGrid
{
    std::vector<PaperGridPoint> points;
    /** Grid points before deduplication, for reporting. */
    std::size_t submitted = 0;
};

/**
 * Enumerate every grid point of the paper's figure/table suite
 * (fetch policies, thread counts, cache organizations, SU depths,
 * functional-unit complements, commit policies — figures 3-14 and
 * tables 3/5.2), deduplicated across experiments. Workloads are
 * routed through cachedWorkload() so all consumers share one
 * assembly per (benchmark, threads, scale). This is the single
 * definition of "the paper grid": sdsp_bench_all executes it and
 * sdsp_bench_critpath verifies the critical-path engine against it.
 */
PaperGrid buildPaperGrid();

/**
 * Run every (workload x variant) grid point concurrently on the
 * sweep engine at benchScale(), fatal unless each run finishes and
 * verifies.
 *
 * @return results[workload][variant], independent of the schedule.
 */
std::vector<std::vector<RunResult>>
runGrid(const std::vector<const Workload *> &workloads,
        const std::vector<Variant> &variants);

/**
 * Export @p grid (as returned by runGrid) into
 * $SDSP_BENCH_JSON/<experiment><suffix>.json when that environment
 * variable is set; otherwise a no-op.
 */
void exportRunsJson(const std::vector<Variant> &variants,
                    const std::vector<std::vector<RunResult>> &grid,
                    const std::string &suffix = "_runs");

/**
 * Run each workload under each variant (concurrently, via runGrid)
 * and print a cycles table (rows: benchmarks; columns: variants),
 * followed by a row of means.
 *
 * @return cycles[workload][variant].
 */
std::vector<std::vector<Cycle>>
printCyclesTable(const std::vector<const Workload *> &workloads,
                 const std::vector<Variant> &variants);

/**
 * As above, but over precomputed @p grid results — for experiments
 * that also report other columns of the same runs.
 */
std::vector<std::vector<Cycle>>
printCyclesTable(const std::vector<const Workload *> &workloads,
                 const std::vector<Variant> &variants,
                 const std::vector<std::vector<RunResult>> &grid);

/**
 * Print a speedup table relative to a baseline column, using the
 * paper's formula (section 5.2).
 *
 * @param cycles    As returned by printCyclesTable.
 * @param base_col  Index of the single-threaded baseline column.
 */
void printSpeedupTable(
    const std::vector<const Workload *> &workloads,
    const std::vector<Variant> &variants,
    const std::vector<std::vector<Cycle>> &cycles,
    std::size_t base_col);

} // namespace bench
} // namespace sdsp

#endif // SDSP_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Bench binary regenerating the paper's Figure 8 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runCacheFigure(
        "Figure 8", sdsp::BenchmarkGroup::GroupII);
}

/**
 * @file
 * Bench binary regenerating the paper's Table 4: average usage of the
 * *extra* functional units of the enhanced ("++") configuration, as a
 * percentage of total execution cycles, per benchmark group (4
 * threads).
 *
 * Issue always picks the lowest-numbered free instance of a class, so
 * the instances at indices >= the default configuration's count are
 * exactly the "extra" units the paper tracks.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "core/processor.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Table 4",
                "average usage of extra functional units as a "
                "percentage of total cycles (enhanced config, 4 "
                "threads)",
                "the second load unit and the FP multiplier are the "
                "most valuable extras; the FP multiplier matters most "
                "to the compute-intensive Group I");

    FuConfig def = FuConfig::sdspDefault();
    FuConfig enh = FuConfig::sdspEnhanced();

    Table table({"group", "extra unit", "% cycles used"});
    for (BenchmarkGroup group :
         {BenchmarkGroup::LivermoreLoops, BenchmarkGroup::GroupII}) {
        auto workloads = workloadsInGroup(group);
        const char *group_name =
            group == BenchmarkGroup::LivermoreLoops ? "Group I"
                                                    : "Group II";

        // Accumulate per-extra-instance busy fractions over the
        // group's benchmarks.
        std::vector<std::vector<double>> sums(kNumFuClasses);
        for (unsigned cls = 0; cls < kNumFuClasses; ++cls)
            sums[cls].assign(enh.count[cls], 0.0);

        for (const Workload *workload : workloads) {
            MachineConfig cfg = paperConfig(4);
            cfg.fu = enh;
            WorkloadImage image =
                workload->build(cfg.numThreads, benchScale());
            Processor cpu(cfg, image.program);
            SimResult sim = cpu.run();
            if (!sim.finished || !image.verify(cpu.memory()).ok)
                fatal("%s failed under the enhanced configuration",
                      workload->name().c_str());
            for (unsigned cls = 0; cls < kNumFuClasses; ++cls) {
                for (unsigned i = 0; i < enh.count[cls]; ++i) {
                    auto fu_class = static_cast<FuClass>(cls);
                    sums[cls][i] +=
                        static_cast<double>(
                            cpu.fuPool().busyCycles(fu_class, i)) /
                        static_cast<double>(sim.cycles);
                }
            }
        }

        double n = static_cast<double>(workloads.size());
        for (unsigned cls = 0; cls < kNumFuClasses; ++cls) {
            for (unsigned i = def.count[cls]; i < enh.count[cls]; ++i) {
                table.beginRow();
                table.cell(group_name);
                table.cell(format("%s #%u",
                                  fuClassName(static_cast<FuClass>(cls)),
                                  i + 1));
                table.cell(100.0 * sums[cls][i] / n, 2);
            }
        }
    }
    std::printf("\n%s", table.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Ablation: store-buffer depth. The paper's restricted load/store
 * policy keeps a store buffered until its SU entry is shifted out, so
 * a shallow buffer backs up stores and, through conservative
 * disambiguation, loads (the mechanism it blames for SU-depth
 * inversions in section 5.4).
 */

#include "bench_util.hh"
#include "common/logging.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: store buffer depth",
                "store buffer of 4/8/16/32 entries, 4 threads",
                "the commit-gated drain policy needs one commit block "
                "of slots (4) as a structural minimum; beyond that the "
                "paper's 8 entries are ample and depth is insensitive");

    std::vector<Variant> variants;
    for (unsigned entries : {4u, 8u, 16u, 32u}) {
        MachineConfig cfg = paperConfig(4);
        cfg.storeBufferEntries = entries;
        variants.push_back({format("SB%u", entries), cfg});
    }
    printCyclesTable(allWorkloads(), variants);
    return 0;
}

/**
 * @file
 * Bench binary regenerating the paper's Figure 9 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runSuDepthFigure(
        "Figure 9", sdsp::BenchmarkGroup::LivermoreLoops);
}

/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot
 * components: end-to-end simulation throughput (simulated cycles per
 * wall second), cache probes, predictor lookups, assembly, and the
 * functional interpreter. These track the *simulator's* performance,
 * not the simulated machine's.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "branch/predictor.hh"
#include "core/processor.hh"
#include "isa/interpreter.hh"
#include "memory/cache.hh"
#include "workloads/workload.hh"

namespace
{

using namespace sdsp;

void
BM_SimulatorThroughput(benchmark::State &state)
{
    auto threads = static_cast<unsigned>(state.range(0));
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.finalize();
    WorkloadImage image = workloadByName("Matrix").build(threads, 40);

    std::uint64_t simulated = 0;
    for (auto _ : state) {
        Processor cpu(cfg, image.program);
        SimResult result = cpu.run();
        simulated += result.cycles;
    }
    state.counters["simCyclesPerSec"] = benchmark::Counter(
        static_cast<double>(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Arg(1)->Arg(4);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    DataCache cache(cfg);
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        ++now;
        cache.beginCycle(now);
        // The cache blocks on double misses; probe like the pipeline
        // does.
        if (cache.canAccept(now))
            benchmark::DoNotOptimize(cache.access(addr, now, false));
        addr = (addr + 40) & 0xFFF8;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_PredictorLookup(benchmark::State &state)
{
    BranchPredictor btb(512);
    for (InstAddr pc = 0; pc < 512; pc += 3)
        btb.update(pc, true, pc + 7);
    InstAddr pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(btb.predict(pc));
        pc = (pc + 13) & 1023;
    }
}
BENCHMARK(BM_PredictorLookup);

void
BM_Assemble(benchmark::State &state)
{
    std::string source = R"(
        .dword counter 0
            la   r1, counter
            ldi  r2, 100
        loop:
            ld   r3, 0(r1)
            addi r3, r3, 1
            st   r3, 0(r1)
            addi r2, r2, -1
            bne  r2, r0, loop
            halt
    )";
    for (auto _ : state)
        benchmark::DoNotOptimize(assemble(source));
}
BENCHMARK(BM_Assemble);

void
BM_InterpreterRun(benchmark::State &state)
{
    WorkloadImage image = workloadByName("Sieve").build(2, 20);
    std::uint64_t executed = 0;
    for (auto _ : state) {
        Interpreter interp(image.program, 2);
        interp.run();
        executed += interp.totalInstructionCount();
    }
    state.counters["instPerSec"] = benchmark::Counter(
        static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterRun);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Bench binary regenerating the paper's Figure 10 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runSuDepthFigure(
        "Figure 10", sdsp::BenchmarkGroup::GroupII);
}

/**
 * @file
 * Bench binary regenerating the paper's Figure 14 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runCommitFigure(
        "Figure 14", sdsp::BenchmarkGroup::GroupII);
}

/**
 * @file
 * Bench binary regenerating the paper's Figure 11 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runFuConfigFigure(
        "Figure 11", sdsp::BenchmarkGroup::LivermoreLoops);
}

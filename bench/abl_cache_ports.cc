/**
 * @file
 * Ablation: extra cache ports (paper section 6.1 item 1: "employ more
 * cache ports and functional units, especially the scarce ones").
 * Swept together with a second load unit, since ports without load
 * bandwidth (or vice versa) leave the other the bottleneck.
 */

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: cache ports (section 6.1)",
                "1 vs 2 data-cache ports, with 1 or 2 load units, "
                "4 threads",
                "memory-bound benchmarks (Sieve, Matrix) gain from "
                "the port+load-unit combination; compute-bound ones "
                "barely move");

    auto with_ports = [](std::uint32_t ports, unsigned load_units) {
        MachineConfig cfg = paperConfig(4);
        cfg.dcache.ports = ports;
        cfg.fu.count[static_cast<unsigned>(FuClass::Load)] = load_units;
        return cfg;
    };

    std::vector<Variant> variants = {
        {"1port/1load", with_ports(1, 1)},
        {"2port/1load", with_ports(2, 1)},
        {"2port/2load", with_ports(2, 2)},
    };
    printCyclesTable(allWorkloads(), variants);
    return 0;
}

/**
 * @file
 * Bench binary regenerating the paper's Figure 7 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runCacheFigure(
        "Figure 7", sdsp::BenchmarkGroup::LivermoreLoops);
}

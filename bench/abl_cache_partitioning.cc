/**
 * @file
 * Ablation: uniform (shared) vs per-thread partitioned data cache —
 * the design alternative the paper discusses and rejects in section
 * 5.3 ("In the partitioned case, the space available to any one
 * thread is small ... We picked a uniform cache for our study").
 */

#include "bench_util.hh"
#include "common/logging.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: cache partitioning (section 5.3)",
                "uniform shared cache vs per-thread partitions, "
                "2/4/6 threads",
                "partitioning removes inter-thread conflicts but "
                "shrinks each thread's usable capacity to 1/N; the "
                "paper expects (and we confirm) the uniform cache to "
                "be the better default for these working sets");

    std::vector<Variant> variants;
    for (unsigned threads : {2u, 4u, 6u}) {
        MachineConfig uniform = paperConfig(threads);
        MachineConfig partitioned = paperConfig(threads);
        partitioned.dcache.partitions = threads;
        variants.push_back({format("%uT/uniform", threads), uniform});
        variants.push_back(
            {format("%uT/partitioned", threads), partitioned});
    }
    printCyclesTable(allWorkloads(), variants);
    return 0;
}

/**
 * @file
 * Ablation: full tag renaming vs 1-bit scoreboarding (the alternative
 * listed in the paper's Table 2). Scoreboarding serializes dispatch
 * on WAW hazards, which full renaming eliminates.
 */

#include "bench_util.hh"
#include "common/logging.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: renaming",
                "full register renaming vs 1-bit scoreboarding, "
                "1 and 4 threads",
                "renaming ahead everywhere; the gap grows with "
                "multithreading because the shared window holds more "
                "in-flight writers per register");

    std::vector<Variant> variants;
    for (unsigned threads : {1u, 4u}) {
        MachineConfig renamed = paperConfig(threads);
        MachineConfig scoreboarded = paperConfig(threads);
        scoreboarded.renameScheme = RenameScheme::Scoreboard1Bit;
        variants.push_back({format("%uT/rename", threads), renamed});
        variants.push_back(
            {format("%uT/scoreboard", threads), scoreboarded});
    }
    printCyclesTable(allWorkloads(), variants);
    return 0;
}

/**
 * @file
 * Critical-path what-if sweep and exactness gate.
 *
 * Default mode runs every Group I/II benchmark at 1 and 4 threads
 * with the DDG recorder attached, requires the dependence-graph
 * critical path to equal the measured cycle count EXACTLY, projects
 * a what-if grid (wider issue, deeper SU, perfect D-cache, infinite
 * store buffer, no bypassing) from each recorded run in milliseconds,
 * and writes bench_critpath.json. Three spot-check projections are
 * re-simulated for real and gated at every scale: within 5% of the
 * projection up to the golden scale (25%), with the tolerance
 * widening linearly for larger scales (recorded in the artifact
 * next to the scale actually run).
 *
 * --grid instead verifies the exactness invariant over every
 * deduplicated point of the paper's figure/table grid (the same
 * enumeration sdsp_bench_all executes), printing each mismatch.
 *
 *     sdsp_bench_critpath [--scale PCT] [--jobs N] [--out FILE]
 *                         [--grid]
 *
 * Exit status is non-zero on any exactness mismatch or gated
 * spot-check failure, so CI can gate on this binary alone.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "critpath/report.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

/** The golden-reference problem scale the tolerance is anchored at. */
constexpr unsigned kGoldenScale = 25;

/** Spot-check error tolerance at the golden scale, percent. */
constexpr double kSpotTolerancePercent = 5.0;

/**
 * Gate tolerance for spot checks at @p scale. Projection error is
 * schedule-dependent and grows with problem size (a relieved
 * bottleneck reshuffles more memory accesses at larger scales), so
 * the threshold widens linearly past the golden scale, capped at
 * 30%. The gate applies at EVERY scale; the tolerance in force is
 * recorded in the JSON artifact alongside the scale actually run.
 */
double
spotTolerancePercent(unsigned scale)
{
    if (scale <= kGoldenScale)
        return kSpotTolerancePercent;
    return std::min(30.0, kSpotTolerancePercent *
                              (static_cast<double>(scale) /
                               static_cast<double>(kGoldenScale)));
}

/** Fatal unless @p run finished and verified. */
void
requireFinished(const RunResult &run)
{
    if (!run.finished)
        fatal("%s did not finish within the cycle cap",
              run.benchmark.c_str());
    if (!run.verified)
        fatal("%s failed verification: %s", run.benchmark.c_str(),
              run.verifyMessage.c_str());
}

/** Run @p fn(0..n-1) on @p jobs worker threads. */
void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    unsigned count = std::min<std::size_t>(jobs, n);
    workers.reserve(count);
    for (unsigned w = 0; w < count; ++w) {
        workers.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (std::thread &worker : workers)
        worker.join();
}

/** The projected machine changes, one column each. */
std::vector<std::pair<std::string, WhatIf>>
whatIfGrid()
{
    std::vector<std::pair<std::string, WhatIf>> grid;
    auto add = [&](const std::string &spec) {
        WhatIf what_if;
        std::string clause, error;
        std::istringstream clauses(spec);
        while (std::getline(clauses, clause, ',')) {
            if (!what_if.applyKeyValue(clause, &error))
                fatal("bad what-if %s: %s", spec.c_str(),
                      error.c_str());
        }
        grid.emplace_back(spec, what_if);
    };
    add("issueWidth=16");
    add("suEntries=64");
    add("perfectDCache=1");
    add("infiniteStoreBuffer=1");
    add("bypassing=0");
    add("issueWidth=16,suEntries=64");
    return grid;
}

/** One analyzed run of the default mode. */
struct PointReport
{
    std::string workload;
    unsigned threads = 0;
    Cycle measured = 0;
    std::size_t nodes = 0;
    std::size_t edges = 0;
    std::string mismatch; //!< empty = exact
    RelaxResult baseline;
    std::vector<WhatIfProjection> projections;
    double buildMs = 0.0;
    double meanRelaxMs = 0.0;
};

/** Run + record + build + project one (workload, threads) point. */
PointReport
analyzePoint(const Workload &workload, unsigned threads,
             unsigned scale,
             const std::vector<std::pair<std::string, WhatIf>> &grid)
{
    MachineConfig config = paperConfig(threads);
    DdgRecorder recorder;
    RunResult run = runWorkload(cachedWorkload(workload), config,
                                scale, &recorder);
    requireFinished(run);

    PointReport report;
    report.workload = run.benchmark;
    report.threads = threads;
    report.measured = run.cycles;

    auto build_start = std::chrono::steady_clock::now();
    DdgGraph graph(recorder.trace(), config, run.cycles);
    report.mismatch = graph.verifyExact();
    report.baseline = graph.relax(WhatIf{});
    auto build_end = std::chrono::steady_clock::now();
    report.nodes = graph.nodeCount();
    report.edges = graph.edgeCount();
    report.buildMs = std::chrono::duration<double, std::milli>(
                         build_end - build_start)
                         .count();

    auto relax_start = std::chrono::steady_clock::now();
    for (const auto &[name, what_if] : grid) {
        WhatIfProjection projection;
        projection.name = name;
        projection.whatIf = what_if;
        projection.result = graph.relax(what_if);
        report.projections.push_back(std::move(projection));
    }
    auto relax_end = std::chrono::steady_clock::now();
    report.meanRelaxMs = std::chrono::duration<double, std::milli>(
                             relax_end - relax_start)
                             .count() /
                         static_cast<double>(grid.size());
    return report;
}

/** One projection validated against a real re-simulation. */
struct SpotCheck
{
    std::string workload;
    unsigned threads = 4;
    std::string whatIf;
    /** Apply the same change to a MachineConfig for the re-sim. */
    void (*applyToConfig)(MachineConfig &) = nullptr;

    Cycle projected = 0;
    Cycle resimulated = 0;
    double errorPercent = 0.0;
    bool pass = false;
};

std::vector<SpotCheck>
spotCheckList()
{
    // Chosen where the recorded-trace model is predictive: capacity
    // increases that relieve a recorded bottleneck without changing
    // the memory behavior (LL1/LL5), and a pure edge-weight change
    // (Sieve without bypassing). Projections that alter cache
    // contention second-order (e.g. deeper SU on a thrashing
    // workload) are reported in the JSON but not gated.
    std::vector<SpotCheck> checks;
    checks.push_back({"LL1", 4, "suEntries=64",
                      [](MachineConfig &cfg) { cfg.suEntries = 64; }});
    checks.push_back({"LL5", 4, "issueWidth=16",
                      [](MachineConfig &cfg) {
                          cfg.issueWidth = 16;
                      }});
    checks.push_back({"Sieve", 4, "bypassing=0",
                      [](MachineConfig &cfg) {
                          cfg.bypassing = false;
                      }});
    return checks;
}

int
usage(const char *argv0, int code)
{
    std::printf("usage: %s [--scale PCT] [--jobs N] [--out FILE] "
                "[--grid]\n",
                argv0);
    return code;
}

/** --grid: exactness over every paper-grid point. */
int
runGridMode(unsigned scale, unsigned jobs)
{
    PaperGrid grid = buildPaperGrid();
    std::printf("sdsp_bench_critpath --grid: %zu points, scale %u%%, "
                "%u jobs\n",
                grid.points.size(), scale, jobs);

    std::mutex mutex;
    std::size_t inexact = 0;
    std::size_t done = 0;
    parallelFor(grid.points.size(), jobs, [&](std::size_t i) {
        const PaperGridPoint &point = grid.points[i];
        DdgRecorder recorder;
        RunResult run = runWorkload(*point.workload, point.config,
                                    scale, &recorder);
        requireFinished(run);
        DdgGraph graph(recorder.trace(), point.config, run.cycles);
        std::string mismatch = graph.verifyExact();

        std::lock_guard<std::mutex> lock(mutex);
        ++done;
        if (!mismatch.empty()) {
            ++inexact;
            std::printf("INEXACT %s (%s): %s\n",
                        point.workload->name().c_str(),
                        point.config.toString().c_str(),
                        mismatch.c_str());
        } else if (done % 50 == 0) {
            std::printf("  %zu/%zu exact...\n", done,
                        grid.points.size());
        }
    });

    std::printf("%zu/%zu grid points exact\n",
                grid.points.size() - inexact, grid.points.size());
    return inexact ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned scale = benchScale();
    unsigned jobs = benchJobs();
    std::string out_path;
    bool grid_mode = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto strArg = [&](const char *name) -> const char * {
            if (++i >= argc)
                fatal("%s needs a value", name);
            return argv[i];
        };
        if (arg == "--scale") {
            long value = std::strtol(strArg("--scale"), nullptr, 10);
            if (value < 1 || value > 1000)
                fatal("--scale out of range");
            scale = static_cast<unsigned>(value);
        } else if (arg == "--jobs" || arg == "-j") {
            long value = std::strtol(strArg("--jobs"), nullptr, 10);
            if (value < 1 || value > 256)
                fatal("--jobs out of range");
            jobs = static_cast<unsigned>(value);
        } else if (arg == "--out") {
            out_path = strArg("--out");
        } else if (arg == "--grid") {
            grid_mode = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }

    if (grid_mode)
        return runGridMode(scale, jobs);

    const auto what_ifs = whatIfGrid();

    // The sweep: Group I + II at 1 and 4 threads.
    std::vector<const Workload *> workloads = groupI();
    for (const Workload *workload : groupII())
        workloads.push_back(workload);
    struct Point
    {
        const Workload *workload;
        unsigned threads;
    };
    std::vector<Point> points;
    for (const Workload *workload : workloads)
        for (unsigned threads : {1u, 4u})
            points.push_back({workload, threads});

    std::printf("sdsp_bench_critpath: %zu points x %zu what-ifs, "
                "scale %u%%, %u jobs\n",
                points.size(), what_ifs.size(), scale, jobs);

    std::vector<PointReport> reports(points.size());
    parallelFor(points.size(), jobs, [&](std::size_t i) {
        reports[i] = analyzePoint(*points[i].workload,
                                  points[i].threads, scale, what_ifs);
    });

    std::size_t inexact = 0;
    std::printf("\n%-10s %3s %10s %6s %9s |", "benchmark", "t",
                "cycles", "exact", "ms/relax");
    for (const auto &[name, what_if] : what_ifs)
        std::printf(" %-12.12s", name.c_str());
    std::printf("\n");
    for (const PointReport &report : reports) {
        if (!report.mismatch.empty())
            ++inexact;
        std::printf("%-10s %3u %10llu %6s %9.2f |",
                    report.workload.c_str(), report.threads,
                    static_cast<unsigned long long>(report.measured),
                    report.mismatch.empty() ? "yes" : "NO",
                    report.meanRelaxMs);
        for (const WhatIfProjection &projection : report.projections)
            std::printf(" %-12llu",
                        static_cast<unsigned long long>(
                            projection.result.cycles));
        std::printf("\n");
        if (!report.mismatch.empty())
            std::printf("  INEXACT: %s\n", report.mismatch.c_str());
    }

    // Spot checks: re-simulate three projections for real. Gated at
    // every scale with a scale-aware tolerance.
    std::vector<SpotCheck> checks = spotCheckList();
    const double tolerance = spotTolerancePercent(scale);
    std::size_t spot_failures = 0;
    parallelFor(checks.size(), jobs, [&](std::size_t i) {
        SpotCheck &check = checks[i];
        const PointReport *report = nullptr;
        for (const PointReport &candidate : reports) {
            if (candidate.workload == check.workload &&
                candidate.threads == check.threads)
                report = &candidate;
        }
        sdsp_assert(report, "spot-check workload %s not in sweep",
                    check.workload.c_str());
        for (const WhatIfProjection &projection :
             report->projections) {
            if (projection.name == check.whatIf)
                check.projected = projection.result.cycles;
        }
        sdsp_assert(check.projected, "spot-check what-if %s not in "
                    "the grid", check.whatIf.c_str());

        MachineConfig config = paperConfig(check.threads);
        check.applyToConfig(config);
        RunResult real = runWorkload(
            cachedWorkload(workloadByName(check.workload)), config,
            scale);
        requireFinished(real);
        check.resimulated = real.cycles;
        double error =
            (static_cast<double>(check.projected) -
             static_cast<double>(check.resimulated)) /
            static_cast<double>(check.resimulated) * 100.0;
        check.errorPercent = error;
        check.pass = error <= tolerance && error >= -tolerance;
    });
    std::printf("\nspot checks (projection vs. re-simulation, gated "
                "at %.1f%% for scale %u):\n",
                tolerance, scale);
    for (const SpotCheck &check : checks) {
        if (!check.pass)
            ++spot_failures;
        std::printf("  %-6s t=%u %-22s projected %8llu  real %8llu  "
                    "error %+.2f%%  %s\n",
                    check.workload.c_str(), check.threads,
                    check.whatIf.c_str(),
                    static_cast<unsigned long long>(check.projected),
                    static_cast<unsigned long long>(
                        check.resimulated),
                    check.errorPercent,
                    check.pass ? "ok" : "FAIL");
    }

    // ---- bench_critpath.json ----
    if (out_path.empty()) {
        const char *dir = std::getenv("SDSP_BENCH_JSON");
        if (dir && *dir)
            out_path = std::string(dir) + "/bench_critpath.json";
        else
            out_path = "bench_critpath.json";
    }
    JsonWriter writer;
    writer.beginObject();
    writer.field("schema", "sdsp-bench-critpath-v1");
    writer.field("scale", scale);
    writer.field("spotTolerancePercent", tolerance);
    writer.field("points", std::uint64_t{reports.size()});
    writer.field("inexact", std::uint64_t{inexact});
    writer.field("spot_check_failures", std::uint64_t{spot_failures});
    writer.key("runs").beginArray();
    for (const PointReport &report : reports) {
        writer.beginObject();
        writer.field("workload", report.workload);
        writer.field("threads", report.threads);
        writer.field("measuredCycles", report.measured);
        writer.field("criticalPath", report.baseline.cycles);
        writer.field("exact", report.mismatch.empty());
        writer.field("nodes",
                     static_cast<std::uint64_t>(report.nodes));
        writer.field("edges",
                     static_cast<std::uint64_t>(report.edges));
        writer.field("buildMs", report.buildMs);
        writer.field("meanRelaxMs", report.meanRelaxMs);
        writer.key("breakdown").beginObject();
        for (unsigned c = 0; c < kNumEdgeClasses; ++c) {
            if (!report.baseline.breakdown[c])
                continue;
            writer.field(edgeClassName(static_cast<EdgeClass>(c)),
                         report.baseline.breakdown[c]);
        }
        writer.endObject();
        writer.key("whatIf").beginArray();
        for (const WhatIfProjection &projection :
             report.projections) {
            writer.beginObject();
            writer.field("name", projection.name);
            writer.field("cycles", projection.result.cycles);
            writer.field("confidence",
                         confidenceName(
                             projection.result.confidence));
            writer.field(
                "speedup",
                projection.result.cycles
                    ? static_cast<double>(report.measured) /
                          static_cast<double>(
                              projection.result.cycles)
                    : 0.0);
            writer.endObject();
        }
        writer.endArray();
        writer.endObject();
    }
    writer.endArray();
    writer.key("spotChecks").beginArray();
    for (const SpotCheck &check : checks) {
        writer.beginObject();
        writer.field("workload", check.workload);
        writer.field("threads", check.threads);
        writer.field("whatIf", check.whatIf);
        writer.field("projected", check.projected);
        writer.field("resimulated", check.resimulated);
        writer.field("errorPercent", check.errorPercent);
        writer.field("gated", true);
        writer.field("scale", scale);
        writer.field("tolerancePercent", tolerance);
        writer.field("pass", check.pass);
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();

    std::ofstream file(out_path);
    if (!file)
        fatal("cannot write %s", out_path.c_str());
    file << writer.str() << '\n';
    std::printf("(json written to %s)\n", out_path.c_str());

    if (inexact)
        std::fprintf(stderr, "sdsp_bench_critpath: %zu points "
                     "INEXACT\n", inexact);
    if (spot_failures)
        std::fprintf(stderr, "sdsp_bench_critpath: %zu spot checks "
                     "beyond %.1f%%\n", spot_failures, tolerance);
    return inexact == 0 && spot_failures == 0 ? 0 : 1;
}

/**
 * @file
 * Simulator-throughput microbenchmark.
 *
 * Every figure in the paper is a sweep over the same 253-point grid,
 * so the wall-clock cost of one simulated cycle is the suite's
 * dominant cost. This benchmark runs a representative slice of that
 * grid — every workload of both benchmark groups at 1, 4 and 6
 * threads — serially, several times, and reports the aggregate
 * simulation throughput in MSimCycles/s (simulated cycles per host
 * wall-second, simulation loop only: no workload build, no
 * verification). The best repetition is the headline number; it is
 * what BENCH_baseline.json tracks across PRs. The median and the
 * min..max spread across repetitions are reported alongside, since
 * on a shared host the spread is often larger than the effect being
 * measured.
 *
 * With --batch B every slice point runs B copies of its
 * configuration in one BatchRunner pass (shared build + decode, see
 * harness/batch.hh), measuring batched throughput: total simulated
 * cycles across all lanes per host second.
 *
 *     sdsp_bench_simspeed [--reps N] [--batch B] [--scale PCT]
 *                         [--out FILE]
 *
 * The JSON artifact goes to --out, else to
 * $SDSP_BENCH_JSON/bench_simspeed.json, else ./bench_simspeed.json.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "harness/artifacts.hh"
#include "harness/batch.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

/** Aggregate measurements of one repetition over the whole slice. */
struct RepResult
{
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    double simSeconds = 0.0;

    double
    mCyclesPerSecond() const
    {
        return simSeconds > 0
                   ? static_cast<double>(cycles) / simSeconds / 1e6
                   : 0.0;
    }

    double
    mInstsPerSecond() const
    {
        return simSeconds > 0
                   ? static_cast<double>(insts) / simSeconds / 1e6
                   : 0.0;
    }
};

/** Median of the repetitions' MSimCycles/s (even count: lower-middle
 *  and upper-middle averaged). */
double
medianMCycles(const std::vector<RepResult> &reps)
{
    std::vector<double> rates;
    rates.reserve(reps.size());
    for (const RepResult &rep : reps)
        rates.push_back(rep.mCyclesPerSecond());
    std::sort(rates.begin(), rates.end());
    std::size_t mid = rates.size() / 2;
    return rates.size() % 2 ? rates[mid]
                            : 0.5 * (rates[mid - 1] + rates[mid]);
}

int
usage(const char *argv0, int code)
{
    std::printf("usage: %s [--reps N] [--batch B] [--scale PCT] "
                "[--out FILE]\n",
                argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned reps = 3;
    unsigned batch = 0; // < 2 = serial per-point runs
    unsigned scale = benchScale();
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intArg = [&](const char *name) -> long {
            if (++i >= argc)
                fatal("%s needs a value", name);
            char *end = nullptr;
            long value = std::strtol(argv[i], &end, 10);
            if (*end || value < 1)
                fatal("bad %s value: %s", name, argv[i]);
            return value;
        };
        if (arg == "--reps") {
            long value = intArg("--reps");
            if (value > 100)
                fatal("--reps out of range: %ld", value);
            reps = static_cast<unsigned>(value);
        } else if (arg == "--batch") {
            long value = intArg("--batch");
            if (value > 256)
                fatal("--batch out of range: %ld", value);
            batch = static_cast<unsigned>(value);
        } else if (arg == "--scale") {
            long value = intArg("--scale");
            if (value > 1000)
                fatal("--scale out of range: %ld", value);
            scale = static_cast<unsigned>(value);
        } else if (arg == "--out") {
            if (++i >= argc)
                fatal("--out needs a value");
            out_path = argv[i];
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }

    // The slice: both benchmark groups at low, default and maximum
    // thread count — single-thread runs stress the per-thread index
    // paths least, six-thread runs stress them most.
    std::vector<const Workload *> workloads;
    for (const Workload *workload : groupI())
        workloads.push_back(workload);
    for (const Workload *workload : groupII())
        workloads.push_back(workload);
    const std::vector<unsigned> thread_counts = {1, 4, 6};

    std::printf("sdsp_bench_simspeed: %zu workloads x %zu thread "
                "counts, scale %u%%, %u reps",
                workloads.size(), thread_counts.size(), scale, reps);
    if (batch >= 2)
        std::printf(", batch %u", batch);
    std::printf("\n");

    std::vector<RepResult> rep_results;
    std::vector<RunResult> last_runs;
    for (unsigned rep = 0; rep < reps; ++rep) {
        RepResult aggregate;
        last_runs.clear();
        for (const Workload *workload : workloads) {
            const Workload &cached = cachedWorkload(*workload);
            for (unsigned threads : thread_counts) {
                if (batch >= 2) {
                    // Batched mode: B lanes of the point's config in
                    // one pass over one shared decoded program.
                    std::vector<MachineConfig> configs(
                        batch, paperConfig(threads));
                    std::vector<LimitedRunResult> lanes =
                        runWorkloadBatch(cached, std::move(configs),
                                         scale);
                    for (LimitedRunResult &lane : lanes) {
                        requireGood(lane.result);
                        aggregate.cycles += lane.result.cycles;
                        aggregate.insts += lane.result.committed;
                        aggregate.simSeconds += lane.result.simSeconds;
                    }
                    last_runs.push_back(
                        std::move(lanes.front().result));
                } else {
                    RunResult result = runWorkload(
                        cached, paperConfig(threads), scale);
                    requireGood(result);
                    aggregate.cycles += result.cycles;
                    aggregate.insts += result.committed;
                    aggregate.simSeconds += result.simSeconds;
                    last_runs.push_back(std::move(result));
                }
            }
        }
        rep_results.push_back(aggregate);
        std::printf("  rep %u: %.2f MSimCycles/s, %.2f MSimInsts/s "
                    "(%.3fs sim over %llu cycles)\n",
                    rep + 1, aggregate.mCyclesPerSecond(),
                    aggregate.mInstsPerSecond(), aggregate.simSeconds,
                    static_cast<unsigned long long>(aggregate.cycles));
    }

    std::size_t best = 0;
    double rate_min = rep_results.front().mCyclesPerSecond();
    double rate_max = rate_min;
    for (std::size_t i = 1; i < rep_results.size(); ++i) {
        double rate = rep_results[i].mCyclesPerSecond();
        rate_min = std::min(rate_min, rate);
        rate_max = std::max(rate_max, rate);
        if (rate > rep_results[best].mCyclesPerSecond())
            best = i;
    }
    const RepResult &headline = rep_results[best];
    double median = medianMCycles(rep_results);
    std::printf("best: %.2f MSimCycles/s, %.2f MSimInsts/s\n",
                headline.mCyclesPerSecond(),
                headline.mInstsPerSecond());
    std::printf("median: %.2f MSimCycles/s (spread %.2f..%.2f over "
                "%zu reps)\n",
                median, rate_min, rate_max, rep_results.size());

    JsonWriter writer;
    writer.beginObject();
    writer.field("schema_version", 1);
    writer.field("suite", "sdsp_bench_simspeed");
    writer.key("host");
    appendHostJson(writer);
    writer.field("scale", scale);
    writer.field("reps", reps);
    writer.field("batch", batch);
    writer.field("grid_points",
                 std::uint64_t{workloads.size() * thread_counts.size()});
    writer.field("sim_cycles", headline.cycles);
    writer.field("sim_insts", headline.insts);
    writer.field("sim_seconds", headline.simSeconds);
    writer.field("m_sim_cycles_per_second",
                 headline.mCyclesPerSecond());
    writer.field("m_sim_insts_per_second", headline.mInstsPerSecond());
    writer.field("median_m_sim_cycles_per_second", median);
    writer.field("min_m_sim_cycles_per_second", rate_min);
    writer.field("max_m_sim_cycles_per_second", rate_max);
    writer.key("reps_m_sim_cycles_per_second").beginArray();
    for (const RepResult &rep : rep_results)
        writer.value(rep.mCyclesPerSecond());
    writer.endArray();
    writer.key("runs").beginArray();
    for (const RunResult &result : last_runs) {
        writer.beginObject();
        writer.field("benchmark", result.benchmark);
        writer.field("threads", result.config.numThreads);
        writer.field("cycles", result.cycles);
        writer.field("committed", result.committed);
        writer.field("sim_seconds", result.simSeconds);
        writer.field("sim_cycles_per_second",
                     result.simCyclesPerSecond);
        writer.field("sim_insts_per_second", result.simInstsPerSecond);
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();

    if (out_path.empty()) {
        const char *dir = std::getenv("SDSP_BENCH_JSON");
        if (dir && *dir && ensureOutputDir(dir))
            out_path = std::string(dir) + "/bench_simspeed.json";
        else
            out_path = "bench_simspeed.json";
    }
    std::ofstream file(out_path);
    if (!file)
        fatal("cannot write %s", out_path.c_str());
    file << writer.str() << '\n';
    std::printf("(json written to %s)\n", out_path.c_str());
    return 0;
}

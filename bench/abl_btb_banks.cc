/**
 * @file
 * Ablation: one BTB shared by all threads (the paper's design) vs
 * private per-thread BTB slices of the same total budget. The paper
 * concedes that sharing "may seem too simplistic" but reports
 * accuracies upwards of 8x% — plausible because homogeneous
 * multitasking runs the same code in every thread, so threads
 * constructively share each other's training.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: BTB sharing (section 4)",
                "shared 512-entry BTB vs private per-thread slices "
                "(same total budget), 4 threads",
                "with homogeneous code, sharing wins or ties: threads "
                "train each other's branches, and each private slice "
                "is only a quarter of the budget");

    MachineConfig banked = paperConfig(4);
    banked.btbBanks = 4;
    std::vector<Variant> variants = {
        {"shared", paperConfig(4)},
        {"private", banked},
    };
    const auto &workloads = allWorkloads();
    auto grid = runGrid(workloads, variants);
    exportRunsJson(variants, grid);

    Table table({"benchmark", "shared cycles", "private cycles",
                 "shared acc %", "private acc %"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const RunResult &s = grid[w][0];
        const RunResult &p = grid[w][1];
        table.beginRow();
        table.cell(workloads[w]->name());
        table.cell(s.cycles);
        table.cell(p.cycles);
        table.cell(100.0 * s.branchAccuracy, 2);
        table.cell(100.0 * p.branchAccuracy, 2);
    }
    std::printf("\n%s", table.toAscii().c_str());
    exportCsv(table);
    return 0;
}

#include "bench_util.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.hh"
#include "harness/artifacts.hh"

namespace sdsp
{
namespace bench
{

unsigned
benchScale()
{
    const char *env = std::getenv("SDSP_BENCH_SCALE");
    if (!env)
        return 100;
    int value = std::atoi(env);
    if (value < 1 || value > 1000)
        fatal("SDSP_BENCH_SCALE out of range: %s", env);
    return static_cast<unsigned>(value);
}

unsigned
benchJobs()
{
    return SweepRunner::defaultJobs();
}

MachineConfig
paperConfig(unsigned threads)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.maxCycles = 500'000'000;
    cfg.finalize();
    return cfg;
}

std::vector<const Workload *>
groupI()
{
    return workloadsInGroup(BenchmarkGroup::LivermoreLoops);
}

std::vector<const Workload *>
groupII()
{
    return workloadsInGroup(BenchmarkGroup::GroupII);
}

namespace
{

/** Experiment id of the last printHeader, slugged for file names. */
std::string g_experiment_slug;

} // namespace

void
printHeader(const std::string &experiment_id, const std::string &title,
            const std::string &paper_expectation)
{
    g_experiment_slug.clear();
    for (char ch : experiment_id) {
        g_experiment_slug += std::isalnum(static_cast<unsigned char>(ch))
                                 ? static_cast<char>(std::tolower(
                                       static_cast<unsigned char>(ch)))
                                 : '_';
    }
    std::printf("================================================="
                "=============\n");
    std::printf("%s: %s\n", experiment_id.c_str(), title.c_str());
    std::printf("paper expectation: %s\n", paper_expectation.c_str());
    std::printf("problem scale: %u%%\n", benchScale());
    std::printf("================================================="
                "=============\n");
}

namespace
{

/**
 * Memoizing adapter: forwards name/group, caches build() images by
 * (threads, scale). Workload generators are deterministic, so serving
 * a copy of the first build is bit-identical to rebuilding.
 */
class CachedWorkload : public Workload
{
  public:
    explicit CachedWorkload(const Workload &inner) : inner_(inner) {}

    std::string name() const override { return inner_.name(); }
    BenchmarkGroup group() const override { return inner_.group(); }

    WorkloadImage
    build(unsigned num_threads, unsigned scale) const override
    {
        std::lock_guard<std::mutex> hold(mutex_);
        auto key = std::make_pair(num_threads, scale);
        auto it = cache_.find(key);
        if (it == cache_.end())
            it = cache_.emplace(key, inner_.build(num_threads, scale))
                     .first;
        return it->second;
    }

  private:
    const Workload &inner_;
    mutable std::mutex mutex_;
    mutable std::map<std::pair<unsigned, unsigned>, WorkloadImage>
        cache_;
};

} // namespace

const Workload &
cachedWorkload(const Workload &workload)
{
    static std::mutex registry_mutex;
    static std::map<const Workload *, std::unique_ptr<CachedWorkload>>
        registry;
    std::lock_guard<std::mutex> hold(registry_mutex);
    std::unique_ptr<CachedWorkload> &slot = registry[&workload];
    if (!slot)
        slot = std::make_unique<CachedWorkload>(workload);
    return *slot;
}

RunResult
runChecked(const Workload &workload, const MachineConfig &config)
{
    RunResult result =
        runWorkload(cachedWorkload(workload), config, benchScale());
    requireGood(result);
    return result;
}

namespace
{

/** $name if set and non-empty, with the directory created. */
const char *
exportDir(const char *name)
{
    const char *dir = std::getenv(name);
    if (!dir || !*dir)
        return nullptr;
    if (!ensureOutputDir(dir))
        return nullptr;
    return dir;
}

} // namespace

void
exportCsv(const Table &table, const std::string &suffix)
{
    const char *dir = exportDir("SDSP_BENCH_CSV");
    if (!dir)
        return;
    std::string path = std::string(dir) + "/" + g_experiment_slug +
                       suffix + ".csv";
    std::ofstream file(path);
    if (!file) {
        warn("cannot write %s", path.c_str());
        return;
    }
    file << table.toCsv();
    std::printf("(csv written to %s)\n", path.c_str());
}

void
exportRunsJson(const std::vector<Variant> &variants,
               const std::vector<std::vector<RunResult>> &grid,
               const std::string &suffix)
{
    const char *dir = exportDir("SDSP_BENCH_JSON");
    if (!dir)
        return;
    std::string path = std::string(dir) + "/" + g_experiment_slug +
                       suffix + ".json";

    JsonWriter writer;
    writer.beginObject();
    writer.field("experiment", g_experiment_slug);
    writer.field("scale", benchScale());
    writer.key("runs").beginArray();
    for (const std::vector<RunResult> &row : grid) {
        for (std::size_t v = 0; v < row.size(); ++v) {
            writer.beginObject();
            writer.field("variant", variants[v].name);
            writer.key("result");
            appendJson(writer, row[v], /*include_stats=*/false);
            writer.endObject();
        }
    }
    writer.endArray();
    writer.endObject();

    std::ofstream file(path);
    if (!file) {
        warn("cannot write %s", path.c_str());
        return;
    }
    file << writer.str() << '\n';
    std::printf("(json written to %s)\n", path.c_str());
}

std::vector<std::vector<RunResult>>
runGrid(const std::vector<const Workload *> &workloads,
        const std::vector<Variant> &variants)
{
    SweepRunner runner;
    for (const Workload *workload : workloads) {
        for (const Variant &variant : variants)
            runner.add(cachedWorkload(*workload), variant.config,
                       benchScale(), variant.name);
    }
    std::vector<JobOutcome> outcomes = runner.runAll();

    // Report every bad point before dying, not just the first: a
    // broken variant usually breaks many benchmarks at once and the
    // full list is what identifies it.
    std::size_t failures = 0;
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.ok())
            continue;
        ++failures;
        std::fprintf(stderr, "FAIL [%s] %s (%s): %s\n",
                     jobStatusName(outcome.status),
                     outcome.result.benchmark.c_str(),
                     outcome.result.config.toString().c_str(),
                     outcome.error.c_str());
    }
    if (failures) {
        fatal("%zu of %zu grid points failed", failures,
              outcomes.size());
    }

    std::vector<std::vector<RunResult>> grid;
    grid.reserve(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        auto first =
            outcomes.begin() +
            static_cast<std::ptrdiff_t>(w * variants.size());
        auto last =
            first + static_cast<std::ptrdiff_t>(variants.size());
        std::vector<RunResult> row;
        row.reserve(variants.size());
        for (auto it = first; it != last; ++it)
            row.push_back(std::move(it->result));
        grid.push_back(std::move(row));
    }
    return grid;
}

std::vector<std::vector<Cycle>>
printCyclesTable(const std::vector<const Workload *> &workloads,
                 const std::vector<Variant> &variants)
{
    return printCyclesTable(workloads, variants,
                            runGrid(workloads, variants));
}

std::vector<std::vector<Cycle>>
printCyclesTable(const std::vector<const Workload *> &workloads,
                 const std::vector<Variant> &variants,
                 const std::vector<std::vector<RunResult>> &grid)
{
    std::vector<std::string> header{"benchmark"};
    for (const Variant &variant : variants)
        header.push_back(variant.name);
    Table table(header);

    std::vector<std::vector<Cycle>> cycles;
    std::vector<double> sums(variants.size(), 0.0);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.beginRow();
        table.cell(workloads[w]->name());
        std::vector<Cycle> row;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const RunResult &result = grid[w][v];
            row.push_back(result.cycles);
            sums[v] += static_cast<double>(result.cycles);
            table.cell(result.cycles);
        }
        cycles.push_back(std::move(row));
    }
    table.beginRow();
    table.cell(std::string("mean"));
    for (double sum : sums)
        table.cell(sum / static_cast<double>(workloads.size()), 1);
    std::printf("\ncycles:\n%s", table.toAscii().c_str());
    exportCsv(table, "_cycles");
    exportRunsJson(variants, grid);
    return cycles;
}

void
printSpeedupTable(const std::vector<const Workload *> &workloads,
                  const std::vector<Variant> &variants,
                  const std::vector<std::vector<Cycle>> &cycles,
                  std::size_t base_col)
{
    std::vector<std::string> header{"benchmark"};
    for (std::size_t v = 0; v < variants.size(); ++v) {
        if (v != base_col)
            header.push_back(variants[v].name);
    }
    Table table(header);

    std::vector<double> sums(variants.size(), 0.0);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.beginRow();
        table.cell(workloads[w]->name());
        for (std::size_t v = 0; v < variants.size(); ++v) {
            if (v == base_col)
                continue;
            double speedup =
                speedupPercent(cycles[w][v], cycles[w][base_col]);
            sums[v] += speedup;
            table.cell(speedup, 1);
        }
    }
    table.beginRow();
    table.cell(std::string("mean"));
    for (std::size_t v = 0; v < variants.size(); ++v) {
        if (v != base_col)
            table.cell(sums[v] / static_cast<double>(workloads.size()),
                       1);
    }
    std::printf("\nspeedup vs %s (%%, paper section 5.2 formula):\n%s",
                variants[base_col].name.c_str(),
                table.toAscii().c_str());
    exportCsv(table, "_speedup");
}

namespace
{

/** Deduplicating accumulator behind buildPaperGrid(). */
struct GridBuilder
{
    PaperGrid grid;
    /** (benchmark, configKey) -> index into grid.points. */
    std::map<std::string, std::size_t> index;

    void
    add(const Workload &workload, const MachineConfig &config,
        const std::string &experiment)
    {
        ++grid.submitted;
        std::string key = workload.name() + "\n" + configKey(config);
        auto [it, inserted] =
            index.try_emplace(key, grid.points.size());
        // Route every point through the assembly cache so the static
        // bounds pass, the sweep, and any batch share one build per
        // (benchmark, threads, scale).
        if (inserted) {
            grid.points.push_back(
                {&cachedWorkload(workload), config, {}});
        }
        std::vector<std::string> &tags =
            grid.points[it->second].experiments;
        if (tags.empty() || tags.back() != experiment)
            tags.push_back(experiment);
    }

    void
    addForGroup(BenchmarkGroup group, const MachineConfig &config,
                const std::string &experiment)
    {
        for (const Workload *workload : workloadsInGroup(group))
            add(*workload, config, experiment);
    }
};

} // namespace

PaperGrid
buildPaperGrid()
{
    GridBuilder builder;
    const auto groups = {BenchmarkGroup::LivermoreLoops,
                         BenchmarkGroup::GroupII};
    auto figureId = [](BenchmarkGroup group, int ll_figure) {
        return format("fig%02d",
                      group == BenchmarkGroup::LivermoreLoops
                          ? ll_figure
                          : ll_figure + 1);
    };

    for (BenchmarkGroup group : groups) {
        // Figures 3/4: fetch policies (plus the base case).
        std::string fig = figureId(group, 3);
        builder.addForGroup(group, paperConfig(1), fig);
        for (FetchPolicy policy : {FetchPolicy::TrueRoundRobin,
                                   FetchPolicy::MaskedRoundRobin,
                                   FetchPolicy::ConditionalSwitch}) {
            MachineConfig cfg = paperConfig(4);
            cfg.fetchPolicy = policy;
            builder.addForGroup(group, cfg, fig);
        }

        // Figures 5/6 + the section 5.2 summary: 1-6 threads.
        fig = figureId(group, 5);
        for (unsigned threads = 1; threads <= 6; ++threads)
            builder.addForGroup(group, paperConfig(threads), fig);

        // Figures 7/8 and Table 3: cache organization x threads.
        fig = figureId(group, 7);
        for (unsigned threads = 1; threads <= 6; ++threads) {
            for (std::uint32_t ways : {1u, 2u}) {
                MachineConfig cfg = paperConfig(threads);
                cfg.dcache.ways = ways;
                builder.addForGroup(group, cfg, fig);
            }
        }

        // Figures 9/10: SU depth x {1,4} threads.
        fig = figureId(group, 9);
        for (unsigned threads : {1u, 4u}) {
            for (unsigned entries : {16u, 32u, 48u, 64u}) {
                MachineConfig cfg = paperConfig(threads);
                cfg.suEntries = entries;
                builder.addForGroup(group, cfg, fig);
            }
        }

        // Figures 11/12 and Table 4: FU complement x {1,4} threads.
        fig = figureId(group, 11);
        for (unsigned threads : {1u, 4u}) {
            for (bool enhanced : {false, true}) {
                MachineConfig cfg = paperConfig(threads);
                if (enhanced)
                    cfg.fu = FuConfig::sdspEnhanced();
                builder.addForGroup(group, cfg, fig);
            }
        }

        // Figures 13/14: commit policy, 4 threads.
        fig = figureId(group, 13);
        for (CommitPolicy policy : {CommitPolicy::FlexibleFourBlocks,
                                    CommitPolicy::LowestBlockOnly}) {
            MachineConfig cfg = paperConfig(4);
            cfg.commitPolicy = policy;
            builder.addForGroup(group, cfg, fig);
        }
    }
    return std::move(builder.grid);
}

} // namespace bench
} // namespace sdsp

#include "bench_util.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.hh"
#include "harness/artifacts.hh"

namespace sdsp
{
namespace bench
{

unsigned
benchScale()
{
    const char *env = std::getenv("SDSP_BENCH_SCALE");
    if (!env)
        return 100;
    int value = std::atoi(env);
    if (value < 1 || value > 1000)
        fatal("SDSP_BENCH_SCALE out of range: %s", env);
    return static_cast<unsigned>(value);
}

unsigned
benchJobs()
{
    return SweepRunner::defaultJobs();
}

MachineConfig
paperConfig(unsigned threads)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.maxCycles = 500'000'000;
    return cfg;
}

std::vector<const Workload *>
groupI()
{
    return workloadsInGroup(BenchmarkGroup::LivermoreLoops);
}

std::vector<const Workload *>
groupII()
{
    return workloadsInGroup(BenchmarkGroup::GroupII);
}

namespace
{

/** Experiment id of the last printHeader, slugged for file names. */
std::string g_experiment_slug;

} // namespace

void
printHeader(const std::string &experiment_id, const std::string &title,
            const std::string &paper_expectation)
{
    g_experiment_slug.clear();
    for (char ch : experiment_id) {
        g_experiment_slug += std::isalnum(static_cast<unsigned char>(ch))
                                 ? static_cast<char>(std::tolower(
                                       static_cast<unsigned char>(ch)))
                                 : '_';
    }
    std::printf("================================================="
                "=============\n");
    std::printf("%s: %s\n", experiment_id.c_str(), title.c_str());
    std::printf("paper expectation: %s\n", paper_expectation.c_str());
    std::printf("problem scale: %u%%\n", benchScale());
    std::printf("================================================="
                "=============\n");
}

namespace
{

/**
 * Memoizing adapter: forwards name/group, caches build() images by
 * (threads, scale). Workload generators are deterministic, so serving
 * a copy of the first build is bit-identical to rebuilding.
 */
class CachedWorkload : public Workload
{
  public:
    explicit CachedWorkload(const Workload &inner) : inner_(inner) {}

    std::string name() const override { return inner_.name(); }
    BenchmarkGroup group() const override { return inner_.group(); }

    WorkloadImage
    build(unsigned num_threads, unsigned scale) const override
    {
        std::lock_guard<std::mutex> hold(mutex_);
        auto key = std::make_pair(num_threads, scale);
        auto it = cache_.find(key);
        if (it == cache_.end())
            it = cache_.emplace(key, inner_.build(num_threads, scale))
                     .first;
        return it->second;
    }

  private:
    const Workload &inner_;
    mutable std::mutex mutex_;
    mutable std::map<std::pair<unsigned, unsigned>, WorkloadImage>
        cache_;
};

} // namespace

const Workload &
cachedWorkload(const Workload &workload)
{
    static std::mutex registry_mutex;
    static std::map<const Workload *, std::unique_ptr<CachedWorkload>>
        registry;
    std::lock_guard<std::mutex> hold(registry_mutex);
    std::unique_ptr<CachedWorkload> &slot = registry[&workload];
    if (!slot)
        slot = std::make_unique<CachedWorkload>(workload);
    return *slot;
}

RunResult
runChecked(const Workload &workload, const MachineConfig &config)
{
    RunResult result =
        runWorkload(cachedWorkload(workload), config, benchScale());
    requireGood(result);
    return result;
}

namespace
{

/** $name if set and non-empty, with the directory created. */
const char *
exportDir(const char *name)
{
    const char *dir = std::getenv(name);
    if (!dir || !*dir)
        return nullptr;
    if (!ensureOutputDir(dir))
        return nullptr;
    return dir;
}

} // namespace

void
exportCsv(const Table &table, const std::string &suffix)
{
    const char *dir = exportDir("SDSP_BENCH_CSV");
    if (!dir)
        return;
    std::string path = std::string(dir) + "/" + g_experiment_slug +
                       suffix + ".csv";
    std::ofstream file(path);
    if (!file) {
        warn("cannot write %s", path.c_str());
        return;
    }
    file << table.toCsv();
    std::printf("(csv written to %s)\n", path.c_str());
}

void
exportRunsJson(const std::vector<Variant> &variants,
               const std::vector<std::vector<RunResult>> &grid,
               const std::string &suffix)
{
    const char *dir = exportDir("SDSP_BENCH_JSON");
    if (!dir)
        return;
    std::string path = std::string(dir) + "/" + g_experiment_slug +
                       suffix + ".json";

    JsonWriter writer;
    writer.beginObject();
    writer.field("experiment", g_experiment_slug);
    writer.field("scale", benchScale());
    writer.key("runs").beginArray();
    for (const std::vector<RunResult> &row : grid) {
        for (std::size_t v = 0; v < row.size(); ++v) {
            writer.beginObject();
            writer.field("variant", variants[v].name);
            writer.key("result");
            appendJson(writer, row[v], /*include_stats=*/false);
            writer.endObject();
        }
    }
    writer.endArray();
    writer.endObject();

    std::ofstream file(path);
    if (!file) {
        warn("cannot write %s", path.c_str());
        return;
    }
    file << writer.str() << '\n';
    std::printf("(json written to %s)\n", path.c_str());
}

std::vector<std::vector<RunResult>>
runGrid(const std::vector<const Workload *> &workloads,
        const std::vector<Variant> &variants)
{
    SweepRunner runner;
    for (const Workload *workload : workloads) {
        for (const Variant &variant : variants)
            runner.add(cachedWorkload(*workload), variant.config,
                       benchScale(), variant.name);
    }
    std::vector<JobOutcome> outcomes = runner.runAll();

    // Report every bad point before dying, not just the first: a
    // broken variant usually breaks many benchmarks at once and the
    // full list is what identifies it.
    std::size_t failures = 0;
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.ok())
            continue;
        ++failures;
        std::fprintf(stderr, "FAIL [%s] %s (%s): %s\n",
                     jobStatusName(outcome.status),
                     outcome.result.benchmark.c_str(),
                     outcome.result.config.toString().c_str(),
                     outcome.error.c_str());
    }
    if (failures) {
        fatal("%zu of %zu grid points failed", failures,
              outcomes.size());
    }

    std::vector<std::vector<RunResult>> grid;
    grid.reserve(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        auto first =
            outcomes.begin() +
            static_cast<std::ptrdiff_t>(w * variants.size());
        auto last =
            first + static_cast<std::ptrdiff_t>(variants.size());
        std::vector<RunResult> row;
        row.reserve(variants.size());
        for (auto it = first; it != last; ++it)
            row.push_back(std::move(it->result));
        grid.push_back(std::move(row));
    }
    return grid;
}

std::vector<std::vector<Cycle>>
printCyclesTable(const std::vector<const Workload *> &workloads,
                 const std::vector<Variant> &variants)
{
    return printCyclesTable(workloads, variants,
                            runGrid(workloads, variants));
}

std::vector<std::vector<Cycle>>
printCyclesTable(const std::vector<const Workload *> &workloads,
                 const std::vector<Variant> &variants,
                 const std::vector<std::vector<RunResult>> &grid)
{
    std::vector<std::string> header{"benchmark"};
    for (const Variant &variant : variants)
        header.push_back(variant.name);
    Table table(header);

    std::vector<std::vector<Cycle>> cycles;
    std::vector<double> sums(variants.size(), 0.0);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.beginRow();
        table.cell(workloads[w]->name());
        std::vector<Cycle> row;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const RunResult &result = grid[w][v];
            row.push_back(result.cycles);
            sums[v] += static_cast<double>(result.cycles);
            table.cell(result.cycles);
        }
        cycles.push_back(std::move(row));
    }
    table.beginRow();
    table.cell(std::string("mean"));
    for (double sum : sums)
        table.cell(sum / static_cast<double>(workloads.size()), 1);
    std::printf("\ncycles:\n%s", table.toAscii().c_str());
    exportCsv(table, "_cycles");
    exportRunsJson(variants, grid);
    return cycles;
}

void
printSpeedupTable(const std::vector<const Workload *> &workloads,
                  const std::vector<Variant> &variants,
                  const std::vector<std::vector<Cycle>> &cycles,
                  std::size_t base_col)
{
    std::vector<std::string> header{"benchmark"};
    for (std::size_t v = 0; v < variants.size(); ++v) {
        if (v != base_col)
            header.push_back(variants[v].name);
    }
    Table table(header);

    std::vector<double> sums(variants.size(), 0.0);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.beginRow();
        table.cell(workloads[w]->name());
        for (std::size_t v = 0; v < variants.size(); ++v) {
            if (v == base_col)
                continue;
            double speedup =
                speedupPercent(cycles[w][v], cycles[w][base_col]);
            sums[v] += speedup;
            table.cell(speedup, 1);
        }
    }
    table.beginRow();
    table.cell(std::string("mean"));
    for (std::size_t v = 0; v < variants.size(); ++v) {
        if (v != base_col)
            table.cell(sums[v] / static_cast<double>(workloads.size()),
                       1);
    }
    std::printf("\nspeedup vs %s (%%, paper section 5.2 formula):\n%s",
                variants[base_col].name.c_str(),
                table.toAscii().c_str());
    exportCsv(table, "_speedup");
}

} // namespace bench
} // namespace sdsp

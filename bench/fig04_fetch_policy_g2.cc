/**
 * @file
 * Bench binary regenerating the paper's Figure 4 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runFetchPolicyFigure(
        "Figure 4", sdsp::BenchmarkGroup::GroupII);
}

/**
 * @file
 * Ablation: software scheduling / code rearrangement (paper section
 * 6.1 item 4: "even with static scheduling, one can write parallel
 * code for an application in more than one way ... it may be possible
 * to reduce the synchronization overhead by rearranging code and
 * dividing tasks judiciously").
 *
 * Compares the paper-faithful LL5 (block-cyclic distribution,
 * per-block producer-consumer flags — the negative-speedup
 * formulation) against LL5sched (one contiguous chunk per thread,
 * one flag per repetition, which pipelines repetitions across
 * threads) for 1-6 threads.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: software scheduling (section 6.1)",
                "LL5 naive (fine-grained sync) vs LL5sched "
                "(rearranged, coarse-grained sync), 1-6 threads",
                "the rearranged division turns LL5's negative "
                "speedup into a gain — the 'great impact' the paper "
                "attributes to judicious task division");

    std::vector<const Workload *> workloads = {
        &workloadByName("LL5"), &workloadByName("LL5sched")};
    std::vector<Variant> variants;
    for (unsigned threads = 1; threads <= 6; ++threads)
        variants.push_back({format("%uT", threads),
                            paperConfig(threads)});
    auto grid = runGrid(workloads, variants);
    exportRunsJson(variants, grid);

    Table table({"threads", "LL5 cycles", "LL5sched cycles",
                 "LL5 speedup %", "LL5sched speedup %"});
    Cycle base_naive = grid[0][0].cycles;
    Cycle base_sched = grid[1][0].cycles;
    for (unsigned threads = 1; threads <= 6; ++threads) {
        Cycle n = grid[0][threads - 1].cycles;
        Cycle s = grid[1][threads - 1].cycles;
        table.beginRow();
        table.cell(std::uint64_t{threads});
        table.cell(n);
        table.cell(s);
        table.cell(speedupPercent(n, base_naive), 1);
        table.cell(speedupPercent(s, base_sched), 1);
    }
    std::printf("\n%s", table.toAscii().c_str());
    exportCsv(table);
    return 0;
}

/**
 * @file
 * Ablation: software scheduling / code rearrangement (paper section
 * 6.1 item 4: "even with static scheduling, one can write parallel
 * code for an application in more than one way ... it may be possible
 * to reduce the synchronization overhead by rearranging code and
 * dividing tasks judiciously").
 *
 * Compares the paper-faithful LL5 (block-cyclic distribution,
 * per-block producer-consumer flags — the negative-speedup
 * formulation) against LL5sched (one contiguous chunk per thread,
 * one flag per repetition, which pipelines repetitions across
 * threads) for 1-6 threads.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: software scheduling (section 6.1)",
                "LL5 naive (fine-grained sync) vs LL5sched "
                "(rearranged, coarse-grained sync), 1-6 threads",
                "the rearranged division turns LL5's negative "
                "speedup into a gain — the 'great impact' the paper "
                "attributes to judicious task division");

    const Workload &naive = workloadByName("LL5");
    const Workload &sched = workloadByName("LL5sched");

    Table table({"threads", "LL5 cycles", "LL5sched cycles",
                 "LL5 speedup %", "LL5sched speedup %"});
    Cycle base_naive = 0, base_sched = 0;
    for (unsigned threads = 1; threads <= 6; ++threads) {
        RunResult n = runChecked(naive, paperConfig(threads));
        RunResult s = runChecked(sched, paperConfig(threads));
        if (threads == 1) {
            base_naive = n.cycles;
            base_sched = s.cycles;
        }
        table.beginRow();
        table.cell(std::uint64_t{threads});
        table.cell(n.cycles);
        table.cell(s.cycles);
        table.cell(speedupPercent(n.cycles, base_naive), 1);
        table.cell(speedupPercent(s.cycles, base_sched), 1);
    }
    std::printf("\n%s", table.toAscii().c_str());
    return 0;
}

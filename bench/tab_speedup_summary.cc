/**
 * @file
 * Bench binary regenerating the paper's section 5.2 summary
 * statistics: peak improvement per benchmark over 2-6 threads
 * (relative to the single-threaded base case), group averages, and
 * the per-thread-count averages the paper quotes for the Livermore
 * loops.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Section 5.2 summary",
                "peak multithreading improvement per benchmark",
                "peak improvements roughly -8%..+75% with most "
                "benchmarks gaining 20-55%; LL5 negative; Livermore "
                "average positive at 3 threads, deteriorating by 6");

    // The whole (benchmark x thread-count) grid in one sweep.
    std::vector<Variant> variants;
    for (unsigned threads = 1; threads <= 6; ++threads)
        variants.push_back({format("%uT", threads),
                            paperConfig(threads)});
    const auto &workloads = allWorkloads();
    auto grid = runGrid(workloads, variants);
    exportRunsJson(variants, grid);

    Table table({"benchmark", "group", "base cycles", "peak speedup %",
                 "at threads"});
    double group_sum[2] = {0.0, 0.0};
    unsigned group_count[2] = {0, 0};
    std::vector<std::vector<double>> ll_speedups(7);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const Workload *workload = workloads[w];
        Cycle base = grid[w][0].cycles;
        double best = -1e9;
        unsigned best_threads = 2;
        for (unsigned threads = 2; threads <= 6; ++threads) {
            Cycle cycles = grid[w][threads - 1].cycles;
            double speedup = speedupPercent(cycles, base);
            if (workload->group() == BenchmarkGroup::LivermoreLoops)
                ll_speedups[threads].push_back(speedup);
            if (speedup > best) {
                best = speedup;
                best_threads = threads;
            }
        }
        unsigned group_idx =
            workload->group() == BenchmarkGroup::LivermoreLoops ? 0 : 1;
        group_sum[group_idx] += best;
        ++group_count[group_idx];

        table.beginRow();
        table.cell(workload->name());
        table.cell(group_idx == 0 ? "I" : "II");
        table.cell(base);
        table.cell(best, 1);
        table.cell(std::uint64_t{best_threads});
    }
    std::printf("\n%s", table.toAscii().c_str());
    std::printf("\naverage peak improvement, Group I : %.1f%%\n",
                group_sum[0] / group_count[0]);
    std::printf("average peak improvement, Group II: %.1f%%\n",
                group_sum[1] / group_count[1]);

    std::printf("\nLivermore average speedup by thread count:\n");
    for (unsigned threads = 2; threads <= 6; ++threads) {
        std::printf("  %u threads: %+.1f%%\n", threads,
                    mean(ll_speedups[threads]));
    }
    return 0;
}

/**
 * @file
 * Ablation: the "judicious fetch policy" the paper proposes in
 * section 6.1 item 3 — slow down fetching for a thread in a region
 * of low execution rate — implemented as FetchPolicy::Adaptive and
 * compared against the three policies of section 5.1.
 */

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: adaptive fetch (section 6.1)",
                "adaptive (commit-stall-scored) fetch vs the paper's "
                "three policies, 4 threads",
                "adaptive should match or beat round robin on "
                "synchronization-bound benchmarks (LL5) by stealing "
                "fetch slots from stalled threads");

    MachineConfig true_rr = paperConfig(4);
    MachineConfig masked = paperConfig(4);
    masked.fetchPolicy = FetchPolicy::MaskedRoundRobin;
    MachineConfig cswitch = paperConfig(4);
    cswitch.fetchPolicy = FetchPolicy::ConditionalSwitch;
    MachineConfig adaptive = paperConfig(4);
    adaptive.fetchPolicy = FetchPolicy::Adaptive;

    std::vector<Variant> variants = {
        {"TrueRR", true_rr},
        {"MaskedRR", masked},
        {"CSwitch", cswitch},
        {"Adaptive", adaptive},
    };
    printCyclesTable(allWorkloads(), variants);
    return 0;
}

/**
 * @file
 * The consolidated paper-reproduction driver.
 *
 * Enumerates every grid point of the paper's figure/table suite
 * (fetch policies, thread counts, cache organizations, SU depths,
 * functional-unit complements, commit policies — figures 3-14 and
 * tables 3/5.2), deduplicates the points shared between experiments,
 * executes them all concurrently on the sweep engine, and writes one
 * machine-checkable bench_results.json (per-run cycles, IPC, hit
 * rates, verify status, wall-clock, host metadata).
 *
 * Exit status is non-zero if any run fails to finish or verify, so
 * CI can gate on this binary alone.
 *
 *     sdsp_bench_all [--jobs N] [--scale PCT] [--out FILE]
 *                    [--only SUBSTR] [--list]
 *
 * --jobs defaults to SDSP_BENCH_JOBS / hardware_concurrency, --scale
 * to SDSP_BENCH_SCALE / 100. The output goes to --out, else to
 * $SDSP_BENCH_JSON/bench_results.json, else ./bench_results.json.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "harness/artifacts.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

/** One deduplicated grid point and the experiments that need it. */
struct GridPoint
{
    const Workload *workload = nullptr;
    MachineConfig config;
    std::vector<std::string> experiments;
};

struct Suite
{
    std::vector<GridPoint> points;
    /** (benchmark, configKey) -> index into points. */
    std::map<std::string, std::size_t> index;
    /** Grid points before deduplication, for reporting. */
    std::size_t submitted = 0;

    void
    add(const Workload &workload, const MachineConfig &config,
        const std::string &experiment)
    {
        ++submitted;
        std::string key = workload.name() + "\n" + configKey(config);
        auto [it, inserted] = index.try_emplace(key, points.size());
        if (inserted)
            points.push_back({&workload, config, {}});
        std::vector<std::string> &tags =
            points[it->second].experiments;
        if (tags.empty() || tags.back() != experiment)
            tags.push_back(experiment);
    }

    void
    addForGroup(BenchmarkGroup group, const MachineConfig &config,
                const std::string &experiment)
    {
        for (const Workload *workload : workloadsInGroup(group))
            add(*workload, config, experiment);
    }
};

/** The full figure/table grid of the paper's evaluation section. */
Suite
buildSuite()
{
    Suite suite;
    const auto groups = {BenchmarkGroup::LivermoreLoops,
                         BenchmarkGroup::GroupII};
    auto figureId = [](BenchmarkGroup group, int ll_figure) {
        return format("fig%02d",
                      group == BenchmarkGroup::LivermoreLoops
                          ? ll_figure
                          : ll_figure + 1);
    };

    for (BenchmarkGroup group : groups) {
        // Figures 3/4: fetch policies (plus the base case).
        std::string fig = figureId(group, 3);
        suite.addForGroup(group, paperConfig(1), fig);
        for (FetchPolicy policy : {FetchPolicy::TrueRoundRobin,
                                   FetchPolicy::MaskedRoundRobin,
                                   FetchPolicy::ConditionalSwitch}) {
            MachineConfig cfg = paperConfig(4);
            cfg.fetchPolicy = policy;
            suite.addForGroup(group, cfg, fig);
        }

        // Figures 5/6 + the section 5.2 summary: 1-6 threads.
        fig = figureId(group, 5);
        for (unsigned threads = 1; threads <= 6; ++threads)
            suite.addForGroup(group, paperConfig(threads), fig);

        // Figures 7/8 and Table 3: cache organization x threads.
        fig = figureId(group, 7);
        for (unsigned threads = 1; threads <= 6; ++threads) {
            for (std::uint32_t ways : {1u, 2u}) {
                MachineConfig cfg = paperConfig(threads);
                cfg.dcache.ways = ways;
                suite.addForGroup(group, cfg, fig);
            }
        }

        // Figures 9/10: SU depth x {1,4} threads.
        fig = figureId(group, 9);
        for (unsigned threads : {1u, 4u}) {
            for (unsigned entries : {16u, 32u, 48u, 64u}) {
                MachineConfig cfg = paperConfig(threads);
                cfg.suEntries = entries;
                suite.addForGroup(group, cfg, fig);
            }
        }

        // Figures 11/12 and Table 4: FU complement x {1,4} threads.
        fig = figureId(group, 11);
        for (unsigned threads : {1u, 4u}) {
            for (bool enhanced : {false, true}) {
                MachineConfig cfg = paperConfig(threads);
                if (enhanced)
                    cfg.fu = FuConfig::sdspEnhanced();
                suite.addForGroup(group, cfg, fig);
            }
        }

        // Figures 13/14: commit policy, 4 threads.
        fig = figureId(group, 13);
        for (CommitPolicy policy : {CommitPolicy::FlexibleFourBlocks,
                                    CommitPolicy::LowestBlockOnly}) {
            MachineConfig cfg = paperConfig(4);
            cfg.commitPolicy = policy;
            suite.addForGroup(group, cfg, fig);
        }
    }
    return suite;
}

bool
matchesFilter(const GridPoint &point, const std::string &filter)
{
    if (filter.empty())
        return true;
    for (const std::string &experiment : point.experiments) {
        if (experiment.find(filter) != std::string::npos)
            return true;
    }
    return point.workload->name().find(filter) != std::string::npos;
}

int
usage(const char *argv0, int code)
{
    std::printf("usage: %s [--jobs N] [--scale PCT] [--out FILE] "
                "[--only SUBSTR] [--list]\n",
                argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 0; // 0 = SweepRunner::defaultJobs()
    unsigned scale = benchScale();
    std::string out_path;
    std::string filter;
    bool list_only = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intArg = [&](const char *name) -> long {
            if (++i >= argc)
                fatal("%s needs a value", name);
            char *end = nullptr;
            long value = std::strtol(argv[i], &end, 10);
            if (*end || value < 1)
                fatal("bad %s value: %s", name, argv[i]);
            return value;
        };
        if (arg == "--jobs" || arg == "-j") {
            long value = intArg("--jobs");
            if (value > 256)
                fatal("--jobs out of range: %ld", value);
            jobs = static_cast<unsigned>(value);
        } else if (arg == "--scale") {
            long value = intArg("--scale");
            if (value > 1000)
                fatal("--scale out of range: %ld", value);
            scale = static_cast<unsigned>(value);
        } else if (arg == "--out") {
            if (++i >= argc)
                fatal("--out needs a value");
            out_path = argv[i];
        } else if (arg == "--only") {
            if (++i >= argc)
                fatal("--only needs a value");
            filter = argv[i];
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }

    Suite suite = buildSuite();
    std::vector<GridPoint> points;
    for (GridPoint &point : suite.points) {
        if (matchesFilter(point, filter))
            points.push_back(std::move(point));
    }

    if (list_only) {
        for (const GridPoint &point : points) {
            std::string tags;
            for (const std::string &experiment : point.experiments)
                tags += (tags.empty() ? "" : ",") + experiment;
            std::printf("%-10s %-14s %s\n",
                        point.workload->name().c_str(), tags.c_str(),
                        point.config.toString().c_str());
        }
        std::printf("%zu grid points (%zu before deduplication)\n",
                    points.size(), suite.submitted);
        return 0;
    }
    if (points.empty())
        fatal("no grid points match --only %s", filter.c_str());

    SweepRunner runner(jobs);
    for (const GridPoint &point : points)
        runner.add(*point.workload, point.config, scale,
                   point.experiments.front());

    std::printf("sdsp_bench_all: %zu grid points (%zu before "
                "deduplication), scale %u%%, %u jobs\n",
                points.size(), suite.submitted, scale, runner.jobs());

    auto start = std::chrono::steady_clock::now();
    std::vector<RunResult> results = runner.run();
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    // Summarize; collect failures instead of dying on the first one
    // so the JSON artifact records every verdict.
    std::size_t failures = 0;
    double sim_seconds = 0.0;
    double sim_loop_seconds = 0.0;
    std::uint64_t sim_cycles = 0;
    std::uint64_t sim_insts = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &result = results[i];
        sim_seconds += result.wallSeconds;
        sim_loop_seconds += result.simSeconds;
        sim_cycles += result.cycles;
        sim_insts += result.committed;
        if (!result.finished || !result.verified) {
            ++failures;
            std::fprintf(stderr, "FAIL %s (%s): %s\n",
                         result.benchmark.c_str(),
                         result.config.toString().c_str(),
                         result.verifyMessage.c_str());
        }
    }

    JsonWriter writer;
    writer.beginObject();
    writer.field("schema_version", 1);
    writer.field("suite", "sdsp_bench_all");
    writer.key("host");
    appendHostJson(writer);
    writer.field("scale", scale);
    writer.field("jobs", runner.jobs());
    writer.field("grid_points", std::uint64_t{results.size()});
    writer.field("failures", std::uint64_t{failures});
    writer.field("wall_seconds", elapsed);
    writer.field("serial_seconds", sim_seconds);
    writer.field("sim_cycles_total", sim_cycles);
    writer.field("sim_insts_total", sim_insts);
    writer.field("sim_cycles_per_second",
                 sim_loop_seconds > 0
                     ? static_cast<double>(sim_cycles) / sim_loop_seconds
                     : 0.0);
    writer.field("sim_insts_per_second",
                 sim_loop_seconds > 0
                     ? static_cast<double>(sim_insts) / sim_loop_seconds
                     : 0.0);
    writer.key("runs").beginArray();
    for (std::size_t i = 0; i < results.size(); ++i) {
        writer.beginObject();
        writer.key("experiments").beginArray();
        for (const std::string &experiment : points[i].experiments)
            writer.value(experiment);
        writer.endArray();
        writer.key("result");
        appendJson(writer, results[i], /*include_stats=*/false);
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();

    if (out_path.empty()) {
        const char *dir = std::getenv("SDSP_BENCH_JSON");
        if (dir && *dir && ensureOutputDir(dir))
            out_path = std::string(dir) + "/bench_results.json";
        else
            out_path = "bench_results.json";
    }
    std::ofstream file(out_path);
    if (!file)
        fatal("cannot write %s", out_path.c_str());
    file << writer.str() << '\n';

    std::printf("wall %.2fs, serial-equivalent %.2fs (%.1fx), "
                "%zu/%zu verified\n",
                elapsed, sim_seconds,
                elapsed > 0 ? sim_seconds / elapsed : 0.0,
                results.size() - failures, results.size());
    std::printf("(json written to %s)\n", out_path.c_str());
    return failures == 0 ? 0 : 1;
}

/**
 * @file
 * The consolidated paper-reproduction driver.
 *
 * Enumerates every grid point of the paper's figure/table suite
 * (fetch policies, thread counts, cache organizations, SU depths,
 * functional-unit complements, commit policies — figures 3-14 and
 * tables 3/5.2), deduplicates the points shared between experiments,
 * executes them all concurrently on the sweep engine, and writes one
 * machine-checkable bench_results.json (per-run status, cycles, IPC,
 * hit rates, verify status, wall-clock, host metadata).
 *
 * The sweep is fault tolerant and resumable: a grid point that
 * throws, times out, or fails verification is recorded with its
 * error and the rest of the grid still runs; every completed point
 * is appended to a JSONL checkpoint as it finishes, and --resume
 * reloads that checkpoint, verifies each line's identity key against
 * the current grid, and re-runs only the missing or failed points.
 * A resumed artifact is byte-identical to an uninterrupted one in
 * every deterministic field.
 *
 * Exit status is non-zero if any run fails to finish or verify, so
 * CI can gate on this binary alone.
 *
 *     sdsp_bench_all [--jobs N] [--batch N] [--scale PCT]
 *                    [--out FILE] [--only SUBSTR] [--list]
 *                    [--timeout SECS] [--max-cycles N] [--retries N]
 *                    [--resume PATH] [--checkpoint PATH]
 *                    [--no-checkpoint]
 *
 * --jobs defaults to SDSP_BENCH_JOBS / hardware_concurrency, --batch
 * (grid points per batched execution unit, see harness/batch.hh) to
 * SDSP_BENCH_BATCH / 0 = off, --scale to SDSP_BENCH_SCALE / 100;
 * --timeout/--max-cycles/--retries default to SDSP_BENCH_TIMEOUT /
 * SDSP_BENCH_MAX_CYCLES / SDSP_BENCH_RETRIES (fault injection:
 * SDSP_BENCH_FAULT, see fault.hh). The output goes to --out, else to
 * $SDSP_BENCH_JSON/bench_results.json, else ./bench_results.json;
 * the checkpoint defaults to <out>.checkpoint.jsonl and is removed
 * after a fully verified sweep.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <charconv>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/ilp.hh"
#include "bench_util.hh"
#include "common/logging.hh"
#include "harness/artifacts.hh"
#include "harness/checkpoint.hh"

using namespace sdsp;
using namespace sdsp::bench;

namespace
{

/** One deduplicated grid point and the experiments that need it
 *  (enumerated by bench_util's buildPaperGrid). */
using GridPoint = PaperGridPoint;

/**
 * Static IPC upper bound for every grid point, from the sdsp-lint
 * dependence analyzer. The dependence summary is a function of the
 * program text and the FU latency table only, so it is cached per
 * (workload, threads, latency) and combined with each point's machine
 * shape. Every verified run is then gated on
 * measured IPC <= boundAtCycles(cycles); a violation means either the
 * simulator commits faster than the dependence structure allows (a
 * core bug) or the analyzer's bound is unsound (an analysis bug).
 */
std::vector<StaticIpcBound>
computeBounds(const std::vector<GridPoint> &points, unsigned scale)
{
    std::map<std::string, DependenceSummary> cache;
    std::vector<StaticIpcBound> bounds;
    bounds.reserve(points.size());
    for (const GridPoint &point : points) {
        const MachineConfig &config = point.config;
        std::string key = point.workload->name() + "\n" +
                          std::to_string(config.numThreads);
        for (unsigned latency : config.fu.latency) {
            key += ',';
            key += std::to_string(latency);
        }
        auto it = cache.find(key);
        if (it == cache.end()) {
            WorkloadImage image =
                point.workload->build(config.numThreads, scale);
            Cfg cfg = Cfg::build(image.program);
            DependenceSummary dep = analyzeDependence(
                cfg, LatencyModel::fromLatencies(config.fu.latency));
            it = cache.emplace(std::move(key), std::move(dep)).first;
        }
        IpcBoundInputs inputs;
        inputs.numThreads = config.numThreads;
        inputs.blockSize = config.blockSize;
        inputs.issueWidth = config.issueWidth;
        bounds.push_back(staticIpcBound(it->second, inputs));
    }
    return bounds;
}

bool
matchesFilter(const GridPoint &point, const std::string &filter)
{
    if (filter.empty())
        return true;
    for (const std::string &experiment : point.experiments) {
        if (experiment.find(filter) != std::string::npos)
            return true;
    }
    return point.workload->name().find(filter) != std::string::npos;
}

int
usage(const char *argv0, int code)
{
    std::printf(
        "usage: %s [--jobs N] [--batch N] [--scale PCT] [--out FILE]\n"
        "       [--only SUBSTR] [--list] [--timeout SECS]\n"
        "       [--max-cycles N] [--retries N] [--resume PATH]\n"
        "       [--checkpoint PATH] [--no-checkpoint]\n",
        argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 0; // 0 = SweepRunner::defaultJobs()
    unsigned scale = benchScale();
    std::string out_path;
    std::string filter;
    std::string resume_path;
    std::string checkpoint_path;
    bool checkpointing = true;
    bool list_only = false;
    SweepOptions options = SweepOptions::fromEnvironment();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto strArg = [&](const char *name) -> const char * {
            if (++i >= argc)
                fatal("%s needs a value", name);
            return argv[i];
        };
        auto intArg = [&](const char *name, long min_value) -> long {
            const char *text = strArg(name);
            char *end = nullptr;
            long value = std::strtol(text, &end, 10);
            if (*end || value < min_value)
                fatal("bad %s value: %s", name, text);
            return value;
        };
        if (arg == "--jobs" || arg == "-j") {
            long value = intArg("--jobs", 1);
            if (value > 256)
                fatal("--jobs out of range: %ld", value);
            jobs = static_cast<unsigned>(value);
        } else if (arg == "--batch" || arg == "-b") {
            long value = intArg("--batch", 0);
            if (value > 256)
                fatal("--batch out of range: %ld", value);
            options.batchSize = static_cast<unsigned>(value);
        } else if (arg == "--scale") {
            long value = intArg("--scale", 1);
            if (value > 1000)
                fatal("--scale out of range: %ld", value);
            scale = static_cast<unsigned>(value);
        } else if (arg == "--out") {
            out_path = strArg("--out");
        } else if (arg == "--only") {
            filter = strArg("--only");
        } else if (arg == "--timeout") {
            const char *text = strArg("--timeout");
            const char *end = text + std::strlen(text);
            double value = 0.0;
            auto [ptr, ec] = std::from_chars(text, end, value);
            if (ec != std::errc() || ptr != end || value < 0.0)
                fatal("bad --timeout value: %s", text);
            options.timeoutSeconds = value;
        } else if (arg == "--max-cycles") {
            const char *text = strArg("--max-cycles");
            const char *end = text + std::strlen(text);
            std::uint64_t value = 0;
            auto [ptr, ec] = std::from_chars(text, end, value);
            if (ec != std::errc() || ptr != end)
                fatal("bad --max-cycles value: %s", text);
            options.maxCycles = value;
        } else if (arg == "--retries") {
            long value = intArg("--retries", 0);
            if (value > 100)
                fatal("--retries out of range: %ld", value);
            options.retries = static_cast<unsigned>(value);
        } else if (arg == "--resume") {
            resume_path = strArg("--resume");
        } else if (arg == "--checkpoint") {
            checkpoint_path = strArg("--checkpoint");
        } else if (arg == "--no-checkpoint") {
            checkpointing = false;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }

    PaperGrid suite = buildPaperGrid();
    std::vector<GridPoint> points;
    for (GridPoint &point : suite.points) {
        if (matchesFilter(point, filter))
            points.push_back(std::move(point));
    }

    if (list_only) {
        for (const GridPoint &point : points) {
            std::string tags;
            for (const std::string &experiment : point.experiments)
                tags += (tags.empty() ? "" : ",") + experiment;
            std::printf("%-10s %-14s %s\n",
                        point.workload->name().c_str(), tags.c_str(),
                        point.config.toString().c_str());
        }
        std::printf("%zu grid points (%zu before deduplication)\n",
                    points.size(), suite.submitted);
        return 0;
    }
    if (points.empty())
        fatal("no grid points match --only %s", filter.c_str());

    // Static IPC ceilings (one per point) that every verified run
    // must respect.
    std::vector<StaticIpcBound> bounds = computeBounds(points, scale);

    if (out_path.empty()) {
        const char *dir = std::getenv("SDSP_BENCH_JSON");
        if (dir && *dir && ensureOutputDir(dir))
            out_path = std::string(dir) + "/bench_results.json";
        else
            out_path = "bench_results.json";
    }
    if (checkpoint_path.empty()) {
        checkpoint_path = resume_path.empty()
                              ? out_path + ".checkpoint.jsonl"
                              : resume_path;
    }

    const std::string suite_name = "sdsp_bench_all";

    // Resume: reload verified results and mark their points skipped,
    // keyed by the full (benchmark, configKey) identity so a stale
    // checkpoint from a different grid can never be replayed.
    std::vector<const CheckpointEntry *> restored(points.size(),
                                                  nullptr);
    CheckpointLog resumed;
    std::size_t restored_count = 0;
    std::size_t stale_entries = 0;
    if (!resume_path.empty()) {
        resumed = loadCheckpoint(resume_path, suite_name, scale);
        std::map<std::string, const CheckpointEntry *> verified;
        for (const CheckpointEntry &entry : resumed.entries) {
            // Last ok wins: a point retried across sweeps keeps its
            // most recent verified result; failed lines never skip.
            if (entry.ok())
                verified[entry.benchmark + "\n" + entry.configKey] =
                    &entry;
        }
        std::size_t matched = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::string key = points[i].workload->name() + "\n" +
                              configKey(points[i].config);
            auto it = verified.find(key);
            if (it == verified.end())
                continue;
            restored[i] = it->second;
            ++matched;
        }
        restored_count = matched;
        stale_entries = verified.size() - matched;
        if (stale_entries) {
            warn("checkpoint %s: %zu verified entries do not match "
                 "any current grid point (different --only filter?)",
                 resume_path.c_str(), stale_entries);
        }
    }

    std::vector<SweepJob> grid_jobs;
    grid_jobs.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        SweepJob job;
        job.workload = points[i].workload;
        job.config = points[i].config;
        job.scale = scale;
        job.label = points[i].experiments.front();
        job.skip = restored[i] != nullptr;
        grid_jobs.push_back(std::move(job));
    }

    SweepRunner runner(jobs, options);
    for (const SweepJob &job : grid_jobs)
        runner.add(job);

    std::printf("sdsp_bench_all: %zu grid points (%zu before "
                "deduplication), scale %u%%, %u jobs",
                points.size(), suite.submitted, scale, runner.jobs());
    if (options.batchSize >= 2)
        std::printf(", batch %u", options.batchSize);
    std::printf("\n");
    if (!resume_path.empty()) {
        std::printf("resuming from %s: %zu points restored, "
                    "%zu to run\n",
                    resume_path.c_str(), restored_count,
                    points.size() - restored_count);
    }

    std::unique_ptr<CheckpointWriter> checkpoint;
    if (checkpointing) {
        checkpoint = std::make_unique<CheckpointWriter>(
            checkpoint_path, suite_name, scale,
            /*append=*/!resume_path.empty());
    }

    // As each point completes, persist it (so a crash loses at most
    // the in-flight points) and surface failures immediately.
    auto on_complete = [&](std::size_t index,
                           const JobOutcome &outcome) {
        if (outcome.status == JobStatus::Skipped)
            return;
        if (checkpoint)
            checkpoint->record(grid_jobs[index], outcome);
        if (!outcome.ok()) {
            std::fprintf(stderr, "FAIL [%s] %s (%s): %s\n",
                         jobStatusName(outcome.status),
                         grid_jobs[index].workload->name().c_str(),
                         grid_jobs[index].config.toString().c_str(),
                         outcome.error.c_str());
        }
    };

    auto start = std::chrono::steady_clock::now();
    std::vector<JobOutcome> outcomes = runner.runAll(on_complete);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    // Aggregate. Restored points contribute their checkpointed
    // deterministic numbers so a resumed sweep's totals match an
    // uninterrupted one exactly.
    std::size_t failures = 0;
    std::size_t bound_violations = 0;
    double sim_seconds = 0.0;
    double sim_loop_seconds = 0.0;
    std::uint64_t sim_cycles = 0;
    std::uint64_t sim_insts = 0;

    // A verified run must not out-commit its static dependence bound;
    // if it does, the simulator or the analyzer is broken. The bound
    // is a count comparison (committed vs bound * cycles) with a tiny
    // relative slack for the floating-point bound arithmetic.
    auto checkBound = [&](std::size_t i, std::uint64_t cycles,
                          std::uint64_t committed) {
        if (cycles == 0)
            return;
        double limit = bounds[i].boundAtCycles(cycles) *
                       static_cast<double>(cycles);
        if (static_cast<double>(committed) <= limit * (1.0 + 1e-9))
            return;
        ++bound_violations;
        std::fprintf(stderr,
                     "IPC BOUND VIOLATION: %s (%s): committed %llu "
                     "in %llu cycles (ipc %.4f) exceeds static bound "
                     "%.4f\n",
                     points[i].workload->name().c_str(),
                     points[i].config.toString().c_str(),
                     static_cast<unsigned long long>(committed),
                     static_cast<unsigned long long>(cycles),
                     static_cast<double>(committed) /
                         static_cast<double>(cycles),
                     bounds[i].boundAtCycles(cycles));
    };

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (restored[i]) {
            sim_cycles += restored[i]->cycles;
            sim_insts += restored[i]->committed;
            checkBound(i, restored[i]->cycles,
                       restored[i]->committed);
            continue;
        }
        const RunResult &result = outcomes[i].result;
        sim_seconds += result.wallSeconds;
        sim_loop_seconds += result.simSeconds;
        sim_cycles += result.cycles;
        sim_insts += result.committed;
        if (!outcomes[i].ok())
            ++failures;
        else
            checkBound(i, result.cycles, result.committed);
    }

    JsonWriter writer;
    writer.beginObject();
    writer.field("schema_version", 1);
    writer.field("suite", suite_name);
    writer.key("host");
    appendHostJson(writer);
    writer.field("scale", scale);
    writer.field("jobs", runner.jobs());
    writer.field("grid_points", std::uint64_t{outcomes.size()});
    writer.field("failures", std::uint64_t{failures});
    writer.field("ipc_bound_violations",
                 std::uint64_t{bound_violations});
    writer.field("wall_seconds", elapsed);
    writer.field("serial_seconds", sim_seconds);
    writer.field("sim_cycles_total", sim_cycles);
    writer.field("sim_insts_total", sim_insts);
    writer.field("sim_cycles_per_second",
                 sim_loop_seconds > 0
                     ? static_cast<double>(sim_cycles) / sim_loop_seconds
                     : 0.0);
    writer.field("sim_insts_per_second",
                 sim_loop_seconds > 0
                     ? static_cast<double>(sim_insts) / sim_loop_seconds
                     : 0.0);
    writer.key("runs").beginArray();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        writer.beginObject();
        writer.key("experiments").beginArray();
        for (const std::string &experiment : points[i].experiments)
            writer.value(experiment);
        writer.endArray();
        // A pure function of the grid point (program text + machine
        // shape), so restored and fresh runs emit it identically and
        // resumed artifacts stay byte-identical.
        writer.field("static_ipc_bound", bounds[i].asymptotic());
        if (restored[i]) {
            // Splice the checkpointed result verbatim: the resumed
            // artifact stays byte-identical to an uninterrupted one.
            writer.field("status", restored[i]->status);
            writer.key("result").rawValue(restored[i]->resultRaw);
        } else {
            const JobOutcome &outcome = outcomes[i];
            writer.field("status", jobStatusName(outcome.status));
            if (!outcome.error.empty())
                writer.field("error", outcome.error);
            writer.key("result");
            appendJson(writer, outcome.result, /*include_stats=*/false);
        }
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();

    std::ofstream file(out_path);
    if (!file)
        fatal("cannot write %s", out_path.c_str());
    file << writer.str() << '\n';
    file.close();

    // Aggregate failure report: every failed point by name, so a
    // 253-point sweep with three bad points names all three.
    if (failures) {
        std::fprintf(stderr,
                     "sdsp_bench_all: %zu of %zu points failed:\n",
                     failures, outcomes.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (restored[i] || outcomes[i].ok())
                continue;
            std::fprintf(stderr, "  [%s] %s (%s): %s\n",
                         jobStatusName(outcomes[i].status),
                         points[i].workload->name().c_str(),
                         points[i].config.toString().c_str(),
                         outcomes[i].error.c_str());
        }
        if (checkpoint && checkpoint->ok()) {
            std::fprintf(stderr,
                         "rerun with --resume %s to retry only the "
                         "failed points\n",
                         checkpoint_path.c_str());
        }
    } else if (checkpoint && checkpoint->ok()) {
        // Fully verified: the checkpoint has served its purpose.
        std::remove(checkpoint_path.c_str());
    }
    if (bound_violations) {
        std::fprintf(stderr,
                     "sdsp_bench_all: %zu run(s) exceed their static "
                     "IPC bound\n",
                     bound_violations);
    }

    std::printf("wall %.2fs, serial-equivalent %.2fs (%.1fx), "
                "%zu/%zu verified (%zu restored from checkpoint), "
                "%zu IPC-bound violations\n",
                elapsed, sim_seconds,
                elapsed > 0 ? sim_seconds / elapsed : 0.0,
                outcomes.size() - failures, outcomes.size(),
                restored_count, bound_violations);
    std::printf("(json written to %s)\n", out_path.c_str());
    return failures == 0 && bound_violations == 0 ? 0 : 1;
}

/**
 * @file
 * Bench binary regenerating the paper's Figure 5 (see DESIGN.md
 * section 3 for the experiment index).
 */

#include "figures.hh"

int
main()
{
    return sdsp::bench::runThreadCountFigure(
        "Figure 5", sdsp::BenchmarkGroup::LivermoreLoops);
}

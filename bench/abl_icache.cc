/**
 * @file
 * Ablation: the perfect instruction cache assumption (paper Table 2:
 * "Instruction cache: Perfect cache (100% hits)"). A finite I-cache
 * whose 16-byte lines hold one fetch block quantifies how much that
 * assumption flatters the results — with the suite's small kernels,
 * very little, which is why the paper could afford it.
 */

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: instruction cache (Table 2 assumption)",
                "perfect I-cache vs finite 4KB/1KB 2-way I-caches, "
                "4 threads",
                "the benchmark kernels are small and loop-resident, "
                "so a modest real I-cache costs only cold misses — "
                "the paper's perfect-cache assumption is benign here");

    MachineConfig perfect = paperConfig(4);
    MachineConfig big = paperConfig(4);
    big.perfectICache = false;
    MachineConfig small = paperConfig(4);
    small.perfectICache = false;
    small.icache.sizeBytes = 1024;

    std::vector<Variant> variants = {
        {"perfect", perfect},
        {"4KB", big},
        {"1KB", small},
    };
    printCyclesTable(allWorkloads(), variants);
    return 0;
}

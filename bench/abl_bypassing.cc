/**
 * @file
 * Ablation: result bypassing on vs off (paper Table 2). Without
 * bypassing a dependent instruction issues at least one cycle after
 * its producer's writeback.
 */

#include "bench_util.hh"

using namespace sdsp;
using namespace sdsp::bench;

int
main()
{
    printHeader("Ablation: bypassing",
                "result bypassing enabled vs disabled, 4 threads",
                "bypassing ahead on every benchmark; multithreading "
                "partially hides the lost cycle by filling it with "
                "other threads' instructions");

    MachineConfig with = paperConfig(4);
    MachineConfig without = paperConfig(4);
    without.bypassing = false;
    MachineConfig with1 = paperConfig(1);
    MachineConfig without1 = paperConfig(1);
    without1.bypassing = false;

    std::vector<Variant> variants = {
        {"1T/bypass", with1},
        {"1T/no-bypass", without1},
        {"4T/bypass", with},
        {"4T/no-bypass", without},
    };
    printCyclesTable(allWorkloads(), variants);
    return 0;
}

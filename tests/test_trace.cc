/**
 * @file
 * Tests for the structured trace layer: text-sink format fidelity,
 * event ordering out of the pipeline, tee fan-out, and the JSON
 * (Chrome-trace-event) writer's syntax and schema.
 */

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "common/trace.hh"
#include "core/processor.hh"

namespace sdsp
{
namespace
{

// ---- A minimal JSON syntax checker (the simulator's own JSON
// support is write-only, so the test brings its own reader). ----

bool parseValue(const std::string &text, std::size_t &pos);

void
skipSpace(const std::string &text, std::size_t &pos)
{
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' ||
            text[pos] == '\n' || text[pos] == '\r')) {
        ++pos;
    }
}

bool
parseString(const std::string &text, std::size_t &pos)
{
    if (pos >= text.size() || text[pos] != '"')
        return false;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
        if (text[pos] == '\\')
            ++pos;
        ++pos;
    }
    if (pos >= text.size())
        return false;
    ++pos; // closing quote
    return true;
}

bool
parseContainer(const std::string &text, std::size_t &pos, char close,
               bool keyed)
{
    ++pos; // opening bracket
    skipSpace(text, pos);
    if (pos < text.size() && text[pos] == close) {
        ++pos;
        return true;
    }
    while (true) {
        skipSpace(text, pos);
        if (keyed) {
            if (!parseString(text, pos))
                return false;
            skipSpace(text, pos);
            if (pos >= text.size() || text[pos] != ':')
                return false;
            ++pos;
        }
        if (!parseValue(text, pos))
            return false;
        skipSpace(text, pos);
        if (pos >= text.size())
            return false;
        if (text[pos] == ',') {
            ++pos;
            continue;
        }
        if (text[pos] == close) {
            ++pos;
            return true;
        }
        return false;
    }
}

bool
parseValue(const std::string &text, std::size_t &pos)
{
    skipSpace(text, pos);
    if (pos >= text.size())
        return false;
    char c = text[pos];
    if (c == '{')
        return parseContainer(text, pos, '}', true);
    if (c == '[')
        return parseContainer(text, pos, ']', false);
    if (c == '"')
        return parseString(text, pos);
    if (text.compare(pos, 4, "true") == 0) {
        pos += 4;
        return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
        pos += 5;
        return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
        pos += 4;
        return true;
    }
    // Number.
    std::size_t start = pos;
    if (c == '-')
        ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
        ++pos;
    }
    return pos > start;
}

bool
isValidJson(const std::string &text)
{
    std::size_t pos = 0;
    if (!parseValue(text, pos))
        return false;
    skipSpace(text, pos);
    return pos == text.size();
}

// ---- Shared fixtures ----

/** Records every event for inspection. */
class RecordingSink final : public TraceSink
{
  public:
    void
    emit(const TraceEvent &event) override
    {
        events.push_back(event);
    }

    std::vector<TraceEvent> events;
};

/** A two-thread loop with stores: exercises fetch, dispatch, issue,
 *  writeback, commit, squash (loop branch mispredicts), and the
 *  cache. */
Program
loopProgram(int iterations = 20)
{
    ProgramBuilder b;
    b.dword("out", 0);
    b.ldi(1, iterations);
    b.ldi(2, 0);
    b.label("top");
    b.add(2, 2, 1);
    b.addi(1, 1, -1);
    b.bne(1, 0, "top");
    b.la(3, "out");
    b.st(2, 0, 3);
    b.halt();
    return b.finish();
}

MachineConfig
traceConfig(unsigned threads)
{
    MachineConfig cfg;
    cfg.numThreads = threads;
    cfg.maxCycles = 1'000'000;
    return cfg;
}

TraceEvent
makeEvent(TraceEventKind kind)
{
    TraceEvent ev;
    ev.kind = kind;
    return ev;
}

// ---- Text sink ----

TEST(TextSink, LegacyLineFormats)
{
    std::ostringstream out;
    TextTraceSink sink(out);

    TraceEvent fetch = makeEvent(TraceEventKind::Fetch);
    fetch.cycle = 7;
    fetch.tid = 1;
    fetch.pc = 12;
    fetch.args[0] = 4;
    sink.emit(fetch);

    TraceEvent halt = makeEvent(TraceEventKind::CommitHalt);
    halt.cycle = 9;
    halt.tid = 2;
    sink.emit(halt);

    TraceEvent block = makeEvent(TraceEventKind::CommitBlock);
    block.cycle = 10;
    block.tid = 1;
    block.seq = 5;
    block.args[0] = 2;
    sink.emit(block);

    TraceEvent squash = makeEvent(TraceEventKind::Squash);
    squash.cycle = 11;
    squash.tid = 0;
    squash.pc = 3;
    squash.args[0] = 8;
    squash.args[1] = 6;
    sink.emit(squash);

    EXPECT_EQ(out.str(),
              "[       7] fetch: tid=1 pc=12 n=4\n"
              "[       9] commit: thread 2 HALT\n"
              "[      10] commit: block seq=5 tid=1 from slot 2\n"
              "[      11] squash: tid=0 pc=3 -> 8 (6 entries)\n");
}

TEST(TextSink, IgnoresStructuredOnlyKinds)
{
    std::ostringstream out;
    TextTraceSink sink(out);
    for (TraceEventKind kind :
         {TraceEventKind::Dispatch, TraceEventKind::Issue,
          TraceEventKind::Writeback, TraceEventKind::CommitInst,
          TraceEventKind::CacheMiss, TraceEventKind::Stall,
          TraceEventKind::Counter}) {
        sink.emit(makeEvent(kind));
    }
    EXPECT_EQ(out.str(), "");
}

TEST(TextSink, SetTraceAndSetTraceSinkAgree)
{
    Program prog = loopProgram();
    MachineConfig cfg = traceConfig(2);

    std::ostringstream via_stream;
    {
        Processor cpu(cfg, prog);
        cpu.setTrace(&via_stream);
        cpu.run();
    }

    std::ostringstream via_sink;
    {
        TextTraceSink sink(via_sink);
        Processor cpu(cfg, prog);
        cpu.setTraceSink(&sink);
        cpu.run();
    }

    EXPECT_EQ(via_stream.str(), via_sink.str());
    EXPECT_NE(via_stream.str().find("fetch: tid="), std::string::npos);
    EXPECT_NE(via_stream.str().find("commit: block"),
              std::string::npos);
}

// ---- Null sink and tee ----

TEST(NullSink, SwallowsEverything)
{
    NullTraceSink sink;
    for (unsigned k = 0; k < kNumTraceEventKinds; ++k)
        sink.emit(makeEvent(static_cast<TraceEventKind>(k)));
    sink.finish(); // default no-op
}

TEST(TeeSink, ForwardsToEverySinkInOrder)
{
    RecordingSink a, b;
    TeeTraceSink tee;
    tee.add(&a);
    tee.add(&b);
    tee.add(nullptr); // ignored

    TraceEvent ev = makeEvent(TraceEventKind::Issue);
    ev.seq = 42;
    tee.emit(ev);

    ASSERT_EQ(a.events.size(), 1u);
    ASSERT_EQ(b.events.size(), 1u);
    EXPECT_EQ(a.events[0].seq, 42u);
    EXPECT_EQ(b.events[0].seq, 42u);
}

// ---- Pipeline event stream ----

TEST(PipelineEvents, OrderedAndLifecycleConsistent)
{
    RecordingSink sink;
    Program prog = loopProgram();
    MachineConfig cfg = traceConfig(2);
    Processor cpu(cfg, prog);
    cpu.setTraceSink(&sink);
    SimResult sim = cpu.run();
    ASSERT_TRUE(sim.finished);

    // Cycle numbers never go backwards for live pipeline events.
    // (Stall spans are reported when they *end* and carry their
    // start cycle, so they are exempt.)
    Cycle last = 0;
    std::uint64_t commits = 0;
    bool saw_fetch = false, saw_dispatch = false, saw_issue = false,
         saw_writeback = false, saw_squash = false;
    for (const TraceEvent &ev : sink.events) {
        if (ev.kind != TraceEventKind::Stall) {
            EXPECT_GE(ev.cycle, last);
            last = ev.cycle;
        }
        switch (ev.kind) {
          case TraceEventKind::Fetch:
            saw_fetch = true;
            EXPECT_GT(ev.args[0], 0u); // nonempty block
            break;
          case TraceEventKind::Dispatch:
            saw_dispatch = true;
            break;
          case TraceEventKind::Issue:
            saw_issue = true;
            EXPECT_NE(ev.label, nullptr);
            break;
          case TraceEventKind::Writeback:
            saw_writeback = true;
            break;
          case TraceEventKind::Squash:
            saw_squash = true;
            break;
          case TraceEventKind::CommitInst: {
            ++commits;
            // fetch <= dispatch <= issue <= complete <= commit.
            EXPECT_LE(ev.args[0], ev.args[1]);
            EXPECT_LE(ev.args[1], ev.args[2]);
            EXPECT_LE(ev.args[2], ev.args[3]);
            EXPECT_LE(ev.args[3], ev.cycle);
            break;
          }
          default:
            break;
        }
    }
    EXPECT_TRUE(saw_fetch);
    EXPECT_TRUE(saw_dispatch);
    EXPECT_TRUE(saw_issue);
    EXPECT_TRUE(saw_writeback);
    EXPECT_TRUE(saw_squash); // the loop branch mispredicts at exit
    EXPECT_EQ(commits, sim.committedInstructions);
}

TEST(PipelineEvents, StallSpansCoverNonActiveCycles)
{
    RecordingSink sink;
    Program prog = loopProgram();
    MachineConfig cfg = traceConfig(4);
    Processor cpu(cfg, prog);
    cpu.setTraceSink(&sink);
    SimResult sim = cpu.run();
    ASSERT_TRUE(sim.finished);

    // Per-thread stall spans must not overlap and must not extend
    // past the end of the run.
    std::vector<Cycle> next_free(cfg.numThreads, 0);
    unsigned spans = 0;
    for (const TraceEvent &ev : sink.events) {
        if (ev.kind != TraceEventKind::Stall)
            continue;
        ++spans;
        EXPECT_GT(ev.args[1], 0u);
        EXPECT_GE(ev.cycle, next_free[ev.tid]);
        next_free[ev.tid] = ev.cycle + ev.args[1];
        EXPECT_LE(next_free[ev.tid], sim.cycles + 1);
        EXPECT_NE(ev.label, nullptr);
    }
    EXPECT_GT(spans, 0u);
}

// ---- JSON sink ----

TEST(JsonSink, EmptyTraceIsAnEmptyArray)
{
    std::ostringstream out;
    {
        JsonTraceSink sink(out);
        sink.finish();
        sink.finish(); // idempotent
    }
    EXPECT_TRUE(isValidJson(out.str())) << out.str();
}

TEST(JsonSink, WholeFileAndEveryLineParse)
{
    std::ostringstream out;
    Program prog = loopProgram();
    MachineConfig cfg = traceConfig(2);
    {
        JsonTraceSink sink(out);
        Processor cpu(cfg, prog);
        cpu.setTraceSink(&sink);
        ASSERT_TRUE(cpu.run().finished);
        sink.finish();
    }
    const std::string text = out.str();

    // The whole document is one valid JSON array...
    ASSERT_TRUE(isValidJson(text));

    // ...and each record line parses standalone after stripping the
    // trailing comma, carrying the Chrome-trace-event schema.
    std::istringstream lines(text);
    std::string line;
    unsigned records = 0;
    bool saw_process_meta = false, saw_complete = false,
         saw_counter = false, saw_stall_track = false;
    while (std::getline(lines, line)) {
        if (line == "[" || line == "]" || line.empty())
            continue;
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        ++records;
        EXPECT_TRUE(isValidJson(line)) << line;
        EXPECT_NE(line.find("\"ph\":"), std::string::npos) << line;
        EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
        EXPECT_NE(line.find("\"pid\":"), std::string::npos) << line;
        EXPECT_NE(line.find("\"name\":"), std::string::npos) << line;
        if (line.find("\"process_name\"") != std::string::npos)
            saw_process_meta = true;
        if (line.find("\"ph\":\"X\"") != std::string::npos &&
            line.find("\"commit\":") != std::string::npos) {
            saw_complete = true;
            for (const char *key :
                 {"\"dur\":", "\"fetch\":", "\"dispatch\":",
                  "\"issue\":", "\"complete\":", "\"seq\":",
                  "\"pc\":"}) {
                EXPECT_NE(line.find(key), std::string::npos) << line;
            }
        }
        if (line.find("\"su_occupancy\"") != std::string::npos &&
            line.find("\"ph\":\"C\"") != std::string::npos) {
            saw_counter = true;
        }
        if (line.find("\"pid\":2") != std::string::npos &&
            line.find("\"reason\":") != std::string::npos) {
            saw_stall_track = true;
        }
    }
    EXPECT_GT(records, 10u);
    EXPECT_TRUE(saw_process_meta);
    EXPECT_TRUE(saw_complete);
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_stall_track);
}

TEST(JsonSink, DestructorFinishesTheDocument)
{
    std::ostringstream out;
    {
        JsonTraceSink sink(out);
        TraceEvent ev = makeEvent(TraceEventKind::Issue);
        ev.cycle = 3;
        sink.emit(ev);
        // No explicit finish(): the destructor must close the array.
    }
    EXPECT_TRUE(isValidJson(out.str())) << out.str();
}

} // namespace
} // namespace sdsp
